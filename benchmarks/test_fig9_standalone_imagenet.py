"""Fig. 9: ImageNet-class networks (Caffe and PyTorch model zoos)
under the five standalone configurations.

Paper shape: fencing 4.5-10% over native for the Caffe zoo; the
PyTorch zoo pays ~5.5% interception + ~7.6% fencing.
"""

import pytest

from repro.sharing.standalone import STANDALONE_CONFIGS, run_standalone_suite
from repro.sharing.workload_mixes import _ml_workload

from benchmarks.conftest import FULL, MAX_BLOCKS, print_table

CAFFE_NETS = ("googlenet", "alexnet", "caffenet") if FULL else (
    "alexnet",)
PYTORCH_NETS = ("vgg11", "mobilenetv2", "resnet50") if FULL else (
    "mobilenetv2", "resnet50")

CONFIGS = ("native", "noprot", "bitwise")


def _suite(model):
    return run_standalone_suite(
        lambda: _ml_workload(model, epochs=1, seed=0,
                             samples=8, batch=8),
        configs=CONFIGS,
        max_blocks=MAX_BLOCKS,
    )


@pytest.fixture(scope="module")
def results():
    nets = list(CAFFE_NETS) + list(PYTORCH_NETS)
    return {model: _suite(model) for model in nets}


def test_fig9_imagenet_networks(once, results):
    data = once(lambda: results)
    rows = []
    for model, times in data.items():
        zoo = "Caffe" if model in CAFFE_NETS else "PyTorch"
        native = times["native"]
        rows.append([
            model, zoo,
            *(f"{times[c] / native:.3f}x" for c in CONFIGS),
        ])
    print_table(
        "Fig. 9: ImageNet-class training, normalised to native",
        ["model", "zoo", *CONFIGS],
        rows,
    )


def test_fig9_fencing_band(results, once):
    once(lambda: None)  # participate under --benchmark-only
    for model, times in results.items():
        overhead = times["bitwise"] / times["native"] - 1
        # Paper bands: 4.5%-10% (Caffe zoo), up to ~13% (PyTorch zoo).
        assert 0.0 < overhead < 0.22, (model, overhead)


def test_fig9_interception_component(results, once):
    once(lambda: None)  # participate under --benchmark-only
    for model, times in results.items():
        overhead = times["noprot"] / times["native"] - 1
        assert -0.02 < overhead < 0.15, (model, overhead)


def test_fig9_fencing_exceeds_interception(results, once):
    once(lambda: None)  # participate under --benchmark-only
    for model, times in results.items():
        assert times["bitwise"] >= times["noprot"], model
