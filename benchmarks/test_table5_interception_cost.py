"""Table 5: CPU cycles of the intercepted kernel-launch path.

Paper rows (cycles): lookup 557, augment 400, launch syscall ~9000 —
Guardian adds ~957 per launch, ~10% of the launch call alone, ~3% of
launch + kernel execution.
"""

import numpy as np

from repro import FencingMode, GuardianSystem
from repro.core.server import ServerCostModel
from repro.driver.fatbin import build_fatbin

from benchmarks.conftest import emit_bench_json, print_table
from tests.conftest import saxpy_module


def _measure_launch_path():
    system = GuardianSystem(mode=FencingMode.BITWISE)
    tenant = system.attach("app", 1 << 22)
    handles = tenant.runtime.registerFatBinary(
        build_fatbin(saxpy_module(), "lib", "11.7"))
    buffer = tenant.runtime.cudaMalloc(4096)
    tenant.runtime.cudaMemcpyH2D(
        buffer + 2048, np.ones(64, dtype=np.float32).tobytes())

    server = system.server
    cycles_before = server.stats.cycles
    launches = 100
    for _ in range(launches):
        tenant.runtime.cudaLaunchKernel(
            handles["saxpy"], (1, 1, 1), (64, 1, 1),
            [buffer, buffer + 2048, 1.0, 64])
    per_launch = (server.stats.cycles - cycles_before) / launches
    return per_launch, server.costs


def test_table5_interception_cost(once):
    per_launch, costs = once(_measure_launch_path)
    print_table(
        "Table 5: cycles per intercepted cudaLaunchKernel",
        ["", "Lookup", "Augment params", "Launch syscall", "Total"],
        [
            ["Native", 0, 0, costs.launch_syscall, costs.launch_syscall],
            ["Guardian", costs.lookup, costs.augment,
             costs.launch_syscall, int(per_launch)],
        ],
    )
    emit_bench_json("table5_interception", {
        "lookup_cycles": costs.lookup,
        "augment_cycles": costs.augment,
        "launch_syscall_cycles": costs.launch_syscall,
        "per_launch_cycles": per_launch,
    })
    # Paper: lookup ~557, augment ~400 (sum ~957).
    assert costs.lookup == 557
    assert costs.augment == 400
    guardian_added = per_launch - costs.launch_syscall
    assert guardian_added == costs.lookup + costs.augment
    # "our overhead without the kernel execution is 10% on average"
    relative = guardian_added / costs.launch_syscall
    assert 0.08 < relative < 0.13


def test_table5_lookup_microbench(benchmark):
    """Microbenchmark of the pointerToSymbol lookup itself (wall time
    of the simulated operation; the modelled cost is the 557 cycles)."""
    system = GuardianSystem()
    tenant = system.attach("app", 1 << 22)
    handles = tenant.runtime.registerFatBinary(
        build_fatbin(saxpy_module(), "lib", "11.7"))
    tenant_state = system.server._tenants["app"]
    handle = handles["saxpy"]

    result = benchmark(lambda: tenant_state.functions[handle])
    assert result is not None


def test_table5_memops_negligible(once):
    """§6.6: 'our allocator does not imply overhead compared to native
    CUDA, and the protection checks on transfers imply negligible
    overhead' — check counts, not just prose."""
    def measure():
        system = GuardianSystem()
        tenant = system.attach("app", 1 << 22)
        server = system.server
        buffers = [tenant.runtime.cudaMalloc(4096) for _ in range(20)]
        before = server.stats.cycles
        for buffer in buffers:
            tenant.runtime.cudaMemcpyH2D(buffer, b"x" * 4096)
        per_copy = (server.stats.cycles - before) / 20
        return per_copy, server.costs

    per_copy, costs = once(measure)
    # The added check is a bounds compare on top of the driver copy.
    added = per_copy - costs.driver.memcpy
    assert added <= 2 * costs.transfer_check
