"""§6.6 micro-benchmarks: allocator parity and transfer-check cost
across sizes.

Paper: '(a) our allocator does not imply overhead compared to native
CUDA, and (b) the protection checks used on every data transfer over
the PCIe bus imply negligible overhead.'
"""

import pytest

from repro import GuardianSystem
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.runtime.api import CudaRuntime
from repro.runtime.backend import NativeBackend
from repro.runtime.interpose import LIBCUDA, DynamicLoader

from benchmarks.conftest import print_table

SIZES = [256, 4 << 10, 64 << 10, 1 << 20]


def _native_runtime():
    device = Device(QUADRO_RTX_A4000)
    backend = NativeBackend(device, "app")
    loader = DynamicLoader()
    loader.register(LIBCUDA, backend)
    return CudaRuntime(loader), device


def test_sec66_alloc_parity(once):
    """Guardian's in-partition allocator behaves like the native one:
    same alignment, same reuse, O(1)-ish costs."""
    def measure():
        native_runtime, _ = _native_runtime()
        system = GuardianSystem()
        tenant = system.attach("app", 64 << 20)
        rows = []
        for size in SIZES:
            native_addr = native_runtime.cudaMalloc(size)
            guardian_addr = tenant.runtime.cudaMalloc(size)
            rows.append([size, native_addr % 256, guardian_addr % 256])
            native_runtime.cudaFree(native_addr)
            tenant.runtime.cudaFree(guardian_addr)
        # Reuse parity: free + realloc returns the same block.
        native_a = native_runtime.cudaMalloc(4096)
        native_runtime.cudaFree(native_a)
        guardian_a = tenant.runtime.cudaMalloc(4096)
        tenant.runtime.cudaFree(guardian_a)
        return (rows,
                native_runtime.cudaMalloc(4096) == native_a,
                tenant.runtime.cudaMalloc(4096) == guardian_a)

    rows, native_reuses, guardian_reuses = once(measure)
    print_table("§6.6: allocation alignment parity",
                ["size", "native addr % 256", "guardian addr % 256"],
                rows)
    for _, native_mod, guardian_mod in rows:
        assert native_mod == 0 and guardian_mod == 0
    assert native_reuses and guardian_reuses


def test_sec66_transfer_check_negligible(once):
    """The per-transfer bounds check is a constant ~hundred cycles —
    vanishing against the PCIe time of any non-trivial copy."""
    def measure():
        system = GuardianSystem()
        tenant = system.attach("app", 64 << 20)
        server = system.server
        rows = []
        for size in SIZES:
            buffer = tenant.runtime.cudaMalloc(size)
            before = server.stats.cycles
            tenant.runtime.cudaMemcpyH2D(buffer, b"\x00" * size)
            server_cycles = server.stats.cycles - before
            pcie_cycles = size * system.device.spec.clock_ghz / (
                system.device.spec.pcie_bw_gbps)
            rows.append([size, int(server_cycles), int(pcie_cycles)])
            tenant.runtime.cudaFree(buffer)
        return rows

    rows = once(measure)
    print_table("§6.6: transfer check vs PCIe time (cycles)",
                ["size", "server-side cycles", "PCIe transfer cycles"],
                rows)
    from repro.core.server import ServerCostModel

    costs = ServerCostModel()
    per_copy = rows[0][1]
    for size, server_cycles, pcie_cycles in rows:
        # The server path cost is constant, independent of size...
        assert server_cycles == per_copy
        # ...and the *added* bounds check (on top of the driver memcpy
        # work every deployment pays) vanishes against the PCIe time
        # of any non-trivial copy.
        added_check = server_cycles - costs.driver.memcpy
        assert added_check == costs.transfer_check
        if size >= 64 << 10:
            assert added_check < 0.05 * pcie_cycles


def test_sec66_malloc_microbench(benchmark):
    """Wall time of a Guardian cudaMalloc/cudaFree pair."""
    system = GuardianSystem()
    tenant = system.attach("app", 64 << 20)

    def alloc_free():
        address = tenant.runtime.cudaMalloc(4096)
        tenant.runtime.cudaFree(address)
        return address

    assert benchmark(alloc_free) > 0
