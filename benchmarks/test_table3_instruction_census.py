"""Table 3: kernels, device functions and ld/st instructions per
library/framework binary.

The paper's absolute counts come from NVIDIA's real libraries (cuBLAS:
4115 kernels); ours are the simulator libraries'. The reproduced
*shape*: every binary ships both entry kernels and (where applicable)
``.func`` helpers, loads outnumber stores, and the patcher instruments
exactly the censused accesses.
"""

from repro.core.patcher import PTXPatcher, count_memory_ops
from repro.core.policy import FencingMode
from repro.libs.kernels import blas, dnn, fft, rand
from repro.ptx.builder import build_module
from repro.workloads.rodinia import rodinia_fatbin
from repro.ptx.parser import parse_module

from benchmarks.conftest import print_table

LIBRARIES = {
    "cuBLAS": lambda: build_module(blas.all_kernels()),
    "cuDNN": lambda: build_module(dnn.all_kernels()),
    "cuRAND": lambda: build_module(rand.all_kernels()),
    "cuFFT": lambda: build_module(fft.all_kernels()),
    "Rodinia": lambda: parse_module(
        rodinia_fatbin().ptx_entries()[-1].ptx_text()),
}


def _census():
    return {name: count_memory_ops(make())
            for name, make in LIBRARIES.items()}


def test_table3_census(once):
    rows = once(_census)
    print_table(
        "Table 3: load/store instructions per binary",
        ["Library", "#kernels", "#func", "#loads", "#stores"],
        [[name, c.kernels, c.funcs, c.loads, c.stores]
         for name, c in rows.items()],
    )
    total_kernels = sum(c.kernels for c in rows.values())
    assert total_kernels >= 25
    # Paper shape: loads outnumber stores in every BLAS/DNN-class lib.
    assert rows["cuBLAS"].loads > rows["cuBLAS"].stores
    assert rows["cuDNN"].loads > rows["cuDNN"].stores
    # .func device functions exist (the paper patches those too).
    assert rows["cuDNN"].funcs >= 1
    assert rows["cuFFT"].funcs >= 1


def test_table3_census_matches_patcher_coverage(once):
    """Every censused access is instrumented — 100% coverage."""
    def coverage():
        results = {}
        for name, make in LIBRARIES.items():
            module = make()
            census = count_memory_ops(module)
            _, reports = PTXPatcher(FencingMode.BITWISE).patch_module(
                module)
            instrumented = sum(r.sites for r in reports)
            results[name] = (census.loads + census.stores
                             + census.atomics, instrumented)
        return results

    results = once(coverage)
    for name, (censused, instrumented) in results.items():
        assert censused == instrumented, name
