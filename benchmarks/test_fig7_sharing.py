"""Fig. 7: multi-tenant sharing — Native time-sharing vs MPS vs
Guardian (no protection) vs Guardian (address fencing) over the
Table 4 workload mixes.

Paper shape targets:
- spatial sharing beats native time-sharing (avg ~23% faster for
  fencing, up to ~2x on resource-light mixes like B/D);
- Guardian fencing is a few percent slower than MPS (paper: 4.84%);
- Guardian without protection tracks MPS within a fraction of a
  percent and edges it out on kernel-heavy mixes.
"""

import pytest

from repro.sharing import build_mix, run_deployment

from benchmarks.conftest import (
    FULL,
    MAX_BLOCKS,
    MIX_BATCH,
    MIX_SAMPLES,
    print_table,
)

MIXES = list("ABCDEFGHIJKLMNOP") if FULL else ["A", "B", "D", "E", "I",
                                               "K", "P"]
DEPLOYMENTS = ("native", "mps", "guardian-noprot", "guardian")


def _run_mix(mix_id):
    times = {}
    for deployment in DEPLOYMENTS:
        run = run_deployment(
            deployment,
            build_mix(mix_id, samples=MIX_SAMPLES, batch=MIX_BATCH),
            max_blocks=MAX_BLOCKS,
        )
        times[deployment] = run.makespan_seconds
    return times


@pytest.fixture(scope="module")
def sweep():
    return {mix_id: _run_mix(mix_id) for mix_id in MIXES}


def test_fig7_sharing(once, sweep):
    results = once(lambda: sweep)
    rows = []
    for mix_id, times in results.items():
        native = times["native"]
        rows.append([
            mix_id,
            f"{native * 1e3:.3f}",
            *(f"{times[d] * 1e3:.3f} ({native / times[d]:.2f}x)"
              for d in DEPLOYMENTS[1:]),
        ])
    print_table(
        "Fig. 7: workload makespan (ms; speedup vs native)",
        ["Mix", "Native TS", "MPS", "Guardian no-prot",
         "Guardian fencing"],
        rows,
    )


def test_fig7_spatial_beats_timesharing(sweep, once):
    once(lambda: None)  # participate under --benchmark-only
    speedups = [times["native"] / times["guardian"]
                for times in sweep.values()]
    average = sum(speedups) / len(speedups)
    # Paper: fencing averages ~23% faster than native time-sharing.
    assert average > 1.05
    assert max(speedups) > 1.4  # resource-light mixes approach 2x


def test_fig7_light_mixes_near_2x(sweep, once):
    """Workloads with more co-located light clients (B) gain more than
    their 2-client versions (A), toward the paper's 2x (§6.1). At the
    default bench scales mix B lands around 1.4x; larger batches push
    it past 1.9x (see tests/sharing and EXPERIMENTS.md)."""
    once(lambda: None)  # participate under --benchmark-only
    if "B" not in sweep or "A" not in sweep:
        pytest.skip("mix subset without A/B")
    gain_b = sweep["B"]["native"] / sweep["B"]["guardian"]
    gain_a = sweep["A"]["native"] / sweep["A"]["guardian"]
    assert gain_b > gain_a
    assert gain_b > 1.3


def test_fig7_guardian_vs_mps_overhead(sweep, once):
    once(lambda: None)  # participate under --benchmark-only
    """Protected spatial sharing costs a few percent over MPS
    (paper: 4.84% on average)."""
    overheads = [times["guardian"] / times["mps"] - 1
                 for times in sweep.values()]
    average = sum(overheads) / len(overheads)
    assert -0.02 < average < 0.12


def test_fig7_noprot_tracks_mps(sweep, once):
    once(lambda: None)  # participate under --benchmark-only
    """Interception alone is MPS-equivalent (paper: 0.05% apart,
    better when thousands of kernels queue)."""
    ratios = [times["guardian-noprot"] / times["mps"]
              for times in sweep.values()]
    average = sum(ratios) / len(ratios)
    assert 0.95 < average < 1.03
