"""Latency under open-loop load: the SLO accounting experiment.

Replays seeded Poisson arrival traces of full tenant sessions against
a stock server at four offered utilisations, twice framing the paper's
closed-loop tables with the production question they cannot answer:
what latency does an *arriving* tenant see when the server is busy?
Each sweep point reports the modelled session p50/p99/p999, goodput
(SLO-compliant completions per Mcycle) and shed rate; the ``0.6``
utilisation point is the CI operating point — ``check_regression.py``
holds its goodput above the baseline floor and its p99 below the
ceiling.

Two companion experiments exercise the control knobs: a bursty
MMPP(2) trace with and without bounded-queue shedding (backpressure
must cap the p99 an unbounded queue lets run away), and the
p99-breach autoscaler against a fixed-minimum baseline (widening
lanes under breach must cut the p99).

The arrival seed comes from ``GUARDIAN_LOAD_SEED`` (the CI load-smoke
job sweeps 0-2); every knob involved defaults off, so none of this
perturbs the stock path.
"""

from __future__ import annotations

import os

from repro.analysis.reporting import render_slo_report
from repro.core.server import GuardianServer, ServerConfig
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.loadgen import (
    LoadgenConfig,
    MarkovModulatedArrivals,
    OpenLoopDriver,
    PoissonArrivals,
    SessionSpec,
    SLOClass,
    evaluate_slo,
    run_session,
)

from benchmarks.conftest import emit_bench_json, print_table

SEED = int(os.environ.get("GUARDIAN_LOAD_SEED", "0"))

#: Service slots the sweep models (and the sessions per point).
CAPACITY = 2
SESSIONS = 60

#: Offered load as a fraction of the modelled service capacity.
UTILISATIONS = (0.3, 0.6, 0.9, 1.2)

#: The CI operating point and its gates (mirrored in
#: bench_baseline.json): chosen mid-load where seeds 0-2 all keep
#: goodput well above the floor and p99 well under the ceiling.
GATE_UTILISATION = 0.6
MIN_GOODPUT_PER_MCYCLE = 4.0
MAX_P99_CYCLES = 750_000.0

#: Session p99 SLO, in multiples of one session's service demand.
SLO_FACTOR = 3.0


def make_server(**knobs) -> GuardianServer:
    return GuardianServer(Device(QUADRO_RTX_A4000),
                          config=ServerConfig(**knobs))


def calibrate_service_cycles(spec: SessionSpec) -> float:
    """One session's host-cycle demand on a fresh stock server — the
    sweep's unit of offered load, measured rather than pinned so the
    utilisation axis tracks the cost model."""
    return run_session(make_server(), "probe", spec).host_cycles


class TestLoadSLO:
    def test_open_loop_latency_sweep(self, once):
        spec = SessionSpec()
        service = calibrate_service_cycles(spec)
        slo = SLOClass("standard", SLO_FACTOR * service)
        classes = {"standard": slo}

        def sweep():
            points = []
            for utilisation in UTILISATIONS:
                rate = utilisation * CAPACITY / service
                driver = OpenLoopDriver(
                    make_server(),
                    LoadgenConfig(capacity=CAPACITY, seed=SEED),
                    classes,
                )
                report = driver.run(
                    PoissonArrivals(rate=rate, seed=SEED), SESSIONS,
                    spec=spec,
                )
                points.append(
                    (utilisation, rate,
                     evaluate_slo(report, classes))
                )
            return points

        points = once(sweep)

        rows = []
        by_utilisation = {}
        for utilisation, rate, grades in points:
            grade = grades["classes"]["standard"]
            by_utilisation[utilisation] = grade
            rows.append([
                f"{utilisation:.1f}",
                f"{rate * 1e6:.2f}",
                f"{grade['p50']:,.0f}",
                f"{grade['p99']:,.0f}",
                f"{grade['p999']:,.0f}",
                f"{grade['goodput_per_mcycle']:.3f}",
                f"{grade['shed_rate']:.3f}",
            ])
        print_table(
            f"Open-loop Poisson sweep (seed {SEED}, "
            f"capacity {CAPACITY}, SLO {slo.p99_cycles:,.0f})",
            ["util", "rate/Mcy", "p50", "p99", "p999",
             "goodput/Mcy", "shed rate"],
            rows,
        )
        print()
        print(render_slo_report(points[-1][2],
                                title="Saturated point (util 1.2)"))

        gate = by_utilisation[GATE_UTILISATION]
        emit_bench_json("load_slo", {
            "seed": SEED,
            "capacity": CAPACITY,
            "sessions": SESSIONS,
            "service_cycles": service,
            "slo_p99_cycles": slo.p99_cycles,
            "sweep": [
                {
                    "utilisation": utilisation,
                    "rate_per_mcycle": rate * 1e6,
                    "p50": grades["classes"]["standard"]["p50"],
                    "p99": grades["classes"]["standard"]["p99"],
                    "p999": grades["classes"]["standard"]["p999"],
                    "goodput_per_mcycle":
                        grades["classes"]["standard"]
                              ["goodput_per_mcycle"],
                    "shed_rate":
                        grades["classes"]["standard"]["shed_rate"],
                }
                for utilisation, rate, grades in points
            ],
            "operating_point": {
                "utilisation": GATE_UTILISATION,
                "p99_cycles": gate["p99"],
                "goodput_per_mcycle": gate["goodput_per_mcycle"],
            },
        })

        # Open loop: every point offers the full trace, nothing sheds.
        for utilisation, _, grades in points:
            grade = grades["classes"]["standard"]
            assert grade["offered"] == SESSIONS
            assert grade["shed_rate"] == 0.0

        # Latency-under-load shape: p99 climbs with utilisation, and
        # the lightly-loaded point sits near the bare service demand.
        p99s = [by_utilisation[u]["p99"] for u in UTILISATIONS]
        assert p99s == sorted(p99s)
        assert by_utilisation[UTILISATIONS[0]]["p50"] < 1.5 * service

        # The CI operating point clears its gates.
        assert gate["goodput_per_mcycle"] >= MIN_GOODPUT_PER_MCYCLE
        assert gate["p99"] <= MAX_P99_CYCLES

    def test_bursty_backpressure_caps_tail(self, once):
        spec = SessionSpec()
        service = calibrate_service_cycles(spec)
        classes = {"standard": SLOClass("standard",
                                        SLO_FACTOR * service)}
        process = MarkovModulatedArrivals(
            calm_rate=0.4 / service,
            burst_rate=4.0 / service,
            mean_calm_cycles=20 * service,
            mean_burst_cycles=10 * service,
            seed=SEED,
        )

        def arms():
            results = {}
            for name, config in (
                ("unbounded", LoadgenConfig(capacity=1, seed=SEED)),
                ("shedding", LoadgenConfig(
                    capacity=1, admission_queue_depth=3, seed=SEED)),
            ):
                driver = OpenLoopDriver(make_server(), config, classes)
                report = driver.run(process, SESSIONS, spec=spec)
                results[name] = evaluate_slo(report, classes)
            return results

        results = once(arms)
        unbounded = results["unbounded"]["classes"]["standard"]
        shedding = results["shedding"]["classes"]["standard"]
        print_table(
            f"Bursty MMPP(2) arrivals (seed {SEED}): "
            "unbounded queue vs depth-3 shedding",
            ["arm", "p99", "shed rate", "goodput/Mcy"],
            [
                [name, f"{grade['p99']:,.0f}",
                 f"{grade['shed_rate']:.3f}",
                 f"{grade['goodput_per_mcycle']:.3f}"]
                for name, grade in (("unbounded", unbounded),
                                    ("shedding", shedding))
            ],
        )

        # The burst state oversubscribes a single lane, so the
        # unbounded queue runs away; the depth-3 gate sheds instead
        # and must cap the surviving sessions' p99.
        assert unbounded["shed_rate"] == 0.0
        assert shedding["shed"] > 0
        assert shedding["p99"] < unbounded["p99"]

    def test_autoscaler_recovers_breached_p99(self, once):
        spec = SessionSpec()
        service = calibrate_service_cycles(spec)
        classes = {"standard": SLOClass("standard",
                                        SLO_FACTOR * service)}
        rate = 1.8 / service  # oversubscribes one lane, not four

        def arms():
            results = {}
            for name, config in (
                ("fixed", LoadgenConfig(capacity=1, seed=SEED)),
                ("autoscale", LoadgenConfig(
                    capacity=1, autoscale=True, min_capacity=1,
                    max_capacity=4,
                    control_interval_cycles=8 * service,
                    seed=SEED)),
            ):
                driver = OpenLoopDriver(make_server(), config, classes)
                report = driver.run(
                    PoissonArrivals(rate=rate, seed=SEED), SESSIONS,
                    spec=spec,
                )
                results[name] = evaluate_slo(report, classes)
            return results

        results = once(arms)
        fixed = results["fixed"]["classes"]["standard"]
        scaled = results["autoscale"]["classes"]["standard"]
        peak = results["autoscale"]["overall"]["capacity_peak"]
        print_table(
            f"p99-breach autoscaler (seed {SEED}, offered 1.8x "
            "one lane)",
            ["arm", "p99", "time above SLO", "capacity peak"],
            [
                ["fixed 1 lane", f"{fixed['p99']:,.0f}",
                 "n/a", 1],
                ["autoscale 1-4", f"{scaled['p99']:,.0f}",
                 f"{scaled['time_above_slo']:.3f}", peak],
            ],
        )

        # Breach detection widened the lane set, and the added lanes
        # paid for themselves on the tail.
        assert peak > 1
        assert scaled["p99"] < fixed["p99"]
