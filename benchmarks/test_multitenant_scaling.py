"""Multi-tenant dispatch scaling: the concurrent-lanes optimisation.

Runs a fig7-style sharing workload at increasing tenant counts, twice
per point — stock serial dispatch and ``ServerConfig.concurrent()`` —
and reports the modelled makespan speedup (total host work divided by
the lane critical path). Independent tenants overlap everywhere except
the shared critical section (allocator mutations, bounds writes,
patch-cache misses), so the curve should climb toward the lane count
and must clear **2.5x at 8 tenants** (the CI regression floor).

A second experiment measures *wall-clock* time on a cold-patch
workload: eight tenant threads deploying the same cold PTX texts
through the single-flight parallel patch front-end versus each tenant
patching privately. The win is deduplication — concurrent same-hash
misses run one patch — so the speedup survives the GIL.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.analysis.metrics import collect_all
from repro.analysis.reporting import render_lane_report
from repro.core.patcher import (
    ParallelPatcher,
    PTXPatcher,
    ThreadSafePatchCache,
)
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer, ServerConfig
from repro.driver.fatbin import build_fatbin
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.ptx.emitter import emit_module

from benchmarks.conftest import emit_bench_json, print_table
from tests.conftest import make_guardian_tenant, saxpy_module

TENANT_COUNTS = (1, 2, 4, 8)
ITERATIONS = 25
SYNC_EVERY = 5
PARTITION = 1 << 20

#: The CI gate (mirrored in bench_baseline.json): 8 independent
#: tenants must overlap to at least this modelled speedup.
SPEEDUP_FLOOR_8_TENANTS = 2.5

#: Cold-patch wall-clock floor: single-flight dedup must beat
#: per-tenant private patching even with thread overhead.
PATCH_WALLCLOCK_FLOOR = 1.5


def run_sharing_workload(tenants: int, config: ServerConfig):
    """``tenants`` independent tenants deploy the same library and
    iterate (h2d, h2d, launch), synchronising every SYNC_EVERY."""
    device = Device(QUADRO_RTX_A4000)
    server = GuardianServer(device, FencingMode.BITWISE, config=config)

    handles = []
    for index in range(tenants):
        client, _ = make_guardian_tenant(server, f"t{index}", PARTITION)
        kernel = client.register_fatbin(
            build_fatbin(saxpy_module(), "libsaxpy", "11.7"))["saxpy"]
        buf = client.malloc(512)
        handles.append((client, kernel, buf))

    payload = np.ones(16, dtype=np.float32).tobytes()
    for iteration in range(ITERATIONS):
        for client, kernel, buf in handles:
            client.memcpy_h2d(buf, payload)
            client.memcpy_h2d(buf + 256, payload)
            client.launch_kernel(kernel, (1, 1, 1), (16, 1, 1),
                                 [buf, buf + 256, 2.0, 16])
        if (iteration + 1) % SYNC_EVERY == 0:
            for client, _, _ in handles:
                client.synchronize()
    device.synchronize(spatial=True)
    return server


def cold_patch_arms(tenants: int = 8, texts: int = 3, repeats: int = 3):
    """Wall-clock seconds for ``tenants`` deployments of the same cold
    texts: (private per-tenant patching, shared single-flight pool)."""
    base = emit_module(saxpy_module())
    sources = [base + f"\n// cold variant {index}\n"
               for index in range(texts)]

    def private_arm() -> float:
        patcher = PTXPatcher(FencingMode.BITWISE)
        start = time.perf_counter()
        for _ in range(tenants):
            for source in sources:
                patcher.patch_text(source)
        return time.perf_counter() - start

    def pooled_arm() -> tuple[float, int]:
        pool = ParallelPatcher(
            PTXPatcher(FencingMode.BITWISE),
            cache=ThreadSafePatchCache(16),
            workers=4,
        )
        barrier = threading.Barrier(tenants)

        def deploy():
            barrier.wait()
            pool.patch_many(sources)

        threads = [threading.Thread(target=deploy)
                   for _ in range(tenants)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        pool.shutdown()
        return elapsed, pool.patches_run

    private = min(private_arm() for _ in range(repeats))
    pooled_runs = [pooled_arm() for _ in range(repeats)]
    pooled = min(elapsed for elapsed, _ in pooled_runs)
    patches_run = max(runs for _, runs in pooled_runs)
    return private, pooled, patches_run


class TestMultiTenantScaling:
    def test_lanes_scale_makespan_with_tenant_count(self, once):
        def sweep():
            points = []
            for tenants in TENANT_COUNTS:
                serial = run_sharing_workload(tenants, ServerConfig())
                concurrent = run_sharing_workload(
                    tenants, ServerConfig.concurrent())
                points.append((tenants, serial, concurrent))
            return points

        points = once(sweep)

        rows = []
        speedups = {}
        for tenants, serial, concurrent in points:
            metrics = collect_all(concurrent).lanes
            speedups[tenants] = metrics.speedup
            rows.append([
                tenants,
                f"{serial.stats.cycles:,.0f}",
                f"{concurrent.stats.cycles:,.0f}",
                f"{concurrent.makespan_cycles():,.0f}",
                f"{metrics.speedup:.2f}x",
                f"{metrics.overlap_efficiency * 100:.0f}%",
            ])
        print_table(
            "Multi-tenant scaling: serial vs concurrent dispatch",
            ["tenants", "serial cycles", "work", "makespan",
             "speedup", "lane eff."],
            rows,
        )
        _, _, eight = points[-1]
        print()
        print(render_lane_report(collect_all(eight).lanes,
                                 title="Dispatch lanes (8 tenants)"))

        emit_bench_json("multitenant_scaling", {
            "tenant_counts": list(TENANT_COUNTS),
            "speedup_by_tenants": {
                str(tenants): speedups[tenants]
                for tenants in TENANT_COUNTS
            },
            "speedup_8_tenants": speedups[8],
            "iterations": ITERATIONS,
        })

        # Serial arm: lanes off means the makespan IS the busy clock.
        for tenants, serial, _ in points:
            assert serial.makespan_cycles() == serial.stats.cycles
            assert serial.lanes() == []

        # Work is conserved on every concurrent point...
        for tenants, _, concurrent in points:
            lanes = concurrent.lanes()
            assert len(lanes) == tenants
            assert abs(sum(lane.busy for lane in lanes)
                       - concurrent.stats.cycles) < 1e-6

        # ...the curve is monotone in tenant count...
        ordered = [speedups[tenants] for tenants in TENANT_COUNTS]
        assert ordered == sorted(ordered)

        # ...and 8 independent tenants clear the CI floor.
        assert speedups[8] >= SPEEDUP_FLOOR_8_TENANTS, (
            f"8-tenant modelled speedup {speedups[8]:.2f}x below the "
            f"{SPEEDUP_FLOOR_8_TENANTS}x floor"
        )

    def test_cold_patch_wallclock_speedup(self, once):
        private, pooled, patches_run = once(cold_patch_arms)
        speedup = private / pooled
        print_table(
            "Cold-patch deployment: wall-clock",
            ["arm", "seconds", "patches run"],
            [
                ["private per-tenant", f"{private:.4f}", 8 * 3],
                ["shared single-flight", f"{pooled:.4f}", patches_run],
            ],
        )
        print(f"wall-clock speedup: {speedup:.2f}x")

        emit_bench_json("multitenant_coldpatch", {
            "private_seconds": private,
            "pooled_seconds": pooled,
            "wallclock_speedup": speedup,
            "patches_run": patches_run,
        })

        # Single-flight dedup: 8 racing tenants x 3 texts -> 3 patches.
        assert patches_run == 3
        assert speedup >= PATCH_WALLCLOCK_FLOOR, (
            f"cold-patch wall-clock speedup {speedup:.2f}x below the "
            f"{PATCH_WALLCLOCK_FLOOR}x floor"
        )
