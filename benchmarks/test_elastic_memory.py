"""Elastic memory under churn: stranded-capacity recovery (DESIGN.md §14).

Replays one seeded high-churn trace of mixed-size resident tenants
(``repro.loadgen.churn``) against the same small device twice — a
stock static-partitioning server, then one with the elastic engine on
(shrink + compaction + oversubscription) — and reports how many of the
offered sessions each arm admits. The static arm sheds newcomers its
free-but-fragmented bytes could in principle hold; the elastic arm
must admit at least ``MIN_GOODPUT_UPLIFT`` (1.25x) more sessions while
keeping its shed rate no worse — the gate ``check_regression.py``
holds against ``bench_baseline.json``.

The companion check pins the GPUArmor bar the whole engine is built
under: with every elastic knob on, the patched PTX is byte-identical
to stock and the per-access fence is still exactly two mask ops
(``and.b64`` + ``or.b64``) — dynamic base and mask live in the bounds
table and the launch parameters, never in the instruction stream.

The churn seed comes from ``GUARDIAN_LOAD_SEED`` (the CI load-smoke
job sweeps 0-2); every knob involved defaults off, so none of this
perturbs the stock path.
"""

from __future__ import annotations

import dataclasses
import os
import re

from repro.core.server import GuardianServer, ServerConfig
from repro.gpu.device import Device
from repro.gpu.specs import MIB, QUADRO_RTX_A4000
from repro.loadgen import ChurnConfig, run_churn
from repro.ptx.builder import build_module
from repro.ptx.emitter import emit_module

from benchmarks.conftest import FULL, emit_bench_json, print_table
from tests.conftest import saxpy_kernel

SEED = int(os.environ.get("GUARDIAN_LOAD_SEED", "2024"))

#: 16 MiB of partitionable space — small enough that the default
#: 120-session mixed-size churn genuinely fragments and overflows it.
SMALL = dataclasses.replace(QUADRO_RTX_A4000,
                            global_memory_bytes=17 * MIB)

SESSIONS = 240 if FULL else 120

#: The capacity-recovery gate (mirrored in bench_baseline.json):
#: elastic must admit >= 1.25x the static arm's sessions at a shed
#: rate no worse than the static arm's.
MIN_GOODPUT_UPLIFT = 1.25

#: GPUArmor bar: per-access fence is exactly two mask ops.
MASK_OPS_PER_ACCESS = 2


def churn_arm(config: ServerConfig):
    server = GuardianServer(Device(SMALL), config=config)
    report = run_churn(server, ChurnConfig(sessions=SESSIONS, seed=SEED))
    return server, report


def fence_mask_ops(config: ServerConfig) -> tuple[str, float]:
    """Patch the saxpy module and measure the per-access fence length
    in the emitted text: guardian ``and``/``or`` lines per
    instrumented site."""
    server = GuardianServer(Device(SMALL), config=config)
    ptx = emit_module(build_module([saxpy_kernel()]))
    patched, reports, _ = server._patch_text(ptx)
    sites = sum(report.sites for report in reports)
    # The fence pair works on the injected guardian registers (%grd*):
    # AND with the mask param, OR with the base param.
    ops = len(re.findall(r"(?:and|or)\.b64.*%grd", patched))
    return patched, ops / sites


class TestElasticMemory:
    def test_churn_capacity_recovery(self, once):
        def arms():
            _, static = churn_arm(ServerConfig())
            _, elastic = churn_arm(ServerConfig.elastic())
            return static, elastic

        static, elastic = once(arms)
        uplift = (elastic.goodput_sessions / static.goodput_sessions
                  if static.goodput_sessions else float("inf"))

        rows = [
            [name, f"{r.admitted}/{r.offered}", f"{r.shed_rate:.3f}",
             f"{r.partitions_shrunk}", f"{r.tenants_compacted}",
             f"{r.swaps_out}/{r.swaps_in}",
             f"{r.bytes_reclaimed / MIB:.1f}",
             f"{r.touches_failed}", f"{r.server_cycles / 1e6:.2f}"]
            for name, r in (("static", static), ("elastic", elastic))
        ]
        print_table(
            f"Churn capacity recovery (seed {SEED}, {SESSIONS} "
            f"sessions, 16 MiB carve space, uplift {uplift:.2f}x)",
            ["arm", "admitted", "shed rate", "shrinks", "compactions",
             "swaps out/in", "MiB reclaimed", "failed touches",
             "Mcycles"],
            rows,
        )

        stock_text, stock_ops = fence_mask_ops(ServerConfig())
        elastic_text, elastic_ops = fence_mask_ops(
            ServerConfig.elastic())

        emit_bench_json("elastic_memory", {
            "seed": SEED,
            "sessions": SESSIONS,
            "carve_bytes": 16 * MIB,
            "static": {
                "admitted": static.admitted,
                "shed_rate": static.shed_rate,
                "server_mcycles": static.server_cycles / 1e6,
                "fragmentation_score": static.fragmentation_score,
            },
            "elastic": {
                "admitted": elastic.admitted,
                "shed_rate": elastic.shed_rate,
                "server_mcycles": elastic.server_cycles / 1e6,
                "partitions_shrunk": elastic.partitions_shrunk,
                "bytes_reclaimed": elastic.bytes_reclaimed,
                "tenants_compacted": elastic.tenants_compacted,
                "swaps_out": elastic.swaps_out,
                "swaps_in": elastic.swaps_in,
                "bytes_swapped": elastic.bytes_swapped,
                "touches_failed": elastic.touches_failed,
            },
            "goodput_uplift": uplift,
            "fence": {
                "mask_ops_per_access": elastic_ops,
                "patched_text_identical": stock_text == elastic_text,
            },
        })

        # The regime: the static arm genuinely sheds under this trace.
        assert static.shed > 0
        # Capacity recovery at equal-or-better shed-rate SLO.
        assert elastic.shed_rate <= static.shed_rate
        assert uplift >= MIN_GOODPUT_UPLIFT
        # No swapped tenant was ever lost to a failed revival.
        assert elastic.touches_failed == 0
        # GPUArmor bar, with every elastic knob on: same patched text,
        # still exactly two mask ops per instrumented access.
        assert stock_text == elastic_text
        assert stock_ops == elastic_ops == MASK_OPS_PER_ACCESS
