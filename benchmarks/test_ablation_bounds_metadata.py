"""Ablation: contiguous partitions (bounds in registers) vs
per-allocation bounds metadata fetched from memory.

The paper's design argument (§1, §4.4): G-NET-style per-allocation
bounds require a metadata *load* before every access (reading bounds
from memory "incurs significant overheads" [25]); Guardian's contiguous
partitions keep one (base, mask) pair in registers. This benchmark
builds both instrumentations for the same kernel and executes them.
"""

import numpy as np
import pytest

from repro.core.masks import partition_mask
from repro.core.patcher import PTXPatcher
from repro.core.policy import FencingMode
from repro.gpu.executor import KernelExecutor, compile_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.ptx.ast import Immediate
from repro.ptx.builder import KernelBuilder

from benchmarks.conftest import print_table

BASE = 0x7F_A000_0000_00
PART = 1 << 20
#: Device address of the simulated metadata table.
META = BASE + (1 << 22)


def _streaming_kernel(metadata_bounds: bool):
    """y[i] = x[i] * 2 with either register-fencing (added later by
    the patcher) or inline metadata-fetch bounds checking."""
    params = [("y", "u64"), ("x", "u64"), ("n", "u32")]
    if metadata_bounds:
        params.append(("meta", "u64"))
    b = KernelBuilder("stream", params=params)
    y = b.load_param_ptr("y")
    x = b.load_param_ptr("x")
    n = b.load_param("n", "u32")
    meta = b.load_param_ptr("meta") if metadata_bounds else None
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        for pointer, is_store in ((x, False), (y, True)):
            address = b.element_addr(pointer, gid, 4)
            if metadata_bounds:
                # Per-allocation scheme: fetch (base, mask) for this
                # allocation from the metadata table, then fence.
                base_reg = b.ld_global("u64", meta)
                mask_reg = b.ld_global("u64", meta, offset=8)
                address = b.and_("b64", address, mask_reg)
                address = b.or_("b64", address, base_reg)
            if is_store:
                value = b.mul("f32", loaded, 2.0)
                b.st_global("f32", address, value)
            else:
                loaded = b.ld_global("f32", address)
    return b.build()


def _run(kernel, params):
    memory = GlobalMemory(1 << 24)
    memory.write_array(BASE + 65536,
                       np.ones(2048, dtype=np.float32))
    memory.store_scalar(META, "u64", BASE)
    memory.store_scalar(META + 8, "u64", partition_mask(PART))
    executor = KernelExecutor(QUADRO_RTX_A4000, memory)
    compiled = compile_kernel(kernel, QUADRO_RTX_A4000)
    return executor.launch(compiled, (8, 1, 1), (128, 1, 1), params)


def test_ablation_bounds_metadata(once):
    def measure():
        native = _run(_streaming_kernel(False),
                      [BASE, BASE + 65536, 1024])
        registers, _ = PTXPatcher(FencingMode.BITWISE).patch_kernel(
            _streaming_kernel(False))
        register_fenced = _run(
            registers,
            [BASE, BASE + 65536, 1024, BASE, partition_mask(PART)])
        metadata_fenced = _run(_streaming_kernel(True),
                               [BASE, BASE + 65536, 1024, META])
        return native, register_fenced, metadata_fenced

    native, registers, metadata = once(measure)
    rows = [
        ["native", f"{native.total_warp_cycles:.0f}", "-"],
        ["register bounds (Guardian)",
         f"{registers.total_warp_cycles:.0f}",
         f"{registers.total_warp_cycles / native.total_warp_cycles - 1:+.1%}"],
        ["metadata bounds (G-NET style)",
         f"{metadata.total_warp_cycles:.0f}",
         f"{metadata.total_warp_cycles / native.total_warp_cycles - 1:+.1%}"],
    ]
    print_table("Ablation: where the bounds live",
                ["scheme", "warp-cycles", "overhead"], rows)

    register_overhead = (registers.total_warp_cycles
                         / native.total_warp_cycles - 1)
    metadata_overhead = (metadata.total_warp_cycles
                         / native.total_warp_cycles - 1)
    # The design argument: metadata fetches cost a multiple of the
    # register scheme.
    assert metadata_overhead > 2 * register_overhead
    assert register_overhead < 0.25
    # Metadata loads also add real memory traffic.
    assert metadata.loads > registers.loads
