"""Gate the CI bench-smoke job on the emitted BENCH_*.json numbers.

Usage::

    python benchmarks/check_regression.py [BENCH_DIR]

Reads the ``BENCH_*.json`` files the benchmark run emitted into
``BENCH_DIR`` (default: current directory) and compares them against
``benchmarks/bench_baseline.json``:

- ``hotpath_caching``: the cached-vs-default host-cycle ratio may not
  regress (grow) by more than ``max_regression`` (10%) relative to the
  recorded baseline ratio — the hot-path caches must keep earning
  their keep;
- ``trace_specialization``: the traced-vs-default ratio is held to the
  same relative regression ceiling *and* to an absolute ``max_ratio``
  (0.30) — the trace layer must keep beating the plain hot-path
  caches' 0.40, not merely not get worse;
- ``table5_interception``: the stock per-op costs are pinned exactly —
  any drift from the paper's Table 5 numbers fails the job;
- ``multitenant_scaling``: the concurrent-dispatch makespan speedup at
  8 independent tenants may not drop below the recorded floor — the
  lanes must keep overlapping;
- ``cluster_migration``: the chaos gauntlet's survival floor — zero
  disruptions of tenants on surviving nodes, and at least the
  baseline's number of completed live migrations across the seed
  sweep;
- ``telemetry_overhead``: enabling the telemetry spine may not
  inflate the modelled host-cycle total past ``max_cycle_ratio``
  (the spine observes the clock, it never charges it — the measured
  ratio is exactly 1.0 by construction);
- ``load_slo``: at the pinned open-loop operating point
  (``utilisation`` of the modelled capacity) goodput must stay at or
  above ``min_goodput_per_mcycle`` and the modelled session p99 at or
  below ``max_p99_cycles`` — latency under load must not run away;
- ``elastic_memory``: under the seeded churn trace the elastic arm
  must admit at least ``min_goodput_uplift`` (1.25x) as many sessions
  as the static arm at a shed rate no worse, and the per-access fence
  must still be exactly ``mask_ops_per_access`` (2) mask ops with
  every elastic knob on — capacity recovery may never widen the
  GPUArmor check path.

A measurement missing from ``BENCH_DIR`` falls back to the committed
``benchmarks/trajectory/`` snapshot (the last numbers a maintainer
recorded), so the gate can run against the repo itself and partial
benchmark runs still check everything they can; a measurement found in
*neither* place fails the job.

Exit status 0 on pass, 1 on regression or missing inputs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BASELINE = Path(__file__).resolve().parent / "bench_baseline.json"
TRAJECTORY = Path(__file__).resolve().parent / "trajectory"


def fail(message: str) -> int:
    print(f"REGRESSION: {message}")
    return 1


def load_bench(bench_dir: Path, name: str) -> dict | None:
    """The freshly-emitted measurement, or the committed trajectory
    snapshot when this run didn't produce one."""
    filename = f"BENCH_{name}.json"
    for directory in (bench_dir, TRAJECTORY):
        path = directory / filename
        if path.exists():
            if directory is TRAJECTORY:
                print(f"{name}: using committed trajectory snapshot "
                      f"({path})")
            return json.loads(path.read_text())
    return None


def check_hotpath(bench_dir: Path, baseline: dict) -> int:
    measured = load_bench(bench_dir, "hotpath_caching")
    if measured is None:
        return fail("BENCH_hotpath_caching.json was not emitted and no "
                    "trajectory snapshot exists")
    ratio = measured["cached_vs_default_ratio"]
    ceiling = (baseline["cached_vs_default_ratio"]
               * (1.0 + baseline["max_regression"]))
    print(f"hotpath_caching: cached/default ratio {ratio:.4f} "
          f"(baseline {baseline['cached_vs_default_ratio']:.4f}, "
          f"ceiling {ceiling:.4f})")
    if ratio > ceiling:
        return fail(
            f"cached-vs-default ratio {ratio:.4f} exceeds the "
            f"{baseline['max_regression']:.0%} regression ceiling "
            f"{ceiling:.4f}"
        )
    return 0


def check_trace_specialization(bench_dir: Path, baseline: dict) -> int:
    measured = load_bench(bench_dir, "trace_specialization")
    if measured is None:
        return fail("BENCH_trace_specialization.json was not emitted "
                    "and no trajectory snapshot exists")
    ratio = measured["cached_vs_default_ratio"]
    ceiling = min(
        baseline["cached_vs_default_ratio"]
        * (1.0 + baseline["max_regression"]),
        baseline["max_ratio"],
    )
    print(f"trace_specialization: traced/default ratio {ratio:.4f} "
          f"(baseline {baseline['cached_vs_default_ratio']:.4f}, "
          f"ceiling {ceiling:.4f})")
    if ratio > ceiling:
        return fail(
            f"traced-vs-default ratio {ratio:.4f} exceeds the ceiling "
            f"{ceiling:.4f} (relative regression bound and the "
            f"absolute {baseline['max_ratio']:.2f} bar)"
        )
    return 0


def check_table5(bench_dir: Path, baseline: dict) -> int:
    measured = load_bench(bench_dir, "table5_interception")
    if measured is None:
        return fail("BENCH_table5_interception.json was not emitted and "
                    "no trajectory snapshot exists")
    status = 0
    for key in ("lookup_cycles", "augment_cycles",
                "launch_syscall_cycles"):
        if measured[key] != baseline[key]:
            status = fail(
                f"table5 {key}: measured {measured[key]} != "
                f"pinned {baseline[key]}"
            )
    if not status:
        print("table5_interception: per-op costs match the pinned "
              "paper numbers")
    return status


def check_multitenant(bench_dir: Path, baseline: dict) -> int:
    measured = load_bench(bench_dir, "multitenant_scaling")
    if measured is None:
        return fail("BENCH_multitenant_scaling.json was not emitted and "
                    "no trajectory snapshot exists")
    speedup = measured["speedup_8_tenants"]
    floor = baseline["min_speedup_8_tenants"]
    print(f"multitenant_scaling: 8-tenant modelled speedup "
          f"{speedup:.2f}x (floor {floor:.2f}x)")
    if speedup < floor:
        return fail(
            f"8-tenant modelled speedup {speedup:.2f}x fell below the "
            f"{floor:.2f}x floor"
        )
    return 0


def check_cluster(bench_dir: Path, baseline: dict) -> int:
    measured = load_bench(bench_dir, "cluster_migration")
    if measured is None:
        return fail("BENCH_cluster_migration.json was not emitted and "
                    "no trajectory snapshot exists")
    disruptions = measured["surviving_tenant_disruptions"]
    completed = measured["migrations_completed"]
    floor = baseline["min_migrations_completed"]
    print(f"cluster_migration: {completed} live migrations across "
          f"seeds {measured['seeds']}, {disruptions} surviving-tenant "
          f"disruption(s)")
    if disruptions != 0:
        return fail(
            f"{disruptions} surviving-tenant disruption(s) — node loss "
            f"must never touch tenants on healthy nodes"
        )
    if completed < floor:
        return fail(
            f"only {completed} completed migration(s), floor is {floor}"
        )
    return 0


def check_telemetry(bench_dir: Path, baseline: dict) -> int:
    measured = load_bench(bench_dir, "telemetry_overhead")
    if measured is None:
        return fail("BENCH_telemetry_overhead.json was not emitted and "
                    "no trajectory snapshot exists")
    ratio = measured["host_cycle_ratio"]
    ceiling = baseline["max_cycle_ratio"]
    print(f"telemetry_overhead: host-cycle ratio {ratio:.6f} "
          f"(ceiling {ceiling:.2f})")
    if ratio > ceiling:
        return fail(
            f"telemetry-on/off host-cycle ratio {ratio:.6f} exceeds "
            f"the {ceiling:.2f} ceiling — telemetry must observe the "
            f"clock, never charge it"
        )
    return 0


def check_load_slo(bench_dir: Path, baseline: dict) -> int:
    measured = load_bench(bench_dir, "load_slo")
    if measured is None:
        return fail("BENCH_load_slo.json was not emitted and no "
                    "trajectory snapshot exists")
    point = measured["operating_point"]
    if point["utilisation"] != baseline["utilisation"]:
        return fail(
            f"load_slo operating point moved: measured at utilisation "
            f"{point['utilisation']}, gate is pinned at "
            f"{baseline['utilisation']}"
        )
    goodput = point["goodput_per_mcycle"]
    p99 = point["p99_cycles"]
    floor = baseline["min_goodput_per_mcycle"]
    ceiling = baseline["max_p99_cycles"]
    print(f"load_slo: utilisation {point['utilisation']} goodput "
          f"{goodput:.3f}/Mcycle (floor {floor:.3f}), p99 "
          f"{p99:,.0f} cycles (ceiling {ceiling:,.0f})")
    status = 0
    if goodput < floor:
        status = fail(
            f"open-loop goodput {goodput:.3f}/Mcycle fell below the "
            f"{floor:.3f} floor at utilisation {point['utilisation']}"
        )
    if p99 > ceiling:
        status = fail(
            f"open-loop session p99 {p99:,.0f} cycles exceeds the "
            f"{ceiling:,.0f} ceiling at utilisation "
            f"{point['utilisation']}"
        )
    return status


def check_elastic(bench_dir: Path, baseline: dict) -> int:
    measured = load_bench(bench_dir, "elastic_memory")
    if measured is None:
        return fail("BENCH_elastic_memory.json was not emitted and no "
                    "trajectory snapshot exists")
    uplift = measured["goodput_uplift"]
    floor = baseline["min_goodput_uplift"]
    static_shed = measured["static"]["shed_rate"]
    elastic_shed = measured["elastic"]["shed_rate"]
    mask_ops = measured["fence"]["mask_ops_per_access"]
    pinned_ops = baseline["mask_ops_per_access"]
    print(f"elastic_memory: goodput uplift {uplift:.2f}x (floor "
          f"{floor:.2f}x), shed {elastic_shed:.3f} vs static "
          f"{static_shed:.3f}, fence {mask_ops:g} mask ops/access")
    status = 0
    if uplift < floor:
        status = fail(
            f"elastic goodput uplift {uplift:.2f}x fell below the "
            f"{floor:.2f}x floor under churn"
        )
    if elastic_shed > static_shed:
        status = fail(
            f"elastic shed rate {elastic_shed:.3f} is worse than the "
            f"static arm's {static_shed:.3f} — capacity recovery may "
            f"not trade away the shed-rate SLO"
        )
    if mask_ops != pinned_ops:
        status = fail(
            f"per-access fence is {mask_ops:g} mask ops with elastic "
            f"knobs on; pinned at {pinned_ops} (GPUArmor bar)"
        )
    if not measured["fence"]["patched_text_identical"]:
        status = fail(
            "patched PTX with elastic knobs on differs from stock — "
            "elastic state must live in launch params, not the "
            "instruction stream"
        )
    return status


#: Every gate, next to the baseline section it reads. A section
#: missing from bench_baseline.json is reported by name up front
#: instead of surfacing as a bare KeyError mid-run.
CHECKS = (
    ("hotpath_caching", check_hotpath),
    ("trace_specialization", check_trace_specialization),
    ("table5_interception", check_table5),
    ("multitenant_scaling", check_multitenant),
    ("cluster_migration", check_cluster),
    ("telemetry_overhead", check_telemetry),
    ("load_slo", check_load_slo),
    ("elastic_memory", check_elastic),
)


def main(argv: list[str]) -> int:
    bench_dir = Path(argv[1]) if len(argv) > 1 else Path(".")
    baseline = json.loads(BASELINE.read_text())
    missing = [section for section, _ in CHECKS
               if section not in baseline]
    if missing:
        return fail(
            f"bench_baseline.json is missing the baseline section(s) "
            f"{', '.join(missing)} — every gate needs its thresholds "
            f"recorded ({BASELINE})"
        )
    status = 0
    for section, check in CHECKS:
        status |= check(bench_dir, baseline[section])
    if not status:
        print("benchmark smoke: no regressions")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
