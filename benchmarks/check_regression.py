"""Gate the CI bench-smoke job on the emitted BENCH_*.json numbers.

Usage::

    python benchmarks/check_regression.py [BENCH_DIR]

Reads the ``BENCH_*.json`` files the benchmark run emitted into
``BENCH_DIR`` (default: current directory) and compares them against
``benchmarks/bench_baseline.json``:

- ``hotpath_caching``: the cached-vs-default host-cycle ratio may not
  regress (grow) by more than ``max_regression`` (10%) relative to the
  recorded baseline ratio — the hot-path caches must keep earning
  their keep;
- ``table5_interception``: the stock per-op costs are pinned exactly —
  any drift from the paper's Table 5 numbers fails the job.

Exit status 0 on pass, 1 on regression or missing inputs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BASELINE = Path(__file__).resolve().parent / "bench_baseline.json"


def fail(message: str) -> int:
    print(f"REGRESSION: {message}")
    return 1


def check_hotpath(bench_dir: Path, baseline: dict) -> int:
    path = bench_dir / "BENCH_hotpath_caching.json"
    if not path.exists():
        return fail(f"{path} was not emitted")
    measured = json.loads(path.read_text())
    ratio = measured["cached_vs_default_ratio"]
    ceiling = (baseline["cached_vs_default_ratio"]
               * (1.0 + baseline["max_regression"]))
    print(f"hotpath_caching: cached/default ratio {ratio:.4f} "
          f"(baseline {baseline['cached_vs_default_ratio']:.4f}, "
          f"ceiling {ceiling:.4f})")
    if ratio > ceiling:
        return fail(
            f"cached-vs-default ratio {ratio:.4f} exceeds the "
            f"{baseline['max_regression']:.0%} regression ceiling "
            f"{ceiling:.4f}"
        )
    return 0


def check_table5(bench_dir: Path, baseline: dict) -> int:
    path = bench_dir / "BENCH_table5_interception.json"
    if not path.exists():
        return fail(f"{path} was not emitted")
    measured = json.loads(path.read_text())
    status = 0
    for key in ("lookup_cycles", "augment_cycles",
                "launch_syscall_cycles"):
        if measured[key] != baseline[key]:
            status = fail(
                f"table5 {key}: measured {measured[key]} != "
                f"pinned {baseline[key]}"
            )
    if not status:
        print("table5_interception: per-op costs match the pinned "
              "paper numbers")
    return status


def main(argv: list[str]) -> int:
    bench_dir = Path(argv[1]) if len(argv) > 1 else Path(".")
    baseline = json.loads(BASELINE.read_text())
    status = check_hotpath(bench_dir, baseline["hotpath_caching"])
    status |= check_table5(bench_dir, baseline["table5_interception"])
    if not status:
        print("benchmark smoke: no regressions")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
