"""Trace specialization: compiling the steady state away.

Runs the hot-path benchmark's fig7-style sharing workload twice — once
with everything off and once with ``ServerConfig.traced()`` (hot-path
caches + trace specialization + vectorized bounds) plus a disk-backed
patch cache — and measures total host work. The traced arm must beat
the plain hot-path arm's 0.40 cached-vs-default ratio: once a tenant's
sync-delimited block stabilises, replayed blocks pay one fused submit
plus ``trace_replay_op`` per call instead of per-call dispatch,
lookups, bounds checks and launch syscalls.

The disk cache runs against a tmpdir (never ``~/.cache``) and a second
server process-alike sharing the same directory must patch nothing —
the cold-start amortization story.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import collect_all
from repro.analysis.reporting import render_hotpath_report
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer, ServerConfig
from repro.driver.fatbin import build_fatbin
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000

from benchmarks.conftest import emit_bench_json, print_table
from tests.conftest import make_guardian_tenant, saxpy_module

TENANTS = 6
ITERATIONS = 40
SYNC_EVERY = 10
PARTITION = 1 << 20

#: The acceptance bar from ISSUE 8: beat PR 1's 0.40 cached-vs-default
#: cycle ratio by a clear margin.
MAX_RATIO = 0.30


def run_sharing_workload(config: ServerConfig):
    """Same shape as the hot-path benchmark: TENANTS tenants deploy one
    shared library, then iterate (h2d, h2d, launch), synchronising
    every SYNC_EVERY iterations — the fixed loop the recorder sees as a
    stable sync-delimited block."""
    device = Device(QUADRO_RTX_A4000)
    server = GuardianServer(device, FencingMode.BITWISE, config=config)

    tenants = []
    for index in range(TENANTS):
        client, runtime = make_guardian_tenant(
            server, f"tenant{index}", PARTITION)
        handles = client.register_fatbin(
            build_fatbin(saxpy_module(), "libsaxpy", "11.7"))
        buf = client.malloc(512)
        tenants.append((client, handles["saxpy"], buf))

    payload = np.ones(16, dtype=np.float32).tobytes()
    for iteration in range(ITERATIONS):
        for client, handle, buf in tenants:
            client.memcpy_h2d(buf, payload)
            client.memcpy_h2d(buf + 256, payload)
            client.launch_kernel(handle, (1, 1, 1), (16, 1, 1),
                                 [buf, buf + 256, 2.0, 16])
        if (iteration + 1) % SYNC_EVERY == 0:
            for client, _, _ in tenants:
                client.synchronize()
    device.synchronize(spatial=True)

    clients = [client for client, _, _ in tenants]
    return server, clients, collect_all(server, clients=clients).hotpath


class TestTraceSpecialization:
    def test_traced_beats_hotpath_ratio(self, once, tmp_path):
        cache_dir = str(tmp_path / "guardian-patch-cache")
        disabled_cfg = ServerConfig(charge_patch_cycles=True)
        traced_cfg = ServerConfig.traced(charge_patch_cycles=True,
                                         patch_cache_dir=cache_dir)

        def run_both():
            disabled = run_sharing_workload(disabled_cfg)
            traced = run_sharing_workload(traced_cfg)
            return disabled, traced

        (_, _, disabled), (server, clients, traced) = once(run_both)

        print()
        print(render_hotpath_report(disabled, title="everything off"))
        print()
        print(render_hotpath_report(traced, title="trace-specialized"))
        ratio = traced.total_cycles / disabled.total_cycles
        print_table(
            "Trace specialization: total host cycles",
            ["config", "server", "clients", "total"],
            [
                ["disabled", f"{disabled.server_cycles:,.0f}",
                 f"{disabled.client_cycles:,.0f}",
                 f"{disabled.total_cycles:,.0f}"],
                ["traced", f"{traced.server_cycles:,.0f}",
                 f"{traced.client_cycles:,.0f}",
                 f"{traced.total_cycles:,.0f}"],
            ],
        )
        print(f"traced/default ratio: {ratio:.4f} (ceiling {MAX_RATIO})")

        emit_bench_json("trace_specialization", {
            "disabled_total_cycles": disabled.total_cycles,
            "traced_total_cycles": traced.total_cycles,
            "cached_vs_default_ratio": ratio,
            "traces_compiled": traced.traces_compiled,
            "trace_replays": traced.trace_replays,
            "trace_replay_ops": traced.trace_replay_ops,
            "trace_replay_rate": traced.trace_replay_rate,
            "marshal_cached_calls": traced.ipc_marshal_cached_calls,
            "tenants": TENANTS,
            "iterations": ITERATIONS,
        })

        # The headline bar: beat PR 1's 0.40 with room to spare.
        assert ratio <= MAX_RATIO

        # Every layer actually engaged.
        assert traced.traces_compiled == TENANTS
        assert traced.trace_replays >= 2 * TENANTS
        assert traced.trace_replay_ops > 0
        assert traced.trace_replay_rate > 0.3
        assert traced.trace_ranges_prechecked > 0
        assert traced.ipc_marshal_cached_calls > 0
        assert traced.patch_disk_writes >= 1
        assert traced.trace_invalidations == 0

        # The disabled arm never traced anything.
        assert disabled.traces_compiled == 0
        assert disabled.trace_eligible_ops == 0
        assert disabled.patch_disk_writes == 0

    def test_disk_cache_amortizes_across_servers(self, tmp_path):
        """A second server sharing the patch-cache directory — a fresh
        process in real life — patches nothing: its only miss is
        answered from disk."""
        cache_dir = str(tmp_path / "shared-cache")
        config = ServerConfig.traced(charge_patch_cycles=True,
                                     patch_cache_dir=cache_dir)

        first, _, first_metrics = run_sharing_workload(config)
        second, _, second_metrics = run_sharing_workload(config)

        assert first_metrics.patch_disk_writes == 1
        assert first_metrics.patch_disk_hits == 0
        assert second_metrics.patch_disk_hits == 1
        assert second_metrics.patch_cache_misses == 0
        # The disk hit is cheaper than the patch it replaced.
        assert (second.costs.patch_disk_lookup
                < second.costs.patch_module)
