"""Hot-path caching & batching: the beyond-the-paper optimisation.

Runs the same fig7-style multi-tenant sharing workload twice — once
with the hot-path caches/batching disabled and once enabled — and
measures total host work (server busy cycles + every client's
IPC-charged critical path). Both arms charge the offline patch/extract
work (``charge_patch_cycles=True``) so the comparison includes the
deployment cost the patch cache amortises; the *stock* default config
(everything off, patching un-charged) is separately pinned against the
paper's Table 5 breakdown below.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import collect_all
from repro.analysis.reporting import render_hotpath_report
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer, ServerConfig
from repro.driver.fatbin import build_fatbin
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000

from benchmarks.conftest import emit_bench_json, print_table
from tests.conftest import make_guardian_tenant, saxpy_module

TENANTS = 6
ITERATIONS = 40
SYNC_EVERY = 10
PARTITION = 1 << 20


def run_sharing_workload(config: ServerConfig):
    """TENANTS tenants deploy the same library fatBIN, then iterate
    (h2d, h2d, launch), synchronising every SYNC_EVERY iterations."""
    device = Device(QUADRO_RTX_A4000)
    server = GuardianServer(device, FencingMode.BITWISE, config=config)

    tenants = []
    for index in range(TENANTS):
        client, runtime = make_guardian_tenant(
            server, f"tenant{index}", PARTITION)
        # Rebuilt per tenant on purpose: distinct FatBinary objects
        # with identical content exercise the content-addressed keys —
        # the multi-tenant same-library deployment pattern.
        handles = client.register_fatbin(
            build_fatbin(saxpy_module(), "libsaxpy", "11.7"))
        buf = client.malloc(512)
        tenants.append((client, handles["saxpy"], buf))

    payload = np.ones(16, dtype=np.float32).tobytes()
    for iteration in range(ITERATIONS):
        for client, handle, buf in tenants:
            client.memcpy_h2d(buf, payload)
            client.memcpy_h2d(buf + 256, payload)
            client.launch_kernel(handle, (1, 1, 1), (16, 1, 1),
                                 [buf, buf + 256, 2.0, 16])
        if (iteration + 1) % SYNC_EVERY == 0:
            for client, _, _ in tenants:
                client.synchronize()
    device.synchronize(spatial=True)

    clients = [client for client, _, _ in tenants]
    return server, clients, collect_all(server, clients=clients).hotpath


class TestHotPathCaching:
    def test_caching_cuts_total_cycles(self, once):
        disabled_cfg = ServerConfig(charge_patch_cycles=True)
        enabled_cfg = ServerConfig.hotpath(charge_patch_cycles=True)

        def run_both():
            disabled = run_sharing_workload(disabled_cfg)
            enabled = run_sharing_workload(enabled_cfg)
            return disabled, enabled

        (_, _, disabled), (server, clients, enabled) = once(run_both)

        print()
        print(render_hotpath_report(disabled, title="caches disabled"))
        print()
        print(render_hotpath_report(enabled, title="caches enabled"))
        reduction = 1 - enabled.total_cycles / disabled.total_cycles
        print_table(
            "Hot-path caching: total host cycles",
            ["config", "server", "clients", "total"],
            [
                ["disabled", f"{disabled.server_cycles:,.0f}",
                 f"{disabled.client_cycles:,.0f}",
                 f"{disabled.total_cycles:,.0f}"],
                ["enabled", f"{enabled.server_cycles:,.0f}",
                 f"{enabled.client_cycles:,.0f}",
                 f"{enabled.total_cycles:,.0f}"],
            ],
        )
        print(f"reduction: {reduction * 100:.1f}%")

        emit_bench_json("hotpath_caching", {
            "disabled_total_cycles": disabled.total_cycles,
            "enabled_total_cycles": enabled.total_cycles,
            "cached_vs_default_ratio":
                enabled.total_cycles / disabled.total_cycles,
            "reduction": reduction,
            "tenants": TENANTS,
            "iterations": ITERATIONS,
        })

        # The acceptance bar: >= 25% less total host work.
        assert enabled.total_cycles <= 0.75 * disabled.total_cycles

        # Each optimisation actually engaged.
        assert enabled.patch_cache_misses == 1
        assert enabled.patch_cache_hits == TENANTS - 1
        assert enabled.extract_cache_hits == TENANTS - 1
        assert enabled.fastpath_hits > 0
        assert enabled.ipc_batches > 0
        assert enabled.mean_batch_size > 1.0

        # The disabled arm never exercised any cache.
        assert disabled.patch_cache_hits == 0
        assert disabled.fastpath_hits == 0
        assert disabled.ipc_batches == 0

    def test_default_config_reproduces_table5(self):
        """With the stock ServerConfig the per-launch breakdown is the
        paper's, to the cycle: lookup 557 + augment 400 + syscall 9000."""
        device = Device(QUADRO_RTX_A4000)
        server = GuardianServer(device, FencingMode.BITWISE)
        server.attach("alice", PARTITION)
        handles, _ = server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        buf, _ = server.malloc("alice", 512)
        before = server.stats.cycles
        _, cycles = server.launch_kernel(
            "alice", handles["saxpy"], (1, 1, 1), (16, 1, 1),
            [buf, buf + 256, 2.0, 16])
        assert cycles == 557 + 400 + 9_000
        assert server.stats.cycles - before == cycles

    def test_fast_path_steady_state_launch_cost(self):
        """With the fast path on, a steady-state launch costs
        lookup_cached + syscall."""
        device = Device(QUADRO_RTX_A4000)
        server = GuardianServer(device, FencingMode.BITWISE,
                                config=ServerConfig.hotpath())
        server.attach("alice", PARTITION)
        handles, _ = server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        buf, _ = server.malloc("alice", 512)
        args = ("alice", handles["saxpy"], (1, 1, 1), (16, 1, 1),
                [buf, buf + 256, 2.0, 16])
        server.launch_kernel(*args)  # populate the memo
        _, cycles = server.launch_kernel(*args)
        assert cycles == (server.costs.lookup_cached
                          + server.costs.launch_syscall)
