"""Fig. 8: standalone Caffe-class networks (mnist/cifar data) under
native / no-protection / bitwise / modulo / checking.

Paper shape targets (vs native): interception alone 3.7-10%; bitwise
fencing 5.9-12% total; modulo fencing ~29%; address checking ~1.7x.
"""

import pytest

from repro.sharing.standalone import STANDALONE_CONFIGS, run_standalone_suite
from repro.sharing.workload_mixes import _ml_workload

from benchmarks.conftest import FULL, MAX_BLOCKS, print_table

TRAIN_MODELS = ("lenet", "siamese", "cifar10") if FULL else (
    "lenet", "cifar10")
INFER_MODELS = ("lenet",)


def _suite(model, epochs=1):
    return run_standalone_suite(
        lambda: _ml_workload(model, epochs=epochs, seed=0,
                             samples=16, batch=16),
        max_blocks=MAX_BLOCKS,
    )


@pytest.fixture(scope="module")
def training_results():
    return {model: _suite(model) for model in TRAIN_MODELS}


def test_fig8_training(once, training_results):
    results = once(lambda: training_results)
    rows = []
    for model, times in results.items():
        native = times["native"]
        rows.append([model] + [
            f"{times[config] / native:.3f}x"
            for config in STANDALONE_CONFIGS
        ])
    print_table(
        "Fig. 8(a): training time normalised to native",
        ["model", *STANDALONE_CONFIGS],
        rows,
    )


def test_fig8_interception_band(training_results, once):
    once(lambda: None)  # participate under --benchmark-only
    for model, times in training_results.items():
        overhead = times["noprot"] / times["native"] - 1
        # Paper band 3.7%-10%; allow the simulator a wider margin.
        assert -0.02 < overhead < 0.15, model


def test_fig8_bitwise_band(training_results, once):
    once(lambda: None)  # participate under --benchmark-only
    for model, times in training_results.items():
        overhead = times["bitwise"] / times["native"] - 1
        # Paper: 5.9%-12% total overhead.
        assert 0.0 < overhead < 0.20, model


def test_fig8_fencing_increment_small(training_results, once):
    once(lambda: None)  # participate under --benchmark-only
    """bitwise vs no-protection: the pure bounds-checking cost is a
    few percent (paper: 1.05%-4.3%, avg 2.9%)."""
    for model, times in training_results.items():
        increment = times["bitwise"] / times["noprot"] - 1
        assert 0.0 <= increment < 0.10, model


def test_fig8_modulo_band(training_results, once):
    once(lambda: None)  # participate under --benchmark-only
    for model, times in training_results.items():
        overhead = times["modulo"] / times["native"] - 1
        # Paper: ~29% on average; must clearly exceed bitwise.
        bitwise = times["bitwise"] / times["native"] - 1
        assert overhead > bitwise + 0.05, model


def test_fig8_checking_band(training_results, once):
    once(lambda: None)  # participate under --benchmark-only
    for model, times in training_results.items():
        factor = times["checking"] / times["native"]
        # Paper: ~1.7x; shape bound: clearly the most expensive mode.
        assert factor > 1.3, model
        assert times["checking"] == max(times.values()), model


def test_fig8_inference(once):
    def run():
        results = {}
        for model in INFER_MODELS:
            from repro.sharing.standalone import run_standalone
            from repro.workloads.frameworks import (
                LibraryBundle,
                evaluate,
            )
            from repro.workloads.frameworks.datasets import dataset_for
            from repro.workloads.frameworks.networks import MODEL_ZOO

            def make_workload():
                def workload(runtime):
                    libs = LibraryBundle.create(runtime)
                    net = MODEL_ZOO[model](libs)
                    data = dataset_for(net.input_shape, samples=16)
                    evaluate(net, data, batch_size=16)

                return workload

            times = {}
            for config in STANDALONE_CONFIGS:
                run_result = run_standalone(make_workload(), config,
                                            max_blocks=MAX_BLOCKS)
                times[config] = run_result.makespan_seconds
            results[model] = times
        return results

    results = once(run)
    rows = [[model] + [f"{times[c] / times['native']:.3f}x"
                       for c in STANDALONE_CONFIGS]
            for model, times in results.items()]
    print_table("Fig. 8(b): inference time normalised to native",
                ["model", *STANDALONE_CONFIGS], rows)
    for times in results.values():
        assert times["bitwise"] / times["native"] < 1.25
        assert times["checking"] == max(times.values())
