"""Telemetry overhead: the spine must observe without charging.

Runs the fig7-style multi-tenant sharing workload twice — stock
``ServerConfig.concurrent()`` and the same config with
``telemetry=True`` — and compares the modelled host-cycle totals. The
tracer hangs off the cycle-charging choke points (``_charge``, the IPC
dispatch boundary, ``Device.synchronize``) but never calls them, so
the two arms must agree **to the cycle**: host_cycle_ratio == 1.0,
gated in CI at <= 1.05 (bench_baseline.json).

The telemetry arm also proves the reconciliation property end to end:
per-tenant call-span cycle sums equal ``server.stats.cycles``, and the
span buffer exports as valid Chrome-trace JSON (uploaded by the CI
bench-smoke job as ``BENCH_telemetry_trace.json`` — load it in
Perfetto / chrome://tracing).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.analysis.metrics import collect_all
from repro.analysis.reporting import render_telemetry_report
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer, ServerConfig
from repro.driver.fatbin import build_fatbin
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.telemetry import SERVER_TRACK
from repro.telemetry.export import write_chrome_trace

from benchmarks.conftest import emit_bench_json, print_table
from tests.conftest import make_guardian_tenant, saxpy_module

TENANTS = 6
ITERATIONS = 40
SYNC_EVERY = 10
PARTITION = 1 << 20

#: The CI gate (mirrored in bench_baseline.json): telemetry may not
#: inflate the modelled host-cycle total. The measured ratio is
#: exactly 1.0 by construction; the ceiling leaves headroom only for
#: a future instrumentation point that legitimately charges.
CYCLE_RATIO_CEILING = 1.05


def run_sharing_workload(config: ServerConfig):
    """TENANTS tenants deploy the same library, then iterate
    (h2d, h2d, launch), synchronising every SYNC_EVERY iterations."""
    device = Device(QUADRO_RTX_A4000)
    server = GuardianServer(device, FencingMode.BITWISE, config=config)

    tenants = []
    for index in range(TENANTS):
        client, _ = make_guardian_tenant(
            server, f"tenant{index}", PARTITION)
        handles = client.register_fatbin(
            build_fatbin(saxpy_module(), "libsaxpy", "11.7"))
        buf = client.malloc(512)
        tenants.append((client, handles["saxpy"], buf))

    payload = np.ones(16, dtype=np.float32).tobytes()
    for iteration in range(ITERATIONS):
        for client, handle, buf in tenants:
            client.memcpy_h2d(buf, payload)
            client.memcpy_h2d(buf + 256, payload)
            client.launch_kernel(handle, (1, 1, 1), (16, 1, 1),
                                 [buf, buf + 256, 2.0, 16])
        if (iteration + 1) % SYNC_EVERY == 0:
            for client, _, _ in tenants:
                client.synchronize()
    device.synchronize(spatial=True)

    clients = [client for client, _, _ in tenants]
    return server, clients


class TestTelemetryOverhead:
    def test_telemetry_is_cycle_neutral(self, once):
        def run_both():
            stock = run_sharing_workload(ServerConfig.concurrent())
            traced = run_sharing_workload(
                ServerConfig.concurrent(telemetry=True))
            return stock, traced

        (stock, _), (traced, clients) = once(run_both)

        ratio = traced.stats.cycles / stock.stats.cycles
        print_table(
            "Telemetry overhead: modelled host cycles",
            ["config", "server cycles", "makespan"],
            [
                ["telemetry off", f"{stock.stats.cycles:,.0f}",
                 f"{stock.makespan_cycles():,.0f}"],
                ["telemetry on", f"{traced.stats.cycles:,.0f}",
                 f"{traced.makespan_cycles():,.0f}"],
            ],
        )
        print(f"host-cycle ratio: {ratio:.6f}")

        # The spine observes the clock, never charges it.
        assert traced.stats.cycles == stock.stats.cycles
        assert traced.makespan_cycles() == stock.makespan_cycles()

        # Reconciliation: per-tenant call-span sums == server cycles.
        telemetry = traced.telemetry
        call_spans = [span for span in telemetry.tracer.spans()
                      if span.category == "call"
                      and span.track == SERVER_TRACK]
        span_total = sum(span.cycles for span in call_spans)
        assert abs(span_total - traced.stats.cycles) < 1e-6
        per_tenant = {}
        for span in call_spans:
            per_tenant[span.tenant] = (per_tenant.get(span.tenant, 0.0)
                                       + span.cycles)
        assert set(per_tenant) == {f"tenant{i}" for i in range(TENANTS)}

        # Publish the composite snapshot, render the quantile report.
        collect_all(traced, clients=clients)
        print()
        print(render_telemetry_report(
            telemetry.snapshot(meta={"benchmark": "telemetry_overhead"}),
            title="Telemetry (fig7 workload, 6 tenants)"))

        # Export the trace for the CI artifact and validate its shape.
        directory = Path(os.environ.get("GUARDIAN_BENCH_DIR", "."))
        directory.mkdir(parents=True, exist_ok=True)
        trace_path = directory / "BENCH_telemetry_trace.json"
        write_chrome_trace(trace_path, telemetry.tracer.spans())
        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        assert any(event["ph"] == "X" for event in events)
        assert any(event["ph"] == "M" for event in events)
        print(f"chrome trace: {len(events)} events -> {trace_path}")

        emit_bench_json("telemetry_overhead", {
            "telemetry_off_cycles": stock.stats.cycles,
            "telemetry_on_cycles": traced.stats.cycles,
            "host_cycle_ratio": ratio,
            "call_spans": len(call_spans),
            "spans_dropped": telemetry.tracer.spans_dropped,
            "tenants": TENANTS,
            "iterations": ITERATIONS,
        })

        assert ratio <= CYCLE_RATIO_CEILING
