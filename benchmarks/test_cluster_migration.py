"""Migration under chaos: the fleet control plane's survival numbers.

Runs the cluster gauntlet across node-fault seeds 0–4: three tenants
spread over three nodes, :func:`FaultPlan.node_chaos` drives one node
``down`` mid-workload (sometimes also sabotaging the ensuing
migration with a partial snapshot or a mid-copy source crash), and
the cluster reacts — live migration first, clean quarantine when the
move is impossible.

Emitted floor (``check_regression.py``): **zero disruptions of
surviving tenants** — a tenant whose node stayed up must end the run
on that same node with its bytes intact and serving — and at least
one completed live migration across the seed sweep. Also records the
modelled PCIe cost of every completed move.
"""

from __future__ import annotations

from benchmarks.conftest import emit_bench_json, print_table
from repro.cluster import ClusterConfig, GuardianCluster, PlacementPolicy
from repro.errors import ReproError
from repro.faults.plan import FaultPlan

SEEDS = (0, 1, 2, 3, 4)
TENANTS = ("a", "b", "c")
NODES = ("node0", "node1", "node2")
PARTITION = 1 << 20
BEATS = 24


def run_seed(seed: int) -> dict:
    plan = FaultPlan.node_chaos(seed=seed, nodes=NODES, tenants=TENANTS)
    cluster = GuardianCluster(
        3,
        config=ClusterConfig(placement=PlacementPolicy(pack=False)),
        fault_plan=plan,
    )
    sessions = {}
    for name in TENANTS:
        session = cluster.attach(name, PARTITION)
        ptr = session.client.malloc(4096)
        session.client.memcpy_h2d(ptr, name.encode() * 4096)
        sessions[name] = (session, ptr)
    homes = {name: s.node.node_id for name, (s, _) in sessions.items()}
    for _ in range(BEATS):
        cluster.tick()

    downed = {n.node_id for n in cluster.nodes if not n.monitor.alive}
    disruptions = 0
    rescued = 0
    for name, (session, ptr) in sessions.items():
        if homes[name] in downed:
            try:
                intact = session.client.memcpy_d2h(ptr, 4096) \
                    == name.encode() * 4096
            except ReproError:
                intact = False  # cleanly quarantined, not rescued
            if intact and session.client.migrations:
                rescued += 1
            continue
        # Surviving tenant: any observable change is a disruption.
        try:
            disrupted = (
                session.node.node_id != homes[name]
                or session.client.migrations != 0
                or session.client.memcpy_d2h(ptr, 4096)
                != name.encode() * 4096
            )
        except ReproError:
            disrupted = True
        disruptions += int(disrupted)

    completed = [r for r in cluster.migrations if r.success]
    return {
        "seed": seed,
        "downed_nodes": sorted(downed),
        "victims": sum(1 for n in TENANTS if homes[n] in downed),
        "rescued_by_migration": rescued,
        "migrations_completed": len(completed),
        "migrations_failed": cluster.migrations_failed,
        "evictions": len(cluster.evictions),
        "surviving_tenant_disruptions": disruptions,
        "bytes_migrated": sum(r.bytes_moved for r in completed),
        "transfer_seconds": sum(r.transfer_seconds for r in completed),
    }


def test_migration_under_chaos_survival():
    results = [run_seed(seed) for seed in SEEDS]

    print_table(
        "Cluster gauntlet: migration under chaos",
        ["seed", "down", "victims", "migrated", "evicted",
         "bystander disruptions"],
        [[r["seed"], ",".join(r["downed_nodes"]), r["victims"],
          r["migrations_completed"], r["evictions"],
          r["surviving_tenant_disruptions"]] for r in results],
    )

    payload = {
        "seeds": list(SEEDS),
        "per_seed": results,
        "migrations_completed": sum(
            r["migrations_completed"] for r in results),
        "migrations_failed": sum(
            r["migrations_failed"] for r in results),
        "evictions": sum(r["evictions"] for r in results),
        "surviving_tenant_disruptions": sum(
            r["surviving_tenant_disruptions"] for r in results),
        "bytes_migrated": sum(r["bytes_migrated"] for r in results),
        "transfer_seconds": sum(
            r["transfer_seconds"] for r in results),
    }
    emit_bench_json("cluster_migration", payload)

    # The gate CI enforces via check_regression.py, asserted here too
    # so a local run fails loudly.
    assert payload["surviving_tenant_disruptions"] == 0
    assert payload["migrations_completed"] >= 1
    # Every victim is accounted for: rescued or evicted, never lost.
    for r in results:
        assert r["rescued_by_migration"] + r["evictions"] \
            == r["victims"], r
