"""Table 1: PTX/cuBIN presence per CUDA version x GPU architecture."""

from repro.driver.fatbin import ARCHITECTURES, build_fatbin, describe
from repro.libs.cublas import cublas_fatbin
from repro.ptx.builder import build_module
from repro.libs.kernels import blas

from benchmarks.conftest import print_table

#: (CUDA version, expected representation per architecture) — the
#: paper's Table 1 rows.
PAPER_ROWS = {
    "10.2": {"turing": "PTX", "ampere": "-", "hopper": "-"},
    "11.7": {"turing": "cuBIN", "ampere": "PTX", "hopper": "-"},
    "12.0": {"turing": "cuBIN", "ampere": "cuBIN", "hopper": "PTX"},
}


def _matrix():
    module = build_module(blas.all_kernels())
    measured = {}
    for version in PAPER_ROWS:
        fatbin = build_fatbin(module, "libprobe", version)
        row = {arch: "-" for arch in ARCHITECTURES}
        for kind, arch in describe(fatbin):
            row[arch] = "PTX" if kind == "ptx" else "cuBIN"
        measured[version] = row
    return measured


def test_table1_fatbin_matrix(once):
    measured = once(_matrix)
    print_table(
        "Table 1: kernel code in CUDA-accelerated libs",
        ["CUDA version", "Turing (7.5)", "Ampere (8.x)", "Hopper (9.0)"],
        [
            [version, row["turing"], row["ampere"], row["hopper"]]
            for version, row in measured.items()
        ],
    )
    assert measured == PAPER_ROWS


def test_table1_shipping_library_matches(once):
    """Our cuBLAS ships as a CUDA 11.7 artifact: Turing cuBIN + Ampere
    PTX — the configuration the paper's servers run."""
    def inventory():
        return describe(cublas_fatbin())

    entries = once(inventory)
    assert ("cubin", "turing") in entries
    assert ("ptx", "ampere") in entries
