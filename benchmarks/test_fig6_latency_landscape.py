"""Fig. 6: bit-masking latency (~8 cycles) against the memory
latencies it hides behind (L1 28, L2 193, global 220-350)."""

from repro.gpu.latency import GUARDED_BRANCH_CYCLES, CostModel
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.ptx import isa

from benchmarks.conftest import print_table


def _landscape():
    model = CostModel(QUADRO_RTX_A4000)
    fence_cycles = 2 * model.compute_cost("and.b64", guarded=False)
    check_cycles = 2 * (model.compute_cost("setp.lt.u64", False)
                        + GUARDED_BRANCH_CYCLES)
    return {
        "bitwise fence (AND+OR)": fence_cycles,
        "conditional check (2x setp+bra)": check_cycles,
        "L1 hit": model.memory_cost("l1"),
        "L2 hit": model.memory_cost("l2"),
        "global memory (typical)": model.memory_cost("global"),
    }


def test_fig6_latency_landscape(once):
    landscape = once(_landscape)
    print_table("Fig. 6: latency landscape (cycles)",
                ["event", "cycles"],
                [[name, cycles] for name, cycles in landscape.items()])
    # Paper constants.
    assert landscape["bitwise fence (AND+OR)"] == 8
    assert landscape["conditional check (2x setp+bra)"] == 80
    assert landscape["L1 hit"] == 28
    assert landscape["L2 hit"] == 193
    assert 220 <= landscape["global memory (typical)"] <= 350
    # The argument: the fence costs ~30% of even an L1 hit, and ~3% of
    # a global access.
    fence = landscape["bitwise fence (AND+OR)"]
    assert fence / landscape["L1 hit"] < 0.35
    assert fence / landscape["global memory (typical)"] < 0.05


def test_fig6_worst_case_l1_resident(once):
    """Paper: 'in the rare case that all data are in L1 (100% hit
    ratio), our approach implies ~30% overhead'."""
    def ratio():
        model = CostModel(QUADRO_RTX_A4000)
        fence = 2 * isa.LATENCY_CLASSES["alu"]
        return fence / model.memory_cost("l1")

    overhead = once(ratio)
    assert 0.25 < overhead < 0.35
