"""Benchmark harness configuration.

Every module regenerates one table or figure of the paper's evaluation
(see DESIGN.md's per-experiment index). Conventions:

- each experiment runs inside ``benchmark.pedantic(..., rounds=1)`` so
  ``pytest benchmarks/ --benchmark-only`` both times it and executes
  the reproduction;
- each experiment *prints* the paper-style rows (captured with ``-s``)
  and *asserts* the paper's qualitative shape (who wins, rough
  factors) — absolute numbers are simulator numbers;
- scale knobs live here; the environment variable
  ``GUARDIAN_BENCH_FULL=1`` switches to the fuller (slower) sweeps.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

#: Fuller sweeps (all 16 mixes, more epochs) when set.
FULL = os.environ.get("GUARDIAN_BENCH_FULL", "") == "1"

#: Device-side block sampling for the big runs.
MAX_BLOCKS = 4

#: Mix samples/batch used by the sharing benchmarks (batch is large so
#: kernels are device-bound as in the paper; sampling keeps it fast).
MIX_SAMPLES = 16
MIX_BATCH = 16


def emit_bench_json(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` for the CI bench-smoke job.

    The output directory is ``GUARDIAN_BENCH_DIR`` (the CI job points
    it at the artifact upload path) or the working directory. CI diffs
    the emitted numbers against ``benchmarks/bench_baseline.json`` via
    ``benchmarks/check_regression.py``.
    """
    directory = Path(os.environ.get("GUARDIAN_BENCH_DIR", "."))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def print_table(title: str, headers, rows) -> None:
    from repro.analysis.reporting import render_table

    print()
    print(render_table(headers, rows, title=title))


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
