"""Table 6: qualitative comparison of protected-sharing approaches.

The structural claims are *executable* here: "no source code
modification" and "CUDA lib support" are demonstrated by running a
closed-source library unmodified under Guardian; "spatial sharing" by
zero context switches; "no extra hardware" by construction (standard
device model).
"""

import numpy as np

from repro import GuardianSystem
from repro.analysis.reporting import FEATURE_MATRIX, render_feature_matrix
from repro.libs.cublas import CuBLAS

from benchmarks.conftest import print_table


def test_table6_matrix_structure(once):
    def check():
        return [name for name, features in FEATURE_MATRIX.items()
                if all(features.values())]

    full_rows = once(check)
    print()
    print(render_feature_matrix())
    assert full_rows == ["Guardian"]
    # Each competitor misses at least one property, as in the paper.
    assert not FEATURE_MATRIX["Time-sharing"]["spatial_sharing"]
    assert not FEATURE_MATRIX["MASK"]["no_extra_hw"]
    assert not FEATURE_MATRIX["MIG"]["no_extra_hw"]
    assert not FEATURE_MATRIX["G-NET"]["no_src_mod"]


def test_table6_claims_hold_operationally(once):
    """Run an unmodified closed-source library under Guardian while a
    second tenant shares the GPU spatially — all four properties at
    once."""
    def scenario():
        system = GuardianSystem()
        alice = system.attach("alice", 64 << 20)
        bob = system.attach("bob", 64 << 20)
        # CUDA lib support + no source modification: stock CuBLAS.
        blas = CuBLAS(alice.runtime)
        xs = np.random.RandomState(0).randn(128).astype(np.float32)
        buf = alice.runtime.cudaMalloc(512)
        alice.runtime.cudaMemcpyH2D(buf, xs.tobytes())
        best = blas.isamax(128, buf)
        bob_buf = bob.runtime.cudaMalloc(512)
        bob.runtime.cudaMemcpyH2D(bob_buf, b"\x01" * 512)
        timeline = system.synchronize()
        return best, int(np.abs(xs).argmax()), timeline.context_switches

    best, expected, switches = once(scenario)
    assert best == expected          # library ran correctly
    assert switches == 0             # spatial sharing, no ctx switches
