"""Fig. 11: per-kernel fencing overhead as a function of cache hit
ratio.

Paper findings for the lenet kernel population: average fencing
overhead ~3.2%; ML kernels have low L1 hit ratios (~37%) and higher L2
(~72%), which is *why* the 8-cycle fence disappears behind 193-285
cycle accesses. Synthetic sweep: at a forced ~100% L1-hit ratio the
overhead rises toward the 28-57% worst case.
"""

import numpy as np
import pytest

from repro.analysis.metrics import Profiler
from repro.core.masks import partition_mask
from repro.core.patcher import PTXPatcher
from repro.core.policy import FencingMode
from repro.gpu.device import Device
from repro.gpu.executor import compile_kernel
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.ptx.ast import Immediate
from repro.ptx.builder import KernelBuilder

from benchmarks.conftest import print_table
from tests.conftest import saxpy_kernel


def _streaming_kernel():
    """One pass, one 128-byte line per thread: zero reuse, so every
    access goes to DRAM — the regime large ML tensors live in.
    (Coalesced unit-stride kernels share lines *within* a warp, which
    the per-thread cache model counts as hits; striding by the line
    size removes that artefact and exposes the true no-reuse ratio.)"""
    b = KernelBuilder("stride", params=[("buf", "u64"), ("n", "u32")])
    buf = b.load_param_ptr("buf")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        line_index = b.mul("u32", gid, Immediate(32))
        address = b.element_addr(buf, line_index, 4)
        value = b.ld_global("f32", address)
        b.st_global("f32", address, b.add("f32", value, 1.0))
    return b.build()


def _l1_resident_kernel():
    """Many passes over 32 cache-resident words: ~100% L1 hits."""
    b = KernelBuilder("hotloop", params=[("buf", "u64"), ("iters", "u32")])
    buf = b.load_param_ptr("buf")
    iters = b.load_param("iters", "u32")
    tid = b.special("%tid.x")
    address = b.element_addr(buf, tid, 4)
    with b.loop(iters):
        value = b.ld_global("f32", address)
        b.st_global("f32", address, b.add("f32", value, 1.0))
    return b.build()


BASE = 0x7F_A000_0000_00
PART = 1 << 22


def _overhead(kernel, grid, block, params, max_blocks=None):
    results = {}
    for fenced in (False, True):
        device = Device(QUADRO_RTX_A4000, keep_launch_results=True)
        if fenced:
            run_kernel, _ = PTXPatcher(FencingMode.BITWISE).patch_kernel(
                kernel)
            launch_params = list(params) + [BASE, partition_mask(PART)]
        else:
            run_kernel, launch_params = kernel, list(params)
        compiled = compile_kernel(run_kernel, device.spec)
        context = device.create_context("bench")
        device.memory.write_array(
            BASE + (1 << 20), np.ones(65536, dtype=np.float32))
        result = device.executor.launch(compiled, grid, block,
                                        launch_params,
                                        max_blocks=max_blocks)
        results[fenced] = result
    native, fenced_result = results[False], results[True]
    overhead = (fenced_result.total_warp_cycles
                / native.total_warp_cycles - 1)
    return overhead, native


def test_fig11_cache_sensitivity(once):
    def sweep():
        rows = {}
        rows["streaming (global-bound)"] = _overhead(
            _streaming_kernel(), (16, 1, 1), (128, 1, 1),
            [BASE, 2048])
        rows["L1-resident hot loop"] = _overhead(
            _l1_resident_kernel(), (1, 1, 1), (32, 1, 1),
            [BASE, 64])
        return rows

    rows = once(sweep)
    printable = []
    for name, (overhead, native) in rows.items():
        printable.append([
            name,
            f"{native.l1_hit_ratio:.0%}",
            f"{overhead:+.1%}",
        ])
    print_table("Fig. 11: fencing overhead vs cache behaviour",
                ["kernel", "L1 hit ratio", "fencing overhead"],
                printable)

    streaming_overhead, streaming = rows["streaming (global-bound)"]
    resident_overhead, resident = rows["L1-resident hot loop"]
    # The paper's crossover: overhead grows with cache residency.
    assert resident.l1_hit_ratio > streaming.l1_hit_ratio
    assert resident_overhead > streaming_overhead
    # Worst case (all L1): tens of percent (paper: 28%-57%).
    assert 0.10 < resident_overhead < 0.60
    # Typical ML kernel: single-digit percent (paper: avg 3.2%).
    assert streaming_overhead < 0.10


def test_fig11_lenet_kernel_population(once):
    """Overhead of the actual lenet training kernels at their natural
    hit ratios (the paper's population average: ~3.2%)."""
    def run():
        from repro.sharing.standalone import run_standalone
        from repro.sharing.workload_mixes import _ml_workload

        factory = lambda: _ml_workload("lenet", epochs=1, seed=0,
                                       samples=16, batch=16)
        native = run_standalone(factory(), "native", max_blocks=4)
        fenced = run_standalone(factory(), "bitwise", max_blocks=4)
        noprot = run_standalone(factory(), "noprot", max_blocks=4)
        # Isolate the device-side fencing cost: fenced vs noprot.
        return (fenced.device_makespan_seconds
                / noprot.device_makespan_seconds - 1)

    device_overhead = once(run)
    # Paper: ~3.2% average device-side overhead for lenet kernels.
    assert 0.0 < device_overhead < 0.10
