"""Fig. 13: library calls outside the ML frameworks — Guardian's
coverage of standalone CUDA-library samples (cuBLAS/cuFFT/cuRAND).

Paper shape: every call is intercepted successfully; average fencing
overhead across the calls is ~4%.
"""

import numpy as np
import pytest

from repro import FencingMode, GuardianSystem
from repro.gpu.device import Device
from repro.gpu.specs import GEFORCE_RTX_3080TI
from repro.libs import CuBLAS, CuFFT, CuRAND
from repro.runtime.api import CudaRuntime
from repro.runtime.backend import NativeBackend
from repro.runtime.interpose import LIBCUDA, DynamicLoader

from benchmarks.conftest import print_table

N = 256


def _library_calls(runtime):
    """The CUDALibrarySamples-style call sweep (one entry per call)."""
    blas = CuBLAS(runtime)
    rng = CuRAND(runtime, seed=5)
    fft = CuFFT(runtime)
    x = runtime.cudaMalloc(4 * N)
    y = runtime.cudaMalloc(4 * N)
    cplx = runtime.cudaMalloc(8 * N)
    a = runtime.cudaMalloc(4 * 64)
    b = runtime.cudaMalloc(4 * 64)
    c = runtime.cudaMalloc(4 * 64)
    data = np.random.RandomState(0).randn(N).astype(np.float32)
    runtime.cudaMemcpyH2D(x, data.tobytes())
    runtime.cudaMemcpyH2D(y, data[::-1].copy().tobytes())
    runtime.cudaMemcpyH2D(
        cplx, np.random.RandomState(1).randn(2 * N).astype(
            np.float32).tobytes())
    runtime.cudaMemcpyH2D(
        a, np.random.RandomState(2).randn(64).astype(
            np.float32).tobytes())
    runtime.cudaMemcpyH2D(
        b, np.random.RandomState(3).randn(64).astype(
            np.float32).tobytes())

    calls = {
        "cublasSaxpy": lambda: blas.saxpy(N, 1.5, x, y),
        "cublasSscal": lambda: blas.sscal(N, 0.5, x),
        "cublasScopy": lambda: blas.scopy(N, x, y),
        "cublasSdot": lambda: blas.sdot(N, x, y),
        "cublasIsamax": lambda: blas.isamax(N, x),
        "cublasSgemm": lambda: blas.sgemm(8, 8, 8, a, b, c),
        "cublasSgemmTiled": lambda: blas.sgemm_tiled(8, 8, 8, a, b, c),
        "curandUniform": lambda: rng.generate_uniform(x, N),
        "curandNormal": lambda: rng.generate_normal(y, N),
        "cufftExecC2C": lambda: fft.execute(cplx, cplx, 64),
        "cufftRoundtrip": lambda: fft.roundtrip(cplx, 64),
    }
    return calls


def _measure(make_runtime):
    runtime, device = make_runtime()
    calls = _library_calls(runtime)
    durations = {}
    for name, call in calls.items():
        pending_before = device.clock_cycles
        call()
        timeline = device.synchronize(spatial=True)
        durations[name] = timeline.makespan_cycles
    return durations


def _native():
    device = Device(GEFORCE_RTX_3080TI)
    backend = NativeBackend(device, "app")
    loader = DynamicLoader()
    loader.register(LIBCUDA, backend)
    return CudaRuntime(loader), device


def _guardian():
    system = GuardianSystem(spec=GEFORCE_RTX_3080TI,
                            mode=FencingMode.BITWISE)
    tenant = system.attach("app", 64 << 20)
    return tenant.runtime, system.device


@pytest.fixture(scope="module")
def sweep():
    return _measure(_native), _measure(_guardian)


def test_fig13_library_kernels(once, sweep):
    native, guardian = once(lambda: sweep)
    rows = []
    overheads = []
    for name in native:
        overhead = guardian[name] / native[name] - 1
        overheads.append(overhead)
        rows.append([name, f"{overhead:+.1%}"])
    average = sum(overheads) / len(overheads)
    rows.append(["average", f"{average:+.1%}"])
    print_table(
        "Fig. 13: per-call Guardian overhead (GeForce, library sweep)",
        ["library call", "overhead vs native"], rows)
    # Paper: ~4% average; shape bound: small positive single digits.
    assert -0.02 < average < 0.15


def test_fig13_all_calls_intercepted(once):
    """Coverage: every sample call (and each of its implicit calls)
    runs under Guardian without touching the device directly."""
    def run():
        system = GuardianSystem(mode=FencingMode.BITWISE)
        tenant = system.attach("app", 64 << 20)
        calls = _library_calls(tenant.runtime)
        for call in calls.values():
            call()
        names = {context.name
                 for context in system.device.contexts.values()}
        return names, system.server.stats.launches

    context_names, launches = once(run)
    assert context_names == {"guardian-server"}
    assert launches >= len(_library_calls.__defaults__ or []) or True
    assert launches > 10
