"""Ablation: how the partition (base, mask) reaches the kernel.

The paper weighs three designs (§4.4) and picks extra parameters:

1. **extra kernel parameters** — +400 cycles of augment per launch,
   compiled once at server start;
2. **per-partition binaries** — mask hard-coded: no augment, but one
   JIT compilation per (kernel, partition) pair; "does not scale when
   multiple applications use thousands of kernels";
3. **JIT at launch** — no precompilation: every launch pays a JIT.

This benchmark prices all three from measured components.
"""

import pytest

from repro.core.server import ServerCostModel
from repro.driver.jit import JIT_CYCLES_PER_KERNEL

from benchmarks.conftest import print_table

#: PyTorch-scale kernel population (paper Table 3: 27987 kernels).
KERNELS = 28_000
#: Co-located tenants.
TENANTS = 4
#: Launches in one training run (the paper's runs launch millions;
#: one epoch's worth here).
LAUNCHES = 1_000_000


def _price():
    costs = ServerCostModel()
    startup_params = KERNELS * JIT_CYCLES_PER_KERNEL * 2  # native+sbx
    per_launch_params = costs.lookup + costs.augment

    startup_binaries = KERNELS * JIT_CYCLES_PER_KERNEL * (TENANTS + 1)
    per_launch_binaries = costs.lookup

    startup_jit = 0
    per_launch_jit = costs.lookup + JIT_CYCLES_PER_KERNEL

    def total(startup, per_launch):
        return startup + per_launch * LAUNCHES

    return {
        "extra params (Guardian)": (
            startup_params, per_launch_params,
            total(startup_params, per_launch_params)),
        "per-partition binaries": (
            startup_binaries, per_launch_binaries,
            total(startup_binaries, per_launch_binaries)),
        "JIT per launch": (
            startup_jit, per_launch_jit,
            total(startup_jit, per_launch_jit)),
    }


def test_ablation_param_passing(once):
    prices = once(_price)
    rows = [
        [name, f"{startup / 1e6:.0f}M", per_launch,
         f"{total_cycles / 1e9:.1f}G"]
        for name, (startup, per_launch, total_cycles) in prices.items()
    ]
    print_table(
        "Ablation: delivering (base, mask) to kernels "
        f"({TENANTS} tenants, {KERNELS} kernels, {LAUNCHES:,} launches)",
        ["scheme", "startup cycles", "cycles/launch", "total cycles"],
        rows,
    )
    totals = {name: total_cycles
              for name, (_, _, total_cycles) in prices.items()}
    # Guardian's choice wins at framework scale.
    assert totals["extra params (Guardian)"] == min(totals.values())
    # JIT-per-launch is an order of magnitude worse (the paper's
    # "considerable overhead").
    assert (totals["JIT per launch"]
            > 10 * totals["extra params (Guardian)"])
    # Per-partition binaries lose on startup as tenants grow.
    startup_params = prices["extra params (Guardian)"][0]
    startup_binaries = prices["per-partition binaries"][0]
    assert startup_binaries > 2 * startup_params


def test_ablation_augment_measured(benchmark):
    """The 400-cycle augment is a real array copy; measure the wall
    time of the operation it models (param list extension)."""
    from repro.core.bounds_table import PartitionBoundsTable
    from repro.core.policy import FencingMode

    table = PartitionBoundsTable()
    record = table.register("app", 0x7F_A000_0000_00, 1 << 20)
    params = [1, 2, 3, 4, 5, 6]

    def augment():
        return list(params) + record.extra_param_values(
            FencingMode.BITWISE)

    result = benchmark(augment)
    assert len(result) == 8
