"""Fig. 12: the same networks on the GeForce RTX 3080 Ti.

Paper shape: overheads on the second GPU match the Quadro's bands
(cv 12%, rnn 10%, lenet 13%; checking ~1.8x) — Guardian's costs are
architecture-stable because they are instruction-count costs.
"""

import pytest

from repro.gpu.specs import GEFORCE_RTX_3080TI, QUADRO_RTX_A4000
from repro.sharing.standalone import run_standalone_suite
from repro.sharing.workload_mixes import _ml_workload

from benchmarks.conftest import FULL, MAX_BLOCKS, print_table

MODELS = ("cv", "rnn", "lenet") if FULL else ("cv", "lenet")
CONFIGS = ("native", "bitwise", "checking")


def _suite(model, spec):
    return run_standalone_suite(
        lambda: _ml_workload(model, epochs=1, seed=0,
                             samples=16, batch=16),
        configs=CONFIGS,
        spec=spec,
        max_blocks=MAX_BLOCKS,
    )


@pytest.fixture(scope="module")
def results():
    return {
        model: {
            "geforce": _suite(model, GEFORCE_RTX_3080TI),
            "quadro": _suite(model, QUADRO_RTX_A4000),
        }
        for model in MODELS
    }


def test_fig12_geforce(once, results):
    data = once(lambda: results)
    rows = []
    for model, by_gpu in data.items():
        for gpu, times in by_gpu.items():
            native = times["native"]
            rows.append([
                model, gpu,
                f"{times['bitwise'] / native:.3f}x",
                f"{times['checking'] / native:.3f}x",
            ])
    print_table("Fig. 12: overhead on the GeForce RTX 3080 Ti",
                ["model", "gpu", "bitwise", "checking"], rows)


def test_fig12_fencing_band_on_geforce(results, once):
    once(lambda: None)  # participate under --benchmark-only
    for model, by_gpu in results.items():
        overhead = (by_gpu["geforce"]["bitwise"]
                    / by_gpu["geforce"]["native"] - 1)
        # Paper: 10%-13% on this GPU.
        assert 0.0 < overhead < 0.22, (model, overhead)


def test_fig12_checking_expensive_on_geforce(results, once):
    once(lambda: None)  # participate under --benchmark-only
    for model, by_gpu in results.items():
        factor = (by_gpu["geforce"]["checking"]
                  / by_gpu["geforce"]["native"])
        # Paper: ~1.8x.
        assert factor > 1.3, (model, factor)


def test_fig12_overhead_stable_across_gpus(results, once):
    once(lambda: None)  # participate under --benchmark-only
    """'G-Safe has similar overhead across different GPU types.'"""
    for model, by_gpu in results.items():
        geforce = (by_gpu["geforce"]["bitwise"]
                   / by_gpu["geforce"]["native"])
        quadro = (by_gpu["quadro"]["bitwise"]
                  / by_gpu["quadro"]["native"])
        assert abs(geforce - quadro) < 0.10, model
