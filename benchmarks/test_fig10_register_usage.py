"""Fig. 10: extra physical registers used by sandboxed kernels, with
(-O3) and without (-O0) compiler optimisation.

Paper shape: at O0 most kernels pay up to 4 extra registers; at O3 the
distribution collapses — 71% pay none, 13% one, 7% two — and constant
memory grows by 16 bytes in 99% of kernels. Spilling is rare (0.9% of
PyTorch kernels).
"""

from collections import Counter

from repro.core.patcher import PTXPatcher
from repro.core.policy import FencingMode
from repro.gpu.registers import allocate, extra_registers
from repro.libs.kernels import blas, dnn, fft, rand
from repro.workloads.rodinia import rodinia_fatbin
from repro.ptx.parser import parse_module

from benchmarks.conftest import print_table


def _kernel_population():
    kernels = (blas.all_kernels() + dnn.all_kernels()
               + fft.all_kernels() + rand.all_kernels())
    rodinia = parse_module(rodinia_fatbin().ptx_entries()[-1].ptx_text())
    kernels += list(rodinia.kernels.values())
    return kernels


def _distributions():
    patcher = PTXPatcher(FencingMode.BITWISE)
    distributions = {"O0": Counter(), "O3": Counter()}
    spills = 0
    constant_growth = []
    for kernel in _kernel_population():
        patched, _ = patcher.patch_kernel(kernel)
        for level in ("O0", "O3"):
            native = allocate(kernel, opt_level=level)
            sandboxed = allocate(patched, opt_level=level)
            extra = max(
                sandboxed.allocated_slots - native.allocated_slots, 0)
            distributions[level][extra] += 1
        o3 = allocate(patched, opt_level="O3")
        if o3.spills:
            spills += 1
        constant_growth.append(
            allocate(patched).constant_bytes
            - allocate(kernel).constant_bytes)
    return distributions, spills, constant_growth


def test_fig10_register_usage(once):
    distributions, spills, constant_growth = once(_distributions)
    total = sum(distributions["O3"].values())
    rows = []
    for extra in sorted(set(distributions["O0"])
                        | set(distributions["O3"])):
        rows.append([
            extra,
            f"{distributions['O0'][extra] / total:.0%}",
            f"{distributions['O3'][extra] / total:.0%}",
        ])
    print_table("Fig. 10: extra registers per sandboxed kernel",
                ["extra regs", "-O0", "-O3"], rows)

    # O3 reuse makes extra registers rarer/cheaper than O0 (the Fig. 10
    # collapse): the zero-extra mass grows under O3.
    assert distributions["O3"][0] >= distributions["O0"][0]
    # A large share of kernels pay no extra *allocated* registers at
    # O3 (paper: 71%; our allocator model lands in the same regime).
    assert distributions["O3"][0] / total > 0.3
    # And nearly all stay within one allocation granule (8 slots).
    within_granule = sum(count for extra, count
                         in distributions["O3"].items() if extra <= 8)
    assert within_granule / total > 0.9

    # Spilling is rare (paper: 0.9% of kernels).
    assert spills / total < 0.05

    # Constant memory: +16 bytes in ~every kernel (paper: 99%).
    sixteen = sum(1 for growth in constant_growth if growth == 16)
    assert sixteen / len(constant_growth) > 0.95


def test_fig10_allocation_throughput(benchmark):
    """Wall-clock of the O3 allocator over the population (tooling
    performance, not a paper number)."""
    kernels = _kernel_population()

    def allocate_all():
        return [allocate(kernel, opt_level="O3") for kernel in kernels]

    allocations = benchmark(allocate_all)
    assert len(allocations) == len(kernels)
