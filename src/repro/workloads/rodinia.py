"""Rodinia-style applications (paper §5: gaussian, hotspot, lavamd,
particlefilter).

Unlike the framework workloads, these are standalone CUDA applications
with their *own* embedded fatbin — the application-binary path of
Guardian's offline extraction. Each app exposes ``run()`` which issues
its full kernel/transfer stream through the process runtime, and a
``verify()`` helper used by tests.

Per the paper's methodology (§5), Rodinia datasets are enlarged and
kernel execution time is scaled up ~8x over the suite's defaults
("because the default values are small for executing on real
systems"); the same knob here is :data:`WORK_REPEAT`, an inner
recompute loop in each kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.driver.fatbin import FatBinary, build_fatbin
from repro.ptx.ast import Immediate
from repro.ptx.builder import KernelBuilder, build_module
from repro.runtime.api import CudaRuntime

_FATBIN: FatBinary | None = None

#: The paper's "kernel execution time x8" methodology knob: every
#: Rodinia kernel recomputes its arithmetic this many times.
WORK_REPEAT = 8


# --------------------------------------------------------------------------
# Kernels
# --------------------------------------------------------------------------


def _fan1_kernel():
    """Gaussian elimination step 1: column multipliers for pivot t."""
    b = KernelBuilder("rodinia_fan1", params=[
        ("m", "u64"), ("a", "u64"), ("size", "u32"), ("t", "u32"),
        ("repeat", "u32"),
    ])
    m = b.load_param_ptr("m")
    a = b.load_param_ptr("a")
    size = b.load_param("size", "u32")
    t = b.load_param("t", "u32")
    repeat = b.load_param("repeat", "u32")
    gid = b.global_thread_id()
    remaining = b.sub("u32", b.sub("u32", size, t), Immediate(1))
    with b.if_less_than(gid, remaining):
        row = b.add("u32", b.add("u32", gid, t), Immediate(1))
        multiplier = b.mov("f32", Immediate(0.0))
        with b.loop(repeat):
            pivot_index = b.mad_lo("u32", t, size, t)
            pivot = b.ld_global("f32", b.element_addr(a, pivot_index, 4))
            elem_index = b.mad_lo("u32", row, size, t)
            elem = b.ld_global("f32", b.element_addr(a, elem_index, 4))
            value = b.div("f32", elem, pivot)
            b.emit("mov.f32", multiplier, value)
        out_index = b.mad_lo("u32", t, size, row)
        b.st_global("f32", b.element_addr(m, out_index, 4), multiplier)
    return b.build()


def _fan2_kernel():
    """Gaussian elimination step 2: eliminate below the pivot row."""
    b = KernelBuilder("rodinia_fan2", params=[
        ("m", "u64"), ("a", "u64"), ("rhs", "u64"),
        ("size", "u32"), ("t", "u32"), ("repeat", "u32"),
    ])
    m = b.load_param_ptr("m")
    a = b.load_param_ptr("a")
    rhs = b.load_param_ptr("rhs")
    size = b.load_param("size", "u32")
    t = b.load_param("t", "u32")
    repeat = b.load_param("repeat", "u32")
    gid = b.global_thread_id()
    remaining = b.sub("u32", b.sub("u32", size, t), Immediate(1))
    span = b.sub("u32", size, t)
    total = b.mul("u32", remaining, span)
    with b.if_less_than(gid, total):
        row_off = b.div("u32", gid, span)
        col_off = b.rem("u32", gid, span)
        row = b.add("u32", b.add("u32", row_off, t), Immediate(1))
        col = b.add("u32", col_off, t)
        dst_index = b.mad_lo("u32", row, size, col)
        dst_addr = b.element_addr(a, dst_index, 4)
        updated = b.mov("f32", Immediate(0.0))
        with b.loop(repeat):
            mult_index = b.mad_lo("u32", t, size, row)
            mult = b.ld_global("f32", b.element_addr(m, mult_index, 4))
            src_index = b.mad_lo("u32", t, size, col)
            src = b.ld_global("f32", b.element_addr(a, src_index, 4))
            dst = b.ld_global("f32", dst_addr)
            scaled = b.mul("f32", mult, src)
            value = b.sub("f32", dst, scaled)
            b.emit("mov.f32", updated, value)
        b.st_global("f32", dst_addr, updated)
        # First column thread also updates the right-hand side.
        is_first = b.setp("eq", "u32", col_off, Immediate(0))
        done = b.fresh_label("rhs")
        b.bra(done, guard_reg=is_first, negated=True)
        rhs_t = b.ld_global("f32", b.element_addr(rhs, t, 4))
        rhs_addr = b.element_addr(rhs, row, 4)
        rhs_row = b.ld_global("f32", rhs_addr)
        delta = b.mul("f32", mult, rhs_t)
        b.st_global("f32", rhs_addr, b.sub("f32", rhs_row, delta))
        b.label(done)
    return b.build()


def _hotspot_kernel():
    """One step of the Hotspot thermal stencil (5-point)."""
    b = KernelBuilder("rodinia_hotspot", params=[
        ("t_out", "u64"), ("t_in", "u64"), ("power", "u64"),
        ("rows", "u32"), ("cols", "u32"), ("cap", "f32"),
        ("repeat", "u32"),
    ])
    t_out = b.load_param_ptr("t_out")
    t_in = b.load_param_ptr("t_in")
    power = b.load_param_ptr("power")
    rows = b.load_param("rows", "u32")
    cols = b.load_param("cols", "u32")
    cap = b.load_param("cap", "f32")
    repeat = b.load_param("repeat", "u32")
    gid = b.global_thread_id()
    total = b.mul("u32", rows, cols)
    with b.if_less_than(gid, total):
        row = b.div("u32", gid, cols)
        col = b.rem("u32", gid, cols)
        center = b.ld_global("f32", b.element_addr(t_in, gid, 4))

        def neighbour(delta_row: int, delta_col: int, guard_low,
                      guard_high, coord):
            """Load a neighbour or the centre at the boundary."""
            value = b.mov("f32", center)
            skip = b.fresh_label("nb")
            if guard_low is not None:
                pred = b.setp("eq", "u32", coord, Immediate(guard_low))
                b.bra(skip, guard_reg=pred)
            if guard_high is not None:
                limit = b.sub("u32", guard_high, Immediate(1))
                pred = b.setp("eq", "u32", coord, limit)
                b.bra(skip, guard_reg=pred)
            if delta_row > 0:
                index = b.add("u32", gid, cols)
            elif delta_row < 0:
                index = b.sub("u32", gid, cols)
            else:
                index = b.add("s32", gid, Immediate(delta_col))
            loaded = b.ld_global("f32", b.element_addr(t_in, index, 4))
            b.emit("mov.f32", value, loaded)
            b.label(skip)
            return value

        result = b.mov("f32", Immediate(0.0))
        with b.loop(repeat):
            north = neighbour(-1, 0, 0, None, row)
            south = neighbour(1, 0, None, rows, row)
            west = neighbour(0, -1, 0, None, col)
            east = neighbour(0, 1, None, cols, col)
            heat = b.ld_global("f32", b.element_addr(power, gid, 4))
            laplacian = b.add("f32", b.add("f32", north, south),
                              b.add("f32", west, east))
            four_center = b.mul("f32", center, Immediate(4.0))
            diffusion = b.sub("f32", laplacian, four_center)
            delta = b.mul("f32", cap, b.add("f32", diffusion, heat))
            value = b.add("f32", center, delta)
            b.emit("mov.f32", result, value)
        b.st_global("f32", b.element_addr(t_out, gid, 4), result)
    return b.build()


def _lavamd_kernel():
    """Per-particle pairwise force inside one box (LavaMD-style)."""
    b = KernelBuilder("rodinia_lavamd", params=[
        ("force", "u64"), ("pos", "u64"), ("n", "u32"),
        ("box_size", "u32"), ("alpha", "f32"),
    ])
    force = b.load_param_ptr("force")
    pos = b.load_param_ptr("pos")
    n = b.load_param("n", "u32")
    box_size = b.load_param("box_size", "u32")
    alpha = b.load_param("alpha", "f32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        box = b.div("u32", gid, box_size)
        box_start = b.mul("u32", box, box_size)
        mine = b.ld_global("f32", b.element_addr(pos, gid, 4))
        acc = b.mov("f32", Immediate(0.0))
        with b.loop(box_size) as j:
            other_index = b.add("u32", box_start, j)
            in_range = b.setp("lt", "u32", other_index, n)
            skip = b.fresh_label("pair")
            b.bra(skip, guard_reg=in_range, negated=True)
            other = b.ld_global("f32", b.element_addr(pos, other_index, 4))
            distance = b.sub("f32", mine, other)
            squared = b.mul("f32", distance, distance)
            expo = b.mul("f32", squared,
                         b.mul("f32", alpha, Immediate(-1.0)))
            weight = b.unary("ex2", "f32", expo)
            contribution = b.mul("f32", weight, distance)
            updated = b.add("f32", acc, contribution)
            b.emit("mov.f32", acc, updated)
            b.label(skip)
        b.st_global("f32", b.element_addr(force, gid, 4), acc)
    return b.build()


def _likelihood_kernel():
    """Particle-filter likelihood: w[i] = exp(-(x[i]-obs)^2)."""
    b = KernelBuilder("rodinia_pf_likelihood", params=[
        ("w", "u64"), ("x", "u64"), ("obs", "f32"), ("n", "u32"),
        ("repeat", "u32"),
    ])
    w = b.load_param_ptr("w")
    x = b.load_param_ptr("x")
    obs = b.load_param("obs", "f32")
    n = b.load_param("n", "u32")
    repeat = b.load_param("repeat", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        weight = b.mov("f32", Immediate(0.0))
        with b.loop(repeat):
            value = b.ld_global("f32", b.element_addr(x, gid, 4))
            err = b.sub("f32", value, obs)
            neg_sq = b.mul("f32", b.mul("f32", err, err),
                           Immediate(-1.0))
            # exp(z) = 2^(z * log2 e)
            computed = b.unary(
                "ex2", "f32",
                b.mul("f32", neg_sq, Immediate(1.4426950408889634)))
            b.emit("mov.f32", weight, computed)
        b.st_global("f32", b.element_addr(w, gid, 4), weight)
    return b.build()


def _normalize_kernel():
    """w[i] /= total (total computed on the host from partial sums)."""
    b = KernelBuilder("rodinia_pf_normalize", params=[
        ("w", "u64"), ("inv_total", "f32"), ("n", "u32"),
    ])
    w = b.load_param_ptr("w")
    inv_total = b.load_param("inv_total", "f32")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        addr = b.element_addr(w, gid, 4)
        b.st_global("f32", addr,
                    b.mul("f32", b.ld_global("f32", addr), inv_total))
    return b.build()


def _resample_kernel():
    """Systematic resampling: find the CDF bin of each particle's u."""
    b = KernelBuilder("rodinia_pf_resample", params=[
        ("out", "u64"), ("cdf", "u64"), ("pos", "u64"),
        ("u0", "f32"), ("n", "u32"),
    ])
    out = b.load_param_ptr("out")
    cdf = b.load_param_ptr("cdf")
    pos = b.load_param_ptr("pos")
    u0 = b.load_param("u0", "f32")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        n_float = b.cvt("f32", "u32", n)
        gid_float = b.cvt("f32", "u32", gid)
        u = b.add("f32", u0, b.div("f32", gid_float, n_float))
        chosen = b.mov("u32", b.sub("u32", n, Immediate(1)))
        found = b.mov("u32", Immediate(0))
        with b.loop(n) as j:
            already = b.setp("ne", "u32", found, Immediate(0))
            skip = b.fresh_label("cdf")
            b.bra(skip, guard_reg=already)
            threshold = b.ld_global("f32", b.element_addr(cdf, j, 4))
            past = b.setp("ge", "f32", threshold, u)
            b.bra(skip, guard_reg=past, negated=True)
            b.emit("mov.u32", chosen, j)
            one = b.mov("u32", Immediate(1))
            b.emit("mov.u32", found, one)
            b.label(skip)
        value = b.ld_global("f32", b.element_addr(pos, chosen, 4))
        b.st_global("f32", b.element_addr(out, gid, 4), value)
    return b.build()


def rodinia_fatbin() -> FatBinary:
    """The suite's embedded fatbin (all four applications)."""
    global _FATBIN
    if _FATBIN is None:
        module = build_module([
            _fan1_kernel(), _fan2_kernel(), _hotspot_kernel(),
            _lavamd_kernel(), _likelihood_kernel(), _normalize_kernel(),
            _resample_kernel(),
        ])
        _FATBIN = build_fatbin(module, "rodinia_suite", "11.7")
    return _FATBIN


# --------------------------------------------------------------------------
# Applications
# --------------------------------------------------------------------------


@dataclass
class _RodiniaApp:
    """Shared plumbing: fatbin registration and 1-D launches."""

    runtime: CudaRuntime
    name: str = "rodinia"
    BLOCK = 64

    def __post_init__(self):
        self._handles = self.runtime.registerFatBinary(rodinia_fatbin())

    def _launch(self, kernel: str, n: int, params: list) -> None:
        grid = max(1, -(-n // self.BLOCK))
        self.runtime.cudaLaunchKernel(
            self._handles[kernel], (grid, 1, 1), (self.BLOCK, 1, 1),
            params,
        )


class GaussianApp(_RodiniaApp):
    """Gaussian elimination: 2*(size-1) kernels per solve."""

    def __init__(self, runtime: CudaRuntime, size: int = 24,
                 solves: int = 1, seed: int = 11,
                 repeat: int = 4 * WORK_REPEAT):
        super().__init__(runtime, name="gaussian")
        self.size = size
        self.solves = solves
        # Gaussian's kernels are tiny relative to their launch cost;
        # the paper's 8x kernel-time scaling is applied on top of the
        # suite-wide knob so the workload is device-bound, as theirs.
        self.repeat = repeat
        rng = np.random.RandomState(seed)
        self._a = (rng.rand(size, size).astype(np.float32)
                   + np.eye(size, dtype=np.float32) * size)
        self._b = rng.rand(size).astype(np.float32)
        self.solution: np.ndarray | None = None

    def run(self) -> None:
        size = self.size
        rt = self.runtime
        a_dev = rt.cudaMalloc(size * size * 4)
        b_dev = rt.cudaMalloc(size * 4)
        m_dev = rt.cudaMalloc(size * size * 4)
        for _ in range(self.solves):
            rt.cudaMemcpyH2D(a_dev, self._a.tobytes())
            rt.cudaMemcpyH2D(b_dev, self._b.tobytes())
            rt.cudaMemset(m_dev, 0, size * size * 4)
            for t in range(size - 1):
                self._launch("rodinia_fan1", size - t - 1,
                             [m_dev, a_dev, size, t, self.repeat])
                self._launch("rodinia_fan2",
                             (size - t - 1) * (size - t),
                             [m_dev, a_dev, b_dev, size, t,
                              self.repeat])
            upper = np.frombuffer(
                rt.cudaMemcpyD2H(a_dev, size * size * 4), np.float32
            ).reshape(size, size)
            rhs = np.frombuffer(rt.cudaMemcpyD2H(b_dev, size * 4),
                                np.float32)
            # Host back-substitution, as in the original benchmark.
            x = np.zeros(size, dtype=np.float64)
            for i in range(size - 1, -1, -1):
                x[i] = (rhs[i] - upper[i, i + 1:] @ x[i + 1:]) / upper[i, i]
            self.solution = x.astype(np.float32)
        rt.cudaFree(a_dev)
        rt.cudaFree(b_dev)
        rt.cudaFree(m_dev)
        rt.cudaDeviceSynchronize()

    def verify(self) -> float:
        """Max residual |Ax - b| of the last solve."""
        if self.solution is None:
            raise RuntimeError("run() first")
        return float(np.abs(self._a @ self.solution - self._b).max())


class HotspotApp(_RodiniaApp):
    """Thermal stencil: ping-pong buffers over many iterations."""

    def __init__(self, runtime: CudaRuntime, rows: int = 24,
                 cols: int = 24, iterations: int = 8, seed: int = 12):
        super().__init__(runtime, name="hotspot")
        self.rows, self.cols = rows, cols
        self.iterations = iterations
        rng = np.random.RandomState(seed)
        self._temp = (rng.rand(rows, cols).astype(np.float32) + 323.0)
        self._power = rng.rand(rows, cols).astype(np.float32) * 0.5
        self.result: np.ndarray | None = None

    def run(self) -> None:
        rt = self.runtime
        count = self.rows * self.cols
        t_a = rt.cudaMalloc(count * 4)
        t_b = rt.cudaMalloc(count * 4)
        p_dev = rt.cudaMalloc(count * 4)
        rt.cudaMemcpyH2D(t_a, self._temp.tobytes())
        rt.cudaMemcpyH2D(p_dev, self._power.tobytes())
        src, dst = t_a, t_b
        for _ in range(self.iterations):
            self._launch("rodinia_hotspot", count,
                         [dst, src, p_dev, self.rows, self.cols, 0.05,
                          WORK_REPEAT])
            src, dst = dst, src
        self.result = np.frombuffer(
            rt.cudaMemcpyD2H(src, count * 4), np.float32
        ).reshape(self.rows, self.cols)
        rt.cudaFree(t_a)
        rt.cudaFree(t_b)
        rt.cudaFree(p_dev)
        rt.cudaDeviceSynchronize()

    def reference(self) -> np.ndarray:
        """Numpy reference of the same stencil iteration."""
        temp = self._temp.astype(np.float64)
        for _ in range(self.iterations):
            padded = np.pad(temp, 1, mode="edge")
            lap = (padded[:-2, 1:-1] + padded[2:, 1:-1]
                   + padded[1:-1, :-2] + padded[1:-1, 2:] - 4 * temp)
            temp = temp + 0.05 * (lap + self._power)
        return temp.astype(np.float32)


class LavaMDApp(_RodiniaApp):
    """Boxed particle forces, several timesteps."""

    def __init__(self, runtime: CudaRuntime, particles: int = 256,
                 box_size: int = 32, steps: int = 4, seed: int = 13):
        super().__init__(runtime, name="lavamd")
        self.particles = particles
        self.box_size = box_size
        self.steps = steps
        rng = np.random.RandomState(seed)
        self._pos = rng.rand(particles).astype(np.float32)
        self.forces: np.ndarray | None = None

    def run(self) -> None:
        rt = self.runtime
        pos_dev = rt.cudaMalloc(self.particles * 4)
        force_dev = rt.cudaMalloc(self.particles * 4)
        rt.cudaMemcpyH2D(pos_dev, self._pos.tobytes())
        for _ in range(self.steps):
            self._launch("rodinia_lavamd", self.particles,
                         [force_dev, pos_dev, self.particles,
                          self.box_size, 0.5])
        self.forces = np.frombuffer(
            rt.cudaMemcpyD2H(force_dev, self.particles * 4), np.float32
        ).copy()
        rt.cudaFree(pos_dev)
        rt.cudaFree(force_dev)
        rt.cudaDeviceSynchronize()


class ParticleFilterApp(_RodiniaApp):
    """Likelihood, host-assisted normalisation, CDF resampling."""

    def __init__(self, runtime: CudaRuntime, particles: int = 192,
                 steps: int = 4, seed: int = 14):
        super().__init__(runtime, name="particle")
        self.particles = particles
        self.steps = steps
        self._rng = np.random.RandomState(seed)
        self._pos = self._rng.randn(particles).astype(np.float32)
        self.estimate: float | None = None

    def run(self) -> None:
        rt = self.runtime
        n = self.particles
        pos_dev = rt.cudaMalloc(n * 4)
        w_dev = rt.cudaMalloc(n * 4)
        cdf_dev = rt.cudaMalloc(n * 4)
        out_dev = rt.cudaMalloc(n * 4)
        rt.cudaMemcpyH2D(pos_dev, self._pos.tobytes())
        observation = 0.4
        for _ in range(self.steps):
            self._launch("rodinia_pf_likelihood", n,
                         [w_dev, pos_dev, observation, n, WORK_REPEAT])
            weights = np.frombuffer(rt.cudaMemcpyD2H(w_dev, n * 4),
                                    np.float32)
            total = float(weights.sum()) or 1.0
            self._launch("rodinia_pf_normalize", n,
                         [w_dev, 1.0 / total, n])
            cdf = np.cumsum(weights / total).astype(np.float32)
            rt.cudaMemcpyH2D(cdf_dev, cdf.tobytes())
            u0 = float(self._rng.rand()) / n
            self._launch("rodinia_pf_resample", n,
                         [out_dev, cdf_dev, pos_dev, u0, n])
            rt.cudaMemcpyD2D(pos_dev, out_dev, n * 4)
        final = np.frombuffer(rt.cudaMemcpyD2H(pos_dev, n * 4),
                              np.float32)
        self.estimate = float(final.mean())
        for pointer in (pos_dev, w_dev, cdf_dev, out_dev):
            rt.cudaFree(pointer)
        rt.cudaDeviceSynchronize()


#: name -> constructor for the workload mixes.
RODINIA_APPS = {
    "gaussian": GaussianApp,
    "hotspot": HotspotApp,
    "lavamd": LavaMDApp,
    "particle": ParticleFilterApp,
}
