"""Application workloads.

The paper evaluates Guardian with Caffe and PyTorch neural networks
(LeNet, Siamese, CIFAR-10, computer-vision and RNN models on
MNIST/CIFAR, plus ImageNet-class networks) and with the Rodinia
benchmark suite. This package provides the equivalents:

- :mod:`repro.workloads.frameworks` — a miniature deep-learning
  framework whose every layer runs through the simulated closed-source
  libraries (the same dependency structure that makes Guardian's
  PTX-level approach necessary);
- :mod:`repro.workloads.rodinia` — gaussian, hotspot, lavamd and
  particlefilter applications with their own embedded fatbins.

All workloads are scaled down (synthetic datasets, small feature maps)
but execute the *same code paths* as their full-size counterparts; the
scale factors are explicit constructor parameters.
"""
