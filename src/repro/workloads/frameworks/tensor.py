"""Device tensors.

A :class:`DeviceTensor` owns (or views) a device allocation obtained
through the process runtime — so tensor traffic is ordinary
``cudaMalloc``/``cudaMemcpy`` traffic, checked by Guardian like any
other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.runtime.api import CudaRuntime

_ITEM_BYTES = {"f32": 4, "u32": 4}
_NP_DTYPES = {"f32": np.float32, "u32": np.uint32}


@dataclass
class DeviceTensor:
    """A dense tensor in device global memory (row-major)."""

    runtime: CudaRuntime
    shape: tuple[int, ...]
    address: int
    dtype: str = "f32"
    owns: bool = True

    @classmethod
    def alloc(cls, runtime: CudaRuntime, shape: tuple[int, ...],
              dtype: str = "f32") -> "DeviceTensor":
        size = math.prod(shape) * _ITEM_BYTES[dtype]
        return cls(runtime=runtime, shape=tuple(shape),
                   address=runtime.cudaMalloc(size), dtype=dtype)

    @classmethod
    def from_host(cls, runtime: CudaRuntime,
                  array: np.ndarray) -> "DeviceTensor":
        dtype = "u32" if array.dtype.kind in "ui" else "f32"
        tensor = cls.alloc(runtime, array.shape, dtype)
        tensor.upload(array)
        return tensor

    @property
    def size(self) -> int:
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        return self.size * _ITEM_BYTES[self.dtype]

    def upload(self, array: np.ndarray) -> None:
        data = np.ascontiguousarray(array, dtype=_NP_DTYPES[self.dtype])
        if data.size != self.size:
            raise ValueError(
                f"upload of {data.size} elements into tensor of "
                f"{self.size}"
            )
        self.runtime.cudaMemcpyH2D(self.address, data.tobytes())

    def download(self) -> np.ndarray:
        raw = self.runtime.cudaMemcpyD2H(self.address, self.nbytes)
        return np.frombuffer(raw, dtype=_NP_DTYPES[self.dtype]).reshape(
            self.shape
        ).copy()

    def reshape(self, shape: tuple[int, ...]) -> "DeviceTensor":
        """A view with a different shape over the same device memory."""
        if math.prod(shape) != self.size:
            raise ValueError(f"cannot reshape {self.shape} to {shape}")
        return DeviceTensor(
            runtime=self.runtime, shape=tuple(shape),
            address=self.address, dtype=self.dtype, owns=False,
        )

    def free(self) -> None:
        if self.owns and self.address:
            self.runtime.cudaFree(self.address)
            self.address = 0
