"""The mini deep-learning framework ("minidl").

A deliberately small Caffe/PyTorch stand-in: tensors live in device
memory, layers call cuBLAS/cuDNN/cuRAND, training loops issue the same
alloc/transfer/launch streams the paper's frameworks do. One framework
serves for both "Caffe" and "PyTorch" roles — the distinction in the
paper is the model zoo and kernel volume, which the network configs in
:mod:`repro.workloads.frameworks.networks` carry.
"""

from repro.workloads.frameworks.libs import LibraryBundle
from repro.workloads.frameworks.tensor import DeviceTensor
from repro.workloads.frameworks.training import (
    InferenceResult,
    TrainingResult,
    evaluate,
    train,
)

__all__ = [
    "DeviceTensor",
    "InferenceResult",
    "LibraryBundle",
    "TrainingResult",
    "evaluate",
    "train",
]
