"""Synthetic datasets (the MNIST / CIFAR / ImageNet stand-ins).

The paper trains on MNIST, CIFAR and the 256 GB ImageNet; the
reproduction substitutes *learnable* synthetic data: each class has a
characteristic spatial blob pattern plus noise, so tiny networks can
genuinely reduce loss and reach high accuracy — which the examples
assert. Generation is deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass
class Batch:
    """One minibatch: images (n, c, h, w) f32, labels (n,) u32."""

    images: np.ndarray
    labels: np.ndarray

    @property
    def size(self) -> int:
        return self.images.shape[0]


class SyntheticImages:
    """Class-conditional blob images.

    Class ``k`` gets a bright 2x2 blob at a class-specific location
    (plus a class-dependent mean shift on one channel), over Gaussian
    noise — trivially separable at full signal, genuinely learnable at
    the default signal strength.
    """

    def __init__(self, samples: int, shape: tuple[int, int, int],
                 classes: int = 10, seed: int = 0,
                 signal: float = 2.0, time_series: bool = False):
        self.samples = samples
        self.shape = shape
        self.classes = classes
        self.signal = signal
        self.time_series = time_series
        rng = np.random.RandomState(seed)
        c, h, w = shape
        images = rng.randn(samples, c, h, w).astype(np.float32) * 0.5
        labels = rng.randint(0, classes, size=samples).astype(np.uint32)
        positions = [
            ((k * 3) % max(h - 2, 1), (k * 5) % max(w - 2, 1))
            for k in range(classes)
        ]
        for index in range(samples):
            k = int(labels[index])
            y, x = positions[k]
            images[index, 0, y : y + 2, x : x + 2] += signal
            images[index, k % c, :, :] += 0.1 * k
        self.images = images
        self.labels = labels

    def batches(self, batch_size: int,
                epochs: int = 1) -> Iterator[Batch]:
        """Yield minibatches; drops the ragged tail like Caffe does."""
        for _ in range(epochs):
            for start in range(0, self.samples - batch_size + 1,
                               batch_size):
                stop = start + batch_size
                images = self.images[start:stop]
                if self.time_series:
                    # (n, c, h, w) -> (n, steps=h, features=w), c folded.
                    images = images.reshape(stop - start, -1,
                                            self.shape[2])
                yield Batch(images=images, labels=self.labels[start:stop])

    def num_batches(self, batch_size: int) -> int:
        return self.samples // batch_size


def mnist_like(samples: int = 64, seed: int = 0) -> SyntheticImages:
    """12x12 single-channel digits stand-in."""
    return SyntheticImages(samples, (1, 12, 12), seed=seed)


def cifar_like(samples: int = 64, seed: int = 1) -> SyntheticImages:
    """12x12 three-channel stand-in."""
    return SyntheticImages(samples, (3, 12, 12), seed=seed)


def imagenet_like(samples: int = 64, seed: int = 2) -> SyntheticImages:
    """16x16 three-channel stand-in for the 256 GB original."""
    return SyntheticImages(samples, (3, 16, 16), seed=seed)


def sequence_like(samples: int = 64, seed: int = 3) -> SyntheticImages:
    """(steps=6, features=12) sequences for the RNN workload."""
    data = SyntheticImages(samples, (1, 6, 12), seed=seed,
                           time_series=True)
    return data


def dataset_for(input_shape: tuple[int, ...], samples: int,
                seed: int = 0) -> SyntheticImages:
    """Pick the dataset matching a network's declared input shape."""
    if len(input_shape) == 2:  # (steps, features) — the RNN
        steps, features = input_shape
        return SyntheticImages(samples, (1, steps, features), seed=seed,
                               time_series=True)
    return SyntheticImages(samples, tuple(input_shape), seed=seed)
