"""The model zoo (the paper's §5 networks, scaled down).

MNIST/CIFAR-class models: ``lenet``, ``siamese``, ``cifar10``, ``cv``,
``rnn``; ImageNet-class models: ``alexnet``, ``caffenet``, ``vgg11``,
``googlenet``, ``mobilenetv2``, ``resnet50``. Each is structurally
faithful at miniature size — residual adds in the ResNet, per-channel
depthwise bursts in the MobileNet, channel-concatenated branches in
the GoogLeNet, twin towers with shared weights in the Siamese — so the
kernel streams have the right *shape* even though dimensions are tiny.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.workloads.frameworks.layers import (
    Conv2D,
    DepthwiseConv2D,
    Flatten,
    Layer,
    Linear,
    MaxPool2D,
    ReLU,
    Residual,
    SoftmaxCrossEntropy,
)
from repro.workloads.frameworks.libs import LibraryBundle
from repro.workloads.frameworks.tensor import DeviceTensor


class SequentialNet:
    """A plain layer stack with a softmax cross-entropy head."""

    def __init__(self, libs: LibraryBundle, layers: list[Layer],
                 input_shape: tuple[int, ...], num_classes: int,
                 name: str = "net"):
        self.libs = libs
        self.layers = layers
        self.input_shape = input_shape
        self.num_classes = num_classes
        self.name = name
        self.loss_head = SoftmaxCrossEntropy(libs)

    # -- forward / backward ------------------------------------------------------

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def train_batch(self, x: DeviceTensor, labels: DeviceTensor,
                    lr: float) -> float:
        logits = self.forward(x)
        loss = self.loss_head.forward(logits, labels)
        grad = self.loss_head.backward()
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        self.step(lr)
        return loss

    def infer_batch(self, x: DeviceTensor) -> np.ndarray:
        logits = self.forward(x)
        return logits.download().argmax(axis=1)

    def step(self, lr: float) -> None:
        dnn = self.libs.dnn
        for layer in self.layers:
            for weights, grads in layer.parameters():
                dnn.sgd_update(weights.address, grads.address, lr,
                               weights.size)

    def parameter_count(self) -> int:
        return sum(
            weights.size
            for layer in self.layers
            for weights, _ in layer.parameters()
        )


class SiameseNet(SequentialNet):
    """Twin towers with *shared* weights joined by feature difference.

    Both inputs pass through the same tower; the head trains on the
    difference of the embeddings. Backward trains the head and the
    tower through the second input's path (a standard shared-weight
    simplification at this scale).
    """

    def __init__(self, libs: LibraryBundle, tower: list[Layer],
                 head: list[Layer], input_shape: tuple[int, ...],
                 num_classes: int):
        super().__init__(libs, tower + head, input_shape, num_classes,
                         name="siamese")
        self.tower = tower
        self.head = head
        self._diff: Optional[DeviceTensor] = None

    def train_pair_batch(self, x1: DeviceTensor, x2: DeviceTensor,
                         labels: DeviceTensor, lr: float) -> float:
        e1 = x1
        for layer in self.tower:
            e1 = layer.forward(e1)
        # Snapshot the first embedding before the tower caches are
        # overwritten by the second pass.
        if self._diff is None or self._diff.shape != e1.shape:
            self._diff = DeviceTensor.alloc(self.libs.runtime, e1.shape)
        self.libs.blas.scopy(e1.size, e1.address, self._diff.address)
        e2 = x2
        for layer in self.tower:
            e2 = layer.forward(e2)
        # diff = e1 - e2  (saxpy with alpha = -1 into the snapshot)
        self.libs.blas.saxpy(e1.size, -1.0, e2.address,
                             self._diff.address)
        out = self._diff
        for layer in self.head:
            out = layer.forward(out)
        loss = self.loss_head.forward(out, labels)
        grad = self.loss_head.backward()
        for layer in reversed(self.head):
            grad = layer.backward(grad)
        for layer in reversed(self.tower):
            grad = layer.backward(grad)
        self.step(lr)
        return loss


class ElmanRNN:
    """A small Elman RNN: h_t = tanh(x_t Wx + h_{t-1} Wh + b).

    Forward runs fully on-device (GEMM + add + tanh per step); training
    updates the output projection (last-layer training — the recurrent
    weights stay fixed, a documented scale-down of full BPTT).
    """

    def __init__(self, libs: LibraryBundle, input_size: int,
                 hidden_size: int, num_classes: int, steps: int):
        self.libs = libs
        self.name = "rnn"
        self.input_size = input_size
        self.hidden = hidden_size
        self.steps = steps
        self.num_classes = num_classes
        self.input_shape = (steps, input_size)
        runtime = libs.runtime
        scale = 1.0 / np.sqrt(hidden_size)
        self.wx = DeviceTensor.alloc(runtime, (input_size, hidden_size))
        libs.rng.generate_normal(self.wx.address, self.wx.size,
                                 stddev=scale)
        self.wh = DeviceTensor.alloc(runtime, (hidden_size, hidden_size))
        libs.rng.generate_normal(self.wh.address, self.wh.size,
                                 stddev=scale)
        self.bias = DeviceTensor.alloc(runtime, (hidden_size,))
        libs.dnn.fill(self.bias.address, 0.0, hidden_size)
        self.out = Linear(libs, hidden_size, num_classes)
        self.loss_head = SoftmaxCrossEntropy(libs)
        self._h = None
        self._hx = None
        self._hh = None

    def _buffers(self, n: int):
        runtime = self.libs.runtime
        for name in ("_h", "_hx", "_hh"):
            cached = getattr(self, name)
            if cached is None or cached.shape != (n, self.hidden):
                if cached is not None:
                    cached.free()
                setattr(self, name,
                        DeviceTensor.alloc(runtime, (n, self.hidden)))
        return self._h, self._hx, self._hh

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        """x shape: (n, steps, input_size)."""
        n = x.shape[0]
        h, hx, hh = self._buffers(n)
        self.libs.dnn.fill(h.address, 0.0, h.size)
        blas, dnn = self.libs.blas, self.libs.dnn
        step_bytes = self.input_size * 4
        for t in range(self.steps):
            # x_t is a strided time-slice of the (n, steps, input)
            # buffer: row stride between batch items is steps * input.
            xt_addr = x.address + t * step_bytes
            blas.sgemm(n, self.hidden, self.input_size, xt_addr,
                       self.wx.address, hx.address,
                       a_row_stride=self.steps * self.input_size)
            # hh = h @ Wh
            blas.sgemm(n, self.hidden, self.hidden, h.address,
                       self.wh.address, hh.address)
            dnn.add(h.address, hx.address, hh.address, h.size)
            dnn.add_bias(h.address, self.bias.address, n, self.hidden)
            dnn.tanh_forward(h.address, h.address, h.size)
        return self.out.forward(h)

    def train_batch(self, x: DeviceTensor, labels: DeviceTensor,
                    lr: float) -> float:
        logits = self.forward(x)
        loss = self.loss_head.forward(logits, labels)
        self.out.backward(self.loss_head.backward())
        for weights, grads in self.out.parameters():
            self.libs.dnn.sgd_update(weights.address, grads.address, lr,
                                     weights.size)
        return loss

    def infer_batch(self, x: DeviceTensor) -> np.ndarray:
        return self.forward(x).download().argmax(axis=1)

    def parameter_count(self) -> int:
        return (self.wx.size + self.wh.size + self.bias.size
                + self.out.w.size + self.out.b.size)


# --------------------------------------------------------------------------
# Model zoo
# --------------------------------------------------------------------------

#: (channels, height, width) of the MNIST-class synthetic inputs.
MNIST_SHAPE = (1, 12, 12)
#: CIFAR-class synthetic inputs.
CIFAR_SHAPE = (3, 12, 12)
#: ImageNet-class synthetic inputs (tiny stand-in).
IMAGENET_SHAPE = (3, 16, 16)

NUM_CLASSES = 10


def lenet(libs: LibraryBundle) -> SequentialNet:
    """LeNet-style: conv-pool-conv-pool-fc-fc."""
    c, h, w = MNIST_SHAPE
    layers = [
        Conv2D(libs, c, 4, 3), MaxPool2D(libs), ReLU(libs),   # 4 x 5 x 5
        Conv2D(libs, 4, 8, 2), ReLU(libs),                    # 8 x 4 x 4
        Flatten(),
        Linear(libs, 8 * 4 * 4, 32), ReLU(libs),
        Linear(libs, 32, NUM_CLASSES),
    ]
    return SequentialNet(libs, layers, MNIST_SHAPE, NUM_CLASSES, "lenet")


def cifar10(libs: LibraryBundle) -> SequentialNet:
    """Caffe's cifar10_quick-style stack."""
    c, h, w = CIFAR_SHAPE
    layers = [
        Conv2D(libs, c, 6, 3), ReLU(libs), MaxPool2D(libs),   # 6 x 5 x 5
        Conv2D(libs, 6, 12, 2), ReLU(libs),                   # 12 x 4 x 4
        Conv2D(libs, 12, 12, 3), ReLU(libs),                  # 12 x 2 x 2
        Flatten(),
        Linear(libs, 12 * 2 * 2, 32), ReLU(libs),
        Linear(libs, 32, NUM_CLASSES),
    ]
    return SequentialNet(libs, layers, CIFAR_SHAPE, NUM_CLASSES, "cifar10")


def cv(libs: LibraryBundle) -> SequentialNet:
    """The paper's 'computer vision' network: a deeper conv stack."""
    c, h, w = MNIST_SHAPE
    layers = [
        Conv2D(libs, c, 6, 3), ReLU(libs),                    # 6 x 10 x 10
        Conv2D(libs, 6, 8, 3), ReLU(libs), MaxPool2D(libs),   # 8 x 4 x 4
        Conv2D(libs, 8, 12, 3), ReLU(libs),                   # 12 x 2 x 2
        Flatten(),
        Linear(libs, 12 * 2 * 2, 48), ReLU(libs),
        Linear(libs, 48, NUM_CLASSES),
    ]
    return SequentialNet(libs, layers, MNIST_SHAPE, NUM_CLASSES, "cv")


def siamese(libs: LibraryBundle) -> SiameseNet:
    """Siamese twin towers with shared weights (Caffe's mnist_siamese)."""
    c, h, w = MNIST_SHAPE
    tower = [
        Conv2D(libs, c, 4, 3), MaxPool2D(libs), ReLU(libs),
        Flatten(),
        Linear(libs, 4 * 5 * 5, 24), ReLU(libs),
    ]
    head = [Linear(libs, 24, NUM_CLASSES)]
    return SiameseNet(libs, tower, head, MNIST_SHAPE, NUM_CLASSES)


def rnn(libs: LibraryBundle) -> ElmanRNN:
    return ElmanRNN(libs, input_size=12, hidden_size=24,
                    num_classes=NUM_CLASSES, steps=6)


# -- ImageNet-class configurations -------------------------------------------


def alexnet(libs: LibraryBundle) -> SequentialNet:
    c, h, w = IMAGENET_SHAPE
    layers = [
        Conv2D(libs, c, 8, 5), ReLU(libs), MaxPool2D(libs),   # 8 x 6 x 6
        Conv2D(libs, 8, 16, 3), ReLU(libs),                   # 16 x 4 x 4
        Conv2D(libs, 16, 16, 3), ReLU(libs),                  # 16 x 2 x 2
        Flatten(),
        Linear(libs, 16 * 2 * 2, 64), ReLU(libs),
        Linear(libs, 64, NUM_CLASSES),
    ]
    return SequentialNet(libs, layers, IMAGENET_SHAPE, NUM_CLASSES,
                         "alexnet")


def caffenet(libs: LibraryBundle) -> SequentialNet:
    """CaffeNet: AlexNet with the pooling/normalisation order swapped."""
    c, h, w = IMAGENET_SHAPE
    layers = [
        Conv2D(libs, c, 8, 5), MaxPool2D(libs), ReLU(libs),
        Conv2D(libs, 8, 12, 3), ReLU(libs),
        Flatten(),
        Linear(libs, 12 * 4 * 4, 64), ReLU(libs),
        Linear(libs, 64, NUM_CLASSES),
    ]
    return SequentialNet(libs, layers, IMAGENET_SHAPE, NUM_CLASSES,
                         "caffenet")


def vgg11(libs: LibraryBundle) -> SequentialNet:
    """VGG-style: uniform 3x3 convolutions, deep."""
    c, h, w = IMAGENET_SHAPE
    layers = [
        Conv2D(libs, c, 6, 3), ReLU(libs),                    # 6 x 14 x 14
        Conv2D(libs, 6, 8, 3), ReLU(libs), MaxPool2D(libs),   # 8 x 6 x 6
        Conv2D(libs, 8, 12, 3), ReLU(libs),                   # 12 x 4 x 4
        Conv2D(libs, 12, 12, 3), ReLU(libs),                  # 12 x 2 x 2
        Flatten(),
        Linear(libs, 12 * 2 * 2, 64), ReLU(libs),
        Linear(libs, 64, NUM_CLASSES),
    ]
    return SequentialNet(libs, layers, IMAGENET_SHAPE, NUM_CLASSES,
                         "vgg11")


def resnet50(libs: LibraryBundle) -> SequentialNet:
    """ResNet-style: 1x1-conv residual blocks with device-side adds."""
    c, h, w = IMAGENET_SHAPE
    stem = Conv2D(libs, c, 8, 3)                              # 8 x 14 x 14
    layers = [
        stem, ReLU(libs),
        Residual(libs, Conv2D(libs, 8, 8, 1)),
        Residual(libs, Conv2D(libs, 8, 8, 1)),
        MaxPool2D(libs),                                      # 8 x 7 x 7
        Conv2D(libs, 8, 12, 3), ReLU(libs),                   # 12 x 5 x 5
        Residual(libs, Conv2D(libs, 12, 12, 1)),
        Flatten(),
        Linear(libs, 12 * 5 * 5, NUM_CLASSES),
    ]
    return SequentialNet(libs, layers, IMAGENET_SHAPE, NUM_CLASSES,
                         "resnet50")


def mobilenetv2(libs: LibraryBundle) -> SequentialNet:
    """MobileNet-style: depthwise + pointwise pairs (launch-heavy)."""
    c, h, w = IMAGENET_SHAPE
    layers = [
        Conv2D(libs, c, 6, 3), ReLU(libs),                    # 6 x 14 x 14
        DepthwiseConv2D(libs, 6, 3), ReLU(libs),              # 6 x 12 x 12
        Conv2D(libs, 6, 8, 1), ReLU(libs), MaxPool2D(libs),   # 8 x 6 x 6
        DepthwiseConv2D(libs, 8, 3), ReLU(libs),              # 8 x 4 x 4
        Conv2D(libs, 8, 12, 1), ReLU(libs),                   # 12 x 4 x 4
        Flatten(),
        Linear(libs, 12 * 4 * 4, NUM_CLASSES),
    ]
    return SequentialNet(libs, layers, IMAGENET_SHAPE, NUM_CLASSES,
                         "mobilenetv2")


class _Inception(Layer):
    """Two 1x1 branches concatenated along channels (D2D copies)."""

    def __init__(self, libs: LibraryBundle, cin: int, c1: int, c2: int):
        self.libs = libs
        self.branch1 = Conv2D(libs, cin, c1, 1)
        self.branch2 = Conv2D(libs, cin, c2, 1)
        self.c1, self.c2 = c1, c2
        self._y = None
        self._dy1 = None
        self._dy2 = None
        self._dx = None

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        y1 = self.branch1.forward(x)
        y2 = self.branch2.forward(x)
        n, _, h, w = y1.shape
        y = self._cache("_y", (n, self.c1 + self.c2, h, w), x.runtime)
        plane = h * w * 4
        rt = self.libs.runtime
        for batch in range(n):
            rt.cudaMemcpyD2D(
                y.address + batch * (self.c1 + self.c2) * plane,
                y1.address + batch * self.c1 * plane, self.c1 * plane)
            rt.cudaMemcpyD2D(
                y.address + batch * (self.c1 + self.c2) * plane
                + self.c1 * plane,
                y2.address + batch * self.c2 * plane, self.c2 * plane)
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        n, ctotal, h, w = dy.shape
        plane = h * w * 4
        rt = self.libs.runtime
        dy1 = self._cache("_dy1", (n, self.c1, h, w), dy.runtime)
        dy2 = self._cache("_dy2", (n, self.c2, h, w), dy.runtime)
        for batch in range(n):
            rt.cudaMemcpyD2D(
                dy1.address + batch * self.c1 * plane,
                dy.address + batch * ctotal * plane, self.c1 * plane)
            rt.cudaMemcpyD2D(
                dy2.address + batch * self.c2 * plane,
                dy.address + batch * ctotal * plane + self.c1 * plane,
                self.c2 * plane)
        dx1 = self.branch1.backward(dy1)
        dx2 = self.branch2.backward(dy2)
        dx = self._cache("_dx", dx1.shape, dy.runtime)
        self.libs.dnn.add(dx.address, dx1.address, dx2.address, dx1.size)
        return dx

    def parameters(self):
        return self.branch1.parameters() + self.branch2.parameters()


def googlenet(libs: LibraryBundle) -> SequentialNet:
    """GoogLeNet-style: inception branches + concat."""
    c, h, w = IMAGENET_SHAPE
    layers = [
        Conv2D(libs, c, 6, 3), ReLU(libs), MaxPool2D(libs),   # 6 x 7 x 7
        _Inception(libs, 6, 4, 4), ReLU(libs),                # 8 x 7 x 7
        Conv2D(libs, 8, 12, 3), ReLU(libs),                   # 12 x 5 x 5
        Flatten(),
        Linear(libs, 12 * 5 * 5, NUM_CLASSES),
    ]
    return SequentialNet(libs, layers, IMAGENET_SHAPE, NUM_CLASSES,
                         "googlenet")


#: name -> constructor, the registry benchmarks iterate over.
MODEL_ZOO: dict[str, Callable[[LibraryBundle], object]] = {
    "lenet": lenet,
    "cifar10": cifar10,
    "cv": cv,
    "siamese": siamese,
    "rnn": rnn,
    "alexnet": alexnet,
    "caffenet": caffenet,
    "vgg11": vgg11,
    "resnet50": resnet50,
    "mobilenetv2": mobilenetv2,
    "googlenet": googlenet,
}

#: Networks the paper runs under Caffe vs PyTorch (framework role).
CAFFE_MODELS = ("lenet", "siamese", "cifar10", "googlenet", "alexnet",
                "caffenet")
PYTORCH_MODELS = ("cv", "rnn", "vgg11", "mobilenetv2", "resnet50")
