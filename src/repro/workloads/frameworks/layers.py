"""Neural-network layers on top of the accelerated libraries.

Each layer's forward/backward issues the same implicit CUDA-call
streams the paper's frameworks do — conv through cuDNN, linear through
cuBLAS GEMM, initialisation through cuRAND. Activations and scratch
buffers are cached per batch shape, like real frameworks' workspaces.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.workloads.frameworks.libs import LibraryBundle
from repro.workloads.frameworks.tensor import DeviceTensor


class Layer:
    """Base layer: forward, backward, parameter/gradient pairs."""

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        raise NotImplementedError

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        raise NotImplementedError

    def parameters(self) -> list[tuple[DeviceTensor, DeviceTensor]]:
        """(weights, gradient) pairs for the optimiser."""
        return []

    def _cache(self, name: str, shape: tuple[int, ...],
               runtime) -> DeviceTensor:
        """Allocate-or-reuse a workspace tensor keyed by shape."""
        cached: Optional[DeviceTensor] = getattr(self, name, None)
        if cached is None or cached.shape != shape:
            if cached is not None:
                cached.free()
            cached = DeviceTensor.alloc(runtime, shape)
            setattr(self, name, cached)
        return cached


class Conv2D(Layer):
    """Valid-padding stride-1 convolution (cuDNN direct kernels)."""

    def __init__(self, libs: LibraryBundle, cin: int, cout: int,
                 kernel: int):
        self.libs = libs
        self.cin, self.cout, self.k = cin, cout, kernel
        runtime = libs.runtime
        fan_in = cin * kernel * kernel
        self.w = DeviceTensor.alloc(runtime, (cout, cin, kernel, kernel))
        libs.rng.generate_normal(self.w.address, self.w.size,
                                 stddev=1.0 / math.sqrt(fan_in))
        self.b = DeviceTensor.alloc(runtime, (cout,))
        libs.dnn.fill(self.b.address, 0.0, cout)
        self.dw = DeviceTensor.alloc(runtime, self.w.shape)
        self.db = DeviceTensor.alloc(runtime, self.b.shape)
        self._x: Optional[DeviceTensor] = None
        self._y = None
        self._dx = None

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        n, cin, h, w = x.shape
        oh, ow = h - self.k + 1, w - self.k + 1
        y = self._cache("_y", (n, self.cout, oh, ow), x.runtime)
        self.libs.dnn.conv2d_forward(
            y.address, x.address, self.w.address, self.b.address,
            n, cin, h, w, self.cout, self.k, self.k,
        )
        self._x = x
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        x = self._x
        n, cin, h, w = x.shape
        oh, ow = dy.shape[2], dy.shape[3]
        dnn = self.libs.dnn
        dnn.conv2d_backward_filter(
            self.dw.address, x.address, dy.address,
            n, cin, h, w, self.cout, self.k, self.k,
        )
        dnn.bias_backward(self.db.address, dy.address, n, self.cout,
                          oh * ow)
        dx = self._cache("_dx", x.shape, x.runtime)
        dnn.conv2d_backward_data(
            dx.address, self.w.address, dy.address,
            n, cin, h, w, self.cout, self.k, self.k,
        )
        return dx

    def parameters(self):
        return [(self.w, self.dw), (self.b, self.db)]


class DepthwiseConv2D(Layer):
    """Depthwise 3x3 conv, one cuDNN call per channel.

    MobileNet-style: channel c of the output depends only on channel c
    of the input. Implemented as ``cin`` single-channel convolutions —
    a burst of small kernels per batch, the launch-heavy pattern the
    paper's MobileNetV2 row represents.
    """

    def __init__(self, libs: LibraryBundle, channels: int, kernel: int = 3):
        self.libs = libs
        self.channels, self.k = channels, kernel
        runtime = libs.runtime
        self.w = DeviceTensor.alloc(runtime, (channels, 1, kernel, kernel))
        libs.rng.generate_normal(self.w.address, self.w.size,
                                 stddev=1.0 / kernel)
        self.b = DeviceTensor.alloc(runtime, (channels,))
        libs.dnn.fill(self.b.address, 0.0, channels)
        self.dw = DeviceTensor.alloc(runtime, self.w.shape)
        self.db = DeviceTensor.alloc(runtime, self.b.shape)
        self._x = None
        self._y = None
        self._dx = None

    def _plane(self, tensor: DeviceTensor, batch: int, channel: int,
               plane_elems: int) -> int:
        per_image = tensor.shape[1] * plane_elems
        return tensor.address + 4 * (batch * per_image
                                     + channel * plane_elems)

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        n, c, h, w = x.shape
        oh, ow = h - self.k + 1, w - self.k + 1
        y = self._cache("_y", (n, c, oh, ow), x.runtime)
        dnn = self.libs.dnn
        for batch in range(n):
            for channel in range(c):
                dnn.conv2d_forward(
                    self._plane(y, batch, channel, oh * ow),
                    self._plane(x, batch, channel, h * w),
                    self.w.address + 4 * channel * self.k * self.k,
                    self.b.address + 4 * channel,
                    1, 1, h, w, 1, self.k, self.k,
                )
        self._x = x
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        x = self._x
        n, c, h, w = x.shape
        oh, ow = dy.shape[2], dy.shape[3]
        dnn = self.libs.dnn
        dx = self._cache("_dx", x.shape, x.runtime)
        for batch in range(n):
            for channel in range(c):
                w_plane = self.w.address + 4 * channel * self.k * self.k
                dy_plane = self._plane(dy, batch, channel, oh * ow)
                x_plane = self._plane(x, batch, channel, h * w)
                dnn.conv2d_backward_filter(
                    self.dw.address + 4 * channel * self.k * self.k,
                    x_plane, dy_plane, 1, 1, h, w, 1, self.k, self.k,
                )
                dnn.conv2d_backward_data(
                    self._plane(dx, batch, channel, h * w),
                    w_plane, dy_plane, 1, 1, h, w, 1, self.k, self.k,
                )
        dnn.bias_backward(self.db.address, dy.address, n, c, oh * ow)
        return dx

    def parameters(self):
        return [(self.w, self.dw), (self.b, self.db)]


class MaxPool2D(Layer):
    """Non-overlapping PxP max pooling."""

    def __init__(self, libs: LibraryBundle, pool: int = 2):
        self.libs = libs
        self.p = pool
        self._x = None
        self._y = None
        self._idx = None
        self._dx = None

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        n, c, h, w = x.shape
        oh, ow = h // self.p, w // self.p
        y = self._cache("_y", (n, c, oh, ow), x.runtime)
        idx = self._cache("_idx", (n, c, oh, ow), x.runtime)
        self.libs.dnn.maxpool_forward(
            y.address, idx.address, x.address, n * c, h, w, self.p
        )
        self._x = x
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        x = self._x
        dx = self._cache("_dx", x.shape, x.runtime)
        self.libs.dnn.maxpool_backward(
            dx.address, dy.address, self._idx.address, dy.size, x.size
        )
        return dx


class ReLU(Layer):
    def __init__(self, libs: LibraryBundle):
        self.libs = libs
        self._y = None
        self._dx = None

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        y = self._cache("_y", x.shape, x.runtime)
        self.libs.dnn.relu_forward(y.address, x.address, x.size)
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        dx = self._cache("_dx", dy.shape, dy.runtime)
        self.libs.dnn.relu_backward(dx.address, dy.address,
                                    self._y.address, dy.size)
        return dx


class Flatten(Layer):
    """Shape-only adapter between conv stacks and linear layers."""

    def __init__(self):
        self._shape: tuple[int, ...] = ()

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        self._shape = x.shape
        return x.reshape((x.shape[0], x.size // x.shape[0]))

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        return dy.reshape(self._shape)


class Linear(Layer):
    """Fully connected layer through cuBLAS GEMM."""

    def __init__(self, libs: LibraryBundle, in_features: int,
                 out_features: int):
        self.libs = libs
        self.in_f, self.out_f = in_features, out_features
        runtime = libs.runtime
        self.w = DeviceTensor.alloc(runtime, (in_features, out_features))
        libs.rng.generate_normal(self.w.address, self.w.size,
                                 stddev=1.0 / math.sqrt(in_features))
        self.b = DeviceTensor.alloc(runtime, (out_features,))
        libs.dnn.fill(self.b.address, 0.0, out_features)
        self.dw = DeviceTensor.alloc(runtime, self.w.shape)
        self.db = DeviceTensor.alloc(runtime, self.b.shape)
        self._x = None
        self._y = None
        self._dx = None

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        n = x.shape[0]
        y = self._cache("_y", (n, self.out_f), x.runtime)
        self.libs.blas.sgemm(n, self.out_f, self.in_f,
                             x.address, self.w.address, y.address)
        self.libs.dnn.add_bias(y.address, self.b.address, n, self.out_f)
        self._x = x
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        x = self._x
        n = x.shape[0]
        blas = self.libs.blas
        # dW = x^T @ dy, db = column sums, dx = dy @ W^T.
        blas.sgemm(self.in_f, self.out_f, n, x.address, dy.address,
                   self.dw.address, trans_a=True)
        self.libs.dnn.bias_backward(self.db.address, dy.address, n,
                                    self.out_f, 1)
        dx = self._cache("_dx", x.shape, x.runtime)
        blas.sgemm(n, self.in_f, self.out_f, dy.address, self.w.address,
                   dx.address, trans_b=True)
        return dx

    def parameters(self):
        return [(self.w, self.dw), (self.b, self.db)]


class Residual(Layer):
    """y = relu(inner(x)) + x — ResNet-style skip (needs matching
    shapes; use 1x1 convs inside)."""

    def __init__(self, libs: LibraryBundle, inner: Layer):
        self.libs = libs
        self.inner = inner
        self.relu = ReLU(libs)
        self._y = None
        self._dx = None

    def forward(self, x: DeviceTensor) -> DeviceTensor:
        branch = self.relu.forward(self.inner.forward(x))
        if branch.shape != x.shape:
            raise ValueError(
                f"residual shapes differ: {branch.shape} vs {x.shape}"
            )
        y = self._cache("_y", x.shape, x.runtime)
        self.libs.dnn.add(y.address, branch.address, x.address, x.size)
        return y

    def backward(self, dy: DeviceTensor) -> DeviceTensor:
        d_branch = self.inner.backward(self.relu.backward(dy))
        dx = self._cache("_dx", dy.shape, dy.runtime)
        self.libs.dnn.add(dx.address, d_branch.address, dy.address,
                          dy.size)
        return dx

    def parameters(self):
        return self.inner.parameters()


class SoftmaxCrossEntropy:
    """Fused loss head: returns mean loss, produces the logits grad."""

    def __init__(self, libs: LibraryBundle):
        self.libs = libs
        self._probs = None
        self._loss = None
        self._dx = None

    def forward(self, logits: DeviceTensor,
                labels: DeviceTensor) -> float:
        n, classes = logits.shape
        runtime = logits.runtime
        probs = Layer._cache(self, "_probs", (n, classes), runtime)
        loss = Layer._cache(self, "_loss", (n,), runtime)
        dx = Layer._cache(self, "_dx", (n, classes), runtime)
        self.libs.dnn.softmax_xent(
            probs.address, loss.address, dx.address,
            logits.address, labels.address, n, classes, 1.0 / n,
        )
        return float(loss.download().mean())

    def probabilities(self) -> DeviceTensor:
        return self._probs

    def backward(self) -> DeviceTensor:
        return self._dx
