"""Training and inference loops.

``train`` and ``evaluate`` drive any model from the zoo through the
standard minibatch loop: H2D upload of images/labels, forward kernels,
backward kernels, parameter updates, periodic loss readbacks — the
call stream the paper's Caffe/PyTorch runs produce at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.workloads.frameworks.datasets import SyntheticImages
from repro.workloads.frameworks.networks import SiameseNet
from repro.workloads.frameworks.tensor import DeviceTensor


@dataclass
class TrainingResult:
    """What one training run produced."""

    model: str
    epochs: int
    batches: int
    losses: list[float] = field(default_factory=list)

    @property
    def first_loss(self) -> float:
        return self.losses[0] if self.losses else float("nan")

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


@dataclass
class InferenceResult:
    model: str
    samples: int
    accuracy: float


def train(model, dataset: SyntheticImages, epochs: int = 1,
          batch_size: int = 8, lr: float = 0.05) -> TrainingResult:
    """Run SGD training; returns per-batch losses."""
    result = TrainingResult(model=model.name, epochs=epochs, batches=0)
    x_dev = None
    labels_dev = None
    runtime = model.libs.runtime
    for batch in dataset.batches(batch_size, epochs=epochs):
        if x_dev is None:
            x_dev = DeviceTensor.alloc(runtime, batch.images.shape)
            labels_dev = DeviceTensor.alloc(runtime, (batch.size,),
                                            dtype="u32")
        x_dev.upload(batch.images)
        labels_dev.upload(batch.labels)
        if isinstance(model, SiameseNet):
            # The siamese pairs each batch with its reversed twin.
            x2 = DeviceTensor.alloc(runtime, batch.images.shape)
            x2.upload(batch.images[::-1].copy())
            loss = model.train_pair_batch(x_dev, x2, labels_dev, lr)
            x2.free()
        else:
            loss = model.train_batch(x_dev, labels_dev, lr)
        result.losses.append(loss)
        result.batches += 1
        runtime.cudaDeviceSynchronize()
    return result


def evaluate(model, dataset: SyntheticImages,
             batch_size: int = 8) -> InferenceResult:
    """Inference pass; returns top-1 accuracy on the synthetic data."""
    correct = 0
    total = 0
    x_dev = None
    runtime = model.libs.runtime
    for batch in dataset.batches(batch_size, epochs=1):
        if x_dev is None:
            x_dev = DeviceTensor.alloc(runtime, batch.images.shape)
        x_dev.upload(batch.images)
        predictions = model.infer_batch(x_dev)
        correct += int((predictions == batch.labels).sum())
        total += batch.size
    return InferenceResult(model=model.name, samples=total,
                           accuracy=correct / max(total, 1))
