"""The accelerated-library bundle a framework process links."""

from __future__ import annotations

from dataclasses import dataclass

from repro.libs.cublas import CuBLAS
from repro.libs.cudnn import CuDNN
from repro.libs.cufft import CuFFT
from repro.libs.curand import CuRAND
from repro.runtime.api import CudaRuntime


@dataclass
class LibraryBundle:
    """All closed-source libraries of one application process."""

    runtime: CudaRuntime
    blas: CuBLAS
    dnn: CuDNN
    rng: CuRAND
    fft: CuFFT | None = None

    @classmethod
    def create(cls, runtime: CudaRuntime, with_fft: bool = False,
               seed: int = 0x5EED) -> "LibraryBundle":
        """Initialise the libraries (each registers its fatbin and
        touches the hidden export tables — the interception gauntlet)."""
        return cls(
            runtime=runtime,
            blas=CuBLAS(runtime),
            dnn=CuDNN(runtime),
            rng=CuRAND(runtime, seed=seed),
            fft=CuFFT(runtime) if with_fft else None,
        )
