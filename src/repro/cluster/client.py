"""The cluster-aware client shim: one tenant, N possible homes.

A :class:`ClusterClient` wraps an ordinary
:class:`~repro.core.client.GuardianClient` and adds the one thing live
migration needs on the client side: **address virtualization**. The
tenant's device pointers are handed out by its *first* node and baked
into its data structures; after a migration its partition sits at a
different base on the target node. Rather than rewriting the tenant's
pointers (impossible — Guardian is transparent), the shim keeps them
*virtual* (origin-based) and translates at the boundary:

- every address that crosses toward the server host-side — ``free``,
  ``memcpy_*`` endpoints, ``memset`` destinations — is shifted by
  ``delta = current_base - origin_base``;
- every address the server returns (``malloc``) is shifted back;
- **kernel pointer parameters are deliberately left alone**: the
  bitwise fence computes ``(addr & mask) | base`` in-kernel, and since
  partitions are size-aligned, a virtual pointer's low bits *are* its
  partition offset — the fence itself relocates the pointer onto the
  new base. This is why live migration requires
  :attr:`FencingMode.BITWISE` (the cluster enforces it at
  construction): the sandbox instrumentation doubles as the
  migration's pointer-translation layer, at zero extra cost.

``rebind()`` swaps the wrapped client onto a new node after the
cluster restored the tenant there: the old channel is aborted (any
still-queued batch died with the residency), and a fresh channel is
opened *without* re-attaching — the target server already adopted the
tenant. Partition growth after a migration with a non-zero delta is
refused: widening the mask would let origin-base bits leak through the
fence.
"""

from __future__ import annotations

from typing import Optional

from repro.core.client import GuardianClient
from repro.driver.fatbin import FatBinary
from repro.errors import MigrationError, NodeDown
from repro.faults.plan import FaultPlan
from repro.runtime.backend import GpuBackend


class ClusterClient(GpuBackend):
    """A tenant's view of the *cluster*: follows its partition around."""

    def __init__(self, node, app_id: str, max_bytes: int,
                 fault_plan: Optional[FaultPlan] = None):
        self.app_id = app_id
        self.max_bytes = max_bytes
        self._node = node
        self._inner = GuardianClient(
            node.dispatch_target, app_id, max_bytes, fault_plan=fault_plan,
        )
        self._origin_base = node.server.allocator.partition(app_id).base
        self._delta = 0
        self.migrations = 0
        self._export_tables = None

    # -- residency ---------------------------------------------------------------

    @property
    def node(self):
        """The node currently hosting this tenant's partition."""
        return self._node

    @property
    def delta(self) -> int:
        """Physical-minus-virtual base offset (0 until first move)."""
        return self._delta

    @property
    def crashed(self) -> bool:
        return self._inner.crashed

    @property
    def profile(self):
        return self._inner.profile

    @property
    def channel(self):
        return self._inner.channel

    def rebind(self, node, new_base: int) -> None:
        """Point this client at the tenant's new home.

        The replacement inner client gets a *fresh* IPC channel bound
        to the destination node: its marshal shadow cursor (the
        client-side view of a compiled trace) starts at zero, matching
        the destination trace engine's cold start — the client cannot
        keep claiming trace-discounted marshalling for a trace that no
        longer exists anywhere. The old channel is aborted, not
        flushed: anything still queued was captured by (or superseded
        by) the migration snapshot.
        """
        old = self._inner
        self._inner = GuardianClient(
            node.dispatch_target, self.app_id, self.max_bytes,
            fault_plan=old._faults, attach=False,
        )
        old.channel.abort()
        self._node = node
        self._delta = new_base - self._origin_base
        self.migrations += 1

    def _check_node(self) -> None:
        if self._node.crashed:
            raise NodeDown(self.app_id, self._node.node_id)

    # -- address translation -----------------------------------------------------

    def _phys(self, virtual: int) -> int:
        return virtual + self._delta

    def _virt(self, physical: int) -> int:
        return physical - self._delta

    # -- GpuBackend interface ------------------------------------------------------

    def malloc(self, size: int) -> int:
        self._check_node()
        return self._virt(self._inner.malloc(size))

    def free(self, address: int) -> None:
        self._check_node()
        self._inner.free(self._phys(address))

    def memcpy_h2d(self, dst: int, data: bytes, stream_id: int = 0) -> None:
        self._check_node()
        self._inner.memcpy_h2d(self._phys(dst), data, stream_id)

    def memcpy_d2h(self, src: int, size: int, stream_id: int = 0) -> bytes:
        self._check_node()
        return self._inner.memcpy_d2h(self._phys(src), size, stream_id)

    def memcpy_d2d(self, dst: int, src: int, size: int,
                   stream_id: int = 0) -> None:
        self._check_node()
        self._inner.memcpy_d2d(self._phys(dst), self._phys(src), size,
                               stream_id)

    def memset(self, dst: int, value: int, size: int,
               stream_id: int = 0) -> None:
        self._check_node()
        self._inner.memset(self._phys(dst), value, size, stream_id)

    def register_fatbin(self, fatbin: FatBinary) -> dict[str, int]:
        self._check_node()
        return self._inner.register_fatbin(fatbin)

    def load_module_ptx(self, ptx_text: str) -> dict[str, int]:
        self._check_node()
        return self._inner.load_module_ptx(ptx_text)

    def launch_kernel(self, handle, grid, block, params,
                      stream_id: int = 0) -> None:
        # Pointer parameters stay virtual: the bitwise fence relocates
        # them onto the current base in-kernel (module docstring).
        self._check_node()
        self._inner.launch_kernel(handle, grid, block, params, stream_id)

    def create_stream(self) -> int:
        self._check_node()
        return self._inner.create_stream()

    def synchronize(self) -> None:
        self._check_node()
        self._inner.synchronize()

    def get_export_table(self, table_uuid: str) -> dict:
        # Built against *this* shim (not the inner client) so the
        # hidden functions keep routing through the current node after
        # a rebind.
        if self._export_tables is None:
            from repro.runtime.export_table import build_export_tables

            self._export_tables = build_export_tables(self)
        table = self._export_tables.get(table_uuid)
        if table is None:
            from repro.errors import GuardianError

            raise GuardianError(
                f"export table {table_uuid!r} is not in Guardian's "
                f"minimal implementation"
            )
        return table

    def device_spec(self):
        self._check_node()
        return self._inner.device_spec()

    # -- lifecycle ----------------------------------------------------------------

    def grow_partition(self, new_max_bytes: int) -> int:
        self._check_node()
        if self._delta:
            raise MigrationError(
                f"tenant {self.app_id!r}: partition growth after a "
                f"migration is not supported (the widened fence mask "
                f"would leak origin-base bits)"
            )
        return self._inner.grow_partition(new_max_bytes)

    def flush(self) -> int:
        self._check_node()
        return self._inner.flush()

    def close(self) -> None:
        if self._node.crashed:
            self._inner.channel.abort()
            return
        self._inner.close()
