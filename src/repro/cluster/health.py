"""Per-node health: heartbeats, a state machine, failure-domain score.

Each :class:`~repro.cluster.cluster.GuardianNode` carries one
:class:`NodeHealthMonitor`. Every cluster ``tick()`` delivers one
heartbeat *beat* to each monitor (answered or missed — a fault plan's
``HEARTBEAT_LOSS`` makes a node miss its deadline) and feeds it the
supervisor ``FailureRecord``s the node produced since the last beat.
From those two streams the monitor maintains

- a **health state machine** ``healthy → degraded → suspect → down``:
  misses walk the ladder (one missed deadline makes a node *suspect* —
  it may just be slow; ``down_after_missed`` consecutive misses
  declare it dead), while accumulated failure weight degrades it.
  ``down`` is terminal — a node that lost its memory cannot come back
  as the same node;
- a **failure-domain score** — an exponentially decayed sum of
  weighted failure events, the *Characterization-Guided GPU Fault
  Resilience* idea: chronic failure history is a property of the
  node (its board, its thermal envelope, its neighbours), so
  placement should steer load away from it long before it actually
  dies. The decay means a node that stops misbehaving earns its way
  back.

The monitor is pure bookkeeping: it never touches servers or tenants.
The cluster reads its state and score and *reacts* (placement
penalties, shedding, evacuation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class NodeHealth(enum.Enum):
    """The per-node health ladder."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    SUSPECT = "suspect"
    DOWN = "down"


#: Failure-domain weight of one supervisor record, by action. Roughly:
#: containment events weigh like their budget cost; recoveries barely
#: register but still leave a trace (a node where retries keep
#: happening is a node with a flaky queue).
ACTION_WEIGHTS: dict[str, float] = {
    "quarantined": 3.0,
    "reaped": 2.0,
    "exhausted": 2.0,
    "fenced": 1.0,
    "armed": 1.0,
    "deadline": 0.5,
    "rejected": 0.25,
    "retried": 0.25,
    "delayed": 0.25,
    "suppressed": 0.1,
    "migrated": 0.0,  # the move itself is not the node's failure
}

#: Numeric rung per state, for gauges/dashboards (0 = healthy).
HEALTH_RUNG: dict[NodeHealth, int] = {
    NodeHealth.HEALTHY: 0,
    NodeHealth.DEGRADED: 1,
    NodeHealth.SUSPECT: 2,
    NodeHealth.DOWN: 3,
}


def publish_node_health(registry, monitor: "NodeHealthMonitor") -> None:
    """Mirror one monitor's state into a metrics registry.

    Two gauges per node: the ladder rung (0 healthy .. 3 down) and
    the failure-domain score placement penalizes by. A DOWN node's
    score is ``inf``; the gauge keeps the finite decayed sum and lets
    the rung carry the terminal state, so exposition stays numeric.
    """
    registry.gauge(
        "guardian_node_health_rung",
        "node health ladder rung (0 healthy, 1 degraded, "
        "2 suspect, 3 down)",
    ).set(HEALTH_RUNG[monitor.state], node=monitor.node_id)
    score = monitor.failure_domain_score()
    if score == float("inf"):
        score = monitor.score
    registry.gauge(
        "guardian_node_failure_domain_score",
        "decayed failure-domain score placement penalizes by",
    ).set(score, node=monitor.node_id)


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds of the node health state machine."""

    #: Consecutive missed heartbeats before the node is *suspect*.
    suspect_after_missed: int = 1
    #: Consecutive missed heartbeats before the node is *down*.
    down_after_missed: int = 3
    #: Failure score at which an answering node is *degraded*.
    degrade_score: float = 2.0
    #: Failure score at which even an answering node is *suspect*.
    suspect_score: float = 8.0
    #: Score below which a degraded/suspect node recovers to healthy.
    recover_score: float = 1.0
    #: Multiplicative score decay applied once per beat.
    score_decay: float = 0.9


@dataclass
class HealthTransition:
    """One state-machine edge, kept for the failure report."""

    beat: int
    previous: NodeHealth
    current: NodeHealth
    reason: str


class NodeHealthMonitor:
    """Tracks one node's heartbeat stream and failure history."""

    def __init__(self, node_id: str, policy: HealthPolicy | None = None):
        self.node_id = node_id
        self.policy = policy or HealthPolicy()
        self.state = NodeHealth.HEALTHY
        self.score = 0.0
        self.beats = 0
        self.missed_consecutive = 0
        self.missed_total = 0
        self.transitions: list[HealthTransition] = []
        self._events: int = 0

    # -- inputs ---------------------------------------------------------------

    def beat(self, answered: bool) -> NodeHealth:
        """Deliver one heartbeat deadline; returns the (new) state."""
        self.beats += 1
        self.score *= self.policy.score_decay
        if answered:
            self.missed_consecutive = 0
        else:
            self.missed_consecutive += 1
            self.missed_total += 1
        self._step(
            "heartbeat answered" if answered
            else f"missed {self.missed_consecutive} deadline(s)"
        )
        return self.state

    def note_failure(self, action: str, weight: float | None = None) -> None:
        """Charge one supervisor failure event against the node."""
        if weight is None:
            weight = ACTION_WEIGHTS.get(action, 0.5)
        self.score += weight
        self._events += 1
        self._step(f"failure event {action!r}")

    def force_down(self, reason: str) -> None:
        """Declare the node dead out-of-band (node crash injection)."""
        self._transition(NodeHealth.DOWN, reason)

    # -- the state machine -----------------------------------------------------

    def _step(self, reason: str) -> None:
        if self.state is NodeHealth.DOWN:
            return  # terminal
        policy = self.policy
        if self.missed_consecutive >= policy.down_after_missed:
            target = NodeHealth.DOWN
        elif (
            self.missed_consecutive >= policy.suspect_after_missed
            or self.score >= policy.suspect_score
        ):
            target = NodeHealth.SUSPECT
        elif self.score >= policy.degrade_score:
            target = NodeHealth.DEGRADED
        elif self.score <= policy.recover_score:
            target = NodeHealth.HEALTHY
        elif self.state is NodeHealth.SUSPECT:
            # Answering again, score in the hysteresis band: demote
            # one rung — full recovery waits for the score to decay.
            target = NodeHealth.DEGRADED
        else:
            target = self.state  # hysteresis: hold between thresholds
        self._transition(target, reason)

    def _transition(self, target: NodeHealth, reason: str) -> None:
        if target is self.state:
            return
        self.transitions.append(HealthTransition(
            beat=self.beats, previous=self.state, current=target,
            reason=reason,
        ))
        self.state = target

    # -- outputs ---------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state is not NodeHealth.DOWN

    @property
    def placeable(self) -> bool:
        """May the placement scheduler put *new* load here?"""
        return self.state in (NodeHealth.HEALTHY, NodeHealth.DEGRADED)

    def failure_domain_score(self) -> float:
        """The score placement penalizes by: the decayed failure sum,
        plus a surcharge while the node is actively degraded (its
        recent history is still playing out)."""
        surcharge = {
            NodeHealth.HEALTHY: 0.0,
            NodeHealth.DEGRADED: 1.0,
            NodeHealth.SUSPECT: 4.0,
            NodeHealth.DOWN: float("inf"),
        }[self.state]
        return self.score + surcharge
