"""The fleet control plane: N Guardian nodes, one cluster.

The paper's §8 multi-node claim — "G-Safe operates independently in
each node" — means Guardian *composes* across nodes but says nothing
about surviving one. :class:`GuardianCluster` adds the missing control
plane over N otherwise-independent ``GuardianServer``s (each with its
own simulated device, supervisor and health monitor):

- **admission** routes each attach through the failure-domain-aware
  placement scheduler (:mod:`repro.cluster.placement`);
- **tick()** is the cluster's heartbeat: each beat polls every node's
  liveness (consulting the fault plan's ``Site.NODE`` specs), feeds
  fresh supervisor failure records into the node's health monitor,
  and *reacts* — a node that went ``down`` is drained (every resident
  tenant live-migrated to a healthy node, or cleanly quarantined when
  nothing can host it / the node's memory is gone);
- **migrate()** is the live-migration protocol driver: flush the
  tenant's batch, quiesce and snapshot on the source
  (:meth:`GuardianServer.snapshot_tenant`), replay on the target
  (:meth:`restore_tenant` — bounds re-published at the new base under
  a fresh epoch), tear down the source residue (:meth:`evacuate`),
  and rebind the tenant's :class:`ClusterClient`. All-or-nothing: a
  truncated snapshot or a restore failure leaves the tenant attached
  to its source, untouched.

The per-node supervisors get the **migration rung**
(:attr:`SupervisorPolicy.migrate_budget_fraction`): a tenant burning
fault budget is moved to a healthier node *before* the budget
exhausts into eviction.

Everything here is additive and opt-in: constructing a cluster builds
its own servers; the single-node ``GuardianSystem`` path never touches
this module, and all Table 5 pins stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Union

from repro.cluster.client import ClusterClient
from repro.cluster.health import (
    HealthPolicy,
    NodeHealth,
    NodeHealthMonitor,
    publish_node_health,
)
from repro.cluster.placement import PlacementPolicy
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer, ServerConfig
from repro.core.supervisor import SupervisorPolicy, TenantSupervisor
from repro.errors import (
    GuardianError,
    MigrationError,
    PartitionError,
    ReproError,
    TenantQuarantined,
)
from repro.faults.plan import FaultKind, FaultPlan, Site
from repro.gpu.device import Device
from repro.gpu.specs import DeviceSpec, QUADRO_RTX_A4000
from repro.runtime.api import CudaRuntime
from repro.runtime.interpose import LIBCUDA, DynamicLoader
from repro.telemetry import Telemetry


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the fleet control plane.

    The cluster itself is opt-in (nothing constructs one implicitly),
    so its defaults describe a *working* control plane; the knobs that
    alter per-call behaviour relative to stock Guardian — the
    supervisor's migration rung and backoff jitter — still default off
    in :class:`SupervisorPolicy` itself and are only switched on here
    via :attr:`supervisor_policy`'s cluster default.
    """

    server_config: ServerConfig = field(default_factory=ServerConfig)
    #: Live migration requires the bitwise fence (it doubles as the
    #: client's pointer-translation layer — see cluster/client.py).
    mode: FencingMode = FencingMode.BITWISE
    health: HealthPolicy = field(default_factory=HealthPolicy)
    placement: PlacementPolicy = field(default_factory=PlacementPolicy)
    #: Per-node supervisor policy; None = the cluster default (stock
    #: policy plus the migration rung at half budget and 10% backoff
    #: jitter — the cluster has somewhere to move tenants *to*).
    supervisor_policy: Optional[SupervisorPolicy] = None
    #: Master switch for live migration. Off, the cluster still
    #: places, monitors and quarantines — a node loss evicts instead
    #: of moving.
    enable_migration: bool = True
    #: Also migrate one resident per tick off *degraded* nodes
    #: (proactive shedding). Default off: placement pressure already
    #: starves degraded nodes of new load.
    shed_on_degraded: bool = False

    def node_supervisor_policy(self) -> SupervisorPolicy:
        if self.supervisor_policy is not None:
            return self.supervisor_policy
        return SupervisorPolicy(
            migrate_budget_fraction=0.5 if self.enable_migration else None,
            backoff_jitter=0.1,
        )


@dataclass
class MigrationRecord:
    """One migration attempt, successful or not."""

    tenant: str
    source: str
    target: str
    reason: str
    trigger: str  # supervisor | evacuation | shed | operator
    beat: int
    bytes_moved: int = 0
    #: Modelled PCIe cost of moving the partition (device→host on the
    #: source + host→device on the target), in seconds.
    transfer_seconds: float = 0.0
    success: bool = False
    detail: str = ""


@dataclass
class EvictionRecord:
    """A tenant the cluster could not save: who, where, why."""

    tenant: str
    node: str
    reason: str
    beat: int


@dataclass
class ClusterTenant:
    """One attached application: its cluster shim, loader and runtime."""

    app_id: str
    client: ClusterClient
    loader: DynamicLoader
    runtime: CudaRuntime

    @property
    def node(self):
        return self.client.node


class GuardianNode:
    """One rack slot: a device, its server, supervisor and monitor."""

    def __init__(self, node_id: str, spec: DeviceSpec,
                 config: ClusterConfig,
                 plan: Optional[FaultPlan] = None):
        self.node_id = node_id
        self.spec = spec
        self.device = Device(spec)
        self.server = GuardianServer(
            self.device, mode=config.mode, config=config.server_config,
        )
        self.supervisor = TenantSupervisor(
            self.server, plan=plan,
            policy=config.node_supervisor_policy(),
            node=node_id,
        )
        self.monitor = NodeHealthMonitor(node_id, config.health)
        self.crashed = False
        self.crash_reason = ""
        #: Set once the cluster has drained the node after it went
        #: down, so evacuation runs exactly once.
        self.drained = False

    @property
    def dispatch_target(self) -> TenantSupervisor:
        return self.supervisor

    @property
    def health(self) -> NodeHealth:
        return self.monitor.state

    def crash(self, reason: str) -> None:
        """The node dies: device memory is gone, nothing is reachable."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_reason = reason
        self.monitor.force_down(f"node crash: {reason}")

    def resident_tenants(self) -> list[str]:
        return [p.app_id for p in self.server.allocator.partitions()]


class GuardianCluster:
    """N Guardian nodes under one admission/health/migration plane."""

    def __init__(
        self,
        specs: Union[int, Sequence[DeviceSpec]] = 2,
        config: Optional[ClusterConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if isinstance(specs, int):
            specs = [QUADRO_RTX_A4000] * specs
        if not specs:
            raise GuardianError("a cluster needs at least one node")
        self.config = config or ClusterConfig()
        if self.config.mode is not FencingMode.BITWISE \
                and self.config.enable_migration:
            raise MigrationError(
                "live migration requires FencingMode.BITWISE (the fence "
                "is the pointer-translation layer); disable migration "
                "for other modes"
            )
        self.plan = fault_plan
        self.nodes: list[GuardianNode] = [
            GuardianNode(f"node{index}", spec, self.config, plan=fault_plan)
            for index, spec in enumerate(specs)
        ]
        if self.config.enable_migration:
            for node in self.nodes:
                node.supervisor.migration_hook = self._migration_hook(node)
        self.tenants: dict[str, ClusterTenant] = {}
        self.beat = 0
        self.migrations: list[MigrationRecord] = []
        self.evictions: list[EvictionRecord] = []
        #: The control plane's own telemetry (separate from each
        #: node's server-level spine; its track unit is microseconds
        #: of modelled transfer time, not server cycles). Follows the
        #: same ServerConfig knob so one switch lights up every layer.
        self.telemetry: Optional[Telemetry] = (
            Telemetry(self.config.server_config.telemetry_capacity)
            if self.config.server_config.telemetry else None
        )
        #: Per-node cursor into supervisor.records already fed to the
        #: health monitor.
        self._record_cursors: dict[str, int] = {
            node.node_id: 0 for node in self.nodes
        }

    # -- admission ----------------------------------------------------------------

    def node(self, node_id: str) -> GuardianNode:
        for candidate in self.nodes:
            if candidate.node_id == node_id:
                return candidate
        raise GuardianError(f"no node {node_id!r} in this cluster")

    def attach(self, app_id: str, max_bytes: int) -> ClusterTenant:
        """Admit a tenant onto the placement scheduler's pick."""
        if app_id in self.tenants:
            raise GuardianError(f"app {app_id!r} already attached")
        home = self.config.placement.choose(self.nodes, max_bytes)
        if home is None:
            raise PartitionError(
                f"no node can host a {max_bytes}-byte partition "
                f"(capacity or health)"
            )
        loader = DynamicLoader()
        client = ClusterClient(home, app_id, max_bytes,
                               fault_plan=self.plan)
        loader.preload(LIBCUDA, client)
        session = ClusterTenant(
            app_id=app_id,
            client=client,
            loader=loader,
            runtime=CudaRuntime(loader),
        )
        self.tenants[app_id] = session
        return session

    def detach(self, app_id: str) -> None:
        session = self.tenants.pop(app_id, None)
        if session is None:
            return
        try:
            session.client.close()
        except TenantQuarantined:
            session.client.channel.abort()
        if session.client.crashed:
            node = session.client.node
            if not node.crashed:
                node.supervisor.reap(app_id)

    def locate(self, app_id: str) -> Optional[GuardianNode]:
        """The node currently holding ``app_id``'s partition, if any."""
        session = self.tenants.get(app_id)
        if session is None:
            return None
        node = session.client.node
        return node if app_id in node.resident_tenants() else None

    def synchronize(self) -> None:
        """Resolve pending device timing on every node."""
        for node in self.nodes:
            if not node.crashed:
                node.device.synchronize(spatial=True)

    # -- the heartbeat loop ---------------------------------------------------------

    def tick(self) -> dict:
        """One control-plane beat: poll health, absorb failure records,
        react. Returns a beat summary (node states + actions taken)."""
        self.beat += 1
        actions: list[str] = []
        for node in self.nodes:
            answered = not node.crashed
            if answered and self.plan is not None:
                fired = self.plan.fire(Site.NODE, node.node_id, "heartbeat")
                if fired is not None:
                    if fired.kind is FaultKind.NODE_CRASH:
                        node.crash(fired.reason or "injected node crash")
                        answered = False
                    elif fired.kind is FaultKind.HEARTBEAT_LOSS:
                        answered = False
            node.monitor.beat(answered)
            self._absorb_records(node)
        for node in self.nodes:
            if node.monitor.state is NodeHealth.DOWN and not node.drained:
                actions.extend(self._drain_node(node))
            elif (
                self.config.shed_on_degraded
                and self.config.enable_migration
                and node.monitor.state is NodeHealth.DEGRADED
            ):
                shed = self._shed_one(node)
                if shed:
                    actions.append(shed)
        if self.telemetry is not None:
            for node in self.nodes:
                publish_node_health(self.telemetry.registry, node.monitor)
        return {
            "beat": self.beat,
            "states": {
                node.node_id: node.monitor.state.value
                for node in self.nodes
            },
            "actions": actions,
        }

    def _absorb_records(self, node: GuardianNode) -> None:
        records = node.supervisor.records
        cursor = self._record_cursors[node.node_id]
        for record in records[cursor:]:
            node.monitor.note_failure(record.action)
        self._record_cursors[node.node_id] = len(records)

    # -- reactions -----------------------------------------------------------------

    def _drain_node(self, node: GuardianNode) -> list[str]:
        """A node went ``down``: move every resident off it, or fail
        them cleanly. Runs once per node (idempotent via ``drained``).

        Decisions are pinned against each tenant's *incarnation* at
        decision time: if anything re-attached the name meanwhile, the
        stale quarantine is a no-op instead of evicting the newcomer.
        """
        node.drained = True
        actions: list[str] = []
        residents = [
            (app_id, node.server._tenants[app_id].incarnation)
            for app_id in node.resident_tenants()
            if app_id in node.server._tenants
        ]
        for app_id, incarnation in residents:
            if node.crashed:
                # Memory died with the node; nothing to migrate.
                self.evictions.append(EvictionRecord(
                    tenant=app_id, node=node.node_id,
                    reason=f"node crashed ({node.crash_reason})",
                    beat=self.beat,
                ))
                actions.append(f"lost {app_id} with {node.node_id}")
                continue
            moved = (
                self.migrate(app_id, reason="node down: draining",
                             trigger="evacuation")
                if self.config.enable_migration else False
            )
            if moved:
                actions.append(f"migrated {app_id} off {node.node_id}")
            else:
                node.supervisor.quarantine_tenant(
                    app_id, f"node {node.node_id} down; no migration target"
                )
                # Re-check the incarnation guard explicitly too — the
                # supervisor path resolves by name; the server's check
                # makes a stale decision harmless.
                node.server.quarantine(
                    app_id, reason="node down", incarnation=incarnation
                )
                self.evictions.append(EvictionRecord(
                    tenant=app_id, node=node.node_id,
                    reason="node down; no migration target",
                    beat=self.beat,
                ))
                actions.append(f"quarantined {app_id} on {node.node_id}")
        return actions

    def _shed_one(self, node: GuardianNode) -> Optional[str]:
        """Proactive shedding: move the smallest resident off a
        degraded node (smallest first — cheapest copy, frees the most
        placement slack per byte moved)."""
        residents = sorted(
            node.server.allocator.partitions(),
            key=lambda partition: (partition.size, partition.app_id),
        )
        for partition in residents:
            if self.migrate(partition.app_id,
                            reason="shedding off degraded node",
                            trigger="shed"):
                return f"shed {partition.app_id} off {node.node_id}"
        return None

    # -- live migration -------------------------------------------------------------

    def _migration_hook(self, node: GuardianNode):
        def hook(app_id: str, reason: str) -> bool:
            try:
                return self.migrate(app_id, reason=reason,
                                    trigger="supervisor")
            except ReproError:
                return False
        return hook

    def migrate(self, app_id: str, target: Optional[GuardianNode] = None,
                reason: str = "", trigger: str = "operator") -> bool:
        """Move one tenant to ``target`` (or the scheduler's pick).

        All-or-nothing: on any failure the tenant stays attached to
        its source, which remains responsible for it. Returns True on
        a completed move. The fault plan's ``(Site.NODE, source,
        "migrate")`` consultation can truncate the snapshot (abort) or
        crash the source mid-copy (the tenant survives on the target;
        the source's other residents are handled by the next beat).

        **Every per-call specialization restarts cold at the
        destination.** The snapshot deliberately carries only the
        fast-launch memo's *epoch* (not its values) and nothing of the
        source's trace-specialization state: ``restore_tenant``
        re-publishes the bounds record at the new base under a fresh
        epoch, so the first post-migration launch rebuilds its fencing
        parameters, and the destination's trace engine — which also
        forgets any same-named leftovers on restore — must re-record
        and re-compile before any specialized replay. Replaying a
        source-compiled trace against the destination's epoch, stream,
        or base address is therefore impossible by construction, not
        merely guarded against.
        """
        session = self.tenants.get(app_id)
        if session is None:
            return False
        source = session.client.node
        if source.crashed or app_id not in source.resident_tenants():
            return False
        size = source.server.allocator.partition(app_id).size
        if target is None:
            target = self.config.placement.choose(
                self.nodes, size, exclude=(source.node_id,)
            )
        record = MigrationRecord(
            tenant=app_id, source=source.node_id,
            target=target.node_id if target is not None else "<none>",
            reason=reason, trigger=trigger, beat=self.beat,
        )
        self.migrations.append(record)
        if target is None:
            record.detail = "no eligible target node"
            self._observe_migration(record)
            return False
        # Deliver any batched async work to the source before the cut:
        # the snapshot must include it (in-order-per-application).
        try:
            session.client.flush()
        except ReproError as failure:
            # A batched call failing is the *tenant's* event (already
            # recorded by the source supervisor), not the migration's;
            # the queue was delivered either way.
            record.detail = f"flush surfaced: {failure}"
        crash_mid = None
        truncate_at = None
        if self.plan is not None:
            fired = self.plan.fire(Site.NODE, source.node_id, "migrate")
            if fired is not None:
                if fired.kind is FaultKind.SNAPSHOT_PARTIAL:
                    truncate_at = fired.truncate_at
                elif fired.kind is FaultKind.NODE_CRASH:
                    crash_mid = fired.reason or "crash mid-migration"
        try:
            snapshot = source.server.snapshot_tenant(app_id)
        except ReproError as failure:
            record.detail = f"snapshot refused: {failure}"
            source.monitor.note_failure("migration_failed", weight=1.0)
            self._observe_migration(record)
            return False
        if truncate_at is not None:
            snapshot = replace(
                snapshot,
                data=snapshot.data[: int(snapshot.size * truncate_at)],
            )
        if crash_mid is not None:
            # The source dies with the snapshot already cut; the
            # restore proceeds — that is the point of the protocol's
            # copy-then-switch ordering.
            source.crash(crash_mid)
        try:
            new_base = target.server.restore_tenant(snapshot)
        except MigrationError as failure:
            record.detail = str(failure)
            source.monitor.note_failure("migration_failed", weight=1.0)
            self._observe_migration(record)
            return False
        record.bytes_moved = snapshot.size
        record.transfer_seconds = (
            snapshot.size / (source.spec.pcie_bw_gbps * 1e9)
            + snapshot.size / (target.spec.pcie_bw_gbps * 1e9)
        )
        if not source.crashed:
            source.server.evacuate(app_id)
            source.supervisor.forget(app_id)
        session.client.rebind(target, new_base)
        record.success = True
        self._observe_migration(record)
        return True

    def _observe_migration(self, record: MigrationRecord) -> None:
        """Retrospective migration spans + counter on the cluster track.

        A completed move becomes a parent span covering the whole
        transfer with ``snapshot`` (source half) and ``restore``
        (target half) children; a failed attempt becomes a
        zero-duration marker carrying the failure detail. The cluster
        tracer's axis is microseconds of modelled PCIe transfer time.
        """
        if self.telemetry is None:
            return
        tracer = self.telemetry.tracer
        outcome = "success" if record.success else "failed"
        self.telemetry.migrations.inc(
            source=record.source, target=record.target, outcome=outcome,
        )
        start = tracer.clock
        common = {"source": record.source, "target": record.target,
                  "trigger": record.trigger, "beat": record.beat}
        if not record.success:
            tracer.emit(
                f"migrate:{record.tenant}", "migration", record.tenant,
                track="cluster", start=start, end=start,
                outcome="failed", detail=record.detail, **common,
            )
            return
        total_us = record.transfer_seconds * 1e6
        src_us = (
            record.bytes_moved
            / (self.node(record.source).spec.pcie_bw_gbps * 1e9) * 1e6
        )
        trace_id = tracer.new_trace()
        parent = tracer.emit(
            f"migrate:{record.tenant}", "migration", record.tenant,
            track="cluster", start=start, end=start + total_us,
            trace_id=trace_id, outcome="success",
            bytes_moved=record.bytes_moved, **common,
        )
        tracer.emit(
            "snapshot", "migration", record.tenant, track="cluster",
            start=start, end=start + src_us, trace_id=trace_id,
            parent_id=parent.span_id, node=record.source,
        )
        tracer.emit(
            "restore", "migration", record.tenant, track="cluster",
            start=start + src_us, end=start + total_us,
            trace_id=trace_id, parent_id=parent.span_id,
            node=record.target,
        )
        tracer.advance(total_us)

    # -- introspection --------------------------------------------------------------

    @property
    def migrations_completed(self) -> int:
        return sum(1 for record in self.migrations if record.success)

    @property
    def migrations_failed(self) -> int:
        return sum(1 for record in self.migrations if not record.success)

    def health_summary(self) -> dict[str, str]:
        return {
            node.node_id: node.monitor.state.value for node in self.nodes
        }
