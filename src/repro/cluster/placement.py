"""Failure-domain-aware admission and placement.

The scheduler answers one question: *which node should host this
partition?* Its cost function composes

- **capacity fit** — the node must be able to carve the (power-of-two
  rounded) partition right now (:meth:`GuardianAllocator.can_carve`);
  among nodes that fit, fuller nodes cost more (occupancy term), which
  bin-packs: small tenants fill the gaps of busy nodes before a fresh
  node is dented;
- **failure-domain penalty** — each node's decayed failure score
  (:meth:`NodeHealthMonitor.failure_domain_score`) scaled by
  ``failure_penalty``: a chronically faulty node keeps *losing* the
  placement auction even while technically up, so it sheds load over
  time — the *Characterization-Guided GPU Fault Resilience* policy;
- **health gating** — ``suspect``/``down`` nodes are excluded outright
  (a node that just missed its deadline is not a place to put fresh
  state).

Ties break on node id, so placement is deterministic for a given
cluster state — a property every reproducibility test leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core import masks


@dataclass(frozen=True)
class PlacementPolicy:
    """Weights of the placement cost function."""

    #: Weight of the memory-occupancy term (fraction of the node's
    #: partitionable bytes in use after this placement).
    occupancy_weight: float = 1.0
    #: Weight of the node's failure-domain score.
    failure_penalty: float = 0.5
    #: Prefer packing onto busier nodes (True, the default: the
    #: occupancy term *rewards* fuller nodes so small tenants fill
    #: gaps) or spreading across emptier ones (False: occupancy term
    #: flips sign — lowest-occupancy wins).
    pack: bool = True

    def score(self, node, max_bytes: int) -> Optional[float]:
        """Cost of placing a ``max_bytes`` partition on ``node``;
        ``None`` when the node is ineligible."""
        if not node.monitor.placeable or node.crashed:
            return None
        size = (
            masks.next_power_of_two(max_bytes)
            if node.server.allocator.require_power_of_two
            else max_bytes
        )
        if not node.server.allocator.can_carve(size):
            return None
        allocator = node.server.allocator
        occupancy = (allocator.bytes_partitioned + size) / allocator.total_bytes
        occupancy_cost = (1.0 - occupancy) if self.pack else occupancy
        return (
            self.occupancy_weight * occupancy_cost
            + self.failure_penalty * node.monitor.failure_domain_score()
        )

    def choose(self, nodes: Iterable, max_bytes: int,
               exclude: tuple[str, ...] = ()):
        """The cheapest eligible node, or ``None``. Deterministic:
        equal scores resolve to the smaller node id."""
        best = None
        best_key = None
        for node in nodes:
            if node.node_id in exclude:
                continue
            cost = self.score(node, max_bytes)
            if cost is None:
                continue
            key = (cost, node.node_id)
            if best_key is None or key < best_key:
                best, best_key = node, key
        return best
