"""Guardian's fleet control plane: node health, placement, migration."""

from repro.cluster.client import ClusterClient
from repro.cluster.cluster import (
    ClusterConfig,
    ClusterTenant,
    EvictionRecord,
    GuardianCluster,
    GuardianNode,
    MigrationRecord,
)
from repro.cluster.health import (
    ACTION_WEIGHTS,
    HealthPolicy,
    HealthTransition,
    NodeHealth,
    NodeHealthMonitor,
)
from repro.cluster.placement import PlacementPolicy

__all__ = [
    "ACTION_WEIGHTS",
    "ClusterClient",
    "ClusterConfig",
    "ClusterTenant",
    "EvictionRecord",
    "GuardianCluster",
    "GuardianNode",
    "HealthPolicy",
    "HealthTransition",
    "MigrationRecord",
    "NodeHealth",
    "NodeHealthMonitor",
    "PlacementPolicy",
]
