"""Profiling — the simulator's Nsight.

The paper uses Nsight for cache hit ratios / kernel latencies and
``rdtsc`` for host call costs. The simulator exposes the same numbers
natively; :class:`Profiler` packages them per kernel launch and in
aggregate (Fig. 11's inputs: per-kernel overhead vs cache hit ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import Device
from repro.gpu.executor import LaunchResult


@dataclass
class KernelProfile:
    """Aggregated metrics of one kernel symbol."""

    name: str
    launches: int = 0
    total_cycles: float = 0.0
    total_instructions: int = 0
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    global_accesses: int = 0

    @property
    def mean_cycles(self) -> float:
        return self.total_cycles / max(self.launches, 1)

    @property
    def l1_hit_ratio(self) -> float:
        total = self.l1_hits + self.l2_hits + self.global_accesses
        return self.l1_hits / total if total else 0.0

    @property
    def l2_hit_ratio(self) -> float:
        """L2 ratio over accesses that missed L1 (the paper's metric)."""
        below_l1 = self.l2_hits + self.global_accesses
        return self.l2_hits / below_l1 if below_l1 else 0.0

    def absorb(self, result: LaunchResult) -> None:
        self.launches += 1
        self.total_cycles += result.duration_cycles
        self.total_instructions += result.instructions
        self.loads += result.loads
        self.stores += result.stores
        self.l1_hits += result.level_counts.get("l1", 0)
        self.l2_hits += result.level_counts.get("l2", 0)
        self.global_accesses += result.level_counts.get("global", 0)


class Profiler:
    """Collects per-kernel profiles from a device.

    Usage::

        profiler = Profiler(device)   # turns on launch-result capture
        ... run workload ...
        profiles = profiler.collect()
    """

    def __init__(self, device: Device):
        self.device = device
        device._keep_launch_results = True
        self._consumed = 0

    def collect(self) -> dict[str, KernelProfile]:
        """Aggregate every launch since the last collect()."""
        profiles: dict[str, KernelProfile] = {}
        results = self.device.metrics.launch_results
        for result in results[self._consumed:]:
            profile = profiles.get(result.kernel_name)
            if profile is None:
                profile = KernelProfile(name=result.kernel_name)
                profiles[result.kernel_name] = profile
            profile.absorb(result)
        self._consumed = len(results)
        return profiles

    @staticmethod
    def overall(profiles: dict[str, KernelProfile]) -> KernelProfile:
        """Fold every kernel's profile into one aggregate row."""
        total = KernelProfile(name="<all>")
        for profile in profiles.values():
            total.launches += profile.launches
            total.total_cycles += profile.total_cycles
            total.total_instructions += profile.total_instructions
            total.loads += profile.loads
            total.stores += profile.stores
            total.l1_hits += profile.l1_hits
            total.l2_hits += profile.l2_hits
            total.global_accesses += profile.global_accesses
        return total
