"""Profiling — the simulator's Nsight.

The paper uses Nsight for cache hit ratios / kernel latencies and
``rdtsc`` for host call costs. The simulator exposes the same numbers
natively; :class:`Profiler` packages them per kernel launch and in
aggregate (Fig. 11's inputs: per-kernel overhead vs cache hit ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import Device
from repro.gpu.executor import LaunchResult


@dataclass
class KernelProfile:
    """Aggregated metrics of one kernel symbol."""

    name: str
    launches: int = 0
    total_cycles: float = 0.0
    total_instructions: int = 0
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    global_accesses: int = 0

    @property
    def mean_cycles(self) -> float:
        return self.total_cycles / max(self.launches, 1)

    @property
    def l1_hit_ratio(self) -> float:
        total = self.l1_hits + self.l2_hits + self.global_accesses
        return self.l1_hits / total if total else 0.0

    @property
    def l2_hit_ratio(self) -> float:
        """L2 ratio over accesses that missed L1 (the paper's metric)."""
        below_l1 = self.l2_hits + self.global_accesses
        return self.l2_hits / below_l1 if below_l1 else 0.0

    def absorb(self, result: LaunchResult) -> None:
        self.launches += 1
        self.total_cycles += result.duration_cycles
        self.total_instructions += result.instructions
        self.loads += result.loads
        self.stores += result.stores
        self.l1_hits += result.level_counts.get("l1", 0)
        self.l2_hits += result.level_counts.get("l2", 0)
        self.global_accesses += result.level_counts.get("global", 0)


@dataclass
class HotPathMetrics:
    """Aggregate view of the server's hot-path caches and the clients'
    IPC batching — the counters the hot-path benchmark reports next to
    raw cycle totals.
    """

    patch_cache_hits: int = 0
    patch_cache_misses: int = 0
    patch_cache_evictions: int = 0
    extract_cache_hits: int = 0
    extract_cache_misses: int = 0
    fastpath_hits: int = 0
    fastpath_misses: int = 0
    ipc_messages: int = 0
    ipc_roundtrips: int = 0
    ipc_batches: int = 0
    ipc_batched_messages: int = 0
    ipc_aborted_batches: int = 0
    ipc_discarded_calls: int = 0
    ipc_marshal_cached_calls: int = 0
    #: Trace specialization (0 everywhere with the knob off).
    traces_compiled: int = 0
    trace_replays: int = 0
    trace_replay_ops: int = 0
    trace_eligible_ops: int = 0
    trace_invalidations: int = 0
    trace_guard_failures: int = 0
    trace_ranges_prechecked: int = 0
    #: Disk-backed patch cache (0 without ``patch_cache_dir``).
    patch_disk_hits: int = 0
    patch_disk_writes: int = 0
    server_cycles: float = 0.0
    client_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        """Host work: server busy time + every client's critical path."""
        return self.server_cycles + self.client_cycles

    @property
    def patch_hit_rate(self) -> float:
        probes = self.patch_cache_hits + self.patch_cache_misses
        return self.patch_cache_hits / probes if probes else 0.0

    @property
    def extract_hit_rate(self) -> float:
        probes = self.extract_cache_hits + self.extract_cache_misses
        return self.extract_cache_hits / probes if probes else 0.0

    @property
    def fastpath_hit_rate(self) -> float:
        """Launch fast-path hit rate; 0.0 on a zero-call snapshot —
        a server that never launched must not divide by zero (PR 6's
        denominator-guard convention, applied to every rate here)."""
        probes = self.fastpath_hits + self.fastpath_misses
        return self.fastpath_hits / probes if probes else 0.0

    @property
    def trace_replay_rate(self) -> float:
        """Share of trace-eligible async ops served by replay; 0.0 on
        a zero-call snapshot (same guard as the hit rates above)."""
        if not self.trace_eligible_ops:
            return 0.0
        return self.trace_replay_ops / self.trace_eligible_ops

    @property
    def mean_batch_size(self) -> float:
        if not self.ipc_batches:
            return 0.0
        return self.ipc_batched_messages / self.ipc_batches


def collect_hotpath(server, clients=()) -> HotPathMetrics:
    """Snapshot hot-path counters from a GuardianServer and its clients.

    ``clients`` accepts GuardianClient instances or bare IPCChannels.
    """
    stats = server.stats
    metrics = HotPathMetrics(
        patch_cache_hits=stats.patch_cache_hits,
        patch_cache_misses=stats.patch_cache_misses,
        patch_cache_evictions=stats.patch_cache_evictions,
        extract_cache_hits=stats.extract_cache_hits,
        extract_cache_misses=stats.extract_cache_misses,
        fastpath_hits=stats.fastpath_hits,
        fastpath_misses=stats.fastpath_misses,
        traces_compiled=stats.traces_compiled,
        trace_replays=stats.trace_replays,
        trace_replay_ops=stats.trace_replay_ops,
        trace_eligible_ops=stats.trace_eligible_ops,
        trace_invalidations=stats.trace_invalidations,
        trace_guard_failures=stats.trace_guard_failures,
        trace_ranges_prechecked=stats.trace_ranges_prechecked,
        patch_disk_hits=stats.patch_disk_hits,
        patch_disk_writes=stats.patch_disk_writes,
        server_cycles=stats.cycles,
    )
    for client in clients:
        channel = getattr(client, "channel", client)
        stats = channel.stats
        metrics.ipc_messages += stats.messages
        metrics.ipc_marshal_cached_calls += stats.marshal_cached_calls
        # Batched messages share one queue crossing per batch; every
        # other message paid its own — except discarded calls, which
        # were queued but never crossed at all (the client died before
        # its flush point).
        metrics.ipc_roundtrips += (
            stats.messages - stats.batched_messages
            - stats.discarded_calls + stats.batches
        )
        metrics.ipc_batches += stats.batches
        metrics.ipc_batched_messages += stats.batched_messages
        metrics.ipc_aborted_batches += stats.aborted_batches
        metrics.ipc_discarded_calls += stats.discarded_calls
        metrics.client_cycles += stats.client_cycles
    return metrics


@dataclass
class LaneMetrics:
    """Concurrent-dispatch occupancy: how well tenant lanes overlap.

    ``total_work`` is the server's busy clock (sum of every charge);
    ``makespan`` the critical path across lanes. Their ratio — the
    modelled speedup over serial dispatch — is what the multi-tenant
    scaling benchmark gates on. In serial mode the two are equal and
    every derived figure degenerates to 1.0 / empty.
    """

    total_work: float = 0.0
    makespan: float = 0.0
    critical_cycles: float = 0.0
    stall_cycles: float = 0.0
    lane_count: int = 0
    #: app_id -> {busy, critical, stalled, finish, ops}; a re-admitted
    #: tenant's retired and live lanes fold into one row.
    lanes: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Modelled makespan speedup over serial dispatch."""
        if not self.makespan:
            return 1.0
        return self.total_work / self.makespan

    @property
    def overlap_efficiency(self) -> float:
        """Speedup as a fraction of the lane count (1.0 = perfectly
        parallel lanes, 1/n = fully serialized).

        Degenerate snapshots stay well-defined: a serial run *with*
        work reports the serial figure 1.0, while a pre-dispatch
        snapshot (no lanes, no work) reports 0.0 — never a
        ZeroDivisionError.
        """
        if not self.lane_count:
            return 1.0 if self.total_work else 0.0
        return self.speedup / self.lane_count

    @property
    def critical_share(self) -> float:
        """Fraction of all work spent inside the shared section."""
        if not self.total_work:
            return 0.0
        return self.critical_cycles / self.total_work

    def occupancy(self, app_id: str) -> float:
        """Fraction of the makespan ``app_id``'s lane was busy."""
        lane = self.lanes.get(app_id)
        if lane is None or not self.makespan:
            return 0.0
        return lane["busy"] / self.makespan


def collect_lanes(server) -> LaneMetrics:
    """Snapshot lane occupancy from a GuardianServer (live + retired)."""
    metrics = LaneMetrics(
        total_work=server.stats.cycles,
        makespan=server.makespan_cycles(),
    )
    for lane in server.lanes():
        metrics.lane_count += 1
        metrics.critical_cycles += lane.critical
        metrics.stall_cycles += lane.stalled
        row = metrics.lanes.setdefault(lane.app_id, {
            "busy": 0.0, "critical": 0.0, "stalled": 0.0,
            "finish": 0.0, "ops": 0,
        })
        row["busy"] += lane.busy
        row["critical"] += lane.critical
        row["stalled"] += lane.stalled
        row["finish"] = max(row["finish"], lane.clock)
        row["ops"] += lane.ops
    return metrics


@dataclass
class FaultMetrics:
    """Aggregate view of a TenantSupervisor's failure records — the
    containment counterpart of :class:`HotPathMetrics`.
    """

    records: int = 0
    #: fault kind -> count (ipc_drop, malformed_ptx, deadline, ...).
    by_kind: dict = field(default_factory=dict)
    #: supervisor action -> count (retried, rejected, quarantined, ...).
    by_action: dict = field(default_factory=dict)
    retries: int = 0
    retry_attempts: int = 0
    deadline_violations: int = 0
    quarantines: int = 0
    bytes_scrubbed: int = 0
    fault_cycles: float = 0.0
    #: tenant -> remaining state (budget spent, quarantined?).
    tenants: dict = field(default_factory=dict)
    #: node -> {"records", "by_action", "failure_domain_score",
    #: "health"} — populated per failure-record ``node`` stamp; the
    #: score/health fields are filled by :func:`collect_cluster_faults`
    #: (a bare supervisor has no health monitor).
    by_node: dict = field(default_factory=dict)
    migrations_completed: int = 0
    migrations_failed: int = 0
    evictions: int = 0

    @property
    def retry_success_rate(self) -> float:
        """Recovered retries over all retry outcomes; 0.0 for an
        empty pre-dispatch snapshot (never a ZeroDivisionError)."""
        exhausted = self.by_action.get("exhausted", 0)
        total = self.retries + exhausted
        return self.retries / total if total else 0.0


def collect_faults(supervisor, into: FaultMetrics | None = None) -> FaultMetrics:
    """Snapshot failure records from a
    :class:`repro.core.supervisor.TenantSupervisor`.

    Pass ``into`` to merge several supervisors into one view (the
    cluster collector does); records are grouped per the ``node``
    stamp each record carries (``"<local>"`` when unset — a
    single-node supervisor outside any cluster).
    """
    metrics = into if into is not None else FaultMetrics()
    for record in supervisor.records:
        metrics.records += 1
        metrics.by_kind[record.kind] = (
            metrics.by_kind.get(record.kind, 0) + 1
        )
        metrics.by_action[record.action] = (
            metrics.by_action.get(record.action, 0) + 1
        )
        node_key = record.node or "<local>"
        node_bucket = metrics.by_node.setdefault(node_key, {
            "records": 0,
            "by_action": {},
            "failure_domain_score": None,
            "health": None,
        })
        node_bucket["records"] += 1
        node_bucket["by_action"][record.action] = (
            node_bucket["by_action"].get(record.action, 0) + 1
        )
        metrics.fault_cycles += record.cycles
        if record.action == "retried":
            metrics.retries += 1
            metrics.retry_attempts += record.attempts
        elif record.action == "deadline":
            metrics.deadline_violations += 1
    for quarantine in supervisor.quarantines:
        metrics.quarantines += 1
        metrics.bytes_scrubbed += quarantine.bytes_scrubbed
    for app_id, state in supervisor._states.items():
        metrics.tenants[app_id] = {
            "budget_spent": state.budget,
            "quarantined": state.quarantined,
            "reason": state.reason,
        }
    return metrics


def collect_cluster_faults(cluster) -> FaultMetrics:
    """Fleet-wide failure view of a
    :class:`repro.cluster.GuardianCluster`: every node's supervisor
    records merged, each node's bucket annotated with its health state
    and failure-domain score, plus the control plane's own outcomes
    (migrations, evictions)."""
    metrics = FaultMetrics()
    for node in cluster.nodes:
        collect_faults(node.supervisor, into=metrics)
        node_bucket = metrics.by_node.setdefault(node.node_id, {
            "records": 0,
            "by_action": {},
            "failure_domain_score": None,
            "health": None,
        })
        node_bucket["failure_domain_score"] = (
            node.monitor.failure_domain_score()
        )
        node_bucket["health"] = node.monitor.state.value
    metrics.migrations_completed = cluster.migrations_completed
    metrics.migrations_failed = cluster.migrations_failed
    metrics.evictions = len(cluster.evictions)
    return metrics


@dataclass
class SystemSnapshot:
    """Every ``collect_*`` view of one deployment, taken together."""

    hotpath: HotPathMetrics
    lanes: LaneMetrics
    faults: FaultMetrics | None = None
    cluster: FaultMetrics | None = None


def collect_all(server, clients=(), supervisor=None,
                cluster=None) -> SystemSnapshot:
    """One composite snapshot: hot path + lanes, plus fault and
    cluster views when a supervisor / cluster is provided.

    When the server carries a telemetry spine, the snapshot is also
    mirrored into its metrics registry (:func:`register_snapshot`) so
    the Prometheus exposition and ``python -m repro report`` see the
    same numbers the benchmark tables print.
    """
    snapshot = SystemSnapshot(
        hotpath=collect_hotpath(server, clients=clients),
        lanes=collect_lanes(server),
        faults=(collect_faults(supervisor)
                if supervisor is not None else None),
        cluster=(collect_cluster_faults(cluster)
                 if cluster is not None else None),
    )
    telemetry = getattr(server, "telemetry", None)
    if telemetry is not None:
        register_snapshot(telemetry.registry, snapshot)
    return snapshot


def register_snapshot(registry, snapshot: SystemSnapshot) -> None:
    """Publish a :class:`SystemSnapshot` as registry gauges."""
    hotpath = snapshot.hotpath
    registry.gauge(
        "guardian_server_cycles", "server busy clock (modelled cycles)",
    ).set(hotpath.server_cycles)
    registry.gauge(
        "guardian_client_cycles",
        "sum of every client's critical-path cycles",
    ).set(hotpath.client_cycles)
    cache = registry.gauge(
        "guardian_cache_hit_rate", "hot-path cache hit rates, by cache",
    )
    cache.set(hotpath.patch_hit_rate, cache="patch")
    cache.set(hotpath.extract_hit_rate, cache="extract")
    cache.set(hotpath.fastpath_hit_rate, cache="fastpath")
    registry.gauge(
        "guardian_trace_replay_rate",
        "trace-eligible async ops served by specialized replay",
    ).set(hotpath.trace_replay_rate)
    lanes = snapshot.lanes
    registry.gauge(
        "guardian_makespan_cycles", "critical path across tenant lanes",
    ).set(lanes.makespan)
    registry.gauge(
        "guardian_overlap_efficiency",
        "lane speedup as a fraction of the lane count",
    ).set(lanes.overlap_efficiency)
    lane_busy = registry.gauge(
        "guardian_lane_busy_cycles", "per-lane busy cycles, by tenant",
    )
    lane_stalled = registry.gauge(
        "guardian_lane_stalled_cycles",
        "per-lane critical-section stall cycles, by tenant",
    )
    for app_id, row in lanes.lanes.items():
        lane_busy.set(row["busy"], tenant=app_id)
        lane_stalled.set(row["stalled"], tenant=app_id)
    for view, scope in ((snapshot.faults, "node"),
                        (snapshot.cluster, "cluster")):
        if view is None:
            continue
        records = registry.gauge(
            "guardian_failure_records",
            "supervisor failure records, by kind and scope",
        )
        for kind, count in view.by_kind.items():
            records.set(count, kind=kind, scope=scope)
        registry.gauge(
            "guardian_retry_success_rate",
            "recovered retries over all retry outcomes",
        ).set(view.retry_success_rate, scope=scope)


class Profiler:
    """Collects per-kernel profiles from a device.

    Usage::

        profiler = Profiler(device)   # turns on launch-result capture
        ... run workload ...
        profiles = profiler.collect()
    """

    def __init__(self, device: Device):
        self.device = device
        device._keep_launch_results = True
        self._consumed = 0

    def collect(self) -> dict[str, KernelProfile]:
        """Aggregate every launch since the last collect()."""
        profiles: dict[str, KernelProfile] = {}
        results = self.device.metrics.launch_results
        for result in results[self._consumed:]:
            profile = profiles.get(result.kernel_name)
            if profile is None:
                profile = KernelProfile(name=result.kernel_name)
                profiles[result.kernel_name] = profile
            profile.absorb(result)
        self._consumed = len(results)
        return profiles

    @staticmethod
    def overall(profiles: dict[str, KernelProfile]) -> KernelProfile:
        """Fold every kernel's profile into one aggregate row."""
        total = KernelProfile(name="<all>")
        for profile in profiles.values():
            total.launches += profile.launches
            total.total_cycles += profile.total_cycles
            total.total_instructions += profile.total_instructions
            total.loads += profile.loads
            total.stores += profile.stores
            total.l1_hits += profile.l1_hits
            total.l2_hits += profile.l2_hits
            total.global_accesses += profile.global_accesses
        return total
