"""Text rendering of paper-style tables.

The benchmark harness prints the same rows the paper's tables and
figure captions report; these helpers keep that output uniform.
"""

from __future__ import annotations

from typing import Sequence

from repro.gpu.specs import ALL_SPECS


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Monospace table with column sizing."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[index]) for row in cells))
        if cells else len(str(header))
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(value.ljust(w) for value, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_spec_table() -> str:
    """The paper's Table 2 for our simulated devices."""
    fields = [
        ("Compute Capability", lambda s: s.compute_capability),
        ("#SMs", lambda s: s.num_sms),
        ("#CUDA cores", lambda s: s.cuda_cores),
        ("L1 (KB)", lambda s: s.l1_kb),
        ("L2 (KB)", lambda s: s.l2_kb),
        ("Global memory (GB)", lambda s: s.global_memory_bytes >> 30),
        ("#Registers / Thread", lambda s: s.registers_per_thread),
        ("PCIe", lambda s: s.pcie),
        ("L1 hit latency (cycles)", lambda s: s.l1_hit_cycles),
        ("L2 hit latency (cycles)", lambda s: s.l2_hit_cycles),
        ("Global memory BW (GB/s)", lambda s: s.global_bw_gbps),
        ("ECC", lambda s: "Yes" if s.ecc else "No"),
    ]
    specs = list(ALL_SPECS.values())
    rows = [
        [label] + [extract(spec) for spec in specs]
        for label, extract in fields
    ]
    return render_table(
        ["Specifications"] + [spec.name for spec in specs], rows,
        title="Table 2: GPU specifications",
    )


#: The qualitative comparison of the paper's Table 6. Guardian is the
#: only row with every property — the claim the feature-matrix
#: benchmark asserts structurally.
FEATURE_MATRIX: dict[str, dict[str, bool]] = {
    "Time-sharing": {
        "no_src_mod": True, "cuda_lib_support": True,
        "no_extra_hw": True, "spatial_sharing": False,
    },
    "MASK": {
        "no_src_mod": True, "cuda_lib_support": True,
        "no_extra_hw": False, "spatial_sharing": True,
    },
    "MIG": {
        "no_src_mod": True, "cuda_lib_support": True,
        "no_extra_hw": False, "spatial_sharing": True,
    },
    "G-NET": {
        "no_src_mod": False, "cuda_lib_support": False,
        "no_extra_hw": True, "spatial_sharing": True,
    },
    "Guardian": {
        "no_src_mod": True, "cuda_lib_support": True,
        "no_extra_hw": True, "spatial_sharing": True,
    },
}


def render_feature_matrix() -> str:
    headers = ["Approach", "No src code mod.", "CUDA lib support",
               "No extra/special HW", "Spatial sharing"]
    rows = []
    for name, features in FEATURE_MATRIX.items():
        rows.append([
            name,
            "yes" if features["no_src_mod"] else "-",
            "yes" if features["cuda_lib_support"] else "-",
            "yes" if features["no_extra_hw"] else "-",
            "yes" if features["spatial_sharing"] else "-",
        ])
    return render_table(headers, rows,
                        title="Table 6: protected GPU sharing approaches")


def render_hotpath_report(metrics, title: str = "Hot-path caches") -> str:
    """Cache hit rates and batching next to the raw cycle totals.

    ``metrics`` is an :class:`repro.analysis.metrics.HotPathMetrics`.
    """
    rows = [
        ["patch cache", metrics.patch_cache_hits,
         metrics.patch_cache_misses, percent(metrics.patch_hit_rate)],
        ["extract memo", metrics.extract_cache_hits,
         metrics.extract_cache_misses, percent(metrics.extract_hit_rate)],
        ["launch fast path", metrics.fastpath_hits,
         metrics.fastpath_misses, percent(metrics.fastpath_hit_rate)],
    ]
    if metrics.trace_eligible_ops:
        # Replays vs interpreted-and-recorded ops: the row only appears
        # when trace specialization actually saw traffic, so reports
        # from trace-off runs are byte-identical to before.
        rows.append([
            "trace replay", metrics.trace_replay_ops,
            metrics.trace_eligible_ops - metrics.trace_replay_ops,
            percent(metrics.trace_replay_rate),
        ])
    table = render_table(["cache", "hits", "misses", "hit rate"], rows,
                         title=title)
    lines = [
        table,
        f"ipc: {metrics.ipc_messages} messages in "
        f"{metrics.ipc_roundtrips} round-trips, "
        f"{metrics.ipc_batches} batches "
        f"(mean batch {metrics.mean_batch_size:.1f})",
        f"cycles: server {metrics.server_cycles:,.0f} + "
        f"clients {metrics.client_cycles:,.0f} = "
        f"{metrics.total_cycles:,.0f}",
    ]
    if metrics.traces_compiled or metrics.trace_invalidations:
        lines.insert(2, (
            f"traces: {metrics.traces_compiled} compiled, "
            f"{metrics.trace_replays} block replays, "
            f"{metrics.trace_invalidations} invalidated "
            f"({metrics.trace_guard_failures} guard failures, "
            f"{metrics.trace_ranges_prechecked} ranges prechecked, "
            f"{metrics.ipc_marshal_cached_calls} cached marshals)"
        ))
    if metrics.patch_disk_hits or metrics.patch_disk_writes:
        lines.insert(2, (
            f"patch disk cache: {metrics.patch_disk_hits} hits, "
            f"{metrics.patch_disk_writes} writes"
        ))
    if metrics.ipc_aborted_batches or metrics.ipc_discarded_calls:
        lines.insert(2, (
            f"ipc aborts: {metrics.ipc_aborted_batches} batches "
            f"discarded ({metrics.ipc_discarded_calls} calls never "
            f"delivered)"
        ))
    return "\n".join(lines)


def render_lane_report(metrics, title: str = "Dispatch lanes") -> str:
    """Per-lane occupancy and the overlap summary.

    ``metrics`` is an :class:`repro.analysis.metrics.LaneMetrics` from
    :func:`repro.analysis.metrics.collect_lanes`.
    """
    rows = [
        [app_id, f"{row['busy']:,.0f}", f"{row['critical']:,.0f}",
         f"{row['stalled']:,.0f}", f"{row['finish']:,.0f}",
         row["ops"], percent(metrics.occupancy(app_id))]
        for app_id, row in sorted(metrics.lanes.items())
    ]
    table = render_table(
        ["lane", "busy", "critical", "stalled", "finish", "ops",
         "occupancy"],
        rows, title=title,
    )
    lines = [
        table,
        f"work {metrics.total_work:,.0f} over makespan "
        f"{metrics.makespan:,.0f} cycles = "
        f"{metrics.speedup:.2f}x modelled speedup "
        f"({percent(metrics.overlap_efficiency)} of "
        f"{metrics.lane_count} lanes)",
        f"critical section: {percent(metrics.critical_share)} of work, "
        f"{metrics.stall_cycles:,.0f} cycles stalled waiting",
    ]
    return "\n".join(lines)


def render_failure_report(metrics, title: str = "Tenant failures") -> str:
    """Fault kinds, supervisor actions, and quarantine outcomes.

    ``metrics`` is an :class:`repro.analysis.metrics.FaultMetrics`.
    """
    kind_rows = sorted(metrics.by_kind.items())
    action_rows = sorted(metrics.by_action.items())
    lines = [
        render_table(["fault kind", "events"], kind_rows, title=title),
        render_table(["supervisor action", "events"], action_rows),
    ]
    if metrics.by_node:
        node_rows = []
        for node_id, bucket in sorted(metrics.by_node.items()):
            score = bucket["failure_domain_score"]
            actions = ", ".join(
                f"{action}={count}"
                for action, count in sorted(bucket["by_action"].items())
            ) or "-"
            node_rows.append((
                node_id,
                bucket["records"],
                "-" if score is None else f"{score:.2f}",
                bucket["health"] or "-",
                actions,
            ))
        lines.append(render_table(
            ["node", "records", "fd score", "health", "actions"],
            node_rows, title="Failure domains",
        ))
    lines += [
        f"retries: {metrics.retries} recovered "
        f"({metrics.retry_attempts} resend attempts, "
        f"success rate {percent(metrics.retry_success_rate)})",
        f"deadline violations: {metrics.deadline_violations}",
        f"quarantines: {metrics.quarantines} "
        f"({metrics.bytes_scrubbed:,} bytes scrubbed)",
        f"fault-handling cycles: {metrics.fault_cycles:,.0f}",
    ]
    if metrics.migrations_completed or metrics.migrations_failed \
            or metrics.evictions:
        lines.append(
            f"migrations: {metrics.migrations_completed} completed, "
            f"{metrics.migrations_failed} failed; "
            f"evictions: {metrics.evictions}"
        )
    for app_id, status in sorted(metrics.tenants.items()):
        if status["quarantined"]:
            lines.append(
                f"  {app_id}: QUARANTINED — {status['reason']} "
                f"(budget spent {status['budget_spent']:.1f})"
            )
        elif status["budget_spent"]:
            lines.append(
                f"  {app_id}: healthy, budget spent "
                f"{status['budget_spent']:.1f}"
            )
    return "\n".join(lines)


def render_telemetry_report(snapshot: dict,
                            title: str = "Telemetry") -> str:
    """Render a dumped :meth:`repro.telemetry.Telemetry.snapshot`.

    This is what ``python -m repro report <snapshot.json>`` prints:
    the histogram families with their p50/p99/p999 quantiles, the
    counter and gauge series, and a span summary by category.
    """
    lines = [title]
    meta = snapshot.get("meta") or {}
    if meta:
        lines.append(", ".join(
            f"{key}={value}" for key, value in sorted(meta.items())
        ))
    histogram_rows = []
    counter_rows = []
    gauge_rows = []
    for family in snapshot.get("metrics", []):
        for series in family["series"]:
            labels = ", ".join(
                f"{key}={value}"
                for key, value in sorted(series["labels"].items())
            ) or "-"
            if family["type"] == "histogram":
                quantiles = series["quantiles"]
                histogram_rows.append([
                    family["name"], labels, series["count"],
                    _quantity(quantiles.get("p50")),
                    _quantity(quantiles.get("p99")),
                    _quantity(quantiles.get("p999")),
                    _quantity(series.get("max")),
                ])
            elif family["type"] == "counter":
                counter_rows.append([
                    family["name"], labels, _quantity(series["value"]),
                ])
            else:
                gauge_rows.append([
                    family["name"], labels, _quantity(series["value"]),
                ])
    if histogram_rows:
        lines.append(render_table(
            ["histogram", "labels", "count", "p50", "p99", "p999",
             "max"],
            histogram_rows, title="Latency distributions",
        ))
    if counter_rows:
        lines.append(render_table(
            ["counter", "labels", "total"], counter_rows,
            title="Counters",
        ))
    if gauge_rows:
        lines.append(render_table(
            ["gauge", "labels", "value"], gauge_rows, title="Gauges",
        ))
    spans = snapshot.get("spans", [])
    if spans:
        by_category: dict[str, list] = {}
        for span in spans:
            bucket = by_category.setdefault(
                span["category"], [0, 0.0]
            )
            bucket[0] += 1
            bucket[1] += span["end"] - span["start"]
        span_rows = [
            [category, count, f"{cycles:,.0f}"]
            for category, (count, cycles)
            in sorted(by_category.items())
        ]
        lines.append(render_table(
            ["span category", "spans", "cycles"], span_rows,
            title="Spans",
        ))
    dropped = snapshot.get("spans_dropped", 0)
    if dropped:
        lines.append(f"spans dropped by the ring bound: {dropped}")
    return "\n\n".join(lines)


def render_slo_report(grades: dict,
                      title: str = "Latency under load") -> str:
    """Render :func:`repro.loadgen.slo.evaluate_slo` output.

    One row per SLO class — offered/completed/shed counts, the p50,
    p99 and p999 modelled session latency against the class target,
    goodput and shed rate — then the overall line. Guarded metrics
    that evaluated to ``None`` render as ``n/a``.
    """
    def cell(value, fmt: str = ",.0f") -> str:
        return "n/a" if value is None else format(value, fmt)

    rows = []
    for name, grade in sorted(grades["classes"].items()):
        rows.append([
            name, grade["offered"], grade["completed"], grade["shed"],
            grade["rejected"],
            cell(grade["p50"]), cell(grade["p99"]),
            cell(grade["p999"]),
            cell(grade["slo_p99_cycles"]),
            cell(grade["goodput_per_mcycle"], ".3f"),
            cell(grade["shed_rate"], ".3f"),
            cell(grade["time_above_slo"], ".3f"),
        ])
    table = render_table(
        ["class", "offered", "done", "shed", "rej", "p50", "p99",
         "p999", "slo p99", "goodput/Mcy", "shed rate", "above slo"],
        rows, title=title,
    )
    overall = grades["overall"]
    lines = [
        table,
        f"overall: {overall['completed']}/{overall['offered']} "
        f"completed ({overall['compliant']} within SLO) over "
        f"{overall['horizon_cycles']:,.0f} virtual cycles; "
        f"goodput {cell(overall['goodput_per_mcycle'], '.3f')}/Mcycle, "
        f"shed rate {cell(overall['shed_rate'], '.3f')}",
    ]
    if overall.get("capacity_peak") is not None:
        lines.append(
            f"capacity: final {overall['capacity_final']} lanes, "
            f"peak {overall['capacity_peak']}"
        )
    return "\n".join(lines)


def _quantity(value) -> str:
    """Compact numeric cell: thousands-grouped, '-' for absent."""
    if value is None:
        return "-"
    if isinstance(value, float) and value != int(value):
        return f"{value:,.1f}"
    return f"{value:,.0f}"


def percent(value: float) -> str:
    return f"{value * 100:.1f}%"


def overhead_vs(base: float, measured: float) -> float:
    """Relative overhead of ``measured`` against ``base``."""
    if base <= 0:
        return 0.0
    return measured / base - 1.0
