"""Measurement and reporting utilities.

:mod:`repro.analysis.metrics` is the Nsight/rdtsc stand-in — it
collects per-kernel cycle counts, cache hit ratios and call latencies
from the simulator; :mod:`repro.analysis.reporting` renders the
paper-style text tables the benchmark harness prints.
"""

from repro.analysis.metrics import (
    FaultMetrics,
    KernelProfile,
    Profiler,
    collect_cluster_faults,
    collect_faults,
)
from repro.analysis.reporting import render_failure_report, render_table

__all__ = [
    "FaultMetrics",
    "KernelProfile",
    "Profiler",
    "collect_cluster_faults",
    "collect_faults",
    "render_failure_report",
    "render_table",
]
