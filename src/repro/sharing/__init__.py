"""Multi-tenant deployments (the paper's §5 "Baseline and G-Safe
Deployments").

Four ways to put applications on one GPU:

- **native** — each app has its own context; the GPU time-shares with
  hardware protection (the protected baseline);
- **mps** — one shared context via an MPS-like server; spatial sharing,
  *no* protection (:mod:`repro.sharing.mps`);
- **guardian-noprot** — Guardian's interception/forwarding with checks
  disabled (isolates interception overhead);
- **guardian** — Guardian with address fencing (the paper's system).

:mod:`repro.sharing.deployments` runs any workload mix under any of
the four and reports per-app and makespan timings;
:mod:`repro.sharing.workload_mixes` defines the Table 4 mixes A-P.
"""

from repro.sharing.deployments import (
    AppSpec,
    DeploymentRun,
    DEPLOYMENTS,
    run_deployment,
)
from repro.sharing.workload_mixes import MIXES, build_mix

__all__ = [
    "AppSpec",
    "DEPLOYMENTS",
    "DeploymentRun",
    "MIXES",
    "build_mix",
    "run_deployment",
]
