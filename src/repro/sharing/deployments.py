"""The uniform deployment harness (Fig. 7's four configurations).

``run_deployment`` places a set of applications on one simulated GPU
under a chosen sharing deployment and reports:

- per-application wall time — the max of the app's host-side time
  (runtime surface + backend/driver/IPC cycles) and its device-side
  completion time from the timeline;
- the workload makespan — bounded below by the device timeline, the
  slowest app's host time, and (for the server-based deployments) the
  server's serial busy time: both MPS and Guardian process all
  clients' calls in one daemon, which is exactly the bottleneck the
  paper observes on kernel-heavy workloads (§6.1).

Applications are expressed as :class:`AppSpec` — a name plus a
callable that, given a ``CudaRuntime``, performs all the app's GPU
work. Functional execution happens at submission; timing is resolved
by one timeline pass at the end (see :mod:`repro.gpu.device`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.client import preload_guardian
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer, ServerConfig
from repro.gpu.device import Device
from repro.gpu.specs import DeviceSpec, QUADRO_RTX_A4000
from repro.runtime.api import CudaRuntime, HostCostModel
from repro.runtime.backend import NativeBackend
from repro.runtime.interpose import LIBCUDA, DynamicLoader
from repro.sharing.mps import MPSClient, MPSServer

#: The four deployments of the paper's evaluation.
DEPLOYMENTS = ("native", "mps", "guardian-noprot", "guardian")

#: Default per-tenant partition request (power-of-two).
DEFAULT_PARTITION_BYTES = 64 << 20


@dataclass
class AppSpec:
    """One application: a unique id and its workload body."""

    app_id: str
    workload: Callable[[CudaRuntime], None]
    partition_bytes: int = DEFAULT_PARTITION_BYTES


@dataclass
class AppResult:
    app_id: str
    host_seconds: float
    device_seconds: float

    @property
    def wall_seconds(self) -> float:
        return max(self.host_seconds, self.device_seconds)


@dataclass
class DeploymentRun:
    """Outcome of one workload mix under one deployment."""

    deployment: str
    apps: list[AppResult]
    device_makespan_seconds: float
    server_busy_seconds: float
    context_switches: int
    kernels_launched: int
    transfers_rejected: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def makespan_seconds(self) -> float:
        """Total time to finish every co-located application.

        Server serialisation is not a separate term: it already bounds
        the device timeline through per-task submission release times.
        """
        slowest_app = max(
            (app.wall_seconds for app in self.apps), default=0.0
        )
        return max(self.device_makespan_seconds, slowest_app)


def run_deployment(
    deployment: str,
    apps: list[AppSpec],
    spec: DeviceSpec = QUADRO_RTX_A4000,
    mode: FencingMode = FencingMode.BITWISE,
    max_blocks: Optional[int] = None,
    standalone_native: bool = False,
    device: Optional[Device] = None,
    server_config: Optional[ServerConfig] = None,
) -> DeploymentRun:
    """Run a workload mix under one deployment and time it.

    ``server_config`` applies to the Guardian deployments only (hot-path
    caching/batching knobs); the figure-reproduction callers leave it
    ``None`` so the measured costs match the paper.
    """
    if deployment not in DEPLOYMENTS:
        raise ValueError(
            f"unknown deployment {deployment!r}; pick from {DEPLOYMENTS}"
        )
    device = device or Device(spec)
    if max_blocks is not None:
        device.max_blocks_per_launch = max_blocks

    costs = HostCostModel()
    server: object = None
    if deployment == "mps":
        server = MPSServer(device)
    elif deployment in ("guardian", "guardian-noprot"):
        server = GuardianServer(
            device,
            mode=mode if deployment == "guardian" else FencingMode.NONE,
            standalone_native=standalone_native,
            config=server_config,
        )

    contexts = []
    for app in apps:
        loader = DynamicLoader()
        if deployment == "native":
            backend = NativeBackend(device, app.app_id)
            loader.register(LIBCUDA, backend)
        elif deployment == "mps":
            backend = MPSClient(server, app.app_id)
            loader.register(LIBCUDA, backend)
        else:
            backend = preload_guardian(
                loader, server, app.app_id, app.partition_bytes
            )
        runtime = CudaRuntime(loader, costs=costs)
        contexts.append((app, backend, runtime))

    # Functional phase: run every app's workload (submission order
    # interleaves nothing across tenants' memory, so order is free).
    for app, backend, runtime in contexts:
        app.workload(runtime)
        # A batching client may end its workload with calls still
        # queued; flush so their effects land before the timeline pass.
        channel = getattr(backend, "channel", None)
        if channel is not None:
            channel.flush()

    timeline = device.synchronize(spatial=(deployment != "native"))

    results = []
    for app, backend, runtime in contexts:
        host_cycles = runtime.profile.cycles + backend.profile.cycles
        completion = timeline.completion_by_tag.get(app.app_id, 0.0)
        results.append(
            AppResult(
                app_id=app.app_id,
                host_seconds=costs.cycles_to_seconds(host_cycles),
                device_seconds=spec.cycles_to_seconds(completion),
            )
        )

    server_busy = 0.0
    rejected = 0
    if server is not None:
        server_busy = costs.cycles_to_seconds(server.stats.cycles)
        rejected = getattr(server.stats, "transfers_rejected", 0)

    return DeploymentRun(
        deployment=deployment,
        apps=results,
        device_makespan_seconds=spec.cycles_to_seconds(
            timeline.makespan_cycles
        ),
        server_busy_seconds=server_busy,
        context_switches=timeline.context_switches,
        kernels_launched=device.metrics.kernels_launched,
        transfers_rejected=rejected,
    )
