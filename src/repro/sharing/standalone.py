"""Standalone-application overhead runs (the paper's §6.2 setup).

Running one application alone isolates Guardian's per-mechanism costs:

========================  ==================================================
configuration             what it measures
========================  ==================================================
``native``                unprotected baseline (direct driver)
``noprot``                interception + IPC + pointerToSymbol lookup only
``bitwise``               + two bit-masking instructions per ld/st
``modulo``                + inline 64-bit modulo fencing per ld/st
``checking``              + conditional bounds checks per ld/st
========================  ==================================================

``run_standalone_suite`` runs the same workload under each requested
configuration on a fresh device and returns wall seconds per
configuration — the bars of Figs. 8, 9 and 12.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.policy import FencingMode
from repro.gpu.specs import DeviceSpec, QUADRO_RTX_A4000
from repro.sharing.deployments import AppSpec, DeploymentRun, run_deployment

#: Standalone configurations, in the order the paper plots them.
STANDALONE_CONFIGS = ("native", "noprot", "bitwise", "modulo", "checking")

_CONFIG_TO_DEPLOYMENT = {
    "native": ("native", FencingMode.NONE),
    "noprot": ("guardian-noprot", FencingMode.NONE),
    "bitwise": ("guardian", FencingMode.BITWISE),
    "modulo": ("guardian", FencingMode.MODULO),
    "checking": ("guardian", FencingMode.CHECKING),
}


def run_standalone(
    workload: Callable,
    config: str,
    spec: DeviceSpec = QUADRO_RTX_A4000,
    max_blocks: Optional[int] = None,
    app_id: str = "app",
) -> DeploymentRun:
    """Run one workload alone under one configuration."""
    try:
        deployment, mode = _CONFIG_TO_DEPLOYMENT[config]
    except KeyError:
        raise ValueError(
            f"unknown standalone config {config!r}; pick from "
            f"{STANDALONE_CONFIGS}"
        ) from None
    app = AppSpec(app_id=app_id, workload=workload)
    return run_deployment(deployment, [app], spec=spec, mode=mode,
                          max_blocks=max_blocks)


def run_standalone_suite(
    workload_factory: Callable[[], Callable],
    configs: Sequence[str] = STANDALONE_CONFIGS,
    spec: DeviceSpec = QUADRO_RTX_A4000,
    max_blocks: Optional[int] = None,
) -> dict[str, float]:
    """Wall seconds per configuration for one workload.

    ``workload_factory`` must return a *fresh* workload callable per
    invocation (each configuration runs on a fresh device).
    """
    results = {}
    for config in configs:
        run = run_standalone(workload_factory(), config, spec=spec,
                             max_blocks=max_blocks)
        results[config] = run.makespan_seconds
    return results
