"""The Table 4 workload mixes (A-P).

A-H co-locate identical applications; I-P mix different ones. The
paper runs hundreds of epochs on full datasets; this reproduction
keeps the *structure* (same apps, same relative epoch ratios, 2-6
concurrent clients) at simulator scale. The scale knobs are module
constants so benchmarks can crank them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.runtime.api import CudaRuntime
from repro.sharing.deployments import AppSpec
from repro.workloads.frameworks.datasets import dataset_for
from repro.workloads.frameworks.libs import LibraryBundle
from repro.workloads.frameworks.networks import MODEL_ZOO
from repro.workloads.frameworks.training import train
from repro.workloads.rodinia import RODINIA_APPS

#: Samples per synthetic dataset in mix workloads.
MIX_SAMPLES = 16
#: Minibatch size in mix workloads.
MIX_BATCH = 8
#: The paper's per-app epochs divided by this give ours (500 -> 2).
EPOCH_SCALE = 250


@dataclass(frozen=True)
class AppDef:
    """One application slot in a mix."""

    kind: str          # "ml" | "rodinia"
    name: str          # model-zoo or rodinia name
    paper_epochs: int = 0   # ML apps: the paper's epoch count

    @property
    def epochs(self) -> int:
        return max(1, self.paper_epochs // EPOCH_SCALE)


def _ml(name: str, paper_epochs: int) -> AppDef:
    return AppDef(kind="ml", name=name, paper_epochs=paper_epochs)


def _rod(name: str) -> AppDef:
    return AppDef(kind="rodinia", name=name)


#: Table 4, verbatim structure.
MIXES: dict[str, list[AppDef]] = {
    "A": [_ml("lenet", 500)] * 2,
    "B": [_ml("lenet", 500)] * 4,
    "C": [_ml("cifar10", 100)] * 2,
    "D": [_ml("cifar10", 100)] * 4,
    "E": [_rod("gaussian")] * 2,
    "F": [_rod("gaussian")] * 4,
    "G": [_rod("lavamd")] * 2,
    "H": [_rod("lavamd")] * 4,
    "I": [_ml("lenet", 500), _ml("siamese", 50)],
    "J": [_ml("siamese", 30), _ml("cifar10", 100)],
    "K": [_ml("lenet", 500)] * 2 + [_ml("siamese", 30)]
         + [_ml("cifar10", 100)] * 2,
    "L": [_ml("lenet", 500)] * 3 + [_ml("siamese", 30)]
         + [_ml("cifar10", 100)] * 2,
    "M": [_rod("hotspot"), _rod("gaussian")],
    "N": [_rod("gaussian"), _rod("lavamd")],
    "O": [_rod("particle"), _rod("hotspot")],
    "P": [_rod("gaussian"), _rod("hotspot"), _rod("lavamd"),
          _rod("particle")],
}


def _ml_workload(name: str, epochs: int, seed: int,
                 samples: int = None,
                 batch: int = None) -> Callable[[CudaRuntime], None]:
    samples = samples if samples is not None else MIX_SAMPLES
    batch = batch if batch is not None else MIX_BATCH

    def workload(runtime: CudaRuntime) -> None:
        libs = LibraryBundle.create(runtime, seed=seed)
        model = MODEL_ZOO[name](libs)
        dataset = dataset_for(model.input_shape, samples=samples,
                              seed=seed)
        train(model, dataset, epochs=epochs, batch_size=batch, lr=0.05)

    return workload


def _rodinia_workload(name: str,
                      seed: int) -> Callable[[CudaRuntime], None]:
    def workload(runtime: CudaRuntime) -> None:
        app = RODINIA_APPS[name](runtime, seed=seed + 17)
        app.run()

    return workload


def build_mix(mix_id: str,
              partition_bytes: int = 64 << 20,
              samples: int = None,
              batch: int = None) -> list[AppSpec]:
    """Instantiate one Table 4 mix as deployable AppSpecs.

    ``samples``/``batch`` override the defaults — the Fig. 7 benchmark
    uses larger batches (with device-side block sampling) so kernels
    are device-bound like the paper's, not launch-bound.
    """
    try:
        defs = MIXES[mix_id]
    except KeyError:
        raise KeyError(
            f"unknown mix {mix_id!r}; valid ids: {sorted(MIXES)}"
        ) from None
    specs = []
    for index, app_def in enumerate(defs):
        app_id = f"{mix_id}.{index}.{app_def.name}"
        if app_def.kind == "ml":
            workload = _ml_workload(app_def.name, app_def.epochs,
                                    seed=index, samples=samples,
                                    batch=batch)
        else:
            workload = _rodinia_workload(app_def.name, seed=index)
        specs.append(AppSpec(app_id=app_id, workload=workload,
                             partition_bytes=partition_bytes))
    return specs
