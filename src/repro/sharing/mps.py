"""An NVIDIA MPS-like sharing server (unprotected spatial baseline).

MPS funnels all clients into one GPU context so their kernels run
concurrently — with **no memory isolation**: allocations from different
clients interleave in the same address space, and nothing stops a
kernel from dereferencing into a neighbour's buffer (the paper's
Fig. 2 scenario, which the isolation tests demonstrate).

Cost model: like Guardian, MPS is an API-remoting server; every call
pays the IPC round-trip plus server-side dispatch. Its per-launch
dispatch (client scheduling, resource-limit accounting, command
validation) is charged at :data:`MPS_LAUNCH_DISPATCH_CYCLES` — a bit
more than Guardian's bare pointerToSymbol lookup, which is how the
paper's observation that "G-Safe without protection performs better
than MPS in workloads with thousands of pending kernels" (§6.1)
emerges: both servers serialise all clients' submissions, so the
per-launch difference compounds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import DriverError
from repro.core.ipc import IPCChannel, IPCCostModel
from repro.driver.api import DriverAPI
from repro.driver.fatbin import FatBinary
from repro.gpu.device import Device
from repro.runtime.backend import BackendProfile, GpuBackend

#: Server-side cycles per kernel launch (dispatch only, syscall apart).
MPS_LAUNCH_DISPATCH_CYCLES = 900
#: Server-side cycles for non-launch operations.
MPS_DISPATCH_CYCLES = 250
#: The native launch syscall the server finally performs.
MPS_LAUNCH_SYSCALL_CYCLES = 9_000
#: Ordinary driver work the daemon performs per memory operation.
MPS_DRIVER_MALLOC_CYCLES = 2_000
MPS_DRIVER_MEMCPY_CYCLES = 1_800


@dataclass
class MPSStats:
    launches: int = 0
    cycles: float = 0.0


@dataclass
class _MPSClientState:
    app_id: str
    stream: object
    functions: dict[int, object] = field(default_factory=dict)
    handle_counter: "itertools.count" = field(
        default_factory=lambda: itertools.count(0x8000)
    )


class MPSServer:
    """The MPS control daemon: one context, one stream per client."""

    def __init__(self, device: Device):
        self.device = device
        self.driver = DriverAPI(device)
        self.context = self.driver.cuCtxCreate("mps-server")
        self.stats = MPSStats()
        self._clients: dict[str, _MPSClientState] = {}
        from repro.runtime.backend import CPU_GHZ

        self._clock_ratio = device.spec.clock_ghz / CPU_GHZ

    def _release(self) -> float:
        return self.stats.cycles * self._clock_ratio

    def attach(self, app_id: str):
        if app_id in self._clients:
            raise DriverError(f"client {app_id!r} already attached")
        self._clients[app_id] = _MPSClientState(
            app_id=app_id,
            stream=self.driver.cuStreamCreate(self.context),
        )
        return None, MPS_DISPATCH_CYCLES

    def detach(self, app_id: str):
        self._clients.pop(app_id, None)
        return None, MPS_DISPATCH_CYCLES

    def _client(self, app_id: str) -> _MPSClientState:
        try:
            return self._clients[app_id]
        except KeyError:
            raise DriverError(f"unknown MPS client {app_id!r}") from None

    # -- unchecked operations: straight to the shared context -----------------

    def malloc(self, app_id: str, size: int):
        cycles = MPS_DISPATCH_CYCLES + MPS_DRIVER_MALLOC_CYCLES
        self._charge(cycles)
        # Allocations of all clients interleave in one address space —
        # the unprotected property Guardian exists to fix.
        return self.driver.cuMemAlloc(self.context, size), cycles

    def free(self, app_id: str, address: int):
        self._charge(MPS_DISPATCH_CYCLES)
        self.driver.cuMemFree(self.context, address)
        return None, MPS_DISPATCH_CYCLES

    def memcpy_h2d(self, app_id: str, dst: int, data: bytes,
                   stream_id: int = 0):
        self._charge(MPS_DISPATCH_CYCLES + MPS_DRIVER_MEMCPY_CYCLES)
        client = self._client(app_id)
        self.driver.cuMemcpyHtoD(client.stream, dst, data, tag=app_id,
                                 release_cycles=self._release())
        return None, MPS_DISPATCH_CYCLES + MPS_DRIVER_MEMCPY_CYCLES + MPS_DRIVER_MEMCPY_CYCLES

    def memcpy_d2h(self, app_id: str, src: int, size: int,
                   stream_id: int = 0):
        self._charge(MPS_DISPATCH_CYCLES + MPS_DRIVER_MEMCPY_CYCLES)
        client = self._client(app_id)
        return (self.driver.cuMemcpyDtoH(client.stream, src, size,
                                         tag=app_id,
                                         release_cycles=self._release()),
                MPS_DISPATCH_CYCLES + MPS_DRIVER_MEMCPY_CYCLES)

    def memcpy_d2d(self, app_id: str, dst: int, src: int, size: int,
                   stream_id: int = 0):
        self._charge(MPS_DISPATCH_CYCLES + MPS_DRIVER_MEMCPY_CYCLES)
        client = self._client(app_id)
        self.driver.cuMemcpyDtoD(client.stream, dst, src, size, tag=app_id,
                                 release_cycles=self._release())
        return None, MPS_DISPATCH_CYCLES + MPS_DRIVER_MEMCPY_CYCLES + MPS_DRIVER_MEMCPY_CYCLES

    def memset(self, app_id: str, dst: int, value: int, size: int,
               stream_id: int = 0):
        self._charge(MPS_DISPATCH_CYCLES + MPS_DRIVER_MEMCPY_CYCLES)
        client = self._client(app_id)
        self.driver.cuMemsetD8(client.stream, dst, value, size, tag=app_id,
                               release_cycles=self._release())
        return None, MPS_DISPATCH_CYCLES + MPS_DRIVER_MEMCPY_CYCLES

    def register_fatbin(self, app_id: str, fatbin: FatBinary):
        client = self._client(app_id)
        module = self.driver.cuModuleLoadFatBinary(self.context, fatbin)
        handles = {}
        for name in module.kernel_names():
            handle = next(client.handle_counter)
            client.functions[handle] = self.driver.cuModuleGetFunction(
                module, name)
            handles[name] = handle
        return handles, MPS_DISPATCH_CYCLES

    def load_module_ptx(self, app_id: str, ptx_text: str):
        client = self._client(app_id)
        module = self.driver.cuModuleLoadData(self.context, ptx_text)
        handles = {}
        for name in module.kernel_names():
            handle = next(client.handle_counter)
            client.functions[handle] = self.driver.cuModuleGetFunction(
                module, name)
            handles[name] = handle
        return handles, MPS_DISPATCH_CYCLES

    def launch_kernel(self, app_id: str, handle: int, grid: tuple,
                      block: tuple, params: list, stream_id: int = 0):
        client = self._client(app_id)
        function = client.functions.get(handle)
        if function is None:
            raise DriverError(
                f"MPS client {app_id!r}: bad handle {handle:#x}"
            )
        cycles = MPS_LAUNCH_DISPATCH_CYCLES + MPS_LAUNCH_SYSCALL_CYCLES
        self.stats.launches += 1
        self._charge(cycles)
        self.driver.cuLaunchKernel(function, grid, block, list(params),
                                   client.stream, tag=app_id,
                                   release_cycles=self._release())
        return None, cycles

    def create_stream(self, app_id: str):
        client = self._client(app_id)
        return client.stream.stream_id, MPS_DISPATCH_CYCLES

    def synchronize(self, app_id: str):
        return None, MPS_DISPATCH_CYCLES

    def get_spec(self, app_id: str):
        return self.device.spec, MPS_DISPATCH_CYCLES

    def _charge(self, cycles: float) -> None:
        self.stats.cycles += cycles


class MPSClient(GpuBackend):
    """A client process's view of the MPS daemon."""

    def __init__(self, server: MPSServer, app_id: str,
                 ipc_costs: IPCCostModel | None = None):
        self.app_id = app_id
        self.channel = IPCChannel(server, app_id, costs=ipc_costs)
        self.profile = BackendProfile()
        self._spec = None
        self._export_tables = None
        self._call("attach")

    def _call(self, method: str, *args, payload_bytes: int = 0,
              sync: bool = True):
        before = self.channel.stats.client_cycles
        result = self.channel.call(method, *args,
                                   payload_bytes=payload_bytes,
                                   sync=sync)
        self.profile.charge(
            method, self.channel.stats.client_cycles - before
        )
        return result

    def malloc(self, size: int) -> int:
        return self._call("malloc", size)

    def free(self, address: int) -> None:
        self._call("free", address)

    def memcpy_h2d(self, dst: int, data: bytes, stream_id: int = 0) -> None:
        self._call("memcpy_h2d", dst, data, stream_id,
                   payload_bytes=len(data), sync=False)

    def memcpy_d2h(self, src: int, size: int, stream_id: int = 0) -> bytes:
        return self._call("memcpy_d2h", src, size, stream_id,
                          payload_bytes=size)

    def memcpy_d2d(self, dst: int, src: int, size: int,
                   stream_id: int = 0) -> None:
        self._call("memcpy_d2d", dst, src, size, stream_id, sync=False)

    def memset(self, dst: int, value: int, size: int,
               stream_id: int = 0) -> None:
        self._call("memset", dst, value, size, stream_id, sync=False)

    def register_fatbin(self, fatbin: FatBinary) -> dict[str, int]:
        payload = sum(len(entry.payload) for entry in fatbin.entries)
        return self._call("register_fatbin", fatbin,
                          payload_bytes=payload)

    def load_module_ptx(self, ptx_text: str) -> dict[str, int]:
        return self._call("load_module_ptx", ptx_text,
                          payload_bytes=len(ptx_text))

    def launch_kernel(self, handle, grid, block, params,
                      stream_id: int = 0) -> None:
        self._call("launch_kernel", handle, grid, block, list(params),
                   stream_id, payload_bytes=8 * len(params), sync=False)

    def create_stream(self) -> int:
        return self._call("create_stream")

    def synchronize(self) -> None:
        self._call("synchronize")

    def get_export_table(self, table_uuid: str) -> dict:
        if self._export_tables is None:
            from repro.runtime.export_table import build_export_tables

            self._export_tables = build_export_tables(self)
        return self._export_tables[table_uuid]

    def device_spec(self):
        if self._spec is None:
            self._spec = self._call("get_spec")
        return self._spec
