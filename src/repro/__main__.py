"""``python -m repro`` — system info, a self-check, and reports.

With no arguments: prints the simulated device specs (Table 2), the
protected-sharing feature matrix (Table 6), and runs a miniature
end-to-end smoke — two tenants, one library call, one attack, one
assertion.

``python -m repro report <snapshot.json>`` renders a telemetry
snapshot dumped by :func:`repro.telemetry.export.dump_snapshot` —
the per-tenant latency quantiles, the counter/gauge series and a
span summary; ``--prometheus`` prints the text exposition instead.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def selfcheck() -> int:
    import repro
    from repro.analysis.reporting import (
        render_feature_matrix,
        render_spec_table,
    )

    print(f"Guardian reproduction v{repro.__version__}")
    print()
    print(render_spec_table())
    print()
    print(render_feature_matrix())
    print()

    print("self-check: two tenants, one closed-source library call, "
          "one attack ...")
    from repro import GuardianSystem
    from repro.driver.fatbin import build_fatbin
    from repro.libs.cublas import CuBLAS
    from repro.ptx.builder import KernelBuilder, build_module

    system = GuardianSystem()
    alice = system.attach("alice", 1 << 20)
    mallory = system.attach("mallory", 1 << 20)

    blas = CuBLAS(alice.runtime)
    data = np.random.RandomState(0).randn(128).astype(np.float32)
    buffer = alice.runtime.cudaMalloc(512)
    alice.runtime.cudaMemcpyH2D(buffer, data.tobytes())
    best = blas.isamax(128, buffer)
    assert best == int(np.abs(data).argmax()), "library result wrong"

    writer = KernelBuilder("writer", params=[("out", "u64"),
                                             ("idx", "u64")])
    out = writer.load_param_ptr("out")
    idx = writer.load_param("idx", "u64")
    writer.st_global("u32", writer.add("s64", out, idx), 0xBAD)
    handles = mallory.runtime.registerFatBinary(
        build_fatbin(build_module([writer.build()]), "attack", "11.7"))
    mine = mallory.runtime.cudaMalloc(64)
    mallory.runtime.cudaLaunchKernel(handles["writer"],
                                     (1, 1, 1), (1, 1, 1),
                                     [mine, buffer - mine])
    survived = np.frombuffer(alice.runtime.cudaMemcpyD2H(buffer, 512),
                             dtype=np.float32)
    assert np.array_equal(survived, data), "ISOLATION BROKEN"
    system.synchronize()
    print("self-check passed: library intercepted, attack contained.")
    return 0


def report(path: str, prometheus: bool = False) -> int:
    from repro.analysis.reporting import render_telemetry_report
    from repro.telemetry.export import load_snapshot

    snapshot = load_snapshot(path)
    if prometheus:
        exposition = snapshot.get("prometheus")
        if exposition is None:
            print("snapshot has no prometheus exposition",
                  file=sys.stderr)
            return 1
        print(exposition, end="")
        return 0
    print(render_telemetry_report(snapshot))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Guardian reproduction: self-check and reports.",
    )
    commands = parser.add_subparsers(dest="command")
    report_parser = commands.add_parser(
        "report", help="render a dumped telemetry snapshot",
    )
    report_parser.add_argument("snapshot",
                               help="path to a snapshot .json")
    report_parser.add_argument(
        "--prometheus", action="store_true",
        help="print the Prometheus text exposition instead",
    )
    options = parser.parse_args(argv)
    if options.command == "report":
        return report(options.snapshot, prometheus=options.prometheus)
    return selfcheck()


if __name__ == "__main__":
    sys.exit(main())
