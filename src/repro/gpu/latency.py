"""Instruction cycle-cost model.

Costs are the ones the paper reasons with (§4.4, Fig. 6):

========================  ============  =====================================
event                     cycles        source
========================  ============  =====================================
bitwise AND / OR          4             Arafa et al. [2] (paper Fig. 6)
integer multiply / mad    5             same
32-bit div / rem          28            paper §4.4 (inline modulo)
64-bit div / rem (call)   56            paper §4.4 (2x the 32-bit cost)
guarded (conditional)     36            so that a 2-comparison bounds check
branch                                  costs the paper's ~80 cycles through
                                        the Address Divergence Unit
L1 hit                    28            Table 2
L2 hit                    193           Table 2
global memory             220-350       Table 2 (285 typical)
========================  ============  =====================================

The model separates *compute* cost (from the opcode's latency class)
and *memory* cost (from the cache simulation), exactly the split the
paper uses to argue fencing is cheap when kernels are memory bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import DeviceSpec
from repro.ptx import isa

#: Conditional (guarded) control flow goes through the Address
#: Divergence Unit; two setp+bra pairs must land near the paper's 80
#: cycles for a full lower+upper bounds check: 2 * (4 + 36) = 80.
GUARDED_BRANCH_CYCLES = 36

#: Shared-memory access latency (on-chip, close to L1).
SHARED_ACCESS_CYCLES = 20

#: Store cost floor: stores retire through the write buffer; we charge
#: the cache-model latency like loads (write-allocate), which keeps the
#: fencing-overhead ratios the paper reports.


@dataclass
class CostModel:
    """Resolves per-instruction cycle costs for one device."""

    spec: DeviceSpec

    def compute_cost(self, opcode: str, guarded: bool) -> int:
        """Cycle cost of a non-memory instruction."""
        info = isa.opcode_info(opcode)
        if info.is_control and guarded:
            return GUARDED_BRANCH_CYCLES
        base = isa.LATENCY_CLASSES[info.latency_class]
        if info.latency_class in ("div32",) and _is_64bit(opcode):
            return isa.LATENCY_CLASSES["div64"]
        return base

    def memory_cost(self, level: str) -> int:
        """Cycle cost of a load/store resolved at ``level``.

        ``level`` is one of ``"l1"``, ``"l2"``, ``"global"``,
        ``"shared"``, ``"param"``, ``"local"``.
        """
        if level == "l1":
            return self.spec.l1_hit_cycles
        if level == "l2":
            return self.spec.l2_hit_cycles
        if level == "global":
            return self.spec.global_avg_cycles
        if level == "shared":
            return SHARED_ACCESS_CYCLES
        if level == "param":
            # Parameter space is backed by constant memory and is
            # effectively always cached.
            return self.spec.l1_hit_cycles // 4 or 1
        if level == "local":
            # Local memory (spills) lives in global DRAM but is heavily
            # cached; charge an L2-class latency.
            return self.spec.l2_hit_cycles
        raise ValueError(f"unknown memory level {level!r}")


def _is_64bit(opcode: str) -> bool:
    return opcode.rsplit(".", 1)[-1] in ("u64", "s64", "b64", "f64")
