"""Set-associative cache simulation (tags only).

The simulator keeps cache *tags* but not data — data always lives in
:class:`repro.gpu.memory.GlobalMemory` — because the caches only exist
to resolve access latencies and hit ratios. This is sufficient for the
paper's Fig. 11 experiment, which relates fencing overhead to the cache
hit ratio of ML kernels (measured L1 ~37%, L2 ~72% for lenet).

The hierarchy is two-level: a per-SM L1 (the executor flushes it
between kernel launches, since each launch generally lands on fresh
data) and a device-wide L2 that persists across launches.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class SetAssociativeCache:
    """A tag-only set-associative cache with LRU replacement."""

    def __init__(self, size_bytes: int, line_bytes: int = 128,
                 associativity: int = 8):
        if size_bytes % (line_bytes * associativity):
            raise ValueError("cache size must be a multiple of way size")
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (line_bytes * associativity)
        # Each set is a list of tags ordered most-recently-used first.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch the line holding ``address``; return True on a hit."""
        line = address // self.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[index]
        try:
            position = ways.index(tag)
        except ValueError:
            self.stats.misses += 1
            ways.insert(0, tag)
            if len(ways) > self.associativity:
                ways.pop()
            return False
        ways.insert(0, ways.pop(position))
        self.stats.hits += 1
        return True

    def flush(self) -> None:
        """Invalidate every line (keeps statistics)."""
        for ways in self._sets:
            ways.clear()

    def export_lines(self, lo: int, hi: int) -> tuple[int, ...]:
        """Resident line addresses within ``[lo, hi)``, ordered by
        (set, recency) with the most recently used first — the shape
        :meth:`install_lines` reproduces exactly."""
        lines = []
        for index, ways in enumerate(self._sets):
            for tag in ways:  # MRU-first
                address = (tag * self.num_sets + index) * self.line_bytes
                if lo <= address < hi:
                    lines.append(address)
        return tuple(lines)

    def install_lines(self, lines: tuple[int, ...]) -> None:
        """Install lines without touching statistics (models a DMA
        landing in cache). ``lines`` is MRU-first per set, as
        :meth:`export_lines` produces; existing lines are pushed
        toward eviction."""
        for address in reversed(lines):
            line = address // self.line_bytes
            index = line % self.num_sets
            tag = line // self.num_sets
            ways = self._sets[index]
            if tag in ways:
                ways.remove(tag)
            ways.insert(0, tag)
            if len(ways) > self.associativity:
                ways.pop()


@dataclass
class MemoryHierarchy:
    """L1 + L2 pair resolving each access to a latency level.

    The executor calls :meth:`access` for every global-space load and
    store; the returned level (``"l1"``/``"l2"``/``"global"``) is
    priced by :class:`repro.gpu.latency.CostModel`.
    """

    l1: SetAssociativeCache
    l2: SetAssociativeCache
    #: Aggregate level counters for profiling (Fig. 11).
    level_counts: dict[str, int] = field(
        default_factory=lambda: {"l1": 0, "l2": 0, "global": 0}
    )

    @classmethod
    def for_spec(cls, spec) -> "MemoryHierarchy":
        return cls(
            l1=SetAssociativeCache(
                spec.l1_kb * 1024, spec.cache_line_bytes, associativity=8
            ),
            l2=SetAssociativeCache(
                spec.l2_kb * 1024, spec.cache_line_bytes, associativity=16
            ),
        )

    def access(self, address: int) -> str:
        """Resolve one access; returns the satisfying level."""
        if self.l1.access(address):
            self.level_counts["l1"] += 1
            return "l1"
        if self.l2.access(address):
            self.level_counts["l2"] += 1
            return "l2"
        self.level_counts["global"] += 1
        return "global"

    def new_kernel(self) -> None:
        """Called at each kernel launch boundary: L1 does not survive
        (new blocks land on arbitrary SMs), L2 persists."""
        self.l1.flush()

    def reset_stats(self) -> None:
        self.l1.stats.reset()
        self.l2.stats.reset()
        for key in self.level_counts:
            self.level_counts[key] = 0
