"""Physical register allocation and spill modelling.

The paper's Fig. 10 measures how many *extra physical registers* the
two fencing parameters (mask + base) cost after ``ptxas`` optimisation:
at ``-O0`` most kernels pay up to 4 extra registers, while at ``-O3``
the allocator reuses dead registers and 71% of kernels pay none.

This module reproduces that mechanism:

- ``-O0``: every virtual register gets its own physical register
  (no reuse), so added virtual registers always grow the count;
- ``-O3``: a linear-scan allocation over approximate live ranges
  (first definition to last use, straight-line approximation), so a
  virtual register added by the patcher can often fold into a register
  that is dead by then.

Register *slots* are 32-bit: 64-bit virtual registers occupy two slots,
matching NVIDIA hardware. Predicates live in a separate predicate file
and do not count against the 255-register budget. If the slot demand
exceeds ``spec.registers_per_thread`` the surplus spills to local
memory (tracked, and priced by the executor).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ptx import isa
from repro.ptx.ast import Instruction, Kernel, MemRef, RegDecl, Register

#: Hardware register-allocation granularity: SMs hand out registers to
#: warps in chunks, so a kernel's *allocated* count is its exact need
#: rounded up. This is why a couple of extra virtual registers often
#: costs zero allocated registers — the Fig. 10(b) effect.
ALLOCATION_GRANULARITY = 8

#: Slot width (in 32-bit units) per register-bank type.
_SLOTS_PER_TYPE = {
    "pred": 0,  # predicate file, not part of the 255 budget
    "b16": 1,
    "b32": 1, "f32": 1,
    "b64": 2, "f64": 2,
}


@dataclass
class RegisterAllocation:
    """Result of allocating one kernel's virtual registers.

    Attributes:
        virtual_regs: number of declared virtual registers (non-pred).
        physical_slots: 32-bit register slots after allocation.
        predicate_regs: virtual predicate registers.
        spilled_slots: slots that exceed the hardware budget.
        opt_level: "O0" or "O3".
    """

    virtual_regs: int
    physical_slots: int
    predicate_regs: int
    spilled_slots: int
    opt_level: str
    constant_bytes: int = 0

    @property
    def spills(self) -> bool:
        return self.spilled_slots > 0

    @property
    def allocated_slots(self) -> int:
        """Slots after rounding to the hardware granularity — the
        number ``-Xptxas -v`` style accounting observes."""
        granularity = ALLOCATION_GRANULARITY
        return -(-self.physical_slots // granularity) * granularity


def allocate(kernel: Kernel, spec_regs_per_thread: int = 255,
             opt_level: str = "O3") -> RegisterAllocation:
    """Allocate physical registers for ``kernel``.

    ``opt_level`` selects the reuse strategy described in the module
    docstring. The returned ``constant_bytes`` is the size of the
    kernel parameter buffer, which lives in constant memory (the paper
    notes Guardian's two extra parameters add 16 bytes in 99% of
    kernels).
    """
    if opt_level not in ("O0", "O3"):
        raise ValueError(f"unknown optimisation level {opt_level!r}")

    reg_types = _declared_types(kernel)
    predicate_regs = sum(
        1 for reg_type in reg_types.values() if reg_type == "pred"
    )
    virtual_regs = len(reg_types) - predicate_regs

    if opt_level == "O0":
        physical_slots = sum(
            _SLOTS_PER_TYPE[reg_type] for reg_type in reg_types.values()
        )
    else:
        physical_slots = _linear_scan_slots(kernel, reg_types)

    spilled = max(0, physical_slots - spec_regs_per_thread)
    constant_bytes = sum(param.width for param in kernel.params)
    return RegisterAllocation(
        virtual_regs=virtual_regs,
        physical_slots=min(physical_slots, spec_regs_per_thread)
        + 0,  # reported count is capped at the hardware budget
        predicate_regs=predicate_regs,
        spilled_slots=spilled,
        opt_level=opt_level,
        constant_bytes=constant_bytes,
    )


def _declared_types(kernel: Kernel) -> dict[str, str]:
    """Map every declared virtual register name to its bank type."""
    types: dict[str, str] = {}
    for statement in kernel.body:
        if isinstance(statement, RegDecl):
            for name in statement.names():
                types[name] = statement.reg_type
    return types


def _live_ranges(kernel: Kernel) -> dict[str, tuple[int, int]]:
    """Approximate live range of each register as (first, last) index
    over the instruction sequence (straight-line approximation)."""
    ranges: dict[str, tuple[int, int]] = {}
    for index, instruction in enumerate(kernel.instructions()):
        for name in _registers_of(instruction):
            first, _ = ranges.get(name, (index, index))
            ranges[name] = (first, index)
    return ranges


def _registers_of(instruction: Instruction):
    if instruction.guard is not None:
        yield instruction.guard.register
    for operand in instruction.operands:
        if isinstance(operand, Register):
            yield operand.name
        elif isinstance(operand, MemRef) and isinstance(
            operand.base, Register
        ):
            yield operand.base.name


def _linear_scan_slots(kernel: Kernel,
                       reg_types: dict[str, str]) -> int:
    """Peak simultaneous slot demand under live-range reuse.

    Computes, for each instruction index, how many 32-bit slots are
    live, and returns the maximum — the register count a reusing
    allocator needs.
    """
    events: list[tuple[int, int]] = []  # (index, +slots/-slots)
    for name, (first, last) in _live_ranges(kernel).items():
        reg_type = reg_types.get(name)
        if reg_type is None:
            continue
        slots = _SLOTS_PER_TYPE[reg_type]
        if slots == 0:
            continue
        events.append((first, slots))
        events.append((last + 1, -slots))
    peak = 0
    live = 0
    for _, delta in sorted(events):
        live += delta
        peak = max(peak, live)
    return peak


def extra_registers(
    native: RegisterAllocation, sandboxed: RegisterAllocation
) -> int:
    """Extra physical registers the sandboxed kernel needs vs native.

    Fig. 10 plots the distribution of this value over all kernels. It
    can be negative when spilling reshuffles allocation — the paper
    notes "in some rare cases the number of registers is smaller".
    """
    return sandboxed.physical_slots - native.physical_slots
