"""Python code generation for compiled kernels (the simulator's JIT).

The reference interpreter in :mod:`repro.gpu.executor` dispatches every
instruction dynamically (~10 us each) — faithful but far too slow for
the paper's benchmark matrix. This module compiles each kernel's
decoded instruction list into one specialised Python generator
function:

- virtual registers become Python locals,
- basic blocks become arms of a ``while True`` state machine,
- per-block static cycle/instruction counts are folded into single
  additions,
- loads/stores call pre-bound helpers that consult the cache model and
  return (value, dynamic_cycles).

Semantics match the interpreter, with two documented deviations chosen
for speed and verified acceptable by the differential tests
(``tests/gpu/test_codegen_differential.py``):

1. f32 arithmetic is evaluated in double precision and rounded to f32
   only when stored to memory (a *more* accurate instance of IEEE
   nondeterminism; real GPUs also fuse/contract);
2. reading a never-written register yields 0 instead of raising (real
   hardware gives an undefined value; 0 is one such value).

Cycle accounting is bit-identical to the interpreter's, which the
differential tests also assert.
"""

from __future__ import annotations

import math
import struct
from typing import Callable

from repro.errors import ExecutionError, MemoryFault
from repro.gpu.latency import SHARED_ACCESS_CYCLES, CostModel
from repro.gpu.memory import PAGE_SIZE, GlobalMemory
from repro.ptx import isa
from repro.ptx.ast import (
    Immediate,
    MemRef,
    Register,
    SpecialReg,
    Symbol,
)

#: Watchdog: a single thread executing more blocks than this is
#: considered a runaway kernel (matches the interpreter's guard).
MAX_BLOCK_STEPS = 2_000_000

_MASK32 = (1 << 32) - 1
_MASK64 = (1 << 64) - 1

_F32 = struct.Struct("<f")

_INT_MASKS = {
    "u8": (1 << 8) - 1, "b8": (1 << 8) - 1, "s8": (1 << 8) - 1,
    "u16": (1 << 16) - 1, "b16": (1 << 16) - 1, "s16": (1 << 16) - 1,
    "u32": _MASK32, "b32": _MASK32, "s32": _MASK32,
    "u64": _MASK64, "b64": _MASK64, "s64": _MASK64,
}

_SHARED_STRUCTS = {
    "f32": "_sF32", "f64": "_sF64",
    "u8": "_sU8", "b8": "_sU8", "s8": "_sS8",
    "u16": "_sU16", "b16": "_sU16", "s16": "_sS16",
    "u32": "_sU32", "b32": "_sU32", "s32": "_sS32",
    "u64": "_sU64", "b64": "_sU64", "s64": "_sS64",
}


# --------------------------------------------------------------------------
# Runtime helpers captured by every generated function
# --------------------------------------------------------------------------


def _truncdiv(a, b):
    """Integer division truncating toward zero (PTX div semantics)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _truncrem(a, b):
    return a - _truncdiv(a, b) * b


def make_memory_helpers(memory: GlobalMemory, hierarchy,
                        cost_model: CostModel) -> dict:
    """Bind fast load/store helpers over one device's memory system.

    Each helper returns ``(value, cycles)`` for loads or ``cycles`` for
    stores; cycles come from the cache simulation exactly as in the
    interpreter.
    """
    pages = memory._pages
    base = memory.base
    limit = memory.limit
    load_scalar = memory.load_scalar
    store_scalar = memory.store_scalar

    # Inlined two-level cache resolution. Operates directly on the
    # hierarchy's tag lists and updates its statistics objects, so
    # profiling through `hierarchy` observes the same state as the
    # interpreter path. The MRU fast path matters: 32 consecutive lane
    # addresses share one 128-byte line, so most accesses hit way 0.
    l1 = hierarchy.l1
    l2 = hierarchy.l2
    l1_sets, l1_num, l1_assoc = l1._sets, l1.num_sets, l1.associativity
    l2_sets, l2_num, l2_assoc = l2._sets, l2.num_sets, l2.associativity
    line_bytes = l1.line_bytes
    l1_stats, l2_stats = l1.stats, l2.stats
    counts = hierarchy.level_counts
    cost_l1 = cost_model.memory_cost("l1")
    cost_l2 = cost_model.memory_cost("l2")
    cost_global = cost_model.memory_cost("global")

    def resolve(addr):
        """Touch both cache levels; return the access latency."""
        line = addr // line_bytes
        ways = l1_sets[line % l1_num]
        tag = line // l1_num
        if ways:
            if ways[0] == tag:
                l1_stats.hits += 1
                counts["l1"] += 1
                return cost_l1
            try:
                position = ways.index(tag)
            except ValueError:
                position = -1
            if position >= 0:
                ways.insert(0, ways.pop(position))
                l1_stats.hits += 1
                counts["l1"] += 1
                return cost_l1
        l1_stats.misses += 1
        ways.insert(0, tag)
        if len(ways) > l1_assoc:
            ways.pop()
        ways2 = l2_sets[line % l2_num]
        tag2 = line // l2_num
        if ways2:
            if ways2[0] == tag2:
                l2_stats.hits += 1
                counts["l2"] += 1
                return cost_l2
            try:
                position = ways2.index(tag2)
            except ValueError:
                position = -1
            if position >= 0:
                ways2.insert(0, ways2.pop(position))
                l2_stats.hits += 1
                counts["l2"] += 1
                return cost_l2
        l2_stats.misses += 1
        ways2.insert(0, tag2)
        if len(ways2) > l2_assoc:
            ways2.pop()
        counts["global"] += 1
        return cost_global

    def _ld(dtype_width_fmt):
        dtype, width, fmt = dtype_width_fmt
        unpack = struct.Struct(fmt).unpack_from if fmt else None
        zero = 0.0 if dtype in ("f32", "f64") else 0

        def loader(addr):
            if addr % width:
                raise MemoryFault(addr, width, f"misaligned {dtype}")
            if addr < base or addr + width > limit:
                raise MemoryFault(addr, width, "read")
            cycles = resolve(addr)
            offset = addr - base
            page_index = offset // PAGE_SIZE
            in_page = offset - page_index * PAGE_SIZE
            if unpack is not None and in_page + width <= PAGE_SIZE:
                page = pages.get(page_index)
                if page is None:
                    return zero, cycles
                return unpack(page, in_page)[0], cycles
            return load_scalar(addr, dtype), cycles

        return loader

    def _st(dtype_width_fmt):
        dtype, width, fmt = dtype_width_fmt
        pack = struct.Struct(fmt).pack_into if fmt else None
        is_float = dtype in ("f32", "f64")
        mask = None if is_float else _INT_MASKS[dtype]
        signed = dtype in ("s8", "s16", "s32", "s64")
        bits = width * 8

        def storer(addr, value):
            if addr % width:
                raise MemoryFault(addr, width, f"misaligned {dtype}")
            if addr < base or addr + width > limit:
                raise MemoryFault(addr, width, "write")
            cycles = resolve(addr)
            offset = addr - base
            page_index = offset // PAGE_SIZE
            in_page = offset - page_index * PAGE_SIZE
            if pack is not None and in_page + width <= PAGE_SIZE:
                page = pages.get(page_index)
                if page is None:
                    page = bytearray(PAGE_SIZE)
                    pages[page_index] = page
                if is_float:
                    pack(page, in_page, value)
                else:
                    value &= mask
                    if signed and value >= 1 << (bits - 1):
                        value -= 1 << bits
                    pack(page, in_page, value)
                return cycles
            store_scalar(addr, dtype, value)
            return cycles

        return storer

    specs = {
        "f32": ("f32", 4, "<f"), "f64": ("f64", 8, "<d"),
        "u8": ("u8", 1, "<B"), "b8": ("b8", 1, "<B"), "s8": ("s8", 1, "<b"),
        "u16": ("u16", 2, "<H"), "b16": ("b16", 2, "<H"),
        "s16": ("s16", 2, "<h"),
        "u32": ("u32", 4, "<I"), "b32": ("b32", 4, "<I"),
        "s32": ("s32", 4, "<i"),
        "u64": ("u64", 8, "<Q"), "b64": ("b64", 8, "<Q"),
        "s64": ("s64", 8, "<q"),
    }
    env = {}
    for dtype, spec in specs.items():
        env[f"_ldg_{dtype}"] = _ld(spec)
        env[f"_stg_{dtype}"] = _st(spec)

    def atom(op, dtype, addr, value):
        width = isa.type_width(dtype)
        if addr % width:
            raise MemoryFault(addr, width, f"misaligned {dtype}")
        if addr < base or addr + width > limit:
            raise MemoryFault(addr, width, "atomic")
        cycles = 2 * resolve(addr)
        old = load_scalar(addr, dtype)
        if op == "add":
            new = old + value
        elif op == "max":
            new = max(old, value)
        elif op == "min":
            new = min(old, value)
        elif op == "exch":
            new = value
        else:
            raise ExecutionError(f"unimplemented atomic .{op}.")
        store_scalar(addr, dtype, new)
        return old, cycles

    env["_atom"] = atom
    return env


def _make_signed_view(bits: int):
    mask = (1 << bits) - 1
    half = 1 << (bits - 1)
    full = 1 << bits

    def view(value):
        value &= mask
        return value - full if value >= half else value

    return view


_BASE_ENV = {
    "_truncdiv": _truncdiv,
    "_truncrem": _truncrem,
    "_sv8": _make_signed_view(8),
    "_sv16": _make_signed_view(16),
    "_sv32": _make_signed_view(32),
    "_sv64": _make_signed_view(64),
    "_math": math,
    "_f32r": lambda v: _F32.unpack(_F32.pack(v))[0],
    "ExecutionError": ExecutionError,
    "_sF32": struct.Struct("<f"), "_sF64": struct.Struct("<d"),
    "_sU8": struct.Struct("<B"), "_sS8": struct.Struct("<b"),
    "_sU16": struct.Struct("<H"), "_sS16": struct.Struct("<h"),
    "_sU32": struct.Struct("<I"), "_sS32": struct.Struct("<i"),
    "_sU64": struct.Struct("<Q"), "_sS64": struct.Struct("<q"),
}


# --------------------------------------------------------------------------
# Source generation
# --------------------------------------------------------------------------


class _Gen:
    """Accumulates generated source lines with indentation."""

    def __init__(self):
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def source(self) -> str:
        return "\n".join(self.lines)


def _mangle(name: str) -> str:
    return "r_" + name.lstrip("%").replace(".", "_").replace("$", "_")


_SPECIAL_LOCALS = {
    "%tid.x": "_tid0", "%tid.y": "_tid1", "%tid.z": "_tid2",
    "%ntid.x": "_ntid0", "%ntid.y": "_ntid1", "%ntid.z": "_ntid2",
    "%ctaid.x": "_ctaid0", "%ctaid.y": "_ctaid1", "%ctaid.z": "_ctaid2",
    "%nctaid.x": "_nctaid0", "%nctaid.y": "_nctaid1",
    "%nctaid.z": "_nctaid2",
    "%laneid": "_lane", "%warpid": "_warp", "%clock": "_cycles",
}


class KernelCodegen:
    """Generates the thread function of one compiled kernel."""

    def __init__(self, compiled, cost_model: CostModel):
        self.ck = compiled
        self.cost_model = cost_model
        self.gen = _Gen()
        self._declared: set[str] = set()

    # -- operand expressions --------------------------------------------------

    def _expr(self, operand) -> str:
        if isinstance(operand, Register):
            name = _mangle(operand.name)
            self._declared.add(name)
            return name
        if isinstance(operand, Immediate):
            return repr(operand.value)
        if isinstance(operand, SpecialReg):
            return _SPECIAL_LOCALS[operand.name]
        if isinstance(operand, Symbol):
            name = operand.name
            if name in self.ck.shared_layout:
                return repr(self.ck.shared_layout[name])
            if name not in self.ck.global_symbols:
                raise ExecutionError(f"unresolved symbol {name!r}")
            return f"_gsyms[{name!r}]"
        raise ExecutionError(f"cannot generate operand {operand!r}")

    def _address(self, memref: MemRef) -> str:
        base = memref.base
        if isinstance(base, Register):
            expr = self._expr(base)
        elif isinstance(base, Symbol):
            name = base.name
            if name in self.ck.shared_layout:
                expr = repr(self.ck.shared_layout[name])
            elif name not in self.ck.global_symbols:
                raise ExecutionError(f"unresolved symbol {name!r}")
            else:
                expr = f"_gsyms[{name!r}]"
        else:
            raise ExecutionError(f"bad memory base {base!r}")
        if memref.offset:
            return f"({expr} + {memref.offset})"
        return expr

    # -- instruction emission ------------------------------------------------------

    def _wrap_int(self, expr: str, dtype: str) -> str:
        """Truncate an integer expression to its register convention.

        Matches the interpreter (see ``KernelExecutor._set_reg``):
        all 64-bit integer types and all unsigned types wrap with a
        mask (hardware two's-complement address behaviour); narrower
        signed types stay natural Python ints.
        """
        if dtype in ("u8", "b8", "u16", "b16"):
            return f"(({expr}) & {_INT_MASKS[dtype]})"
        if dtype in ("u32", "b32"):
            return f"(({expr}) & {_MASK32})"
        if dtype in ("u64", "b64", "s64"):
            return f"(({expr}) & {_MASK64})"
        return expr

    def _assign(self, dest, expr: str, dtype: str) -> None:
        name = self._expr(dest)
        if dtype and not isa.is_float(dtype) and dtype != "pred":
            expr = self._wrap_int(expr, dtype)
        self.gen.emit(f"{name} = {expr}")

    def _emit_instruction(self, ins) -> None:
        gen = self.gen
        if ins.guard_reg is not None:
            want = "not " if ins.guard_negated else ""
            guard_name = _mangle(ins.guard_reg)
            self._declared.add(guard_name)
            gen.emit(f"if {want}{guard_name}:")
            gen.indent += 1
            self._emit_body(ins)
            gen.indent -= 1
        else:
            self._emit_body(ins)

    def _emit_body(self, ins) -> None:
        op = ins.op
        operands = ins.operands
        dtype = ins.dtype
        gen = self.gen
        e = self._expr

        if op == "ld":
            self._emit_load(ins)
        elif op == "st":
            self._emit_store(ins)
        elif op == "mov":
            self._assign(operands[0], e(operands[1]), dtype)
        elif op == "cvta":
            self._assign(operands[0], e(operands[1]), dtype)
        elif op == "cvt":
            src = e(operands[1])
            if dtype and isa.is_float(dtype):
                self._assign(operands[0], f"float({src})", dtype)
            else:
                self._assign(operands[0], f"int({src})", dtype)
        elif op == "add":
            self._assign(operands[0],
                         f"{e(operands[1])} + {e(operands[2])}", dtype)
        elif op == "sub":
            self._assign(operands[0],
                         f"{e(operands[1])} - {e(operands[2])}", dtype)
        elif op == "mul":
            self._emit_mul(ins)
        elif op in ("mad", "fma"):
            self._emit_mad(ins)
        elif op == "div":
            self._emit_div(ins)
        elif op == "rem":
            a, b = e(operands[1]), e(operands[2])
            if dtype and isa.is_signed(dtype):
                self._assign(operands[0], f"_truncrem({a}, {b})", dtype)
            else:
                self._assign(operands[0], f"({a}) % ({b})", dtype)
        elif op == "and":
            self._assign(operands[0],
                         f"{e(operands[1])} & {e(operands[2])}", dtype)
        elif op == "or":
            self._assign(operands[0],
                         f"{e(operands[1])} | {e(operands[2])}", dtype)
        elif op == "xor":
            self._assign(operands[0],
                         f"{e(operands[1])} ^ {e(operands[2])}", dtype)
        elif op == "not":
            self._assign(operands[0], f"~({e(operands[1])})", dtype)
        elif op == "shl":
            self._assign(operands[0],
                         f"({e(operands[1])}) << ({e(operands[2])})",
                         dtype)
        elif op == "shr":
            source = self._wrap_int(e(operands[1]), dtype or "u32")
            if dtype and isa.is_signed(dtype):
                # Arithmetic shift on the sign-corrected value.
                bits = isa.type_width(dtype) * 8
                half = 1 << (bits - 1)
                full = 1 << bits
                source = (f"(({source}) - {full} "
                          f"if ({source}) >= {half} else ({source}))")
            self._assign(operands[0],
                         f"({source}) >> ({e(operands[2])})", dtype)
        elif op == "min":
            self._assign(operands[0],
                         f"min({e(operands[1])}, {e(operands[2])})", dtype)
        elif op == "max":
            self._assign(operands[0],
                         f"max({e(operands[1])}, {e(operands[2])})", dtype)
        elif op == "neg":
            self._assign(operands[0], f"-({e(operands[1])})", dtype)
        elif op == "abs":
            self._assign(operands[0], f"abs({e(operands[1])})", dtype)
        elif op == "setp":
            self._emit_setp(ins)
        elif op == "selp":
            self._assign(
                operands[0],
                f"({e(operands[1])}) if {e(operands[3])} "
                f"else ({e(operands[2])})",
                dtype,
            )
        elif op in ("sqrt", "rsqrt", "rcp", "ex2", "lg2", "sin", "cos",
                    "tanh"):
            self._emit_sfu(ins)
        elif op == "atom":
            self._emit_atomic(ins)
        elif op == "nop":
            gen.emit("pass")
        else:
            raise ExecutionError(
                f"codegen: unimplemented opcode {ins.opcode!r}"
            )

    def _emit_mul(self, ins) -> None:
        e = self._expr
        a, b = e(ins.operands[1]), e(ins.operands[2])
        if "wide" in ins.opcode:
            narrow = ins.opcode.rsplit(".", 1)[-1]
            wide = "s64" if isa.is_signed(narrow) else "u64"
            self._assign(ins.operands[0], f"({a}) * ({b})", wide)
            return
        if "hi" in ins.opcode:
            dtype = ins.dtype or "u32"
            bits = isa.type_width(dtype) * 8
            masked_a = self._wrap_int(a, dtype)
            masked_b = self._wrap_int(b, dtype)
            self._assign(ins.operands[0],
                         f"(({masked_a}) * ({masked_b})) >> {bits}",
                         dtype)
            return
        self._assign(ins.operands[0], f"({a}) * ({b})", ins.dtype)

    def _emit_mad(self, ins) -> None:
        e = self._expr
        a, b, c = (e(ins.operands[1]), e(ins.operands[2]),
                   e(ins.operands[3]))
        if "wide" in ins.opcode:
            narrow = ins.opcode.rsplit(".", 1)[-1]
            wide = "s64" if isa.is_signed(narrow) else "u64"
            self._assign(ins.operands[0], f"({a}) * ({b}) + ({c})", wide)
            return
        self._assign(ins.operands[0], f"({a}) * ({b}) + ({c})",
                     ins.dtype)

    def _emit_div(self, ins) -> None:
        e = self._expr
        dtype = ins.dtype or "u32"
        a, b = e(ins.operands[1]), e(ins.operands[2])
        if isa.is_float(dtype):
            self._assign(ins.operands[0], f"({a}) / ({b})", dtype)
        elif isa.is_signed(dtype):
            self._assign(ins.operands[0], f"_truncdiv({a}, {b})", dtype)
        else:
            self._assign(ins.operands[0], f"({a}) // ({b})", dtype)

    _COMPARES = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
                 "gt": ">", "ge": ">="}

    def _emit_setp(self, ins) -> None:
        e = self._expr
        dtype = ins.dtype or "u32"
        a, b = e(ins.operands[1]), e(ins.operands[2])
        if not isa.is_float(dtype):
            if isa.is_signed(dtype):
                bits = isa.type_width(dtype) * 8
                a = f"_sv{bits}({a})"
                b = f"_sv{bits}({b})"
            else:
                a = self._wrap_int(a, dtype)
                b = self._wrap_int(b, dtype)
        symbol = self._COMPARES[ins.compare]
        name = self._expr(ins.operands[0])
        self.gen.emit(f"{name} = ({a}) {symbol} ({b})")

    def _emit_sfu(self, ins) -> None:
        e = self._expr
        source = f"float({e(ins.operands[1])})"
        op = ins.op
        formulas = {
            "sqrt": f"_math.sqrt({source})",
            "rsqrt": f"1.0 / _math.sqrt({source})",
            "rcp": f"1.0 / {source}",
            "ex2": f"2.0 ** {source}",
            "lg2": f"_math.log2({source})",
            "sin": f"_math.sin({source})",
            "cos": f"_math.cos({source})",
            "tanh": f"_math.tanh({source})",
        }
        name = self._expr(ins.operands[0])
        self.gen.emit("try:")
        self.gen.indent += 1
        self.gen.emit(f"{name} = {formulas[op]}")
        self.gen.indent -= 1
        self.gen.emit("except (ValueError, ZeroDivisionError, "
                      "OverflowError):")
        self.gen.indent += 1
        self.gen.emit(f"{name} = _math.nan")
        self.gen.indent -= 1

    # -- memory ---------------------------------------------------------------------

    def _emit_load(self, ins) -> None:
        dest, memref = ins.operands
        dtype = ins.dtype or "b32"
        space = ins.space or "generic"
        gen = self.gen
        gen.emit("_loads += 1")
        if space == "param":
            index = self.ck.param_index.get(memref.base.name)
            if index is None:
                raise ExecutionError(
                    f"unknown parameter {memref.base.name!r}"
                )
            cost = self.cost_model.memory_cost("param")
            gen.emit(f"_cycles += {cost}")
            expr = f"params[{index}]"
            if isa.is_float(dtype):
                expr = f"float({expr})"
            self._assign(dest, expr, dtype)
            return
        address = self._address(memref)
        if space == "shared":
            gen.emit(f"_cycles += {SHARED_ACCESS_CYCLES}")
            unpacker = _SHARED_STRUCTS[dtype]
            self._assign(
                dest, f"{unpacker}.unpack_from(shared, {address})[0]",
                dtype)
        elif space == "local":
            cost = self.cost_model.memory_cost("local")
            gen.emit(f"_cycles += {cost}")
            unpacker = _SHARED_STRUCTS[dtype]
            self._assign(
                dest, f"{unpacker}.unpack_from(_local(t), {address})[0]",
                dtype)
        else:
            name = self._expr(dest)
            gen.emit(f"{name}, _mc = _ldg_{dtype}({address})")
            gen.emit("_cycles += _mc")

    def _emit_store(self, ins) -> None:
        memref, source = ins.operands
        dtype = ins.dtype or "b32"
        space = ins.space or "generic"
        gen = self.gen
        gen.emit("_stores += 1")
        address = self._address(memref)
        value = self._expr(source)
        if space == "shared":
            gen.emit(f"_cycles += {SHARED_ACCESS_CYCLES}")
            self._emit_buffer_store("shared", dtype, address, value)
        elif space == "local":
            cost = self.cost_model.memory_cost("local")
            gen.emit(f"_cycles += {cost}")
            self._emit_buffer_store("_local(t)", dtype, address, value)
        else:
            if isa.is_float(dtype):
                value = f"float({value})"
            gen.emit(f"_cycles += _stg_{dtype}({address}, {value})")

    def _emit_buffer_store(self, buffer: str, dtype: str, address: str,
                           value: str) -> None:
        packer = _SHARED_STRUCTS[dtype]
        if isa.is_float(dtype):
            value = f"float({value})"
        else:
            value = self._wrap_int(value, dtype)
            if isa.is_signed(dtype):
                bits = isa.type_width(dtype) * 8
                value = (f"(({value}) - {1 << bits} "
                         f"if ({value}) >= {1 << (bits - 1)} "
                         f"else ({value}))")
        self.gen.emit(f"{packer}.pack_into({buffer}, {address}, {value})")

    def _emit_atomic(self, ins) -> None:
        dest, memref, operand = ins.operands
        dtype = ins.dtype or "u32"
        parts = ins.opcode.split(".")
        mode = next(
            (p for p in parts if p in ("add", "max", "min", "exch")),
            None,
        )
        if mode is None:
            raise ExecutionError(f"unimplemented atomic {ins.opcode!r}")
        gen = self.gen
        gen.emit("_loads += 1")
        gen.emit("_stores += 1")
        address = self._address(memref)
        name = self._expr(dest)
        gen.emit(
            f"{name}, _mc = _atom({mode!r}, {dtype!r}, {address}, "
            f"{self._expr(operand)})"
        )
        gen.emit("_cycles += _mc")

    # -- whole-kernel generation -------------------------------------------------------

    def generate(self) -> str:
        instructions = self.ck.instructions
        # Leaders: 0, every branch target, every instruction after a
        # control transfer, and every barrier boundary.
        leaders = {0, len(instructions)}
        for index, ins in enumerate(instructions):
            if ins.op == "bra":
                leaders.add(ins.branch_target)
                if ins.guard_reg is not None:
                    leaders.add(index + 1)
            elif ins.op == "brx":
                leaders.update(ins.brx_targets)
                leaders.add(index + 1)
            elif ins.op in ("ret", "exit"):
                leaders.add(index + 1)
            elif ins.op == "bar":
                # Resume point directly after the yield.
                leaders.add(index + 1)
        ordered = sorted(leader for leader in leaders
                         if leader <= len(instructions))
        block_of = {leader: bid for bid, leader in enumerate(ordered)}

        gen = self.gen
        gen.emit("def _thread(t, params, shared):")
        gen.indent += 1
        gen.emit("_cycles = 0; _instr = 0; _loads = 0; _stores = 0")
        gen.emit("_steps = 0")
        gen.emit("_tid0, _tid1, _tid2 = t.tid")
        gen.emit("_ntid0, _ntid1, _ntid2 = t.ntid")
        gen.emit("_ctaid0, _ctaid1, _ctaid2 = t.ctaid")
        gen.emit("_nctaid0, _nctaid1, _nctaid2 = t.nctaid")
        gen.emit("_lane = t.lane; _warp = t.warp")
        body_start = len(gen.lines)
        gen.emit("_pc = 0")
        gen.emit("while True:")
        gen.indent += 1
        gen.emit(f"_steps += 1")
        gen.emit(f"if _steps > {MAX_BLOCK_STEPS}:")
        gen.indent += 1
        gen.emit("raise ExecutionError('runaway kernel "
                 f"{self.ck.name}')")
        gen.indent -= 1

        first = True
        for block_id, leader in enumerate(ordered[:-1]):
            end = ordered[block_id + 1]
            keyword = "if" if first else "elif"
            first = False
            gen.emit(f"{keyword} _pc == {block_id}:")
            gen.indent += 1
            self._emit_block(instructions, leader, end, block_of)
            gen.indent -= 1
        if first:
            gen.emit("if True:")
            gen.indent += 1
            gen.emit("break")
            gen.indent -= 1
        else:
            gen.emit("else:")
            gen.indent += 1
            gen.emit("break")
            gen.indent -= 1
        gen.indent -= 1
        gen.emit("t.cycles += _cycles; t.instructions += _instr")
        gen.emit("t.loads += _loads; t.stores += _stores")
        gen.emit("return")
        gen.emit("if False:")
        gen.indent += 1
        gen.emit("yield")  # make _thread a generator even barrier-free
        gen.indent -= 1
        gen.indent -= 1

        # Initialise every register local touched by the body.
        if self._declared:
            init = "; ".join(f"{name} = 0"
                             for name in sorted(self._declared))
            gen.lines.insert(body_start, "    " + init)
        return gen.source()

    def _emit_block(self, instructions, start: int, end: int,
                    block_of: dict) -> None:
        gen = self.gen
        static_cycles = 0
        count = 0
        for index in range(start, end):
            ins = instructions[index]
            static_cycles += ins.compute_cycles
            count += 1
            if ins.op == "bra":
                self._flush_static(static_cycles, count)
                static_cycles = count = 0
                target = block_of[ins.branch_target]
                if ins.guard_reg is not None:
                    want = "not " if ins.guard_negated else ""
                    guard_name = _mangle(ins.guard_reg)
                    self._declared.add(guard_name)
                    gen.emit(f"if {want}{guard_name}:")
                    gen.indent += 1
                    gen.emit(f"_pc = {target}; continue")
                    gen.indent -= 1
                else:
                    gen.emit(f"_pc = {target}; continue")
            elif ins.op == "brx":
                self._flush_static(static_cycles, count)
                static_cycles = count = 0
                index_expr = self._expr(ins.operands[0])
                targets = tuple(block_of[t] for t in ins.brx_targets)
                gen.emit(f"_brx_i = {index_expr}")
                gen.emit(f"if not 0 <= _brx_i < {len(targets)}:")
                gen.indent += 1
                gen.emit("raise ExecutionError("
                         "'brx.idx index %d out of range' % _brx_i)")
                gen.indent -= 1
                gen.emit(f"_pc = {targets}[_brx_i]; continue")
            elif ins.op in ("ret", "exit"):
                self._flush_static(static_cycles, count)
                static_cycles = count = 0
                gen.emit("break")
            elif ins.op == "bar":
                self._flush_static(static_cycles, count)
                static_cycles = count = 0
                next_block = block_of[index + 1]
                gen.emit("yield")
                gen.emit(f"_pc = {next_block}; continue")
            elif ins.op == "call":
                raise ExecutionError(
                    "device-function calls are not executed by the "
                    "simulator"
                )
            else:
                self._emit_instruction(ins)
        self._flush_static(static_cycles, count)
        if end < len(instructions):
            # Fall through to the next block.
            gen.emit(f"_pc = {block_of[end]}; continue")
        else:
            gen.emit("break")

    def _flush_static(self, cycles: int, count: int) -> None:
        if count:
            self.gen.emit(f"_cycles += {cycles}; _instr += {count}")


def compile_thread_function(compiled, cost_model: CostModel,
                            memory_env: dict) -> Callable:
    """Generate and exec one kernel's thread function.

    ``memory_env`` comes from :func:`make_memory_helpers` (bound to the
    executing device). The result is a generator function
    ``_thread(t, params, shared)``.
    """
    source = KernelCodegen(compiled, cost_model).generate()
    env = dict(_BASE_ENV)
    env.update(memory_env)
    env["_gsyms"] = compiled.global_symbols
    from repro.gpu.executor import _local as local_buffer

    env["_local"] = local_buffer
    code = compile(source, f"<guardian-jit:{compiled.name}>", "exec")
    exec(code, env)
    return env["_thread"]
