"""Functional PTX interpreter with cycle accounting.

This is the simulator's "SASS level": kernels execute instruction by
instruction against real simulated memory, so the protection semantics
of Guardian's sandboxed kernels are *observable* — an out-of-bounds
store genuinely corrupts bytes (inside the offender's own partition
once fenced), and the added masking instructions genuinely cost cycles.

Execution model
---------------
Threads of a block run as cooperating generators (suspending at
``bar.sync``); warps are groups of 32 consecutive threads; a warp's
cycle count is the maximum over its threads (lockstep). Kernel device
time is::

    duration = launch_overhead + sum(warp_cycles) / parallelism
    parallelism = min(num_warps, num_sms * EFFECTIVE_WARPS_PER_SM)

a latency-style model: absolute times are approximate, but the *added*
cycles of Guardian's instrumentation — the paper's target metric — are
exact under the cost model of :mod:`repro.gpu.latency`.

Sampled mode
------------
Large grids can be executed in sampled mode (``max_blocks``): only a
subset of blocks run functionally and cycle totals are scaled by the
sampled fraction. Tests and examples use full mode; the big benchmark
sweeps use sampling, mirroring how architecture studies sample
simulation.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import ExecutionError, LaunchError
from repro.gpu.cache import MemoryHierarchy
from repro.gpu.latency import SHARED_ACCESS_CYCLES, CostModel
from repro.gpu.memory import GlobalMemory, wrap_int
from repro.gpu.registers import RegisterAllocation, allocate
from repro.gpu.specs import DeviceSpec
from repro.ptx import isa
from repro.ptx.ast import (
    Immediate,
    Instruction,
    Kernel,
    Label,
    MemRef,
    Register,
    SharedDecl,
    SpecialReg,
    Symbol,
    TargetList,
)

#: Warps an SM keeps effectively in flight — the throughput knob that
#: converts summed warp latency into device time.
EFFECTIVE_WARPS_PER_SM = 8

#: Fixed device-side cost of dispatching one grid.
LAUNCH_OVERHEAD_CYCLES = 500

#: Default per-thread local-memory (spill space) size in bytes.
LOCAL_MEMORY_BYTES = 4096


# --------------------------------------------------------------------------
# Compilation (decode) — used by the driver JIT
# --------------------------------------------------------------------------


@dataclass
class DecodedInstr:
    """One pre-decoded instruction (labels resolved to indices)."""

    op: str
    opcode: str
    dtype: Optional[str]
    space: Optional[str]
    operands: tuple
    guard_reg: Optional[str]
    guard_negated: bool
    compute_cycles: int
    branch_target: Optional[int] = None
    brx_targets: Optional[tuple[int, ...]] = None
    compare: Optional[str] = None


@dataclass
class CompiledKernel:
    """A kernel after 'JIT': decoded body plus register allocation."""

    kernel: Kernel
    instructions: list[DecodedInstr]
    param_index: dict[str, int]
    shared_layout: dict[str, int]
    shared_bytes: int
    allocation: RegisterAllocation
    allocation_o0: RegisterAllocation
    #: Filled by the module loader with module-scope .global addresses.
    global_symbols: dict[str, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def num_params(self) -> int:
        return len(self.kernel.params)


def compile_kernel(kernel: Kernel, spec: DeviceSpec,
                   cost_model: Optional[CostModel] = None) -> CompiledKernel:
    """Decode a kernel body into executable form.

    Mirrors ``ptxas``: resolves labels, lays out shared memory, runs
    register allocation (both O0 and O3, so Fig. 10 can compare).
    """
    cost_model = cost_model or CostModel(spec)

    # First pass: index labels by the position of the next instruction.
    label_index: dict[str, int] = {}
    instruction_count = 0
    for statement in kernel.body:
        if isinstance(statement, Label):
            label_index[statement.name] = instruction_count
        elif isinstance(statement, Instruction):
            instruction_count += 1

    shared_layout: dict[str, int] = {}
    shared_bytes = 0
    for statement in kernel.body:
        if isinstance(statement, SharedDecl):
            align = max(statement.align, 1)
            shared_bytes = (shared_bytes + align - 1) // align * align
            shared_layout[statement.name] = shared_bytes
            shared_bytes += statement.size_bytes

    decoded: list[DecodedInstr] = []
    for statement in kernel.body:
        if not isinstance(statement, Instruction):
            continue
        decoded.append(_decode(statement, label_index, cost_model))

    return CompiledKernel(
        kernel=kernel,
        instructions=decoded,
        param_index={p.name: i for i, p in enumerate(kernel.params)},
        shared_layout=shared_layout,
        shared_bytes=shared_bytes,
        allocation=allocate(kernel, spec.registers_per_thread, "O3"),
        allocation_o0=allocate(kernel, spec.registers_per_thread, "O0"),
    )


def _decode(instruction: Instruction, label_index: dict[str, int],
            cost_model: CostModel) -> DecodedInstr:
    guarded = instruction.guard is not None
    op = instruction.base_op
    branch_target = None
    brx_targets = None
    compare = None
    if op == "bra":
        target = instruction.operands[0]
        if not isinstance(target, Symbol) or target.name not in label_index:
            raise ExecutionError(f"branch to unknown label {target!s}")
        branch_target = label_index[target.name]
    elif op == "brx":
        targets = instruction.operands[-1]
        if not isinstance(targets, TargetList):
            raise ExecutionError("brx.idx without a target list")
        try:
            brx_targets = tuple(
                label_index[name] for name in targets.labels
            )
        except KeyError as exc:
            raise ExecutionError(f"brx.idx to unknown label {exc}") from exc
    elif op == "setp":
        compare = instruction.suffixes[0]
        if compare not in isa.COMPARE_OPS:
            raise ExecutionError(f"unknown comparison {compare!r}")

    return DecodedInstr(
        op=op,
        opcode=instruction.opcode,
        dtype=instruction.dtype,
        space=instruction.space,
        operands=instruction.operands,
        guard_reg=instruction.guard.register if guarded else None,
        guard_negated=instruction.guard.negated if guarded else False,
        compute_cycles=cost_model.compute_cost(instruction.opcode, guarded),
        branch_target=branch_target,
        brx_targets=brx_targets,
        compare=compare,
    )


# --------------------------------------------------------------------------
# Launch results
# --------------------------------------------------------------------------


@dataclass
class LaunchResult:
    """Metrics of one kernel execution."""

    kernel_name: str
    duration_cycles: float
    total_warp_cycles: float
    threads: int
    warps: int
    instructions: int
    loads: int
    stores: int
    level_counts: dict[str, int]
    sampled_fraction: float = 1.0

    @property
    def l1_hit_ratio(self) -> float:
        data = self.level_counts
        total = data["l1"] + data["l2"] + data["global"]
        return data["l1"] / total if total else 0.0


class _Barrier(Exception):
    """Internal control-flow marker — never escapes the executor."""


@dataclass
class _Thread:
    regs: dict
    tid: tuple[int, int, int]
    ctaid: tuple[int, int, int]
    ntid: tuple[int, int, int]
    nctaid: tuple[int, int, int]
    shared: bytearray
    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    local: Optional[bytearray] = None
    lane: int = 0
    warp: int = 0


# --------------------------------------------------------------------------
# The executor
# --------------------------------------------------------------------------


class KernelExecutor:
    """Executes compiled kernels on one device's memory system.

    Two execution engines share identical semantics and cycle
    accounting: the reference *interpreter* (this module) and the
    *codegen JIT* (:mod:`repro.gpu.codegen`), which is ~20-50x faster
    and used by default. ``use_codegen=False`` forces the interpreter —
    the differential tests run both and assert equal results.
    """

    def __init__(self, spec: DeviceSpec, memory: GlobalMemory,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 use_codegen: bool = True):
        self.spec = spec
        self.memory = memory
        self.hierarchy = hierarchy or MemoryHierarchy.for_spec(spec)
        self.cost_model = CostModel(spec)
        self.use_codegen = use_codegen
        self._codegen_env: Optional[dict] = None
        self._thread_functions: dict[int, object] = {}

    # -- public API -----------------------------------------------------------

    def launch(
        self,
        compiled: CompiledKernel,
        grid: tuple[int, int, int],
        block: tuple[int, int, int],
        params: list,
        max_blocks: Optional[int] = None,
    ) -> LaunchResult:
        """Run a grid and return its metrics.

        ``params`` are the kernel arguments in declaration order
        (integers for pointer/integer params, floats for f32/f64).
        """
        if len(params) != compiled.num_params:
            raise LaunchError(
                f"kernel {compiled.name!r} takes {compiled.num_params} "
                f"parameter(s), got {len(params)}"
            )
        gx, gy, gz = grid
        bx, by, bz = block
        if min(grid) < 1 or min(block) < 1:
            raise LaunchError(f"bad launch configuration {grid}x{block}")
        threads_per_block = bx * by * bz
        if threads_per_block > 1024:
            raise LaunchError(
                f"{threads_per_block} threads per block exceeds 1024"
            )

        self.hierarchy.new_kernel()
        level_before = dict(self.hierarchy.level_counts)

        total_blocks = gx * gy * gz
        block_ids = _select_blocks(total_blocks, max_blocks)
        scale = total_blocks / len(block_ids)

        total_warp_cycles = 0.0
        instructions = 0
        loads = 0
        stores = 0
        for linear_block in block_ids:
            block_metrics = self._run_block(
                compiled, _unlinearise(linear_block, grid), grid, block,
                params,
            )
            total_warp_cycles += block_metrics[0]
            instructions += block_metrics[1]
            loads += block_metrics[2]
            stores += block_metrics[3]

        total_warp_cycles *= scale
        instructions = int(instructions * scale)
        loads = int(loads * scale)
        stores = int(stores * scale)

        warps_per_block = math.ceil(threads_per_block / self.spec.warp_size)
        num_warps = warps_per_block * total_blocks
        parallelism = min(
            num_warps, self.spec.num_sms * EFFECTIVE_WARPS_PER_SM
        )
        duration = (
            LAUNCH_OVERHEAD_CYCLES + total_warp_cycles / max(parallelism, 1)
        )

        level_counts = {
            key: self.hierarchy.level_counts[key] - level_before[key]
            for key in level_before
        }
        return LaunchResult(
            kernel_name=compiled.name,
            duration_cycles=duration,
            total_warp_cycles=total_warp_cycles,
            threads=threads_per_block * total_blocks,
            warps=num_warps,
            instructions=instructions,
            loads=loads,
            stores=stores,
            level_counts=level_counts,
            sampled_fraction=1.0 / scale,
        )

    # -- block / thread execution -------------------------------------------

    def _run_block(
        self,
        compiled: CompiledKernel,
        ctaid: tuple[int, int, int],
        grid: tuple[int, int, int],
        block: tuple[int, int, int],
        params: list,
    ) -> tuple[float, int, int, int]:
        bx, by, bz = block
        shared = bytearray(max(compiled.shared_bytes, 1))
        threads: list[_Thread] = []
        for tz in range(bz):
            for ty in range(by):
                for tx in range(bx):
                    linear = tx + ty * bx + tz * bx * by
                    threads.append(
                        _Thread(
                            regs={},
                            tid=(tx, ty, tz),
                            ctaid=ctaid,
                            ntid=block,
                            nctaid=grid,
                            shared=shared,
                            lane=linear % self.spec.warp_size,
                            warp=linear // self.spec.warp_size,
                        )
                    )

        thread_fn = self._thread_fn(compiled)
        if thread_fn is not None:
            runners = [
                thread_fn(thread, params, shared) for thread in threads
            ]
        else:
            runners = [
                self._run_thread(compiled, thread, params)
                for thread in threads
            ]
        active = list(range(len(runners)))
        while active:
            still_waiting: list[int] = []
            for index in active:
                try:
                    next(runners[index])
                except StopIteration:
                    continue
                still_waiting.append(index)
            # Every generator that yielded reached bar.sync; resume all.
            active = still_waiting

        warp_cycles: dict[int, int] = {}
        instructions = 0
        loads = 0
        stores = 0
        for thread in threads:
            warp_cycles[thread.warp] = max(
                warp_cycles.get(thread.warp, 0), thread.cycles
            )
            instructions += thread.instructions
            loads += thread.loads
            stores += thread.stores
        return (
            float(sum(warp_cycles.values())),
            instructions,
            loads,
            stores,
        )

    def _thread_fn(self, compiled: CompiledKernel):
        """The kernel's JIT-generated thread function (None when the
        interpreter is forced)."""
        if not self.use_codegen:
            return None
        cached = self._thread_functions.get(id(compiled))
        if cached is None:
            from repro.gpu import codegen

            if self._codegen_env is None:
                self._codegen_env = codegen.make_memory_helpers(
                    self.memory, self.hierarchy, self.cost_model
                )
            cached = codegen.compile_thread_function(
                compiled, self.cost_model, self._codegen_env
            )
            self._thread_functions[id(compiled)] = cached
        return cached

    def _run_thread(self, compiled: CompiledKernel, thread: _Thread,
                    params: list) -> Iterator[None]:
        instructions = compiled.instructions
        count = len(instructions)
        pc = 0
        guard_limit = count * 64 + 1_000_000  # runaway-kernel watchdog
        executed = 0
        while pc < count:
            ins = instructions[pc]
            pc += 1
            executed += 1
            if executed > guard_limit:
                raise ExecutionError(
                    f"kernel {compiled.name!r}: runaway execution "
                    f"(> {guard_limit} instructions in one thread)"
                )
            thread.cycles += ins.compute_cycles
            thread.instructions += 1
            if ins.guard_reg is not None:
                predicate = bool(thread.regs.get(ins.guard_reg, 0))
                if predicate == ins.guard_negated:
                    continue  # predicated off; cost already charged
            op = ins.op
            if op == "bra":
                pc = ins.branch_target
            elif op in ("ret", "exit"):
                return
            elif op == "bar":
                yield
            elif op == "brx":
                index = int(self._value(thread, ins.operands[0], params,
                                        compiled))
                targets = ins.brx_targets
                if not 0 <= index < len(targets):
                    raise ExecutionError(
                        f"brx.idx index {index} outside target table of "
                        f"{len(targets)} entries"
                    )
                pc = targets[index]
            elif op == "call":
                raise ExecutionError(
                    "device-function calls are not executed by the "
                    "simulator (library kernels are fully inlined)"
                )
            else:
                self._execute_data(compiled, ins, thread, params)

    # -- operand evaluation ----------------------------------------------------

    def _value(self, thread: _Thread, operand, params: list,
               compiled: CompiledKernel):
        if isinstance(operand, Register):
            try:
                return thread.regs[operand.name]
            except KeyError:
                raise ExecutionError(
                    f"read of uninitialised register {operand.name}"
                ) from None
        if isinstance(operand, Immediate):
            return operand.value
        if isinstance(operand, SpecialReg):
            return self._special(thread, operand.name)
        if isinstance(operand, Symbol):
            name = operand.name
            if name in compiled.shared_layout:
                return compiled.shared_layout[name]
            if name in compiled.global_symbols:
                return compiled.global_symbols[name]
            raise ExecutionError(f"unresolved symbol {name!r}")
        raise ExecutionError(f"cannot evaluate operand {operand!r}")

    @staticmethod
    def _special(thread: _Thread, name: str) -> int:
        axis = "xyz".index(name[-1]) if name[-1] in "xyz" else 0
        if name.startswith("%tid"):
            return thread.tid[axis]
        if name.startswith("%ntid"):
            return thread.ntid[axis]
        if name.startswith("%ctaid"):
            return thread.ctaid[axis]
        if name.startswith("%nctaid"):
            return thread.nctaid[axis]
        if name == "%laneid":
            return thread.lane
        if name == "%warpid":
            return thread.warp
        if name == "%clock":
            return thread.cycles
        raise ExecutionError(f"unknown special register {name!r}")

    def _set_reg(self, thread: _Thread, operand, dtype: Optional[str],
                 value) -> None:
        if not isinstance(operand, Register):
            raise ExecutionError(f"destination {operand!r} is not a register")
        if dtype and not isa.is_float(dtype) and dtype != "pred":
            # Register-value convention (shared by both engines):
            # - every 64-bit integer type wraps to the unsigned 64-bit
            #   range, so address arithmetic behaves like hardware
            #   two's complement (base + "negative" u64 offset lands
            #   where it would on a GPU); signed *comparisons* restore
            #   the signed view;
            # - narrower unsigned/bit types wrap at their width;
            # - narrower signed types stay natural Python ints (index
            #   arithmetic never overflows them, and boundary checks
            #   like the conv kernels' rely on natural negatives).
            width = isa.type_width(dtype)
            if width == 8 or not isa.is_signed(dtype):
                value = wrap_int(int(value), width, False)
            else:
                value = int(value)
        elif dtype == "f32":
            value = struct.unpack("<f", struct.pack("<f", value))[0]
        thread.regs[operand.name] = value

    # -- data instructions -----------------------------------------------------

    def _execute_data(self, compiled: CompiledKernel, ins: DecodedInstr,
                      thread: _Thread, params: list) -> None:
        op = ins.op
        operands = ins.operands
        value = lambda operand: self._value(thread, operand, params, compiled)

        if op == "ld":
            self._load(compiled, ins, thread, params)
        elif op == "st":
            self._store(compiled, ins, thread, params)
        elif op == "mov":
            self._set_reg(thread, operands[0], ins.dtype, value(operands[1]))
        elif op in ("cvta", "cvt"):
            # cvta is an address-space no-op in the flat simulator; cvt
            # converts via the destination type's wrap/round.
            result = value(operands[1])
            if ins.op == "cvt" and ins.dtype and isa.is_float(ins.dtype):
                result = float(result)
            elif ins.op == "cvt" and ins.dtype:
                result = int(result)
            self._set_reg(thread, operands[0], ins.dtype, result)
        elif op == "add":
            self._set_reg(thread, operands[0], ins.dtype,
                          value(operands[1]) + value(operands[2]))
        elif op == "sub":
            self._set_reg(thread, operands[0], ins.dtype,
                          value(operands[1]) - value(operands[2]))
        elif op == "mul":
            self._mul(ins, thread, value)
        elif op in ("mad", "fma"):
            self._mad(ins, thread, value)
        elif op == "div":
            denominator = value(operands[2])
            if denominator == 0 and not isa.is_float(ins.dtype or "u32"):
                raise ExecutionError("integer division by zero")
            numerator = value(operands[1])
            if isa.is_float(ins.dtype or ""):
                result = numerator / denominator if denominator else (
                    math.inf if numerator > 0 else -math.inf
                )
            else:
                result = int(numerator / denominator)  # trunc toward zero
            self._set_reg(thread, operands[0], ins.dtype, result)
        elif op == "rem":
            denominator = value(operands[2])
            if denominator == 0:
                raise ExecutionError("integer remainder by zero")
            numerator = value(operands[1])
            result = numerator - int(numerator / denominator) * denominator
            self._set_reg(thread, operands[0], ins.dtype, result)
        elif op == "and":
            self._set_reg(thread, operands[0], ins.dtype,
                          int(value(operands[1])) & int(value(operands[2])))
        elif op == "or":
            self._set_reg(thread, operands[0], ins.dtype,
                          int(value(operands[1])) | int(value(operands[2])))
        elif op == "xor":
            self._set_reg(thread, operands[0], ins.dtype,
                          int(value(operands[1])) ^ int(value(operands[2])))
        elif op == "not":
            self._set_reg(thread, operands[0], ins.dtype,
                          ~int(value(operands[1])))
        elif op == "shl":
            self._set_reg(thread, operands[0], ins.dtype,
                          int(value(operands[1])) << int(value(operands[2])))
        elif op == "shr":
            width = isa.type_width(ins.dtype or "u32") * 8
            raw = wrap_int(int(value(operands[1])), width // 8,
                           isa.is_signed(ins.dtype or "u32"))
            self._set_reg(thread, operands[0], ins.dtype,
                          raw >> int(value(operands[2])))
        elif op == "min":
            self._set_reg(thread, operands[0], ins.dtype,
                          min(value(operands[1]), value(operands[2])))
        elif op == "max":
            self._set_reg(thread, operands[0], ins.dtype,
                          max(value(operands[1]), value(operands[2])))
        elif op == "neg":
            self._set_reg(thread, operands[0], ins.dtype,
                          -value(operands[1]))
        elif op == "abs":
            self._set_reg(thread, operands[0], ins.dtype,
                          abs(value(operands[1])))
        elif op == "setp":
            self._setp(ins, thread, value)
        elif op == "selp":
            predicate = bool(value(operands[3]))
            chosen = value(operands[1]) if predicate else value(operands[2])
            self._set_reg(thread, operands[0], ins.dtype, chosen)
        elif op in ("sqrt", "rsqrt", "rcp", "ex2", "lg2", "sin", "cos",
                    "tanh"):
            self._sfu(ins, thread, value)
        elif op == "atom":
            self._atomic(compiled, ins, thread, params)
        elif op == "nop":
            pass
        else:
            raise ExecutionError(f"unimplemented opcode {ins.opcode!r}")

    def _mul(self, ins: DecodedInstr, thread: _Thread, value) -> None:
        a = value(ins.operands[1])
        b = value(ins.operands[2])
        if "wide" in ins.opcode:
            narrow = ins.opcode.rsplit(".", 1)[-1]
            wide = "s64" if isa.is_signed(narrow) else "u64"
            self._set_reg(thread, ins.operands[0], wide, int(a) * int(b))
            return
        if "hi" in ins.opcode:
            width = isa.type_width(ins.dtype or "u32") * 8
            product = int(a) * int(b)
            self._set_reg(thread, ins.operands[0], ins.dtype,
                          product >> width)
            return
        self._set_reg(thread, ins.operands[0], ins.dtype, a * b)

    def _mad(self, ins: DecodedInstr, thread: _Thread, value) -> None:
        a = value(ins.operands[1])
        b = value(ins.operands[2])
        c = value(ins.operands[3])
        if "wide" in ins.opcode:
            narrow = ins.opcode.rsplit(".", 1)[-1]
            wide = "s64" if isa.is_signed(narrow) else "u64"
            self._set_reg(thread, ins.operands[0], wide,
                          int(a) * int(b) + int(c))
            return
        self._set_reg(thread, ins.operands[0], ins.dtype, a * b + c)

    def _setp(self, ins: DecodedInstr, thread: _Thread, value) -> None:
        a = value(ins.operands[1])
        b = value(ins.operands[2])
        dtype = ins.dtype or "u32"
        if not isa.is_float(dtype):
            # Restore the dtype's view: unsigned wrap, or the signed
            # two's-complement reading of a (possibly wrapped) value.
            width = isa.type_width(dtype)
            a = wrap_int(int(a), width, isa.is_signed(dtype))
            b = wrap_int(int(b), width, isa.is_signed(dtype))
        compare = ins.compare
        result = {
            "eq": a == b, "ne": a != b,
            "lt": a < b, "le": a <= b,
            "gt": a > b, "ge": a >= b,
        }[compare]
        thread.regs[ins.operands[0].name] = 1 if result else 0

    def _sfu(self, ins: DecodedInstr, thread: _Thread, value) -> None:
        operand = float(value(ins.operands[1]))
        op = ins.op
        try:
            if op == "sqrt":
                result = math.sqrt(operand)
            elif op == "rsqrt":
                result = 1.0 / math.sqrt(operand)
            elif op == "rcp":
                result = 1.0 / operand
            elif op == "ex2":
                result = 2.0 ** operand
            elif op == "lg2":
                result = math.log2(operand)
            elif op == "sin":
                result = math.sin(operand)
            elif op == "cos":
                result = math.cos(operand)
            else:  # tanh
                result = math.tanh(operand)
        except (ValueError, ZeroDivisionError, OverflowError):
            result = math.nan
        self._set_reg(thread, ins.operands[0], ins.dtype, result)

    # -- memory operations ------------------------------------------------------

    def _effective_address(self, compiled: CompiledKernel, thread: _Thread,
                           memref: MemRef, params: list) -> int:
        base = memref.base
        if isinstance(base, Register):
            base_value = thread.regs.get(base.name)
            if base_value is None:
                raise ExecutionError(
                    f"address register {base.name} is uninitialised"
                )
            return int(base_value) + memref.offset
        # Symbol base: shared array or module global.
        name = base.name
        if name in compiled.shared_layout:
            return compiled.shared_layout[name] + memref.offset
        if name in compiled.global_symbols:
            return compiled.global_symbols[name] + memref.offset
        raise ExecutionError(f"cannot address symbol {name!r}")

    def _load(self, compiled: CompiledKernel, ins: DecodedInstr,
              thread: _Thread, params: list) -> None:
        dest, memref = ins.operands
        dtype = ins.dtype or "b32"
        space = ins.space or "generic"
        thread.loads += 1
        if space == "param":
            name = memref.base.name
            index = compiled.param_index.get(name)
            if index is None:
                raise ExecutionError(f"unknown parameter {name!r}")
            thread.cycles += self.cost_model.memory_cost("param")
            self._set_reg(thread, dest, dtype, params[index])
            return
        address = self._effective_address(compiled, thread, memref, params)
        if space == "shared":
            thread.cycles += SHARED_ACCESS_CYCLES
            value = _buffer_load(thread.shared, address, dtype)
        elif space == "local":
            thread.cycles += self.cost_model.memory_cost("local")
            value = _buffer_load(_local(thread), address, dtype)
        else:  # global / generic / const
            _check_alignment(address, dtype)
            level = self.hierarchy.access(address)
            thread.cycles += self.cost_model.memory_cost(level)
            value = self.memory.load_scalar(address, dtype)
        self._set_reg(thread, dest, dtype, value)

    def _store(self, compiled: CompiledKernel, ins: DecodedInstr,
               thread: _Thread, params: list) -> None:
        memref, source = ins.operands
        dtype = ins.dtype or "b32"
        space = ins.space or "generic"
        thread.stores += 1
        value = self._value(thread, source, params, compiled)
        address = self._effective_address(compiled, thread, memref, params)
        if space == "shared":
            thread.cycles += SHARED_ACCESS_CYCLES
            _buffer_store(thread.shared, address, dtype, value)
        elif space == "local":
            thread.cycles += self.cost_model.memory_cost("local")
            _buffer_store(_local(thread), address, dtype, value)
        else:
            _check_alignment(address, dtype)
            level = self.hierarchy.access(address)
            thread.cycles += self.cost_model.memory_cost(level)
            self.memory.store_scalar(address, dtype, value)

    def _atomic(self, compiled: CompiledKernel, ins: DecodedInstr,
                thread: _Thread, params: list) -> None:
        dest, memref, operand = ins.operands
        dtype = ins.dtype or "u32"
        address = self._effective_address(compiled, thread, memref, params)
        level = self.hierarchy.access(address)
        thread.cycles += self.cost_model.memory_cost(level) * 2  # RMW
        thread.loads += 1
        thread.stores += 1
        old = self.memory.load_scalar(address, dtype)
        update = self._value(thread, operand, params, compiled)
        opcode = ins.opcode
        if ".add." in opcode:
            new = old + update
        elif ".max." in opcode:
            new = max(old, update)
        elif ".min." in opcode:
            new = min(old, update)
        elif ".exch." in opcode:
            new = update
        else:
            raise ExecutionError(f"unimplemented atomic {opcode!r}")
        self.memory.store_scalar(address, dtype, new)
        self._set_reg(thread, dest, dtype, old)


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def _select_blocks(total: int, max_blocks: Optional[int]) -> list[int]:
    if max_blocks is None or total <= max_blocks:
        return list(range(total))
    stride = total / max_blocks
    return [int(i * stride) for i in range(max_blocks)]


def _unlinearise(linear: int, grid: tuple[int, int, int]
                 ) -> tuple[int, int, int]:
    gx, gy, _ = grid
    x = linear % gx
    y = (linear // gx) % gy
    z = linear // (gx * gy)
    return (x, y, z)


def _check_alignment(address: int, dtype: str) -> None:
    """NVIDIA GPUs require naturally aligned global accesses; this is
    also what makes bitwise fencing airtight at partition edges — an
    aligned address inside a partition can never spill a partial word
    past the boundary."""
    width = isa.type_width(dtype)
    if address % width:
        raise MemoryFault(address, width, f"misaligned {dtype}")


def _local(thread: _Thread) -> bytearray:
    if thread.local is None:
        thread.local = bytearray(LOCAL_MEMORY_BYTES)
    return thread.local


_BUFFER_FORMATS = {
    "f32": "<f", "f64": "<d",
    "u8": "<B", "s8": "<b", "b8": "<B",
    "u16": "<H", "s16": "<h", "b16": "<H",
    "u32": "<I", "s32": "<i", "b32": "<I",
    "u64": "<Q", "s64": "<q", "b64": "<Q",
}


def _buffer_load(buffer: bytearray, offset: int, dtype: str):
    width = isa.type_width(dtype)
    if offset < 0 or offset + width > len(buffer):
        raise ExecutionError(
            f"shared/local access at {offset} outside buffer of "
            f"{len(buffer)} bytes"
        )
    return struct.unpack_from(_BUFFER_FORMATS[dtype], buffer, offset)[0]


def _buffer_store(buffer: bytearray, offset: int, dtype: str, value) -> None:
    width = isa.type_width(dtype)
    if offset < 0 or offset + width > len(buffer):
        raise ExecutionError(
            f"shared/local access at {offset} outside buffer of "
            f"{len(buffer)} bytes"
        )
    if isa.is_float(dtype):
        struct.pack_into(_BUFFER_FORMATS[dtype], buffer, offset, float(value))
    else:
        struct.pack_into(
            _BUFFER_FORMATS[dtype], buffer, offset,
            wrap_int(int(value), width, isa.is_signed(dtype)),
        )
