"""GPU hardware simulator.

The paper evaluates Guardian on two NVIDIA GPUs (RTX A4000 and RTX
3080 Ti). The Python reproduction cannot drive real hardware, so this
package provides the substitute: a functional, cycle-cost GPU model
with

- the published memory-hierarchy latencies (L1 28, L2 193, global
  220-350 cycles — the paper's Table 2 / Fig. 6),
- a set-associative L1/L2 cache simulation that yields realistic hit
  ratios for the evaluation's cache-sensitivity experiment (Fig. 11),
- a PTX interpreter executing kernels against *real* simulated memory,
  so out-of-bounds accesses genuinely corrupt bytes,
- register allocation with spill modelling (Fig. 10),
- streams, contexts, context-switch costs, and an SM occupancy model
  (leftover scheduling) used by the sharing experiments (Fig. 7).
"""

from repro.gpu.device import Device
from repro.gpu.specs import DeviceSpec, GEFORCE_RTX_3080TI, QUADRO_RTX_A4000

__all__ = [
    "Device",
    "DeviceSpec",
    "GEFORCE_RTX_3080TI",
    "QUADRO_RTX_A4000",
]
