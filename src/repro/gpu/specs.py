"""Device specifications (the paper's Table 2).

Both evaluation GPUs are Ampere (compute capability 8.6). The latency
figures come straight from the paper (which cites Jia et al. and Bari
et al. for them) and drive the cycle-cost model everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU model.

    Attributes mirror the rows of the paper's Table 2, plus the handful
    of micro-architectural constants the simulator needs (clock, cache
    line size, warp width, SM occupancy).
    """

    name: str
    compute_capability: str
    num_sms: int
    cuda_cores: int
    l1_kb: int
    l2_kb: int
    global_memory_bytes: int
    registers_per_thread: int
    pcie: str
    l1_hit_cycles: int
    l2_hit_cycles: int
    global_min_cycles: int
    global_max_cycles: int
    global_bw_gbps: float
    ecc: bool
    clock_ghz: float = 1.56
    warp_size: int = 32
    max_warps_per_sm: int = 48
    cache_line_bytes: int = 128
    #: PCIe v4 x16 effective host<->device bandwidth.
    pcie_bw_gbps: float = 25.0
    #: Cost of swapping a GPU context in/out (time sharing), in cycles.
    #: Context switches flush the TLB and spill context state to DRAM;
    #: measured costs are in the tens of microseconds.
    context_switch_cycles: int = 60_000

    @property
    def global_avg_cycles(self) -> int:
        """The 'typical' global-memory latency the paper quotes (285)."""
        return (self.global_min_cycles + self.global_max_cycles) // 2

    @property
    def max_resident_warps(self) -> int:
        """Upper bound on concurrently resident warps on the device."""
        return self.num_sms * self.max_warps_per_sm

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)


#: The paper's primary evaluation GPU (server 1).
QUADRO_RTX_A4000 = DeviceSpec(
    name="Quadro RTX A4000",
    compute_capability="8.6",
    num_sms=48,
    cuda_cores=6144,
    l1_kb=128,
    l2_kb=4096,
    global_memory_bytes=16 * GIB,
    registers_per_thread=255,
    pcie="v4 x16",
    l1_hit_cycles=28,
    l2_hit_cycles=193,
    global_min_cycles=220,
    global_max_cycles=350,
    global_bw_gbps=448.0,
    ecc=True,
)

#: The second evaluation GPU (server 2, §6.5).
GEFORCE_RTX_3080TI = DeviceSpec(
    name="GeForce RTX 3080 Ti",
    compute_capability="8.6",
    num_sms=80,
    cuda_cores=10240,
    l1_kb=128,
    l2_kb=6144,
    global_memory_bytes=12 * GIB,
    registers_per_thread=255,
    pcie="v4 x16",
    l1_hit_cycles=28,
    l2_hit_cycles=193,
    global_min_cycles=220,
    global_max_cycles=350,
    global_bw_gbps=912.0,
    ecc=False,
    clock_ghz=1.67,
)

#: All specs by name, for the reporting layer.
ALL_SPECS = {
    spec.name: spec for spec in (QUADRO_RTX_A4000, GEFORCE_RTX_3080TI)
}
