"""Simulated GPU global memory.

One flat device address space backed by real bytes. Addresses start at
:data:`DEVICE_BASE` (so device pointers look like the 0x7f... pointers
in the paper's Fig. 5 examples and never collide with small integers),
and every access is checked against the mapped range — an access
outside raises :class:`repro.errors.MemoryFault`, the simulator's
equivalent of an Xid error.

The backing store is **sparse**: a 16 GiB device costs nothing until
pages are touched, so full-size partitions (the Guardian allocator
reserves *all* device memory up front) are cheap to simulate.

Isolation tests rely on this memory being *real*: when a sandboxed
kernel's out-of-bounds store wraps around into its own partition, the
bytes of the victim partition are provably untouched.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import MemoryFault
from repro.ptx import isa

#: Base virtual address of device global memory. Chosen so example
#: addresses resemble the paper's (0x7fa2d0000000-style) pointers.
DEVICE_BASE = 0x7F_A000_0000_00

#: Sparse backing page size. Large enough that scalar accesses almost
#: never straddle a boundary, small enough that sparse workloads stay
#: sparse.
PAGE_SIZE = 1 << 16


def _int_format(width: int, signed: bool) -> str:
    return {1: "bB", 2: "hH", 4: "iI", 8: "qQ"}[width][0 if signed else 1]


class GlobalMemory:
    """The device's off-chip DRAM (sparse, zero-initialised).

    Typed scalar accessors are used by the PTX executor; the bulk
    :meth:`read`/:meth:`write` methods are used by DMA transfers
    (cudaMemcpy) and by tests asserting isolation.
    """

    def __init__(self, size_bytes: int, base: int = DEVICE_BASE):
        self.base = base
        self.size = size_bytes
        self._pages: dict[int, bytearray] = {}

    @property
    def limit(self) -> int:
        """One past the highest mapped address."""
        return self.base + self.size

    @property
    def resident_bytes(self) -> int:
        """Host bytes actually materialised by the sparse store."""
        return len(self._pages) * PAGE_SIZE

    def contains(self, address: int, size: int = 1) -> bool:
        return self.base <= address and address + size <= self.limit

    def _check(self, address: int, size: int, kind: str) -> int:
        if not self.contains(address, size):
            raise MemoryFault(address, size, kind)
        return address - self.base

    def _page(self, page_index: int) -> bytearray:
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_index] = page
        return page

    # -- bulk access (DMA) --------------------------------------------------

    def read(self, address: int, size: int) -> bytes:
        offset = self._check(address, size, "read")
        out = bytearray(size)
        written = 0
        while written < size:
            page_index, in_page = divmod(offset + written, PAGE_SIZE)
            take = min(size - written, PAGE_SIZE - in_page)
            page = self._pages.get(page_index)
            if page is not None:
                out[written : written + take] = page[in_page : in_page + take]
            written += take
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        size = len(data)
        offset = self._check(address, size, "write")
        written = 0
        while written < size:
            page_index, in_page = divmod(offset + written, PAGE_SIZE)
            take = min(size - written, PAGE_SIZE - in_page)
            self._page(page_index)[in_page : in_page + take] = data[
                written : written + take
            ]
            written += take

    def fill(self, address: int, size: int, value: int = 0) -> None:
        self.write(address, bytes([value & 0xFF]) * size)

    def read_array(self, address: int, count: int,
                   dtype: str = "f32") -> np.ndarray:
        """Read ``count`` elements as a numpy array (host-side copy)."""
        width = isa.type_width(dtype)
        raw = self.read(address, count * width)
        return np.frombuffer(raw, dtype=NUMPY_DTYPES[dtype]).copy()

    def write_array(self, address: int, values: np.ndarray,
                    dtype: str = "f32") -> None:
        array = np.asarray(values, dtype=NUMPY_DTYPES[dtype])
        self.write(address, array.tobytes())

    # -- typed scalar access (executor hot path) ------------------------------

    def load_scalar(self, address: int, dtype: str):
        """Load one PTX-typed scalar; returns int or float."""
        width = isa.type_width(dtype)
        offset = self._check(address, width, "read")
        page_index, in_page = divmod(offset, PAGE_SIZE)
        if in_page + width <= PAGE_SIZE:
            page = self._pages.get(page_index)
            raw = (
                page[in_page : in_page + width]
                if page is not None
                else b"\x00" * width
            )
        else:
            raw = self.read(address, width)
        if isa.is_float(dtype):
            return struct.unpack("<f" if width == 4 else "<d", raw)[0]
        fmt = _int_format(width, isa.is_signed(dtype))
        return struct.unpack(f"<{fmt}", bytes(raw))[0]

    def store_scalar(self, address: int, dtype: str, value) -> None:
        width = isa.type_width(dtype)
        self._check(address, width, "write")
        if isa.is_float(dtype):
            raw = struct.pack("<f" if width == 4 else "<d", float(value))
        else:
            fmt = _int_format(width, isa.is_signed(dtype))
            raw = struct.pack(
                f"<{fmt}", wrap_int(int(value), width, isa.is_signed(dtype))
            )
        self.write(address, raw)


NUMPY_DTYPES = {
    "f32": np.float32,
    "f64": np.float64,
    "u8": np.uint8, "s8": np.int8, "b8": np.uint8,
    "u16": np.uint16, "s16": np.int16, "b16": np.uint16,
    "u32": np.uint32, "s32": np.int32, "b32": np.uint32,
    "u64": np.uint64, "s64": np.int64, "b64": np.uint64,
}


def wrap_int(value: int, width: int, signed: bool) -> int:
    """Reduce a Python int into the representable range of the type."""
    bits = width * 8
    value &= (1 << bits) - 1
    if signed and value >= 1 << (bits - 1):
        value -= 1 << bits
    return value
