"""The simulated GPU device.

Ties together the memory system, the PTX executor and the timeline
scheduler behind the operations the driver API needs:

- context and stream management,
- memory allocation (native first-fit — the baseline allocator whose
  arbitrary addresses make co-tenancy unsafe),
- DMA copies,
- kernel launches.

Simulation model: *functional effects are applied at submission time*
(memory contents update immediately, in submission order), while
*timing* is resolved lazily — submitted tasks accumulate and
:meth:`Device.synchronize` runs the discrete-event timeline over them.
This functional/timing split is sound here because tasks in one stream
are submitted in order, and concurrent tenants touch disjoint memory
(the very property Guardian enforces; the unprotected-corruption demos
use explicit single-stream ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.gpu.allocator import FirstFitAllocator
from repro.gpu.cache import MemoryHierarchy
from repro.gpu.context import Context
from repro.gpu.executor import (
    CompiledKernel,
    KernelExecutor,
    LaunchResult,
)
from repro.gpu.memory import GlobalMemory
from repro.gpu.specs import DeviceSpec
from repro.gpu.stream import Stream
from repro.gpu.timeline import GpuTask, Timeline, TimelineResult
from repro.gpu.executor import EFFECTIVE_WARPS_PER_SM, LAUNCH_OVERHEAD_CYCLES


@dataclass
class DeviceMetrics:
    """Cumulative counters across the device's lifetime."""

    kernels_launched: int = 0
    h2d_copies: int = 0
    d2h_copies: int = 0
    d2d_copies: int = 0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    total_cycles: float = 0.0
    context_switches: int = 0
    launch_results: list[LaunchResult] = field(default_factory=list)


class Device:
    """One simulated GPU."""

    def __init__(self, spec: DeviceSpec, keep_launch_results: bool = False):
        self.spec = spec
        self.memory = GlobalMemory(spec.global_memory_bytes)
        self.hierarchy = MemoryHierarchy.for_spec(spec)
        self.executor = KernelExecutor(spec, self.memory, self.hierarchy)
        self.allocator = FirstFitAllocator(
            self.memory.base, spec.global_memory_bytes
        )
        self.contexts: dict[int, Context] = {}
        self.metrics = DeviceMetrics()
        self.clock_cycles = 0.0
        #: Set by the GuardianServer when its telemetry knob is on:
        #: each synchronize then emits device-track spans for the
        #: tasks the timeline just resolved. None = stock device.
        self.telemetry = None
        self._pending: list[GpuTask] = []
        self._keep_launch_results = keep_launch_results
        #: Sampling knob for large grids (None = execute every block).
        self.max_blocks_per_launch: Optional[int] = None

    # -- contexts -------------------------------------------------------------

    @property
    def sm_capacity(self) -> int:
        return self.spec.num_sms * EFFECTIVE_WARPS_PER_SM

    def create_context(self, name: str) -> Context:
        context = Context(name=name)
        self.contexts[context.context_id] = context
        return context

    def destroy_context(self, context: Context) -> None:
        for address in list(context.allocations):
            self.allocator.free(address)
        context.allocations.clear()
        self.contexts.pop(context.context_id, None)

    # -- memory ----------------------------------------------------------------

    def allocate(self, context: Context, size: int) -> int:
        address = self.allocator.allocate(size)
        context.allocations.add(address)
        return address

    def free(self, context: Context, address: int) -> None:
        self.allocator.free(address)
        context.allocations.discard(address)

    # -- task submission --------------------------------------------------------

    def submit_kernel(
        self,
        stream: Stream,
        compiled: CompiledKernel,
        grid: tuple[int, int, int],
        block: tuple[int, int, int],
        params: list,
        tag: str = "",
        release_cycles: float = 0.0,
    ) -> LaunchResult:
        """Execute a kernel functionally and queue its timing task.

        ``release_cycles`` is the device-clock time at which the
        submitting host finished issuing the launch (see
        :class:`repro.gpu.timeline.GpuTask`).
        """
        result = self.executor.launch(
            compiled, grid, block, params,
            max_blocks=self.max_blocks_per_launch,
        )
        stream.note_submit(release_cycles)
        self.metrics.kernels_launched += 1
        if self._keep_launch_results:
            self.metrics.launch_results.append(result)
        self._pending.append(
            GpuTask(
                kind="kernel",
                context_id=stream.context_id,
                stream_key=stream.key,
                work_cycles=result.total_warp_cycles,
                demand=min(result.warps, self.sm_capacity),
                fixed_cycles=LAUNCH_OVERHEAD_CYCLES,
                tag=tag,
                label=compiled.name,
                release=release_cycles,
            )
        )
        return result

    def submit_h2d(self, stream: Stream, dst: int, data: bytes,
                   tag: str = "", release_cycles: float = 0.0) -> None:
        self.memory.write(dst, data)
        self.metrics.h2d_copies += 1
        self.metrics.bytes_h2d += len(data)
        self._pending.append(self._copy_task(
            "h2d", stream, len(data), self.spec.pcie_bw_gbps, tag,
            release_cycles,
        ))

    def submit_d2h(self, stream: Stream, src: int, size: int,
                   tag: str = "", release_cycles: float = 0.0) -> bytes:
        data = self.memory.read(src, size)
        self.metrics.d2h_copies += 1
        self.metrics.bytes_d2h += size
        self._pending.append(self._copy_task(
            "d2h", stream, size, self.spec.pcie_bw_gbps, tag,
            release_cycles,
        ))
        return data

    def submit_d2d(self, stream: Stream, dst: int, src: int, size: int,
                   tag: str = "", release_cycles: float = 0.0) -> None:
        self.memory.write(dst, self.memory.read(src, size))
        self.metrics.d2d_copies += 1
        self._pending.append(self._copy_task(
            "d2d", stream, size, self.spec.global_bw_gbps, tag,
            release_cycles,
        ))

    def submit_memset(self, stream: Stream, dst: int, value: int, size: int,
                      tag: str = "", release_cycles: float = 0.0) -> None:
        self.memory.fill(dst, size, value)
        self.metrics.d2d_copies += 1
        self._pending.append(self._copy_task(
            "d2d", stream, size, self.spec.global_bw_gbps, tag,
            release_cycles,
        ))

    def _copy_task(self, kind: str, stream: Stream, size: int,
                   bw_gbps: float, tag: str,
                   release_cycles: float = 0.0) -> GpuTask:
        stream.note_submit(release_cycles)
        cycles = size * self.spec.clock_ghz / bw_gbps
        return GpuTask(
            kind=kind,
            context_id=stream.context_id,
            stream_key=stream.key,
            work_cycles=cycles,
            tag=tag,
            release=release_cycles,
        )

    # -- synchronisation ---------------------------------------------------------

    def synchronize(self, spatial: bool = True) -> TimelineResult:
        """Resolve all pending tasks' timing and advance the clock.

        ``spatial=True`` models a single shared context (MPS/Guardian);
        ``spatial=False`` models per-application contexts that
        time-share the GPU with context-switch costs (native CUDA).
        """
        timeline = Timeline(
            sm_capacity=self.sm_capacity,
            context_switch_cycles=self.spec.context_switch_cycles,
            spatial=spatial,
        )
        # Continue on the device's global clock: releases are global
        # host-clock instants, so back-to-back batches share one axis.
        base = self.clock_cycles
        resolved = self._pending
        result = timeline.run(resolved, start_cycles=base)
        self._pending = []
        self.clock_cycles += result.makespan_cycles
        self.metrics.total_cycles += result.makespan_cycles
        self.metrics.context_switches += result.context_switches
        if self.telemetry is not None and resolved:
            self._emit_device_spans(base, resolved, result)
        return result

    def _emit_device_spans(self, base: float, tasks: list[GpuTask],
                           result: TimelineResult) -> None:
        """Retrospective device-track spans on the global device axis.

        Emitted after the timeline pass (telemetry observes, never
        charges): one span per resolved task, from its admission to
        its finish instant, on the ``gpu`` track under the owning
        tenant's thread.
        """
        tracer = self.telemetry.tracer
        for task in tasks:
            finish = result.task_finish.get(task.seq)
            if finish is None:
                continue
            start = result.task_start.get(task.seq, 0.0)
            tracer.emit(
                task.label or task.kind, "device", task.tag,
                track="gpu", start=base + start, end=base + finish,
                kind=task.kind, demand=task.demand,
                release=task.release,
            )

    @property
    def pending_tasks(self) -> int:
        return len(self._pending)

    def stream_pending(self, stream: Stream) -> int:
        """Tasks submitted on ``stream`` whose timing is unresolved.

        This is what a stream synchronise "waits on" in the deferred
        timing model: the functional effects already happened at
        submission, and the wait itself is resolved by the next
        :meth:`synchronize` timeline pass.
        """
        return sum(
            1 for task in self._pending if task.stream_key == stream.key
        )

    def elapsed_seconds(self) -> float:
        return self.spec.cycles_to_seconds(self.clock_cycles)
