"""CUDA contexts.

A context is the GPU analogue of a process (paper §2.1): it owns
streams, loaded modules, and memory allocations, and the hardware
isolates *different* contexts from each other. Spatial sharing needs
all tenants inside **one** context — which is exactly what removes the
hardware's isolation and motivates Guardian.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.gpu.stream import Stream

_CONTEXT_IDS = itertools.count(1)


@dataclass
class Context:
    """One GPU context."""

    name: str
    context_id: int = field(default_factory=_CONTEXT_IDS.__next__)
    streams: list[Stream] = field(default_factory=list)
    #: Addresses allocated through this context (so destroying the
    #: context can release them, as the driver does).
    allocations: set[int] = field(default_factory=set)
    default_stream: Stream = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.default_stream is None:
            self.default_stream = self.create_stream()

    def create_stream(self) -> Stream:
        stream = Stream(context_id=self.context_id)
        self.streams.append(stream)
        return stream

    def destroy_stream(self, stream: Stream) -> None:
        """Forget a stream (cuStreamDestroy). The default stream is
        owned by the context and cannot be destroyed.

        Destroying a stream is the one way to clear a sticky
        asynchronous fault — the wedged FIFO's state dies with it,
        which is exactly what quarantine relies on.
        """
        if stream is self.default_stream:
            raise ValueError(
                f"context {self.name!r}: the default stream cannot be "
                f"destroyed"
            )
        stream.fault = None
        if stream in self.streams:
            self.streams.remove(stream)

    @property
    def wedged_streams(self) -> list[Stream]:
        """Streams carrying an unresolved asynchronous fault."""
        return [stream for stream in self.streams if stream.wedged]
