"""CUDA streams.

A stream is a FIFO of device operations. Operations within one stream
execute in submission order; operations in different streams of the
same context may overlap — the property Guardian's server exploits to
run different tenants' kernels concurrently (paper §4.2.4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_STREAM_IDS = itertools.count(1)


@dataclass
class Stream:
    """One command stream, belonging to a context."""

    context_id: int
    stream_id: int = field(default_factory=_STREAM_IDS.__next__)
    #: Sequence numbers of tasks submitted and not yet synchronised.
    pending_tasks: int = 0
    #: Sticky asynchronous fault, modelled after CUDA's sticky context
    #: errors: ``None`` while healthy; once set, the fault surfaces at
    #: every subsequent ordering point (launch, synchronize) until the
    #: stream is destroyed. Set by fault injection or by the device.
    fault: str | None = None
    #: Lifetime submission count (never reset by a sync) and the
    #: device-clock release instant of the latest submission — the
    #: lane-occupancy metrics read these to see how far each tenant's
    #: stream ran without having to replay the timeline.
    submitted: int = 0
    last_release: float = 0.0

    def note_submit(self, release_cycles: float) -> None:
        """Record one submission and its host release instant.

        Releases are monotone per stream (per-tenant in Guardian), so
        ``last_release`` only ever moves forward even if the caller
        hands in a stale instant.
        """
        self.submitted += 1
        if release_cycles > self.last_release:
            self.last_release = release_cycles

    @property
    def key(self) -> tuple[int, int]:
        """The (context, stream) pair used by the timeline simulator."""
        return (self.context_id, self.stream_id)

    @property
    def wedged(self) -> bool:
        """A faulted stream accepts no further work."""
        return self.fault is not None
