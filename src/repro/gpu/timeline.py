"""Discrete-event timing simulation of GPU work.

The executor (:mod:`repro.gpu.executor`) produces, for each kernel, its
total warp-cycle *work* and its parallelism *demand*. This module turns
streams of such tasks into a timeline:

- **Spatial sharing** (single context, the MPS/Guardian model): kernels
  from different streams run concurrently, sharing the SM pool under
  NVIDIA's *leftover* policy — earlier-arrived kernels take the
  capacity they demand, later kernels get what is left (the policy the
  paper states it uses, §5).
- **Time sharing** (one context per application, the native model):
  only one context's tasks run at a time; switching contexts costs
  ``context_switch_cycles`` (TLB invalidation + state swap, §7.1).

Host-to-device and device-to-host copies run on dedicated copy engines
(one per direction, FIFO), overlapping kernels — as real GPUs do.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

#: Task resource classes.
RESOURCE_SM = "sm"
RESOURCE_H2D = "h2d"
RESOURCE_D2H = "d2h"


@dataclass
class GpuTask:
    """One unit of device work (kernel or DMA copy)."""

    kind: str                 # "kernel" | "h2d" | "d2h" | "d2d"
    context_id: int
    stream_key: tuple         # (context_id, stream_id)
    work_cycles: float        # SM work (kernels) or transfer cycles (copies)
    demand: int = 0           # parallelism demand (kernels only)
    fixed_cycles: float = 0.0  # launch overhead etc., not shareable
    tag: str = ""             # application id, for per-app completion
    label: str = ""           # kernel name, for traces
    #: Earliest start (device cycles): when the submitting host/server
    #: finished processing the call. Models submission bubbles — a GPU
    #: fed too slowly by its launch path idles between kernels, which
    #: is exactly how interception overhead and the MPS-server
    #: bottleneck surface on real systems.
    release: float = 0.0
    seq: int = field(default_factory=itertools.count().__next__)

    @property
    def resource(self) -> str:
        if self.kind == "kernel":
            return RESOURCE_SM
        if self.kind == "h2d":
            return RESOURCE_H2D
        # d2h and d2d share the device-to-host engine slot in this model
        return RESOURCE_D2H


@dataclass
class TimelineResult:
    """Outcome of simulating a batch of tasks."""

    makespan_cycles: float
    completion_by_tag: dict[str, float]
    start_by_tag: dict[str, float]
    context_switches: int
    task_finish: dict[int, float]  # seq -> finish time
    #: seq -> admission time (when the task actually started running,
    #: after release and engine/stream gating). Same relative axis as
    #: ``task_finish``; consumed by the telemetry device track.
    task_start: dict[int, float] = field(default_factory=dict)

    def tag_duration(self, tag: str) -> float:
        return self.completion_by_tag[tag] - self.start_by_tag.get(tag, 0.0)


@dataclass
class _Running:
    task: GpuTask
    remaining: float
    rate: float = 0.0


class Timeline:
    """Simulates one batch of stream-ordered tasks to completion."""

    def __init__(
        self,
        sm_capacity: int,
        context_switch_cycles: float = 0.0,
        spatial: bool = True,
    ):
        self.sm_capacity = sm_capacity
        self.context_switch_cycles = context_switch_cycles
        self.spatial = spatial

    def run(self, tasks: list[GpuTask],
            start_cycles: float = 0.0) -> TimelineResult:
        """Simulate; tasks within a ``stream_key`` keep their list order.

        ``start_cycles`` is the device's global clock at the start of
        this batch: task releases are global host-clock instants, so
        consecutive batches must continue on the same axis. All
        reported times are relative to ``start_cycles`` (durations).
        """
        queues: dict[tuple, list[GpuTask]] = {}
        for task in tasks:
            queues.setdefault(task.stream_key, []).append(task)
        # Treat per-stream lists as FIFOs (pop from the front).
        for queue in queues.values():
            queue.reverse()

        clock = start_cycles
        running: list[_Running] = []
        finish: dict[int, float] = {}
        admitted: dict[int, float] = {}
        completion: dict[str, float] = {}
        start: dict[str, float] = {}
        active_context: Optional[int] = None
        switches = 0

        def pending_contexts() -> list[int]:
            ids = {queue[-1].context_id for queue in queues.values() if queue}
            ids.update(r.task.context_id for r in running)
            return sorted(ids)

        while any(queues.values()) or running:
            # -- admit new tasks -------------------------------------------
            if not self.spatial:
                if active_context is None or (
                    not _context_busy(active_context, queues, running)
                ):
                    candidates = pending_contexts()
                    if candidates:
                        # Round-robin: next context after the current one.
                        if active_context in candidates:
                            next_context = active_context
                        else:
                            later = [
                                cid for cid in candidates
                                if active_context is not None
                                and cid > active_context
                            ]
                            next_context = (
                                later[0] if later else candidates[0]
                            )
                        if (
                            active_context is not None
                            and next_context != active_context
                        ):
                            clock += self.context_switch_cycles
                            switches += 1
                        active_context = next_context

            started = True
            blocked_release = None
            while started:
                started = False
                blocked_release = None
                busy_streams = {r.task.stream_key for r in running}
                for stream_key, queue in queues.items():
                    if not queue or stream_key in busy_streams:
                        continue
                    head = queue[-1]
                    if not self.spatial and head.context_id != active_context:
                        continue
                    if head.release > clock + 1e-9:
                        if (blocked_release is None
                                or head.release < blocked_release):
                            blocked_release = head.release
                        continue
                    if head.resource != RESOURCE_SM and _engine_busy(
                        head.resource, running
                    ):
                        continue
                    queue.pop()
                    # Kernel work is measured in warp-cycles and drains
                    # at the granted warp count per cycle; fold the
                    # fixed (non-shareable) launch cost into work units
                    # so running alone costs work/demand + fixed.
                    if head.resource == RESOURCE_SM:
                        remaining = head.work_cycles + (
                            head.fixed_cycles * max(head.demand, 1)
                        )
                    else:
                        remaining = head.work_cycles + head.fixed_cycles
                    running.append(_Running(task=head, remaining=remaining))
                    admitted[head.seq] = clock
                    if head.tag and head.tag not in start:
                        start[head.tag] = clock
                    started = True

            if not running:
                if blocked_release is not None:
                    # Everything pending waits on its submitter; the
                    # GPU idles until the next release.
                    clock = blocked_release
                continue  # a context switch may also unblock work

            # -- allocate rates (leftover policy for SM tasks) --------------
            leftover = float(self.sm_capacity)
            for entry in sorted(running, key=lambda r: r.task.seq):
                task = entry.task
                if task.resource == RESOURCE_SM:
                    demand = max(task.demand, 1)
                    granted = min(demand, leftover)
                    leftover -= granted
                    # Work drains at the granted warp count per cycle
                    # (work is measured in warp-cycles).
                    entry.rate = granted
                else:
                    entry.rate = 1.0  # dedicated copy engine

            # -- advance to the next completion or release ------------------
            dt = min(
                entry.remaining / entry.rate
                for entry in running
                if entry.rate > 0
            )
            if blocked_release is not None:
                dt = min(dt, blocked_release - clock)
            clock += dt
            survivors: list[_Running] = []
            for entry in running:
                entry.remaining -= entry.rate * dt
                if entry.remaining <= 1e-9:
                    finish[entry.task.seq] = clock
                    if entry.task.tag:
                        completion[entry.task.tag] = clock
                else:
                    survivors.append(entry)
            running = survivors

        return TimelineResult(
            makespan_cycles=clock - start_cycles,
            completion_by_tag={
                tag: at - start_cycles for tag, at in completion.items()
            },
            start_by_tag={
                tag: at - start_cycles for tag, at in start.items()
            },
            context_switches=switches,
            task_finish={
                seq: at - start_cycles for seq, at in finish.items()
            },
            task_start={
                seq: at - start_cycles for seq, at in admitted.items()
            },
        )


def _context_busy(context_id: int, queues: dict, running: list) -> bool:
    if any(r.task.context_id == context_id for r in running):
        return True
    return any(
        queue and queue[-1].context_id == context_id
        for queue in queues.values()
    )


def _engine_busy(resource: str, running: list) -> bool:
    return any(r.task.resource == resource for r in running)
