"""Generic first-fit free-list allocator over a device address range.

Used in two places:

- the driver's native ``cuMemAlloc`` path (what unmodified CUDA
  applications get — arbitrary addresses anywhere in device memory,
  which is exactly why co-tenants can collide, Fig. 2);
- inside each Guardian partition, where the same mechanism hands out
  sub-ranges of the tenant's contiguous block
  (:mod:`repro.core.allocator`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError


@dataclass
class _FreeBlock:
    start: int
    size: int


class FirstFitAllocator:
    """First-fit allocation with coalescing free list.

    Addresses returned are absolute (within [base, base+size)).
    ``alignment`` applies to every allocation (CUDA guarantees 256-byte
    alignment from ``cudaMalloc``).
    """

    def __init__(self, base: int, size: int, alignment: int = 256):
        if size <= 0:
            raise ValueError("allocator needs a positive size")
        if alignment & (alignment - 1):
            raise ValueError("alignment must be a power of two")
        self.base = base
        self.size = size
        self.alignment = alignment
        self._free: list[_FreeBlock] = [_FreeBlock(base, size)]
        self._live: dict[int, int] = {}  # address -> size

    @property
    def bytes_in_use(self) -> int:
        return sum(self._live.values())

    @property
    def bytes_free(self) -> int:
        return self.size - self.bytes_in_use

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    @property
    def high_water(self) -> int:
        """Highest live byte offset from ``base`` (0 with nothing live).

        The elastic engine's shrink eligibility test: a partition whose
        high-water mark fits in its lower buddy half can release the
        upper half without touching any live allocation.
        """
        if not self._live:
            return 0
        return max(address + size for address, size in self._live.items()) \
            - self.base

    def allocate(self, size: int) -> int:
        """Return the address of a block of at least ``size`` bytes."""
        if size <= 0:
            raise AllocationError(f"cannot allocate {size} bytes")
        rounded = -(-size // self.alignment) * self.alignment
        for index, block in enumerate(self._free):
            if block.size >= rounded:
                address = block.start
                block.start += rounded
                block.size -= rounded
                if block.size == 0:
                    del self._free[index]
                self._live[address] = rounded
                return address
        raise AllocationError(
            f"out of memory: {size} bytes requested, "
            f"{self.bytes_free} free (fragmented across "
            f"{len(self._free)} blocks)"
        )

    def extend(self, extra_bytes: int) -> None:
        """Grow the managed range upward by ``extra_bytes``.

        Used by Guardian's in-place partition growth: the new space is
        contiguous with the old range, so it simply becomes one more
        free block.
        """
        if extra_bytes <= 0:
            raise ValueError(f"cannot extend by {extra_bytes} bytes")
        self._insert(_FreeBlock(self.base + self.size, extra_bytes))
        self.size += extra_bytes

    def shrink(self, new_size: int) -> None:
        """Trim the managed range down to ``[base, base + new_size)``.

        The inverse of :meth:`extend`, used by Guardian's partition
        shrink: the released tail must be entirely free — any live
        allocation at or above the cut refuses the shrink (the caller
        checks :attr:`high_water` first; this re-check makes the heap
        itself safe against racing callers). Free blocks crossing the
        cut are trimmed; free blocks entirely above it are dropped.
        """
        if not 0 < new_size < self.size:
            raise ValueError(
                f"shrink target {new_size} outside (0, {self.size})"
            )
        cut = self.base + new_size
        if self.high_water > new_size:
            raise AllocationError(
                f"cannot shrink to {new_size} bytes: live allocation "
                f"reaches offset {self.high_water}"
            )
        kept: list[_FreeBlock] = []
        for block in self._free:
            if block.start >= cut:
                continue
            if block.start + block.size > cut:
                block.size = cut - block.start
            kept.append(block)
        self._free = kept
        self.size = new_size

    def free(self, address: int) -> None:
        """Release a previously allocated block (coalescing neighbours)."""
        size = self._live.pop(address, None)
        if size is None:
            raise AllocationError(f"free of unallocated address 0x{address:x}")
        self._insert(_FreeBlock(address, size))

    def owns(self, address: int) -> bool:
        """True when ``address`` is the start of a live allocation."""
        return address in self._live

    # -- state transplant (tenant migration) ---------------------------------

    def export_state(self) -> tuple[list[tuple[int, int]],
                                    list[tuple[int, int]]]:
        """Snapshot the heap as ``(free, live)`` lists of
        ``(offset, size)`` pairs, offsets *relative to base* — so the
        state can be replanted at a different base address (live
        migration moves a partition, and with it its heap, to another
        node's address range)."""
        free = [(block.start - self.base, block.size)
                for block in self._free]
        live = [(address - self.base, size)
                for address, size in self._live.items()]
        return free, live

    @classmethod
    def from_state(
        cls,
        base: int,
        size: int,
        free: list[tuple[int, int]],
        live: list[tuple[int, int]],
        alignment: int = 256,
    ) -> "FirstFitAllocator":
        """Rebuild a heap from :meth:`export_state` output at a (possibly
        different) base. Every live allocation keeps its offset within
        the range, so partition-relative pointer arithmetic survives."""
        heap = cls(base, size, alignment)
        heap._free = [_FreeBlock(base + offset, block_size)
                      for offset, block_size in free]
        heap._live = {base + offset: alloc_size
                      for offset, alloc_size in live}
        return heap

    def allocation_size(self, address: int) -> int:
        try:
            return self._live[address]
        except KeyError:
            raise AllocationError(
                f"0x{address:x} is not a live allocation"
            ) from None

    def _insert(self, block: _FreeBlock) -> None:
        # Keep the free list address-ordered and coalesce.
        position = 0
        while (
            position < len(self._free)
            and self._free[position].start < block.start
        ):
            position += 1
        self._free.insert(position, block)
        self._coalesce(position)
        if position > 0:
            self._coalesce(position - 1)

    def _coalesce(self, index: int) -> None:
        while index + 1 < len(self._free):
            current = self._free[index]
            following = self._free[index + 1]
            if current.start + current.size == following.start:
                current.size += following.size
                del self._free[index + 1]
            else:
                break
