"""cuBLAS host-side library (closed source from the caller's view).

Each public function is a high-level BLAS call whose implementation
issues multiple *implicit* CUDA runtime calls — allocations, transfers
and kernel launches the application never sees. ``isamax`` is the
paper's running example: one call performs scratch ``cudaMalloc``,
kernel launches, a ``cudaMemcpy`` of partial results back to the host,
and a host-side final reduction (the paper counts 15+ CUDA calls in
the real one).

At initialisation the library ``dlopen``s the driver and touches two
``cudaGetExportTable`` tables — the behaviours that break naive
library-level interception (§4.1, §7.4).
"""

from __future__ import annotations

import numpy as np

from repro.driver.fatbin import FatBinary, build_fatbin
from repro.libs.kernels import blas as _kernels
from repro.ptx.builder import build_module
from repro.runtime.api import CudaRuntime
from repro.runtime.export_table import EXPORT_TABLE_UUIDS
from repro.runtime.interpose import LIBCUDA

_FATBIN: FatBinary | None = None


def cublas_fatbin() -> FatBinary:
    """The library's embedded fatbin (built once per process run)."""
    global _FATBIN
    if _FATBIN is None:
        module = build_module(_kernels.all_kernels())
        _FATBIN = build_fatbin(module, "libcublas.so.11", "11.7")
    return _FATBIN


class CuBLAS:
    """A cublasHandle_t equivalent, bound to one process's runtime."""

    SO_NAME = "libcublas.so.11"
    BLOCK = 128

    def __init__(self, runtime: CudaRuntime):
        self._rt = runtime
        # Real CUDA libraries dlopen the driver instead of linking it —
        # resolving it here goes through any preloaded interposer.
        self._driver = runtime.loader.dlopen(LIBCUDA)
        # Hidden initialisation through the undocumented export tables.
        ctx_table = runtime.cudaGetExportTable(EXPORT_TABLE_UUIDS[1])
        ctx_table["primaryCtxRetain"]()
        heur = runtime.cudaGetExportTable(EXPORT_TABLE_UUIDS[3])
        self._granularity = heur["memGetGranularity"]()
        self._handles = runtime.registerFatBinary(cublas_fatbin())

    # -- helpers --------------------------------------------------------------

    def _launch_1d(self, kernel: str, n: int, params: list,
                   block: int | None = None) -> None:
        block = block or self.BLOCK
        grid = max(1, -(-n // block))
        self._rt.cudaLaunchKernel(
            self._handles[kernel], (grid, 1, 1), (block, 1, 1), params
        )

    # -- level-1 BLAS -----------------------------------------------------------

    def saxpy(self, n: int, alpha: float, x: int, y: int) -> None:
        """y = alpha * x + y (device pointers)."""
        self._launch_1d("cublas_saxpy", n, [y, x, float(alpha), n])

    def sscal(self, n: int, alpha: float, x: int) -> None:
        self._launch_1d("cublas_sscal", n, [x, float(alpha), n])

    def scopy(self, n: int, x: int, y: int) -> None:
        self._launch_1d("cublas_scopy", n, [y, x, n])

    def sdot(self, n: int, x: int, y: int) -> float:
        """Dot product — two-phase reduction with implicit calls."""
        block = _kernels.REDUCTION_BLOCK
        blocks = max(1, -(-n // block))
        scratch = self._rt.cudaMalloc(blocks * 4)
        self._rt.cudaLaunchKernel(
            self._handles["cublas_sdot_partial"],
            (blocks, 1, 1), (block, 1, 1), [scratch, x, y, n],
        )
        partials = np.frombuffer(
            self._rt.cudaMemcpyD2H(scratch, blocks * 4), dtype=np.float32
        )
        self._rt.cudaFree(scratch)
        return float(partials.sum())

    def isamax(self, n: int, x: int) -> int:
        """Index of the max |x[i]| — the paper's implicit-call example.

        Performs scratch allocation, kernel launch, D2H copies and a
        host-side final reduction, all invisible to the caller.
        """
        block = _kernels.REDUCTION_BLOCK
        blocks = max(1, -(-n // block))
        scratch_vals = self._rt.cudaMalloc(blocks * 4)
        scratch_idxs = self._rt.cudaMalloc(blocks * 4)
        self._rt.cudaLaunchKernel(
            self._handles["cublas_isamax_partial"],
            (blocks, 1, 1), (block, 1, 1),
            [scratch_vals, scratch_idxs, x, n],
        )
        values = np.frombuffer(
            self._rt.cudaMemcpyD2H(scratch_vals, blocks * 4),
            dtype=np.float32,
        )
        indices = np.frombuffer(
            self._rt.cudaMemcpyD2H(scratch_idxs, blocks * 4),
            dtype=np.uint32,
        )
        self._rt.cudaFree(scratch_vals)
        self._rt.cudaFree(scratch_idxs)
        return int(indices[int(values.argmax())])

    # -- level-3 BLAS -------------------------------------------------------------

    def sgemm(
        self,
        m: int,
        n: int,
        k: int,
        a: int,
        b: int,
        c: int,
        trans_a: bool = False,
        trans_b: bool = False,
        alpha: float = 1.0,
        beta: float = 0.0,
        a_row_stride: int | None = None,
    ) -> None:
        """C[m,n] = alpha * op(A) @ op(B) + beta * C (row-major).

        Transposition is expressed through the strided kernel: op(A)
        has logical shape (m, k); if ``trans_a`` the buffer holds
        A as (k, m). ``a_row_stride`` overrides A's row stride for
        non-transposed strided inputs (e.g. a time-slice of a
        (batch, steps, features) tensor).
        """
        sa0, sa1 = (1, m) if trans_a else (a_row_stride or k, 1)
        sb0, sb1 = (1, k) if trans_b else (n, 1)
        self._launch_1d(
            "cublas_sgemm", m * n,
            [c, a, b, m, n, k, sa0, sa1, sb0, sb1,
             float(alpha), float(beta)],
            block=64,
        )

    def sgemm_tiled(self, m: int, n: int, k: int, a: int, b: int,
                    c: int) -> None:
        """Shared-memory tiled GEMM (no transposes, alpha=1, beta=0)."""
        tile = _kernels.GEMM_TILE
        grid = (max(1, -(-n // tile)), max(1, -(-m // tile)), 1)
        self._rt.cudaLaunchKernel(
            self._handles["cublas_sgemm_tiled"],
            grid, (tile, tile, 1), [c, a, b, m, n, k],
        )

    @property
    def kernel_handles(self) -> dict[str, int]:
        """Kernel handles (used by census tooling, not applications)."""
        return dict(self._handles)
