"""cuRAND host-side library."""

from __future__ import annotations

from repro.driver.fatbin import FatBinary, build_fatbin
from repro.libs.kernels import rand as _kernels
from repro.ptx.builder import build_module
from repro.runtime.api import CudaRuntime
from repro.runtime.export_table import EXPORT_TABLE_UUIDS
from repro.runtime.interpose import LIBCUDA

_FATBIN: FatBinary | None = None


def curand_fatbin() -> FatBinary:
    global _FATBIN
    if _FATBIN is None:
        module = build_module(_kernels.all_kernels())
        _FATBIN = build_fatbin(module, "libcurand.so.10", "11.7")
    return _FATBIN


class CuRAND:
    """A curandGenerator_t equivalent (counter-based, reproducible)."""

    SO_NAME = "libcurand.so.10"
    BLOCK = 128

    def __init__(self, runtime: CudaRuntime, seed: int = 0x5EED):
        self._rt = runtime
        self._driver = runtime.loader.dlopen(LIBCUDA)
        table = runtime.cudaGetExportTable(EXPORT_TABLE_UUIDS[0])
        table["ctxLocalStoragePut"]("curand", seed)
        self._handles = runtime.registerFatBinary(curand_fatbin())
        self.seed = seed
        self._offset = 0

    def _launch_1d(self, kernel: str, n: int, params: list) -> None:
        grid = max(1, -(-n // self.BLOCK))
        self._rt.cudaLaunchKernel(
            self._handles[kernel], (grid, 1, 1), (self.BLOCK, 1, 1), params
        )

    def _next_seed(self) -> int:
        # Advance the stream so successive fills are independent.
        self._offset += 1
        return (self.seed + 0x9E37 * self._offset) & ((1 << 64) - 1)

    def generate_uniform(self, x: int, n: int) -> None:
        """Fill n floats with uniform [0, 1) values."""
        self._launch_1d("curand_uniform", n, [x, self._next_seed(), n])

    def generate_normal(self, x: int, n: int, mean: float = 0.0,
                        stddev: float = 1.0) -> None:
        """Fill n floats with N(mean, stddev) values."""
        self._launch_1d(
            "curand_normal", n,
            [x, self._next_seed(), float(mean), float(stddev), n],
        )

    @property
    def kernel_handles(self) -> dict[str, int]:
        return dict(self._handles)
