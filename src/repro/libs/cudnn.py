"""cuDNN host-side library (closed source from the caller's view).

Layer primitives for the mini-framework: convolution (forward and both
backward passes), pooling, activations, fused softmax/cross-entropy,
bias handling and the SGD step. Every method launches kernels and may
allocate scratch through the process runtime — implicit CUDA calls,
like the real library.
"""

from __future__ import annotations

from repro.driver.fatbin import FatBinary, build_fatbin
from repro.libs.kernels import dnn as _kernels
from repro.ptx.builder import build_module
from repro.runtime.api import CudaRuntime
from repro.runtime.export_table import EXPORT_TABLE_UUIDS
from repro.runtime.interpose import LIBCUDA

_FATBIN: FatBinary | None = None


def cudnn_fatbin() -> FatBinary:
    global _FATBIN
    if _FATBIN is None:
        module = build_module(_kernels.all_kernels())
        _FATBIN = build_fatbin(module, "libcudnn.so.8", "11.7")
    return _FATBIN


class CuDNN:
    """A cudnnHandle_t equivalent."""

    SO_NAME = "libcudnn.so.8"
    BLOCK = 128

    def __init__(self, runtime: CudaRuntime):
        self._rt = runtime
        self._driver = runtime.loader.dlopen(LIBCUDA)
        occupancy = runtime.cudaGetExportTable(EXPORT_TABLE_UUIDS[4])
        self._max_blocks = occupancy["occupancyMaxActiveBlocks"](self.BLOCK)
        streams = runtime.cudaGetExportTable(EXPORT_TABLE_UUIDS[2])
        streams["streamIsCapturing"](0)
        self._handles = runtime.registerFatBinary(cudnn_fatbin())

    def _launch_1d(self, kernel: str, n: int, params: list) -> None:
        grid = max(1, -(-n // self.BLOCK))
        self._rt.cudaLaunchKernel(
            self._handles[kernel], (grid, 1, 1), (self.BLOCK, 1, 1), params
        )

    # -- convolution -------------------------------------------------------------

    def conv2d_forward(self, y: int, x: int, w: int, bias: int,
                       n: int, cin: int, h: int, win: int,
                       cout: int, kh: int, kw: int) -> tuple[int, int]:
        """Valid-padding stride-1 convolution; returns (oh, ow)."""
        oh, ow = h - kh + 1, win - kw + 1
        self._launch_1d(
            "cudnn_conv2d_fwd", n * cout * oh * ow,
            [y, x, w, bias, n, cin, h, win, cout, kh, kw, oh, ow],
        )
        return oh, ow

    def conv2d_backward_filter(self, dw: int, x: int, dy: int,
                               n: int, cin: int, h: int, win: int,
                               cout: int, kh: int, kw: int) -> None:
        oh, ow = h - kh + 1, win - kw + 1
        self._launch_1d(
            "cudnn_conv2d_bwd_filter", cout * cin * kh * kw,
            [dw, x, dy, n, cin, h, win, cout, kh, kw, oh, ow],
        )

    def conv2d_backward_data(self, dx: int, w: int, dy: int,
                             n: int, cin: int, h: int, win: int,
                             cout: int, kh: int, kw: int) -> None:
        oh, ow = h - kh + 1, win - kw + 1
        self._launch_1d(
            "cudnn_conv2d_bwd_data", n * cin * h * win,
            [dx, w, dy, n, cin, h, win, cout, kh, kw, oh, ow],
        )

    def bias_backward(self, db: int, dy: int, n: int, cout: int,
                      per_channel: int) -> None:
        self._launch_1d("cudnn_bias_grad", cout,
                        [db, dy, n, cout, per_channel])

    # -- pooling -----------------------------------------------------------------

    def maxpool_forward(self, y: int, idx: int, x: int,
                        nc: int, h: int, win: int, p: int
                        ) -> tuple[int, int]:
        oh, ow = h // p, win // p
        self._launch_1d("cudnn_maxpool_fwd", nc * oh * ow,
                        [y, idx, x, nc, h, win, p])
        return oh, ow

    def maxpool_backward(self, dx: int, dy: int, idx: int, n_out: int,
                         n_in: int) -> None:
        # dX must start zeroed; the scatter then fills the argmaxes.
        self._rt.cudaMemset(dx, 0, n_in * 4)
        self._launch_1d("cudnn_maxpool_bwd", n_out, [dx, dy, idx, n_out])

    # -- activations / elementwise ------------------------------------------------

    def relu_forward(self, y: int, x: int, n: int) -> None:
        self._launch_1d("cudnn_relu_fwd", n, [y, x, n])

    def relu_backward(self, dx: int, dy: int, y: int, n: int) -> None:
        self._launch_1d("cudnn_relu_bwd", n, [dx, dy, y, n])

    def tanh_forward(self, y: int, x: int, n: int) -> None:
        self._launch_1d("cudnn_tanh_fwd", n, [y, x, n])

    def add(self, z: int, x: int, y: int, n: int) -> None:
        self._launch_1d("cudnn_add", n, [z, x, y, n])

    def add_bias(self, y: int, bias: int, rows: int, cols: int) -> None:
        self._launch_1d("cudnn_add_bias", rows * cols,
                        [y, bias, rows, cols])

    def fill(self, x: int, value: float, n: int) -> None:
        self._launch_1d("cudnn_fill", n, [x, float(value), n])

    # -- loss & optimiser ------------------------------------------------------------

    def softmax_xent(self, probs: int, loss: int, dx: int, x: int,
                     labels: int, rows: int, cols: int,
                     scale: float) -> None:
        """Fused softmax + cross-entropy fwd/bwd (one thread per row)."""
        self._launch_1d("cudnn_softmax_xent", rows,
                        [probs, loss, dx, x, labels, rows, cols,
                         float(scale)])

    def sgd_update(self, w: int, g: int, lr: float, n: int) -> None:
        self._launch_1d("cudnn_sgd_update", n, [w, g, float(lr), n])

    @property
    def kernel_handles(self) -> dict[str, int]:
        return dict(self._handles)
