"""cuFFT host-side library.

``execute`` mirrors real cuFFT plans: scratch buffers are allocated
behind the caller's back (implicit ``cudaMalloc``), and the inverse
transform launches an extra normalisation kernel.
"""

from __future__ import annotations

import numpy as np

from repro.driver.fatbin import FatBinary, build_fatbin
from repro.libs.kernels import fft as _kernels
from repro.ptx.builder import build_module
from repro.runtime.api import CudaRuntime
from repro.runtime.export_table import EXPORT_TABLE_UUIDS
from repro.runtime.interpose import LIBCUDA

_FATBIN: FatBinary | None = None


def cufft_fatbin() -> FatBinary:
    global _FATBIN
    if _FATBIN is None:
        module = build_module(_kernels.all_kernels())
        _FATBIN = build_fatbin(module, "libcufft.so.10", "11.7")
    return _FATBIN


class CuFFT:
    """A cufftHandle equivalent (1-D complex-to-complex plans)."""

    SO_NAME = "libcufft.so.10"
    BLOCK = 64

    def __init__(self, runtime: CudaRuntime):
        self._rt = runtime
        self._driver = runtime.loader.dlopen(LIBCUDA)
        table = runtime.cudaGetExportTable(EXPORT_TABLE_UUIDS[3])
        table["memPoolQuery"]()
        self._handles = runtime.registerFatBinary(cufft_fatbin())

    def execute(self, out: int, inp: int, n: int,
                inverse: bool = False) -> None:
        """Out-of-place 1-D C2C transform of n interleaved points."""
        grid = max(1, -(-n // self.BLOCK))
        sign = 1.0 if inverse else -1.0
        self._rt.cudaLaunchKernel(
            self._handles["cufft_dft"],
            (grid, 1, 1), (self.BLOCK, 1, 1), [out, inp, n, sign],
        )
        if inverse:
            total = 2 * n
            grid2 = max(1, -(-total // self.BLOCK))
            self._rt.cudaLaunchKernel(
                self._handles["cufft_scale"],
                (grid2, 1, 1), (self.BLOCK, 1, 1),
                [out, 1.0 / n, total],
            )

    def roundtrip(self, buf: int, n: int) -> None:
        """FFT then IFFT in place — allocates implicit scratch."""
        scratch = self._rt.cudaMalloc(2 * n * 4)
        self.execute(scratch, buf, n, inverse=False)
        self.execute(buf, scratch, n, inverse=True)
        self._rt.cudaFree(scratch)

    @property
    def kernel_handles(self) -> dict[str, int]:
        return dict(self._handles)
