"""cuFFT-style device kernels (PTX builders).

A direct O(n^2) DFT — one thread per output bin, SFU sin/cos per term.
Real cuFFT uses radix decompositions, but the *interception surface*
(fatbin kernels + implicit scratch management on the host side) is what
matters for Guardian; the naive kernel exercises the same paths with a
dense, SFU-heavy instruction mix that stresses the cost model
differently from the BLAS/DNN kernels.
"""

from __future__ import annotations

from repro.ptx.ast import Immediate, Kernel
from repro.ptx.builder import KernelBuilder

_TWO_PI = 6.283185307179586


def dft_kernel() -> Kernel:
    """out[k] = sum_j in[j] * exp(sign * 2*pi*i * k * j / n).

    Interleaved complex buffers (re, im pairs); ``sign`` is -1 for the
    forward transform, +1 for the inverse (unnormalised).
    """
    b = KernelBuilder("cufft_dft", params=[
        ("out", "u64"), ("inp", "u64"), ("n", "u32"), ("sign", "f32"),
    ])
    out = b.load_param_ptr("out")
    inp = b.load_param_ptr("inp")
    n = b.load_param("n", "u32")
    sign = b.load_param("sign", "f32")
    k = b.global_thread_id()
    with b.if_less_than(k, n):
        n_float = b.cvt("f32", "u32", n)
        k_float = b.cvt("f32", "u32", k)
        step = b.div(
            "f32",
            b.mul("f32", b.mul("f32", sign, Immediate(_TWO_PI)), k_float),
            n_float,
        )
        acc_re = b.mov("f32", Immediate(0.0))
        acc_im = b.mov("f32", Immediate(0.0))
        with b.loop(n) as j:
            angle = b.mul("f32", step, b.cvt("f32", "u32", j))
            cos_a = b.unary("cos", "f32", angle)
            sin_a = b.unary("sin", "f32", angle)
            re_index = b.mul("u32", j, Immediate(2))
            re = b.ld_global("f32", b.element_addr(inp, re_index, 4))
            im_index = b.add("u32", re_index, Immediate(1))
            im = b.ld_global("f32", b.element_addr(inp, im_index, 4))
            # (re + i*im) * (cos + i*sin)
            new_re = b.fma("f32", re, cos_a, acc_re)
            new_re = b.fma("f32", b.mul("f32", im, Immediate(-1.0)),
                           sin_a, new_re)
            b.emit("mov.f32", acc_re, new_re)
            new_im = b.fma("f32", re, sin_a, acc_im)
            new_im = b.fma("f32", im, cos_a, new_im)
            b.emit("mov.f32", acc_im, new_im)
        out_re = b.mul("u32", k, Immediate(2))
        b.st_global("f32", b.element_addr(out, out_re, 4), acc_re)
        out_im = b.add("u32", out_re, Immediate(1))
        b.st_global("f32", b.element_addr(out, out_im, 4), acc_im)
    return b.build()


def scale_complex_kernel() -> Kernel:
    """Scale an interleaved complex buffer (the 1/n of an inverse)."""
    b = KernelBuilder("cufft_scale", params=[
        ("buf", "u64"), ("factor", "f32"), ("n2", "u32"),
    ])
    buf = b.load_param_ptr("buf")
    factor = b.load_param("factor", "f32")
    n2 = b.load_param("n2", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n2):
        addr = b.element_addr(buf, gid, 4)
        b.st_global("f32", addr,
                    b.mul("f32", b.ld_global("f32", addr), factor))
    return b.build()


def twiddle_func() -> Kernel:
    """A non-entry ``.func`` twiddle helper (census realism)."""
    b = KernelBuilder("cufft_twiddle_helper", params=[
        ("out", "u64"), ("angle", "f32"),
    ], is_entry=False)
    out = b.load_param("out", "u64")
    angle = b.load_param("angle", "f32")
    b.st_global("f32", out, b.unary("cos", "f32", angle))
    cos_addr = b.add("u64", out, Immediate(4))
    b.st_global("f32", cos_addr, b.unary("sin", "f32", angle))
    return b.build()


def all_kernels() -> list[Kernel]:
    return [dft_kernel(), scale_complex_kernel(), twiddle_func()]
