"""cuDNN-style device kernels (PTX builders).

Direct convolution (forward, backward-data, backward-filter),
max-pooling with argmax bookkeeping, activations, fused
softmax+cross-entropy, bias plumbing and the SGD update — the kernel
set a Caffe/PyTorch-class training loop actually launches, with the
integer div/rem index decompositions real kernels pay for.
"""

from __future__ import annotations

from repro.ptx.ast import Immediate, Kernel
from repro.ptx.builder import KernelBuilder


def conv2d_forward_kernel() -> Kernel:
    """Direct convolution, valid padding, stride 1, one thread per
    output element. y[b, oc, oy, ox] = bias[oc] + sum x*w."""
    b = KernelBuilder("cudnn_conv2d_fwd", params=[
        ("y", "u64"), ("x", "u64"), ("w", "u64"), ("bias", "u64"),
        ("n", "u32"), ("cin", "u32"), ("h", "u32"), ("win", "u32"),
        ("cout", "u32"), ("kh", "u32"), ("kw", "u32"),
        ("oh", "u32"), ("ow", "u32"),
    ])
    y = b.load_param_ptr("y")
    x = b.load_param_ptr("x")
    w = b.load_param_ptr("w")
    bias = b.load_param_ptr("bias")
    n = b.load_param("n", "u32")
    cin = b.load_param("cin", "u32")
    h = b.load_param("h", "u32")
    win = b.load_param("win", "u32")
    cout = b.load_param("cout", "u32")
    kh = b.load_param("kh", "u32")
    kw = b.load_param("kw", "u32")
    oh = b.load_param("oh", "u32")
    ow = b.load_param("ow", "u32")

    gid = b.global_thread_id()
    out_per_image = b.mul("u32", cout, b.mul("u32", oh, ow))
    total = b.mul("u32", n, out_per_image)
    with b.if_less_than(gid, total):
        ohw = b.mul("u32", oh, ow)
        batch = b.div("u32", gid, out_per_image)
        rem0 = b.rem("u32", gid, out_per_image)
        oc = b.div("u32", rem0, ohw)
        rem1 = b.rem("u32", rem0, ohw)
        oy = b.div("u32", rem1, ow)
        ox = b.rem("u32", rem1, ow)

        acc = b.ld_global("f32", b.element_addr(bias, oc, 4))
        acc_reg = b.mov("f32", acc)
        with b.loop(cin) as ic:
            # Per-channel bases hoisted like a real compiler would.
            x_chan = b.mul("u32", b.mad_lo("u32", batch, cin, ic), h)
            w_chan = b.mul("u32", b.mad_lo("u32", oc, cin, ic), kh)
            with b.loop(kh) as ky:
                iy = b.add("u32", oy, ky)
                x_row = b.mul("u32", b.add("u32", x_chan, iy), win)
                w_row = b.mul("u32", b.add("u32", w_chan, ky), kw)
                with b.loop(kw) as kx:
                    ix = b.add("u32", ox, kx)
                    x_index = b.add("u32", x_row, ix)
                    w_index = b.add("u32", w_row, kx)
                    xv = b.ld_global("f32", b.element_addr(x, x_index, 4))
                    wv = b.ld_global("f32", b.element_addr(w, w_index, 4))
                    updated = b.fma("f32", xv, wv, acc_reg)
                    b.emit("mov.f32", acc_reg, updated)
        b.st_global("f32", b.element_addr(y, gid, 4), acc_reg)
    return b.build()


def conv2d_bwd_filter_kernel() -> Kernel:
    """dW[oc,ic,ky,kx] = sum over (batch, oy, ox) of x * dy."""
    b = KernelBuilder("cudnn_conv2d_bwd_filter", params=[
        ("dw", "u64"), ("x", "u64"), ("dy", "u64"),
        ("n", "u32"), ("cin", "u32"), ("h", "u32"), ("win", "u32"),
        ("cout", "u32"), ("kh", "u32"), ("kw", "u32"),
        ("oh", "u32"), ("ow", "u32"),
    ])
    dw = b.load_param_ptr("dw")
    x = b.load_param_ptr("x")
    dy = b.load_param_ptr("dy")
    n = b.load_param("n", "u32")
    cin = b.load_param("cin", "u32")
    h = b.load_param("h", "u32")
    win = b.load_param("win", "u32")
    cout = b.load_param("cout", "u32")
    kh = b.load_param("kh", "u32")
    kw = b.load_param("kw", "u32")
    oh = b.load_param("oh", "u32")
    ow = b.load_param("ow", "u32")

    gid = b.global_thread_id()
    khw = b.mul("u32", kh, kw)
    per_oc = b.mul("u32", cin, khw)
    total = b.mul("u32", cout, per_oc)
    with b.if_less_than(gid, total):
        oc = b.div("u32", gid, per_oc)
        rem0 = b.rem("u32", gid, per_oc)
        ic = b.div("u32", rem0, khw)
        rem1 = b.rem("u32", rem0, khw)
        ky = b.div("u32", rem1, kw)
        kx = b.rem("u32", rem1, kw)

        acc = b.mov("f32", Immediate(0.0))
        with b.loop(n) as batch:
            x_chan = b.mul("u32", b.mad_lo("u32", batch, cin, ic), h)
            dy_chan = b.mul("u32", b.mad_lo("u32", batch, cout, oc), oh)
            with b.loop(oh) as oy:
                x_row = b.mul("u32",
                              b.add("u32", x_chan, b.add("u32", oy, ky)),
                              win)
                dy_row = b.mul("u32", b.add("u32", dy_chan, oy), ow)
                with b.loop(ow) as ox:
                    x_index = b.add("u32", x_row, b.add("u32", ox, kx))
                    dy_index = b.add("u32", dy_row, ox)
                    xv = b.ld_global("f32", b.element_addr(x, x_index, 4))
                    gv = b.ld_global("f32", b.element_addr(dy, dy_index, 4))
                    updated = b.fma("f32", xv, gv, acc)
                    b.emit("mov.f32", acc, updated)
        b.st_global("f32", b.element_addr(dw, gid, 4), acc)
    return b.build()


def conv2d_bwd_data_kernel() -> Kernel:
    """dX[b,ic,iy,ix] = sum over (oc,ky,kx) with validity checks."""
    b = KernelBuilder("cudnn_conv2d_bwd_data", params=[
        ("dx", "u64"), ("w", "u64"), ("dy", "u64"),
        ("n", "u32"), ("cin", "u32"), ("h", "u32"), ("win", "u32"),
        ("cout", "u32"), ("kh", "u32"), ("kw", "u32"),
        ("oh", "u32"), ("ow", "u32"),
    ])
    dx = b.load_param_ptr("dx")
    w = b.load_param_ptr("w")
    dy = b.load_param_ptr("dy")
    n = b.load_param("n", "u32")
    cin = b.load_param("cin", "u32")
    h = b.load_param("h", "u32")
    win = b.load_param("win", "u32")
    cout = b.load_param("cout", "u32")
    kh = b.load_param("kh", "u32")
    kw = b.load_param("kw", "u32")
    oh = b.load_param("oh", "u32")
    ow = b.load_param("ow", "u32")

    gid = b.global_thread_id()
    hw = b.mul("u32", h, win)
    per_image = b.mul("u32", cin, hw)
    total = b.mul("u32", n, per_image)
    with b.if_less_than(gid, total):
        batch = b.div("u32", gid, per_image)
        rem0 = b.rem("u32", gid, per_image)
        ic = b.div("u32", rem0, hw)
        rem1 = b.rem("u32", rem0, hw)
        iy = b.div("u32", rem1, win)
        ix = b.rem("u32", rem1, win)

        acc = b.mov("f32", Immediate(0.0))
        with b.loop(cout) as oc:
            w_chan = b.mul("u32", b.mad_lo("u32", oc, cin, ic), kh)
            dy_chan = b.mul("u32", b.mad_lo("u32", batch, cout, oc), oh)
            with b.loop(kh) as ky:
                oy = b.sub("s32", iy, ky)
                oy_ok_low = b.setp("ge", "s32", oy, Immediate(0))
                oy_ok_high = b.setp("lt", "s32", oy, oh)
                skip_row = b.fresh_label("row")
                b.bra(skip_row, guard_reg=oy_ok_low, negated=True)
                b.bra(skip_row, guard_reg=oy_ok_high, negated=True)
                w_row = b.mul("u32", b.add("u32", w_chan, ky), kw)
                dy_row = b.mul("u32", b.add("u32", dy_chan, oy), ow)
                with b.loop(kw) as kx:
                    ox = b.sub("s32", ix, kx)
                    ox_ok_low = b.setp("ge", "s32", ox, Immediate(0))
                    ox_ok_high = b.setp("lt", "s32", ox, ow)
                    skip_col = b.fresh_label("col")
                    b.bra(skip_col, guard_reg=ox_ok_low, negated=True)
                    b.bra(skip_col, guard_reg=ox_ok_high, negated=True)
                    w_index = b.add("u32", w_row, kx)
                    dy_index = b.add("u32", dy_row, ox)
                    wv = b.ld_global("f32", b.element_addr(w, w_index, 4))
                    gv = b.ld_global("f32", b.element_addr(dy, dy_index, 4))
                    updated = b.fma("f32", wv, gv, acc)
                    b.emit("mov.f32", acc, updated)
                    b.label(skip_col)
                b.label(skip_row)
        b.st_global("f32", b.element_addr(dx, gid, 4), acc)
    return b.build()


def bias_grad_kernel() -> Kernel:
    """dB[oc] = sum over (batch, oy, ox) of dy[b, oc, oy, ox]."""
    b = KernelBuilder("cudnn_bias_grad", params=[
        ("db", "u64"), ("dy", "u64"),
        ("n", "u32"), ("cout", "u32"), ("per_chan", "u32"),
    ])
    db = b.load_param_ptr("db")
    dy = b.load_param_ptr("dy")
    n = b.load_param("n", "u32")
    cout = b.load_param("cout", "u32")
    per_chan = b.load_param("per_chan", "u32")
    oc = b.global_thread_id()
    with b.if_less_than(oc, cout):
        acc = b.mov("f32", Immediate(0.0))
        with b.loop(n) as batch:
            base = b.mul("u32", b.mad_lo("u32", batch, cout, oc), per_chan)
            with b.loop(per_chan) as elem:
                index = b.add("u32", base, elem)
                value = b.ld_global("f32", b.element_addr(dy, index, 4))
                updated = b.add("f32", acc, value)
                b.emit("mov.f32", acc, updated)
        b.st_global("f32", b.element_addr(db, oc, 4), acc)
    return b.build()


def maxpool_fwd_kernel() -> Kernel:
    """Non-overlapping PxP max pooling; records argmax for backward."""
    b = KernelBuilder("cudnn_maxpool_fwd", params=[
        ("y", "u64"), ("idx", "u64"), ("x", "u64"),
        ("nc", "u32"), ("h", "u32"), ("win", "u32"), ("p", "u32"),
    ])
    y = b.load_param_ptr("y")
    idx = b.load_param_ptr("idx")
    x = b.load_param_ptr("x")
    nc = b.load_param("nc", "u32")     # n * channels, fused
    h = b.load_param("h", "u32")
    win = b.load_param("win", "u32")
    p = b.load_param("p", "u32")

    gid = b.global_thread_id()
    oh = b.div("u32", h, p)
    ow = b.div("u32", win, p)
    ohw = b.mul("u32", oh, ow)
    total = b.mul("u32", nc, ohw)
    with b.if_less_than(gid, total):
        chan = b.div("u32", gid, ohw)
        rem0 = b.rem("u32", gid, ohw)
        oy = b.div("u32", rem0, ow)
        ox = b.rem("u32", rem0, ow)
        chan_base = b.mul("u32", chan, b.mul("u32", h, win))

        best = b.mov("f32", Immediate(-3.0e38))
        best_index = b.mov("u32", Immediate(0))
        with b.loop(p) as py:
            iy = b.mad_lo("u32", oy, p, py)
            row = b.add("u32", chan_base, b.mul("u32", iy, win))
            with b.loop(p) as px:
                ix = b.mad_lo("u32", ox, p, px)
                index = b.add("u32", row, ix)
                value = b.ld_global("f32", b.element_addr(x, index, 4))
                better = b.setp("gt", "f32", value, best)
                new_best = b.reg("f32")
                b.emit("selp.f32", new_best, value, best, better)
                b.emit("mov.f32", best, new_best)
                new_index = b.reg("b32")
                b.emit("selp.b32", new_index, index, best_index, better)
                b.emit("mov.u32", best_index, new_index)
        b.st_global("f32", b.element_addr(y, gid, 4), best)
        b.st_global("b32", b.element_addr(idx, gid, 4), best_index)
    return b.build()


def maxpool_bwd_kernel() -> Kernel:
    """Scatter pooled gradients back (pools don't overlap, so a plain
    store into the recorded argmax position is exact); dX pre-zeroed."""
    b = KernelBuilder("cudnn_maxpool_bwd", params=[
        ("dx", "u64"), ("dy", "u64"), ("idx", "u64"), ("n_out", "u32"),
    ])
    dx = b.load_param_ptr("dx")
    dy = b.load_param_ptr("dy")
    idx = b.load_param_ptr("idx")
    n_out = b.load_param("n_out", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n_out):
        grad = b.ld_global("f32", b.element_addr(dy, gid, 4))
        target = b.ld_global("b32", b.element_addr(idx, gid, 4))
        b.st_global("f32", b.element_addr(dx, target, 4), grad)
    return b.build()


def relu_fwd_kernel() -> Kernel:
    b = KernelBuilder("cudnn_relu_fwd", params=[
        ("y", "u64"), ("x", "u64"), ("n", "u32"),
    ])
    y = b.load_param_ptr("y")
    x = b.load_param_ptr("x")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        value = b.ld_global("f32", b.element_addr(x, gid, 4))
        zero = b.mov("f32", Immediate(0.0))
        b.st_global("f32", b.element_addr(y, gid, 4),
                    b.max_("f32", value, zero))
    return b.build()


def relu_bwd_kernel() -> Kernel:
    """dx = dy where y > 0 else 0."""
    b = KernelBuilder("cudnn_relu_bwd", params=[
        ("dx", "u64"), ("dy", "u64"), ("y", "u64"), ("n", "u32"),
    ])
    dx = b.load_param_ptr("dx")
    dy = b.load_param_ptr("dy")
    y = b.load_param_ptr("y")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        activated = b.ld_global("f32", b.element_addr(y, gid, 4))
        grad = b.ld_global("f32", b.element_addr(dy, gid, 4))
        positive = b.setp("gt", "f32", activated, Immediate(0.0))
        result = b.reg("f32")
        zero = b.mov("f32", Immediate(0.0))
        b.emit("selp.f32", result, grad, zero, positive)
        b.st_global("f32", b.element_addr(dx, gid, 4), result)
    return b.build()


def tanh_fwd_kernel() -> Kernel:
    b = KernelBuilder("cudnn_tanh_fwd", params=[
        ("y", "u64"), ("x", "u64"), ("n", "u32"),
    ])
    y = b.load_param_ptr("y")
    x = b.load_param_ptr("x")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        value = b.ld_global("f32", b.element_addr(x, gid, 4))
        b.st_global("f32", b.element_addr(y, gid, 4),
                    b.unary("tanh", "f32", value))
    return b.build()


def add_bias_kernel() -> Kernel:
    """y[r, c] += bias[c] over a (rows x cols) row-major matrix."""
    b = KernelBuilder("cudnn_add_bias", params=[
        ("y", "u64"), ("bias", "u64"), ("rows", "u32"), ("cols", "u32"),
    ])
    y = b.load_param_ptr("y")
    bias = b.load_param_ptr("bias")
    rows = b.load_param("rows", "u32")
    cols = b.load_param("cols", "u32")
    gid = b.global_thread_id()
    total = b.mul("u32", rows, cols)
    with b.if_less_than(gid, total):
        col = b.rem("u32", gid, cols)
        bias_val = b.ld_global("f32", b.element_addr(bias, col, 4))
        addr = b.element_addr(y, gid, 4)
        b.st_global("f32", addr,
                    b.add("f32", b.ld_global("f32", addr), bias_val))
    return b.build()


def softmax_xent_kernel() -> Kernel:
    """Fused row-wise softmax + cross-entropy forward/backward.

    One thread per row: writes probabilities, the per-row loss, and the
    input gradient (probs - onehot) * scale. exp/log go through the SFU
    (ex2/lg2), as real kernels do.
    """
    b = KernelBuilder("cudnn_softmax_xent", params=[
        ("probs", "u64"), ("loss", "u64"), ("dx", "u64"),
        ("x", "u64"), ("labels", "u64"),
        ("rows", "u32"), ("cols", "u32"), ("scale", "f32"),
    ])
    probs = b.load_param_ptr("probs")
    loss = b.load_param_ptr("loss")
    dx = b.load_param_ptr("dx")
    x = b.load_param_ptr("x")
    labels = b.load_param_ptr("labels")
    rows = b.load_param("rows", "u32")
    cols = b.load_param("cols", "u32")
    scale = b.load_param("scale", "f32")

    log2e = 1.4426950408889634

    row = b.global_thread_id()
    with b.if_less_than(row, rows):
        base = b.mul("u32", row, cols)
        # Pass 1: row max.
        top = b.mov("f32", Immediate(-3.0e38))
        with b.loop(cols) as j:
            value = b.ld_global(
                "f32", b.element_addr(x, b.add("u32", base, j), 4))
            updated = b.max_("f32", top, value)
            b.emit("mov.f32", top, updated)
        # Pass 2: exponentials and their sum.
        total = b.mov("f32", Immediate(0.0))
        with b.loop(cols) as j:
            index = b.add("u32", base, j)
            value = b.ld_global("f32", b.element_addr(x, index, 4))
            shifted = b.sub("f32", value, top)
            exponent = b.mul("f32", shifted, Immediate(log2e))
            e = b.unary("ex2", "f32", exponent)
            b.st_global("f32", b.element_addr(probs, index, 4), e)
            updated = b.add("f32", total, e)
            b.emit("mov.f32", total, updated)
        # Pass 3: normalise, gradient, loss.
        label = b.ld_global("b32", b.element_addr(labels, row, 4))
        inv_total = b.unary("rcp", "f32", total)
        with b.loop(cols) as j:
            index = b.add("u32", base, j)
            prob_addr = b.element_addr(probs, index, 4)
            p = b.mul("f32", b.ld_global("f32", prob_addr), inv_total)
            b.st_global("f32", prob_addr, p)
            is_label = b.setp("eq", "u32", j, label)
            one = b.mov("f32", Immediate(1.0))
            zero = b.mov("f32", Immediate(0.0))
            onehot = b.reg("f32")
            b.emit("selp.f32", onehot, one, zero, is_label)
            grad = b.mul("f32", b.sub("f32", p, onehot), scale)
            b.st_global("f32", b.element_addr(dx, index, 4), grad)
        # loss = log(sum) - (x[label] - max); log(s) = lg2(s) / log2(e)
        label_index = b.add("u32", base, label)
        label_logit = b.ld_global(
            "f32", b.element_addr(x, label_index, 4))
        log_sum = b.div("f32", b.unary("lg2", "f32", total),
                        Immediate(log2e))
        row_loss = b.sub("f32", log_sum, b.sub("f32", label_logit, top))
        b.st_global("f32", b.element_addr(loss, row, 4), row_loss)
    return b.build()


def sgd_update_kernel() -> Kernel:
    """w[i] -= lr * g[i]"""
    b = KernelBuilder("cudnn_sgd_update", params=[
        ("w", "u64"), ("g", "u64"), ("lr", "f32"), ("n", "u32"),
    ])
    w = b.load_param_ptr("w")
    g = b.load_param_ptr("g")
    lr = b.load_param("lr", "f32")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        w_addr = b.element_addr(w, gid, 4)
        grad = b.ld_global("f32", b.element_addr(g, gid, 4))
        step = b.mul("f32", grad, lr)
        b.st_global("f32", w_addr,
                    b.sub("f32", b.ld_global("f32", w_addr), step))
    return b.build()


def add_kernel() -> Kernel:
    """z[i] = x[i] + y[i] (residual connections, RNN state updates)."""
    b = KernelBuilder("cudnn_add", params=[
        ("z", "u64"), ("x", "u64"), ("y", "u64"), ("n", "u32"),
    ])
    z = b.load_param_ptr("z")
    x = b.load_param_ptr("x")
    y = b.load_param_ptr("y")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        xv = b.ld_global("f32", b.element_addr(x, gid, 4))
        yv = b.ld_global("f32", b.element_addr(y, gid, 4))
        b.st_global("f32", b.element_addr(z, gid, 4), b.add("f32", xv, yv))
    return b.build()


def fill_kernel() -> Kernel:
    """x[i] = value (device-side initialisation)."""
    b = KernelBuilder("cudnn_fill", params=[
        ("x", "u64"), ("value", "f32"), ("n", "u32"),
    ])
    x = b.load_param_ptr("x")
    value = b.load_param("value", "f32")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        b.st_global("f32", b.element_addr(x, gid, 4), value)
    return b.build()


def helper_func() -> Kernel:
    """A ``.func`` device helper (clamp), present so the library's
    fatbin carries non-entry functions — the paper's patcher must
    instrument ``.func`` bodies identically (§4.3, Table 3)."""
    b = KernelBuilder("cudnn_clamp_helper", params=[
        ("out", "u64"), ("x", "f32"), ("lo", "f32"), ("hi", "f32"),
    ], is_entry=False)
    out = b.load_param("out", "u64")
    x = b.load_param("x", "f32")
    lo = b.load_param("lo", "f32")
    hi = b.load_param("hi", "f32")
    clamped = b.min_("f32", b.max_("f32", x, lo), hi)
    b.st_global("f32", out, clamped)
    return b.build()


def all_kernels() -> list[Kernel]:
    return [
        conv2d_forward_kernel(),
        conv2d_bwd_filter_kernel(),
        conv2d_bwd_data_kernel(),
        bias_grad_kernel(),
        maxpool_fwd_kernel(),
        maxpool_bwd_kernel(),
        relu_fwd_kernel(),
        relu_bwd_kernel(),
        tanh_fwd_kernel(),
        add_bias_kernel(),
        softmax_xent_kernel(),
        sgd_update_kernel(),
        add_kernel(),
        fill_kernel(),
        helper_func(),
    ]
