"""cuBLAS-style device kernels (PTX builders).

The workhorses of the mini-framework: strided GEMM (one kernel covers
all transpose combinations via stride parameters), a shared-memory
tiled GEMM exercising barriers, vector ops, and the two-phase
reductions behind ``isamax``/``sdot`` whose host orchestration makes
the implicit-call pattern the paper highlights.
"""

from __future__ import annotations

from repro.ptx.ast import Immediate, Kernel
from repro.ptx.builder import KernelBuilder


def saxpy_kernel() -> Kernel:
    """y[i] = alpha * x[i] + y[i]"""
    b = KernelBuilder("cublas_saxpy", params=[
        ("y", "u64"), ("x", "u64"), ("alpha", "f32"), ("n", "u32"),
    ])
    y = b.load_param_ptr("y")
    x = b.load_param_ptr("x")
    alpha = b.load_param("alpha", "f32")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        x_addr = b.element_addr(x, gid, 4)
        y_addr = b.element_addr(y, gid, 4)
        result = b.fma("f32", b.ld_global("f32", x_addr), alpha,
                       b.ld_global("f32", y_addr))
        b.st_global("f32", y_addr, result)
    return b.build()


def sscal_kernel() -> Kernel:
    """x[i] *= alpha"""
    b = KernelBuilder("cublas_sscal", params=[
        ("x", "u64"), ("alpha", "f32"), ("n", "u32"),
    ])
    x = b.load_param_ptr("x")
    alpha = b.load_param("alpha", "f32")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        addr = b.element_addr(x, gid, 4)
        b.st_global("f32", addr, b.mul("f32", b.ld_global("f32", addr),
                                       alpha))
    return b.build()


def scopy_kernel() -> Kernel:
    """y[i] = x[i]"""
    b = KernelBuilder("cublas_scopy", params=[
        ("y", "u64"), ("x", "u64"), ("n", "u32"),
    ])
    y = b.load_param_ptr("y")
    x = b.load_param_ptr("x")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        value = b.ld_global("f32", b.element_addr(x, gid, 4))
        b.st_global("f32", b.element_addr(y, gid, 4), value)
    return b.build()


def sgemm_strided_kernel() -> Kernel:
    """C[m,n] = alpha * sum_k A[m*sa0+k*sa1] * B[k*sb0+n*sb1] + beta*C[m,n]

    One thread per C element; the stride parameters express every
    transpose combination with a single binary kernel, the way real
    BLAS kernels are specialised.
    """
    b = KernelBuilder("cublas_sgemm", params=[
        ("c", "u64"), ("a", "u64"), ("b", "u64"),
        ("m", "u32"), ("n", "u32"), ("k", "u32"),
        ("sa0", "u32"), ("sa1", "u32"), ("sb0", "u32"), ("sb1", "u32"),
        ("alpha", "f32"), ("beta", "f32"),
    ])
    c_ptr = b.load_param_ptr("c")
    a_ptr = b.load_param_ptr("a")
    b_ptr = b.load_param_ptr("b")
    m = b.load_param("m", "u32")
    n = b.load_param("n", "u32")
    k = b.load_param("k", "u32")
    sa0 = b.load_param("sa0", "u32")
    sa1 = b.load_param("sa1", "u32")
    sb0 = b.load_param("sb0", "u32")
    sb1 = b.load_param("sb1", "u32")
    alpha = b.load_param("alpha", "f32")
    beta = b.load_param("beta", "f32")

    gid = b.global_thread_id()
    total = b.mul("u32", m, n)
    with b.if_less_than(gid, total):
        row = b.div("u32", gid, n)
        col = b.rem("u32", gid, n)
        acc = b.mov("f32", Immediate(0.0))
        a_row = b.mul("u32", row, sa0)
        b_col = b.mul("u32", col, sb1)
        with b.loop(k) as kk:
            a_index = b.mad_lo("u32", kk, sa1, a_row)
            b_index = b.mad_lo("u32", kk, sb0, b_col)
            a_val = b.ld_global("f32", b.element_addr(a_ptr, a_index, 4))
            b_val = b.ld_global("f32", b.element_addr(b_ptr, b_index, 4))
            new_acc = b.fma("f32", a_val, b_val, acc)
            b.emit("mov.f32", acc, new_acc)
        c_addr = b.element_addr(c_ptr, gid, 4)
        old = b.ld_global("f32", c_addr)
        scaled_old = b.mul("f32", old, beta)
        result = b.fma("f32", acc, alpha, scaled_old)
        b.st_global("f32", c_addr, result)
    return b.build()


#: Tile edge of the shared-memory GEMM (threads per block = TILE*TILE).
GEMM_TILE = 8


def sgemm_tiled_kernel() -> Kernel:
    """Shared-memory tiled GEMM, row-major, no transposes.

    Each block computes a TILE x TILE tile of C, staging A and B tiles
    through shared memory with ``bar.sync`` between stages — the
    canonical CUDA GEMM structure, here to exercise shared memory and
    barriers under instrumentation (shared accesses must NOT be
    fenced).
    """
    tile = GEMM_TILE
    b = KernelBuilder("cublas_sgemm_tiled", params=[
        ("c", "u64"), ("a", "u64"), ("b", "u64"),
        ("m", "u32"), ("n", "u32"), ("k", "u32"),
    ])
    a_shared = b.shared_array("grdA", "f32", tile * tile)
    b_shared = b.shared_array("grdB", "f32", tile * tile)

    c_ptr = b.load_param_ptr("c")
    a_ptr = b.load_param_ptr("a")
    b_ptr = b.load_param_ptr("b")
    m = b.load_param("m", "u32")
    n = b.load_param("n", "u32")
    k = b.load_param("k", "u32")

    tx = b.special("%tid.x")
    ty = b.special("%tid.y")
    bx = b.special("%ctaid.x")
    by = b.special("%ctaid.y")
    row = b.mad_lo("u32", by, Immediate(tile), ty)
    col = b.mad_lo("u32", bx, Immediate(tile), tx)
    acc = b.mov("f32", Immediate(0.0))

    num_tiles = b.div("u32", b.add("u32", k, Immediate(tile - 1)),
                      Immediate(tile))
    a_base = b.mov("u64", a_shared)   # shared offsets
    b_base = b.mov("u64", b_shared)
    local_index = b.mad_lo("u32", ty, Immediate(tile), tx)
    local_off = b.mul("u32", local_index, Immediate(4))
    a_slot = b.add("u64", a_base, b.cvt("u64", "u32", local_off))
    b_slot = b.add("u64", b_base, b.cvt("u64", "u32", local_off))

    with b.loop(num_tiles) as t:
        # Stage A[row, t*tile+tx] and B[t*tile+ty, col]; out-of-range
        # lanes stage zero.
        a_col = b.mad_lo("u32", t, Immediate(tile), tx)
        b_row = b.mad_lo("u32", t, Immediate(tile), ty)
        zero = b.mov("f32", Immediate(0.0))
        b.st_shared("f32", a_slot, zero)
        b.st_shared("f32", b_slot, zero)
        ok_a_row = b.setp("lt", "u32", row, m)
        ok_a_col = b.setp("lt", "u32", a_col, k)
        skip_a = b.fresh_label("sa")
        b.bra(skip_a, guard_reg=ok_a_row, negated=True)
        b.bra(skip_a, guard_reg=ok_a_col, negated=True)
        a_index = b.mad_lo("u32", row, k, a_col)
        a_val = b.ld_global("f32", b.element_addr(a_ptr, a_index, 4))
        b.st_shared("f32", a_slot, a_val)
        b.label(skip_a)
        ok_b_row = b.setp("lt", "u32", b_row, k)
        ok_b_col = b.setp("lt", "u32", col, n)
        skip_b = b.fresh_label("sb")
        b.bra(skip_b, guard_reg=ok_b_row, negated=True)
        b.bra(skip_b, guard_reg=ok_b_col, negated=True)
        b_index = b.mad_lo("u32", b_row, n, col)
        b_val = b.ld_global("f32", b.element_addr(b_ptr, b_index, 4))
        b.st_shared("f32", b_slot, b_val)
        b.label(skip_b)
        b.barrier()
        with b.loop(Immediate(tile)) as kk:
            a_off = b.mul("u32", b.mad_lo("u32", ty, Immediate(tile), kk),
                          Immediate(4))
            b_off = b.mul("u32", b.mad_lo("u32", kk, Immediate(tile), tx),
                          Immediate(4))
            a_elem = b.ld_shared(
                "f32", b.add("u64", a_base, b.cvt("u64", "u32", a_off)))
            b_elem = b.ld_shared(
                "f32", b.add("u64", b_base, b.cvt("u64", "u32", b_off)))
            updated = b.fma("f32", a_elem, b_elem, acc)
            b.emit("mov.f32", acc, updated)
        b.barrier()

    in_row = b.setp("lt", "u32", row, m)
    in_col = b.setp("lt", "u32", col, n)
    done = b.fresh_label("done")
    b.bra(done, guard_reg=in_row, negated=True)
    b.bra(done, guard_reg=in_col, negated=True)
    c_index = b.mad_lo("u32", row, n, col)
    b.st_global("f32", b.element_addr(c_ptr, c_index, 4), acc)
    b.label(done)
    return b.build()


def isamax_partial_kernel() -> Kernel:
    """Phase 1 of isamax: per-block (max |x|, argmax) to scratch.

    Each block reduces its slice in shared memory; the host launches a
    second phase (or reduces the per-block results itself after a
    D2H copy — the implicit cudaMemcpy of ``cublasIsamax``).
    """
    block = 64
    b = KernelBuilder("cublas_isamax_partial", params=[
        ("out_val", "u64"), ("out_idx", "u64"), ("x", "u64"), ("n", "u32"),
    ])
    vals = b.shared_array("redV", "f32", block)
    idxs = b.shared_array("redI", "b32", block)
    out_val = b.load_param_ptr("out_val")
    out_idx = b.load_param_ptr("out_idx")
    x = b.load_param_ptr("x")
    n = b.load_param("n", "u32")
    tid = b.special("%tid.x")
    gid = b.global_thread_id()

    vals_base = b.mov("u64", vals)
    idxs_base = b.mov("u64", idxs)
    my_off = b.cvt("u64", "u32", b.mul("u32", tid, Immediate(4)))
    my_val_slot = b.add("u64", vals_base, my_off)
    my_idx_slot = b.add("u64", idxs_base, my_off)

    # Stage |x[gid]| (or -1 when out of range).
    neg = b.mov("f32", Immediate(-1.0))
    b.st_shared("f32", my_val_slot, neg)
    b.st_shared("b32", my_idx_slot, gid)
    with b.if_less_than(gid, n):
        value = b.ld_global("f32", b.element_addr(x, gid, 4))
        b.st_shared("f32", my_val_slot, b.unary("abs", "f32", value))
    b.barrier()

    # Tree reduction in shared memory.
    stride = block // 2
    while stride >= 1:
        with b.if_less_than(tid, Immediate(stride)):
            peer_off = b.cvt(
                "u64", "u32",
                b.mul("u32", b.add("u32", tid, Immediate(stride)),
                      Immediate(4)),
            )
            peer_val = b.ld_shared("f32", b.add("u64", vals_base, peer_off))
            peer_idx = b.ld_shared("b32", b.add("u64", idxs_base, peer_off))
            mine = b.ld_shared("f32", my_val_slot)
            better = b.setp("gt", "f32", peer_val, mine)
            keep = b.fresh_label("keep")
            b.bra(keep, guard_reg=better, negated=True)
            b.st_shared("f32", my_val_slot, peer_val)
            b.st_shared("b32", my_idx_slot, peer_idx)
            b.label(keep)
        b.barrier()
        stride //= 2

    with b.if_less_than(tid, Immediate(1)):
        block_id = b.special("%ctaid.x")
        best = b.ld_shared("f32", my_val_slot)
        best_idx = b.ld_shared("b32", my_idx_slot)
        b.st_global("f32", b.element_addr(out_val, block_id, 4), best)
        b.st_global("b32", b.element_addr(out_idx, block_id, 4), best_idx)
    return b.build()


def sdot_partial_kernel() -> Kernel:
    """Phase 1 of sdot: per-block partial dot products to scratch."""
    block = 64
    b = KernelBuilder("cublas_sdot_partial", params=[
        ("out", "u64"), ("x", "u64"), ("y", "u64"), ("n", "u32"),
    ])
    partial = b.shared_array("redD", "f32", block)
    out = b.load_param_ptr("out")
    x = b.load_param_ptr("x")
    y = b.load_param_ptr("y")
    n = b.load_param("n", "u32")
    tid = b.special("%tid.x")
    gid = b.global_thread_id()

    base = b.mov("u64", partial)
    my_slot = b.add("u64", base,
                    b.cvt("u64", "u32", b.mul("u32", tid, Immediate(4))))
    zero = b.mov("f32", Immediate(0.0))
    b.st_shared("f32", my_slot, zero)
    with b.if_less_than(gid, n):
        xv = b.ld_global("f32", b.element_addr(x, gid, 4))
        yv = b.ld_global("f32", b.element_addr(y, gid, 4))
        b.st_shared("f32", my_slot, b.mul("f32", xv, yv))
    b.barrier()

    stride = block // 2
    while stride >= 1:
        with b.if_less_than(tid, Immediate(stride)):
            peer = b.ld_shared(
                "f32",
                b.add("u64", base, b.cvt(
                    "u64", "u32",
                    b.mul("u32", b.add("u32", tid, Immediate(stride)),
                          Immediate(4)))),
            )
            mine = b.ld_shared("f32", my_slot)
            b.st_shared("f32", my_slot, b.add("f32", mine, peer))
        b.barrier()
        stride //= 2

    with b.if_less_than(tid, Immediate(1)):
        block_id = b.special("%ctaid.x")
        total = b.ld_shared("f32", my_slot)
        b.st_global("f32", b.element_addr(out, block_id, 4), total)
    return b.build()


#: Threads per block used by the reduction kernels above.
REDUCTION_BLOCK = 64


def all_kernels() -> list[Kernel]:
    """Every kernel the cuBLAS fatbin ships."""
    return [
        saxpy_kernel(),
        sscal_kernel(),
        scopy_kernel(),
        sgemm_strided_kernel(),
        sgemm_tiled_kernel(),
        isamax_partial_kernel(),
        sdot_partial_kernel(),
    ]
