"""cuRAND-style device kernels (PTX builders).

Counter-based generation (each thread hashes its index with the seed,
SplitMix64-style) so fills are reproducible and order-independent —
the same design as cuRAND's Philox generators. Normal variates come
from Box-Muller through the SFU (sin/cos/sqrt/lg2).
"""

from __future__ import annotations

from repro.ptx.ast import Immediate, Kernel, Register
from repro.ptx.builder import KernelBuilder

_TWO_PI = 6.283185307179586
_LOG2E = 1.4426950408889634


def _splitmix(b: KernelBuilder, gid: Register, seed: Register) -> Register:
    """64-bit SplitMix-style hash of (seed + gid); returns u64."""
    z = b.add("u64", seed, b.cvt("u64", "u32", gid))
    z = b.add("u64", z, Immediate(0x9E3779B97F4A7C15))
    t = b.xor("b64", z, b.shr("u64", z, Immediate(30)))
    t = b.mul("u64", t, Immediate(0xBF58476D1CE4E5B9))
    t = b.xor("b64", t, b.shr("u64", t, Immediate(27)))
    t = b.mul("u64", t, Immediate(0x94D049BB133111EB))
    return b.xor("b64", t, b.shr("u64", t, Immediate(31)))


def _to_unit_float(b: KernelBuilder, bits: Register) -> Register:
    """Map the top 24 bits of a u64 hash onto [0, 1)."""
    top = b.shr("u64", bits, Immediate(40))
    as_f32 = b.cvt("f32", "u64", top)
    return b.mul("f32", as_f32, Immediate(1.0 / float(1 << 24)))


def uniform_kernel() -> Kernel:
    """x[i] = uniform[0,1) from hash(seed, i)."""
    b = KernelBuilder("curand_uniform", params=[
        ("x", "u64"), ("seed", "u64"), ("n", "u32"),
    ])
    x = b.load_param_ptr("x")
    seed = b.load_param("seed", "u64")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        bits = _splitmix(b, gid, seed)
        b.st_global("f32", b.element_addr(x, gid, 4),
                    _to_unit_float(b, bits))
    return b.build()


def normal_kernel() -> Kernel:
    """x[i] = N(mu, sigma) via Box-Muller on two hashed uniforms."""
    b = KernelBuilder("curand_normal", params=[
        ("x", "u64"), ("seed", "u64"), ("mu", "f32"), ("sigma", "f32"),
        ("n", "u32"),
    ])
    x = b.load_param_ptr("x")
    seed = b.load_param("seed", "u64")
    mu = b.load_param("mu", "f32")
    sigma = b.load_param("sigma", "f32")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        bits = _splitmix(b, gid, seed)
        u1 = _to_unit_float(b, bits)
        # Second stream: reuse low bits of the same hash.
        low = b.and_("b64", bits, Immediate((1 << 24) - 1))
        u2 = b.mul("f32", b.cvt("f32", "u64", low),
                   Immediate(1.0 / float(1 << 24)))
        # Guard against log(0).
        u1 = b.max_("f32", u1, Immediate(1e-7))
        # ln(u1) = lg2(u1) / log2(e)
        ln_u1 = b.div("f32", b.unary("lg2", "f32", u1), Immediate(_LOG2E))
        radius = b.unary(
            "sqrt", "f32", b.mul("f32", ln_u1, Immediate(-2.0)))
        angle = b.mul("f32", u2, Immediate(_TWO_PI))
        standard = b.mul("f32", radius, b.unary("cos", "f32", angle))
        b.st_global("f32", b.element_addr(x, gid, 4),
                    b.fma("f32", standard, sigma, mu))
    return b.build()


def all_kernels() -> list[Kernel]:
    return [uniform_kernel(), normal_kernel()]
