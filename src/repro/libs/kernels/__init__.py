"""Device-kernel sources of the simulated accelerated libraries.

Each module builds the PTX kernels of one library with
:class:`repro.ptx.builder.KernelBuilder`. Nothing outside this package
sees the builders — the libraries export only fatbins, preserving the
closed-source property Guardian is designed around.
"""
