"""Simulated "closed-source" CUDA-accelerated libraries.

The paper's deployability argument rests on frameworks linking
closed-source GPU libraries (cuBLAS, cuDNN, cuRAND, cuFFT) whose

- *device* code exists only as PTX/cuBIN inside fatbins (no ``.cu``
  source), and whose
- *host* functions make **implicit** CUDA runtime calls — a single
  ``cublasIsamax`` performs cudaMalloc + cudaMemcpy + kernel launches
  behind the caller's back (§1, §4.1).

The libraries here honour both properties: kernels are authored
privately with the PTX builder, packaged into fatbins at import time,
and never exposed as anything but PTX; host wrappers route every
implicit call through the process's ``CudaRuntime`` (and hence through
whatever backend was interposed), and touch the undocumented
``cudaGetExportTable`` tables at initialisation — so an interception
layer that misses either behaviour visibly breaks, exactly as the paper
describes for prior systems.
"""

from repro.libs.cublas import CuBLAS
from repro.libs.cudnn import CuDNN
from repro.libs.cufft import CuFFT
from repro.libs.curand import CuRAND

__all__ = ["CuBLAS", "CuDNN", "CuFFT", "CuRAND"]
