"""PTX just-in-time compilation.

The CUDA driver JIT-compiles PTX for the installed GPU when no matching
cuBIN exists (or when ``CUDA_FORCE_PTX_JIT`` forces it — the switch
Guardian depends on so its *patched* PTX, not the stale embedded cuBIN,
is what runs). Our JIT is the simulator's ``ptxas``: parse, validate,
register-allocate and decode every kernel into executable form.

JIT compilation is not free; the paper cites it as the reason the
GuardianServer compiles all sandboxed PTX **at initialisation** rather
than per launch (§4.4). The cost model here charges a per-kernel
compilation cost so that design choice is measurable
(`benchmarks/test_ablation_param_passing.py`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import PTXError
from repro.gpu.executor import CompiledKernel, compile_kernel
from repro.gpu.specs import DeviceSpec
from repro.ptx.ast import Module
from repro.ptx.parser import parse_module
from repro.ptx.validator import validate_module

#: Host-side cost of JIT-compiling one kernel, in CPU cycles. Real
#: ptxas takes milliseconds per kernel; at 3 GHz this is a conservative
#: stand-in used by the ablation benchmarks.
JIT_CYCLES_PER_KERNEL = 3_000_000


@dataclass
class CompiledModule:
    """A JIT-compiled module, ready to be loaded into a context."""

    module: Module
    kernels: dict[str, CompiledKernel]
    jit_cycles: int = 0
    #: module-scope .global arrays (name -> size bytes), allocated when
    #: the module is loaded into a context.
    global_arrays: dict[str, int] = field(default_factory=dict)

    def bind_globals(self, addresses: dict[str, int]) -> None:
        """Resolve .global symbols to device addresses (at load time)."""
        for compiled in self.kernels.values():
            compiled.global_symbols.update(addresses)


def jit_compile(source: Union[str, Module],
                spec: DeviceSpec) -> CompiledModule:
    """Compile PTX text (or an already-parsed module) for ``spec``.

    Raises:
        PTXError: on parse or validation failure (what ptxas rejecting
            a malformed module looks like).
    """
    if isinstance(source, str):
        module = parse_module(source)
    else:
        module = source
    validate_module(module)
    kernels = {
        kernel.name: compile_kernel(kernel, spec)
        for kernel in module.kernels.values()
    }
    if not kernels:
        raise PTXError("module contains no kernels")
    return CompiledModule(
        module=module,
        kernels=kernels,
        jit_cycles=JIT_CYCLES_PER_KERNEL * len(kernels),
        global_arrays={
            decl.name: decl.size_bytes for decl in module.globals
        },
    )
