"""``CUmodule`` and ``CUfunction`` handles.

A CUmodule is a unit of loaded device code (from PTX or cuBIN); a
CUfunction is an opaque handle to one kernel inside a module. The
GuardianServer creates one CUmodule per patched PTX, then builds its
``pointerToSymbol`` map from CUfunction handles (paper §4.2.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import DriverError
from repro.driver.jit import CompiledModule
from repro.gpu.executor import CompiledKernel

_MODULE_IDS = itertools.count(1)
_FUNCTION_IDS = itertools.count(0x1000)


@dataclass
class CUmodule:
    """A loaded module inside one context."""

    compiled: CompiledModule
    context_id: int
    module_id: int = field(default_factory=_MODULE_IDS.__next__)
    #: Device addresses of the module's .global arrays.
    global_addresses: dict[str, int] = field(default_factory=dict)
    _functions: dict[str, "CUfunction"] = field(default_factory=dict)

    def get_function(self, name: str) -> "CUfunction":
        function = self._functions.get(name)
        if function is None:
            compiled = self.compiled.kernels.get(name)
            if compiled is None or not compiled.kernel.is_entry:
                raise DriverError(
                    f"named symbol {name!r} not found in module "
                    f"{self.module_id}"
                )
            function = CUfunction(module=self, name=name, compiled=compiled)
            self._functions[name] = function
        return function

    def kernel_names(self) -> list[str]:
        return [
            name
            for name, compiled in self.compiled.kernels.items()
            if compiled.kernel.is_entry
        ]


@dataclass
class CUfunction:
    """Handle to one launchable kernel."""

    module: CUmodule
    name: str
    compiled: CompiledKernel
    handle: int = field(default_factory=_FUNCTION_IDS.__next__)

    @property
    def num_params(self) -> int:
        return self.compiled.num_params
