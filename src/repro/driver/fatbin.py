"""fatBIN containers and the ``cuobjdump`` extraction utility.

``nvcc`` merges the PTX representation of device code and per-arch
machine code (cuBIN) into a fatBIN embedded in the application or
library binary. Which representations are present follows the CUDA
version / GPU architecture matrix of the paper's Table 1 — e.g. a CUDA
11.7 library ships cuBINs for Turing and PTX for Ampere (so Ampere and
Hopper run via JIT).

Guardian's offline phase uses ``cuobjdump`` to pull the PTX out of
closed-source binaries; cuBIN entries are opaque (SASS) and *cannot*
be recovered as PTX — which is why the paper relies on
``CUDA_FORCE_PTX_JIT`` to make the driver ignore embedded cuBINs and
JIT the (patched) PTX instead.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.errors import DriverError
from repro.ptx.ast import Module
from repro.ptx.emitter import emit_module

#: GPU architecture names in generation order with compute capability.
ARCHITECTURES = {
    "turing": "7.5",
    "ampere": "8.6",
    "hopper": "9.0",
}

_ARCH_ORDER = list(ARCHITECTURES)


@dataclass(frozen=True)
class FatbinEntry:
    """One component of a fatBIN: PTX text or an opaque cuBIN."""

    kind: str  # "ptx" | "cubin"
    arch: str  # "turing" | "ampere" | "hopper"
    payload: bytes

    def ptx_text(self) -> str:
        if self.kind != "ptx":
            raise DriverError(
                f"cuBIN entries are machine code; PTX cannot be "
                f"recovered from a {self.arch} cuBIN"
            )
        try:
            return self.payload.decode("utf-8")
        except UnicodeDecodeError as failure:
            raise DriverError(
                f"corrupt {self.arch} PTX entry: undecodable byte at "
                f"offset {failure.start}"
            ) from failure


@dataclass
class FatBinary:
    """A fatBIN: the device-code container embedded in a binary."""

    name: str
    entries: list[FatbinEntry] = field(default_factory=list)

    def ptx_entries(self) -> list[FatbinEntry]:
        return [entry for entry in self.entries if entry.kind == "ptx"]

    def cubin_entries(self) -> list[FatbinEntry]:
        return [entry for entry in self.entries if entry.kind == "cubin"]

    def cubin_for(self, arch: str) -> FatbinEntry | None:
        for entry in self.entries:
            if entry.kind == "cubin" and entry.arch == arch:
                return entry
        return None

    def content_key(self) -> tuple[FatbinEntry, ...]:
        """Hashable content identity of this fatBIN.

        Entries are frozen dataclasses, so the tuple hashes by payload
        content — two tenants deploying byte-identical copies of the
        same library produce equal keys even through distinct
        ``FatBinary`` objects. Used to memoize ``cuobjdump`` extraction
        on the hot deployment path.
        """
        return tuple(self.entries)


def _cuda_version_tier(cuda_version: str) -> int:
    """Map a CUDA version string onto the Table 1 rows (0, 1, 2)."""
    major, minor = (int(part) for part in cuda_version.split(".")[:2])
    if major <= 10:
        return 0
    if major == 11 and minor <= 7:
        return 1
    return 2


def build_fatbin(module: Module, name: str,
                 cuda_version: str = "11.7") -> FatBinary:
    """Package a PTX module into a fatBIN per the Table 1 policy.

    The newest architecture of the CUDA version gets PTX; every older
    architecture gets an opaque cuBIN.
    """
    tier = _cuda_version_tier(cuda_version)
    ptx_arch = _ARCH_ORDER[tier]
    ptx_text = emit_module(module)
    entries = [
        FatbinEntry(
            kind="cubin",
            arch=_ARCH_ORDER[older],
            payload=_make_cubin(ptx_text, _ARCH_ORDER[older]),
        )
        for older in range(tier)
    ]
    entries.append(
        FatbinEntry(kind="ptx", arch=ptx_arch,
                    payload=ptx_text.encode("utf-8"))
    )
    return FatBinary(name=name, entries=entries)


def _make_cubin(ptx_text: str, arch: str) -> bytes:
    """Produce an opaque machine-code blob for ``arch``.

    The content is deliberately non-invertible from the toolchain's
    perspective (a compressed, tagged blob) — extraction tools can see
    *that* there is a cuBIN but cannot produce PTX from it.
    """
    header = f"CUBIN\x00{arch}\x00".encode("ascii")
    return header + zlib.compress(ptx_text.encode("utf-8"), level=9)


def cuobjdump(fatbin: FatBinary) -> list[str]:
    """Extract every embedded PTX text from a fatBIN.

    This is the tool the paper's offline PTX-patcher runs over
    application executables and CUDA libraries (§4.3). cuBIN entries
    are reported but not extractable as PTX.
    """
    return [entry.ptx_text() for entry in fatbin.ptx_entries()]


def describe(fatbin: FatBinary) -> list[tuple[str, str]]:
    """(kind, arch) inventory — what `cuobjdump -lptx -lelf` would list."""
    return [(entry.kind, entry.arch) for entry in fatbin.entries]
