"""The ``cu*`` driver call surface.

One :class:`DriverAPI` instance represents the driver library loaded in
one process, bound to one simulated device. CUDA accelerated libraries
obtain it with ``dlopen("libcuda.so")`` (see
:mod:`repro.runtime.interpose`) — the hook Guardian must intercept.

``force_ptx_jit`` mirrors the ``CUDA_FORCE_PTX_JIT`` environment
variable: when set, fatBIN loads ignore embedded cuBINs and JIT the PTX
(how Guardian guarantees its *patched* PTX is what executes, §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import DriverError
from repro.driver.fatbin import ARCHITECTURES, FatBinary
from repro.driver.jit import CompiledModule, jit_compile
from repro.driver.module import CUfunction, CUmodule
from repro.gpu.context import Context
from repro.gpu.device import Device
from repro.gpu.executor import LaunchResult
from repro.gpu.stream import Stream
from repro.ptx.ast import Module
import zlib


@dataclass
class DriverStats:
    """Driver-side counters (used by interception-coverage tests)."""

    modules_loaded: int = 0
    modules_from_cubin: int = 0
    kernels_launched: int = 0
    jit_cycles: int = 0


class DriverAPI:
    """The driver library of one process, bound to one device."""

    def __init__(self, device: Device, force_ptx_jit: bool = False):
        self.device = device
        self.force_ptx_jit = force_ptx_jit
        self.stats = DriverStats()

    # -- context management ----------------------------------------------------

    def cuCtxCreate(self, name: str) -> Context:
        return self.device.create_context(name)

    def cuCtxDestroy(self, context: Context) -> None:
        self.device.destroy_context(context)

    def cuStreamCreate(self, context: Context) -> Stream:
        return context.create_stream()

    def cuStreamDestroy(self, context: Context, stream: Stream) -> None:
        """Release a stream's driver-side state. Work already submitted
        on the stream stays queued on the device and completes (real
        cuStreamDestroy has the same drain-then-free semantics)."""
        context.destroy_stream(stream)

    def cuStreamSynchronize(self, stream: Stream) -> int:
        """Wait for a stream to drain; returns how many operations the
        wait covered. Timing of the drained work is resolved by the
        device's deferred timeline pass (see :mod:`repro.gpu.device`);
        functionally every submitted operation has already executed."""
        return self.device.stream_pending(stream)

    # -- module management -------------------------------------------------------

    def cuModuleLoadData(self, context: Context,
                         ptx_text: Union[str, Module],
                         allocate_global=None) -> CUmodule:
        """JIT-compile PTX and load it into the context.

        ``allocate_global(name, size) -> address`` overrides where the
        module's ``.global`` arrays are placed — the GuardianServer
        uses it to keep a tenant's statics inside the tenant's own
        partition, so fenced addresses remain valid for them.
        """
        compiled = jit_compile(ptx_text, self.device.spec)
        return self._load_compiled(context, compiled,
                                   allocate_global=allocate_global)

    def cuModuleLoadFatBinary(self, context: Context,
                              fatbin: FatBinary) -> CUmodule:
        """Load device code from a fatBIN.

        Picks a cuBIN matching the device architecture when present
        (unless ``force_ptx_jit``), otherwise JITs the newest PTX —
        the real driver's selection policy.
        """
        arch = self._device_arch()
        cubin = fatbin.cubin_for(arch)
        if cubin is not None and not self.force_ptx_jit:
            # "Load machine code": our opaque cuBIN blobs embed the
            # original PTX, so the *driver* (which shipped them) can
            # decode them; extraction tools cannot.
            _, _, compressed = cubin.payload.partition(b"\x00" + arch.encode() + b"\x00")
            ptx_text = zlib.decompress(compressed).decode("utf-8")
            compiled = jit_compile(ptx_text, self.device.spec)
            compiled.jit_cycles = 0  # native code: no JIT cost
            module = self._load_compiled(context, compiled)
            self.stats.modules_from_cubin += 1
            return module
        ptx_entries = fatbin.ptx_entries()
        if not ptx_entries:
            raise DriverError(
                f"fatbin {fatbin.name!r} has no PTX and no cuBIN for "
                f"{arch}"
            )
        return self.cuModuleLoadData(context, ptx_entries[-1].ptx_text())

    def _load_compiled(self, context: Context, compiled: CompiledModule,
                       allocate_global=None) -> CUmodule:
        module = CUmodule(compiled=compiled, context_id=context.context_id)
        for name, size in compiled.global_arrays.items():
            if allocate_global is not None:
                address = allocate_global(name, size)
            else:
                address = self.device.allocate(context, size)
            module.global_addresses[name] = address
        compiled.bind_globals(module.global_addresses)
        self.stats.modules_loaded += 1
        self.stats.jit_cycles += compiled.jit_cycles
        return module

    def cuModuleGetFunction(self, module: CUmodule, name: str) -> CUfunction:
        return module.get_function(name)

    # -- memory -------------------------------------------------------------------

    def cuMemAlloc(self, context: Context, size: int) -> int:
        return self.device.allocate(context, size)

    def cuMemFree(self, context: Context, address: int) -> None:
        self.device.free(context, address)

    def cuMemcpyHtoD(self, stream: Stream, dst: int, data: bytes,
                     tag: str = "", release_cycles: float = 0.0) -> None:
        self.device.submit_h2d(stream, dst, data, tag=tag,
                               release_cycles=release_cycles)

    def cuMemcpyDtoH(self, stream: Stream, src: int, size: int,
                     tag: str = "", release_cycles: float = 0.0) -> bytes:
        return self.device.submit_d2h(stream, src, size, tag=tag,
                                      release_cycles=release_cycles)

    def cuMemcpyDtoD(self, stream: Stream, dst: int, src: int, size: int,
                     tag: str = "", release_cycles: float = 0.0) -> None:
        self.device.submit_d2d(stream, dst, src, size, tag=tag,
                               release_cycles=release_cycles)

    def cuMemsetD8(self, stream: Stream, dst: int, value: int, size: int,
                   tag: str = "", release_cycles: float = 0.0) -> None:
        """Fill device memory; modelled as an on-device bandwidth task."""
        self.device.submit_memset(stream, dst, value, size, tag=tag,
                                  release_cycles=release_cycles)

    # -- execution -------------------------------------------------------------------

    def cuLaunchKernel(
        self,
        function: CUfunction,
        grid: tuple[int, int, int],
        block: tuple[int, int, int],
        params: list,
        stream: Stream,
        tag: str = "",
        release_cycles: float = 0.0,
    ) -> LaunchResult:
        """Launch a kernel. ``release_cycles`` is the device-clock
        instant the submitting host finished issuing the call (0 means
        immediately available)."""
        self.stats.kernels_launched += 1
        return self.device.submit_kernel(
            stream, function.compiled, grid, block, params, tag=tag,
            release_cycles=release_cycles,
        )

    # -- misc ---------------------------------------------------------------------------

    def _device_arch(self) -> str:
        capability = self.device.spec.compute_capability
        for arch, arch_capability in ARCHITECTURES.items():
            if arch_capability.split(".")[0] == capability.split(".")[0]:
                return arch
        # Compute capability 8.x is Ampere.
        if capability.startswith("8"):
            return "ampere"
        raise DriverError(f"unknown compute capability {capability}")
