"""CUDA driver API substrate (the ``libcuda.so`` analogue).

Guardian interposes the CUDA *runtime and driver library level* — the
lowest public interfaces (paper §4.1, Fig. 4). This package implements
that driver level for the simulator:

- :mod:`repro.driver.fatbin` — fatBIN containers holding PTX and cuBIN
  entries per the paper's Table 1, plus the ``cuobjdump`` extraction
  tool the offline patcher uses;
- :mod:`repro.driver.jit` — the PTX just-in-time compiler
  (parse → validate → register-allocate → decode);
- :mod:`repro.driver.module` — ``CUmodule``/``CUfunction`` handles;
- :mod:`repro.driver.api` — the ``cu*`` call surface bound to one
  simulated device.
"""

from repro.driver.api import DriverAPI
from repro.driver.fatbin import FatBinary, FatbinEntry, cuobjdump
from repro.driver.module import CUfunction, CUmodule

__all__ = [
    "CUfunction",
    "CUmodule",
    "DriverAPI",
    "FatBinary",
    "FatbinEntry",
    "cuobjdump",
]
