"""The elastic memory engine: shrink, compact, oversubscribe.

Guardian's static power-of-two partitioning (paper §4.2.1, the stated
limitation) strands capacity under churn: a departed tenant's hole
only fits an exactly-aligned newcomer, so offered load sheds while the
GPU sits fragmented. This module (DESIGN.md §14) recovers that
capacity with three opt-in mechanisms, all mediated by
:class:`ElasticMemoryEngine` and all **off by default** — the stock
server never constructs an engine and stays bit-identical to the
paper's Table 5 / Fig. 7–13 numbers:

- **Shrink** (``ServerConfig.enable_shrink``): release the upper buddy
  half of a partition whose heap high-water mark fits in the lower
  half — the inverse of ``grow_partition``. The base address (and
  every tenant pointer) is unchanged; only the mask narrows,
  re-published to the bounds table under a fresh epoch.
- **Compaction** (``ServerConfig.enable_compaction``): relocate a
  quiesced tenant into a tighter gap by reusing the live-migration
  machinery *intra-node* — drain → snapshot → replay at the new base →
  republish bounds — authorised by a
  :class:`~repro.core.policy.DefragPolicy` triggering on the
  fragmentation score (largest-carveable / bytes-unpartitioned). The
  tenant's pointers survive through client address virtualization
  (:class:`ElasticClient`) plus the bitwise fence, exactly like a
  cross-node migration: host-side addresses are shifted by the base
  delta, kernel pointer parameters stay virtual and the in-kernel
  ``(addr & mask) | base`` relocates them — the per-access check is
  still two mask ops.
- **Oversubscription** (``ServerConfig.enable_oversubscription``):
  admit beyond physical capacity by swapping the coldest resident
  partitions to host memory, with the PCIe transfer cost modelled from
  :attr:`DeviceSpec.pcie_bw_gbps` and charged to the timeline as a
  serialization point. Victims are picked LRU by last launch (attach
  and swap-in also refresh recency); ``oversubscription_ratio`` hard-
  caps the total declared bytes (resident + swapped) the server will
  carry.

Every elastic mutation keeps the PR 8 trace-specialization layer
honest: shrink invalidates the tenant's traces eagerly (epoch bump),
compaction and swap go through the forget-on-lifecycle path, so a
specialized trace can never replay against a stale base, mask, or
stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import masks
from repro.core.policy import FencingMode, defrag_policy
from repro.errors import GuardianError, PartitionError
from repro.gpu.allocator import FirstFitAllocator
from repro.runtime.backend import CPU_GHZ, GpuBackend


@dataclass(frozen=True)
class _SwapImage:
    """A swapped-out partition, parked in host memory.

    Everything a swap-in needs to rebuild the partition at a (possibly
    different) base: the raw bytes, the heap's partition-relative
    free/live lists, and the module images to replay with their
    globals pinned at the recorded offsets. The tenant object itself
    (stream, incarnation, handles-to-come) stays attached on the
    server — swapping moves the *partition*, not the tenant.
    """

    app_id: str
    size: int
    data: bytes
    heap_free: tuple[tuple[int, int], ...]
    heap_live: tuple[tuple[int, int], ...]
    modules: tuple
    base_at_swap: int


class ElasticMemoryEngine:
    """One server's elastic memory mechanics (DESIGN.md §14).

    Constructed by :class:`~repro.core.server.GuardianServer` iff any
    elastic knob is on; ``server.elastic`` is ``None`` otherwise. The
    engine's passive hooks (:meth:`note_use`, :meth:`forget`) are pure
    bookkeeping — they never charge a cycle — so a server with elastic
    knobs enabled but no elastic operation invoked stays bit-identical
    to stock (pinned by a hypothesis property).
    """

    def __init__(self, server):
        self.server = server
        config = server.config
        self.shrink_enabled = config.enable_shrink
        self.compaction_enabled = config.enable_compaction
        self.oversubscription_enabled = config.enable_oversubscription
        self.oversubscription_ratio = config.oversubscription_ratio
        self.min_partition_bytes = config.min_partition_bytes
        if config.defrag_policy == "threshold":
            self.policy = defrag_policy(
                "threshold", threshold=config.defrag_threshold
            )
        else:
            self.policy = defrag_policy(config.defrag_policy)
        #: app_id -> host-side image of a swapped-out partition.
        self._swapped: dict[str, _SwapImage] = {}
        #: app_id -> monotone recency tick (LRU victim picker input).
        self._recency: dict[str, int] = {}
        #: app_id -> bound ElasticClient, rebased after every move.
        self._clients: dict[str, object] = {}
        self._tick = 0

    # -- passive hooks (bookkeeping only, never charged) -----------------------

    def note_use(self, app_id: str) -> None:
        """Refresh a tenant's recency: called on every kernel launch
        (the LRU-by-last-launch signal) and on attach/restore/swap-in
        so a tenant that never launched still has a well-defined age."""
        self._tick += 1
        self._recency[app_id] = self._tick

    def forget(self, app_id: str) -> None:
        """Drop every trace of a departing tenant — detach, quarantine
        and evacuate all funnel here, so no host-side swap image, LRU
        entry or client binding outlives the tenant."""
        self._swapped.pop(app_id, None)
        self._recency.pop(app_id, None)
        self._clients.pop(app_id, None)
        self._publish_state()

    def bind_client(self, app_id: str, client) -> None:
        """Register the tenant's :class:`ElasticClient` so the engine
        can rebase it after a compaction or swap-in moves the base."""
        self._clients[app_id] = client

    # -- observability ---------------------------------------------------------

    @property
    def swapped_bytes(self) -> int:
        return sum(image.size for image in self._swapped.values())

    def is_swapped(self, app_id: str) -> bool:
        return app_id in self._swapped

    def fragmentation(self) -> dict:
        """The allocator's fragmentation view, published to telemetry."""
        allocator = self.server.allocator
        view = {
            "score": allocator.fragmentation_score(),
            "largest_carveable": allocator.largest_carveable(),
            "bytes_unpartitioned": allocator.bytes_unpartitioned,
            "gaps": len(allocator._gaps),
        }
        self._publish_state(score=view["score"])
        return view

    def _publish_state(self, score: Optional[float] = None) -> None:
        telemetry = self.server.telemetry
        if telemetry is None:
            return
        if score is None:
            score = self.server.allocator.fragmentation_score()
        telemetry.record_elastic_state(score, self.swapped_bytes)

    def _record_op(self, op: str, nbytes: int) -> None:
        telemetry = self.server.telemetry
        if telemetry is not None:
            telemetry.record_elastic_op(op, nbytes)

    def _swap_cycles(self, nbytes: int) -> float:
        """Modelled PCIe transfer cost of moving ``nbytes`` once,
        in host CPU cycles: bytes / bandwidth, scaled onto the CPU
        clock (the GPU System Calls lesson — host services get explicit
        cycle costs, not hand-waves)."""
        return nbytes * CPU_GHZ / self.server.device.spec.pcie_bw_gbps

    # -- shrink ----------------------------------------------------------------

    def shrink(self, app_id: str) -> tuple[int, float]:
        """Shrink one tenant's partition to its buddy-halving floor.

        Returns ``(new size, charged cycles)``; a partition that cannot
        shrink (high-water in the upper half, already at the floor, or
        currently swapped out) returns unchanged with zero charge —
        shrink is opportunistic. An actual shrink republishes the
        bounds record (epoch bump, mask narrows, base unchanged),
        eagerly invalidates the tenant's specialized traces, and
        charges one ``free``-class bounds write to the timeline.
        """
        if not self.shrink_enabled:
            raise GuardianError(
                "partition shrink requires ServerConfig.enable_shrink"
            )
        image = self._swapped.get(app_id)
        if image is not None:
            return image.size, 0.0
        server = self.server
        old_size = server.allocator.partition(app_id).size
        partition = server.allocator.shrink_partition(
            app_id, self.min_partition_bytes
        )
        if partition.size == old_size:
            return old_size, 0.0
        if server.trace_engine is not None:
            # Eager, like grow: the re-register bumped the epoch, so
            # anything recorded against the wider mask is history now,
            # not merely at the next guard check.
            server.trace_engine.invalidate(app_id)
        charged = server._charge(server.costs.free, critical=True)
        server.stats.partitions_shrunk += 1
        server.stats.bytes_reclaimed += old_size - partition.size
        self._record_op("shrink", old_size - partition.size)
        self._publish_state()
        return partition.size, charged

    def shrink_sweep(self) -> int:
        """Shrink every resident tenant that can; returns bytes
        reclaimed. Deterministic order (sorted app_id)."""
        if not self.shrink_enabled:
            return 0
        reclaimed = 0
        allocator = self.server.allocator
        for app_id in sorted(p.app_id for p in allocator.partitions()):
            before = allocator.partition(app_id).size
            new_size, _ = self.shrink(app_id)
            reclaimed += before - new_size
        return reclaimed

    # -- compaction ------------------------------------------------------------

    def compact(self, app_id: str) -> Optional[int]:
        """Relocate one quiesced tenant into the lowest gap that fits.

        Reuses the migration machinery intra-node: drain → snapshot →
        evacuate (scrubbed) → restore at the first-fit base → rebase
        the bound client. Returns the new base, or ``None`` when no
        strictly lower placement exists (compaction never moves a
        tenant sideways or up). The modelled copy cost — one PCIe-class
        pass over the partition — is charged as a serialization point.
        """
        if not self.compaction_enabled:
            raise GuardianError(
                "compaction requires ServerConfig.enable_compaction"
            )
        server = self.server
        if server.mode is not FencingMode.BITWISE:
            raise GuardianError(
                "compaction requires bitwise fencing: the fence is the "
                "client's pointer-translation layer after a move"
            )
        if app_id in self._swapped:
            return None
        target = server.allocator.best_relocation(app_id)
        if target is None:
            return None
        size = server.allocator.partition(app_id).size
        # The teardown half fires the forget hook; carry the client
        # binding and recency across the move by hand.
        client = self._clients.get(app_id)
        recency = self._recency.get(app_id)
        snapshot = server.snapshot_tenant(app_id)
        server.evacuate(app_id, scrub=True)
        new_base = server.restore_tenant(snapshot)
        server._charge(self._swap_cycles(size), critical=True)
        server.stats.tenants_compacted += 1
        server.stats.bytes_compacted += size
        if recency is not None:
            self._recency[app_id] = recency
        if client is not None:
            self._clients[app_id] = client
            client.rebase(new_base)
        self._record_op("compact", size)
        self._publish_state()
        return new_base

    def defrag(self, want_bytes: int = 0) -> list[tuple[str, int, int]]:
        """One policy-authorised compaction pass.

        Consults the :class:`~repro.core.policy.DefragPolicy` against
        the current fragmentation view (``want_bytes`` tells it what
        the caller is trying to place); when authorised, compacts
        resident tenants highest-base-first — each move slides a
        tenant down, coalescing free space toward the top. Returns the
        executed moves as ``(app_id, old base, new base)``.
        """
        moves: list[tuple[str, int, int]] = []
        if not self.compaction_enabled:
            return moves
        view = self.fragmentation()
        if not self.policy.should_defrag(view, want_bytes):
            return moves
        server = self.server
        candidates = sorted(
            server.allocator.partitions(),
            key=lambda partition: partition.base,
            reverse=True,
        )
        for partition in candidates:
            app_id = partition.app_id
            if app_id in self._swapped:
                continue
            old_base = server.allocator.partition(app_id).base
            new_base = self.compact(app_id)
            if new_base is not None:
                moves.append((app_id, old_base, new_base))
        return moves

    # -- oversubscription ------------------------------------------------------

    def declared_bytes(self) -> int:
        """Total declared capacity the server carries: resident
        partitions plus swapped-out images (the hard-cap denominator)."""
        return self.server.allocator.bytes_partitioned + self.swapped_bytes

    def _lru_victims(self, exclude: frozenset = frozenset()) -> list[str]:
        """Resident tenants, coldest first (LRU by last launch; attach
        and swap-in count as uses so every tenant has an age)."""
        resident = [
            p.app_id for p in self.server.allocator.partitions()
            if p.app_id not in exclude
        ]
        return sorted(resident, key=lambda a: (self._recency.get(a, 0), a))

    def swap_out(self, app_id: str) -> int:
        """Park one resident tenant's partition in host memory.

        Drains the stream (consistent cut), captures bytes + heap +
        module images, scrubs and releases the region, and charges the
        PCIe write-back to the timeline. The tenant stays attached —
        its stream, incarnation and identity survive; only the
        partition leaves the GPU. Returns the bytes swapped.
        """
        if not self.oversubscription_enabled:
            raise GuardianError(
                "swap requires ServerConfig.enable_oversubscription"
            )
        if app_id in self._swapped:
            return 0
        server = self.server
        tenant = server._tenants.get(app_id)
        if tenant is None:
            raise GuardianError(f"app {app_id!r} is not attached")
        server._raise_if_wedged(tenant)
        server.stats.sync_drained_tasks += server.driver.cuStreamSynchronize(
            tenant.stream
        )
        partition = server.allocator.partition(app_id)
        heap_free, heap_live = partition.heap.export_state()
        image = _SwapImage(
            app_id=app_id,
            size=partition.size,
            data=server.device.memory.read(partition.base, partition.size),
            heap_free=tuple(heap_free),
            heap_live=tuple(heap_live),
            modules=tuple(tenant.modules),
            base_at_swap=partition.base,
        )
        if server.trace_engine is not None:
            server.trace_engine.forget(app_id)
        # Device-side module bindings die with the region; the images
        # replay at swap-in with globals re-pinned at the new base.
        tenant.functions.clear()
        tenant.patch_reports.clear()
        tenant.modules.clear()
        tenant.fast_launch = None
        scrubbed = 0

        def scrubber(base: int, size: int) -> None:
            nonlocal scrubbed
            server.device.memory.fill(base, size, 0)
            scrubbed = size

        server.allocator.release_partition(app_id, scrubber=scrubber)
        server.stats.bytes_scrubbed += scrubbed
        self._swapped[app_id] = image
        server._charge(self._swap_cycles(image.size), critical=True)
        server.stats.swaps_out += 1
        server.stats.bytes_swapped_out += image.size
        self._record_op("swap_out", image.size)
        self._publish_state()
        return image.size

    def ensure_resident(self, app_id: str) -> Optional[int]:
        """Swap a parked tenant back onto the GPU before it is used.

        Makes space if needed (shrink sweep, then colder victims swap
        out, then a policy-authorised defrag), re-carves the partition
        (fresh epoch at whatever base first-fit lands on), restores
        bytes + heap + modules, charges the PCIe read, refreshes
        recency and rebases the bound client. Returns the new base, or
        ``None`` when the tenant was already resident. Raises
        :class:`~repro.errors.PartitionError` when space cannot be
        made — the caller decides whether that sheds or retries.
        """
        image = self._swapped.get(app_id)
        if image is None:
            return None
        server = self.server
        if not server.allocator.can_carve(image.size):
            self._make_space(image.size, exclude=frozenset((app_id,)))
        partition = server.allocator.create_partition(app_id, image.size)
        del self._swapped[app_id]
        server.device.memory.write(partition.base, image.data)
        partition.heap = FirstFitAllocator.from_state(
            partition.base, partition.size,
            list(image.heap_free), list(image.heap_live),
        )
        tenant = server._tenants[app_id]
        for module_image in image.modules:
            server._restore_module(tenant, partition, module_image)
        server._charge(self._swap_cycles(image.size), critical=True)
        server.stats.swaps_in += 1
        server.stats.bytes_swapped_in += image.size
        self.note_use(app_id)
        client = self._clients.get(app_id)
        if client is not None:
            client.rebase(partition.base)
        self._record_op("swap_in", image.size)
        self._publish_state()
        return partition.base

    def _make_space(self, nbytes: int, exclude: frozenset) -> None:
        """Free enough GPU space to carve ``nbytes`` (best effort)."""
        allocator = self.server.allocator
        if self.shrink_enabled:
            self.shrink_sweep()
        if self.oversubscription_enabled:
            for victim in self._lru_victims(exclude):
                if allocator.can_carve(nbytes):
                    return
                self.swap_out(victim)
        if not allocator.can_carve(nbytes):
            self.defrag(want_bytes=self._rounded(nbytes))

    def _rounded(self, nbytes: int) -> int:
        allocator = self.server.allocator
        if allocator.require_power_of_two:
            return masks.next_power_of_two(nbytes)
        return nbytes

    def make_room(self, max_bytes: int) -> bool:
        """Try to make an incoming ``max_bytes`` partition carveable.

        The admission ladder, cheapest rung first: (1) shrink every
        over-provisioned resident, (2) policy-authorised compaction,
        (3) swap out LRU victims — but only while the declared total
        (resident + swapped + the newcomer) stays under the
        ``oversubscription_ratio`` hard cap. Returns whether a carve
        now fits; the caller retries the attach on True and sheds on
        False. Never touches anything when the carve already fits.
        """
        allocator = self.server.allocator
        if max_bytes <= 0:
            return False
        size = self._rounded(max_bytes)
        if allocator.can_carve(max_bytes):
            return True
        if self.shrink_enabled:
            self.shrink_sweep()
            if allocator.can_carve(max_bytes):
                return True
        if self.compaction_enabled:
            self.defrag(want_bytes=size)
            if allocator.can_carve(max_bytes):
                return True
        if self.oversubscription_enabled:
            cap = int(self.oversubscription_ratio * allocator.total_bytes)
            if self.declared_bytes() + size <= cap:
                for victim in self._lru_victims():
                    if allocator.can_carve(max_bytes):
                        break
                    self.swap_out(victim)
                if self.compaction_enabled \
                        and not allocator.can_carve(max_bytes):
                    self.defrag(want_bytes=size)
        return allocator.can_carve(max_bytes)


class ElasticClient(GpuBackend):
    """Address-virtualizing client shim for elastic tenants.

    The intra-node sibling of the cluster's
    :class:`~repro.cluster.client.ClusterClient`: the tenant's device
    pointers are handed out against its *first* base and baked into
    its data structures; after a compaction or swap-in the partition
    sits elsewhere. The shim keeps tenant pointers virtual
    (origin-based) and translates at the boundary — host-side
    addresses shift by ``delta = current_base - origin_base``, while
    kernel pointer parameters stay virtual: partitions are
    size-aligned, so a virtual pointer's low bits *are* its partition
    offset and the in-kernel ``(addr & mask) | base`` fence relocates
    it onto the current base at zero extra cost. The per-access check
    path is unchanged — still exactly two mask ops.

    :meth:`rebase` is driven by the engine through
    :meth:`ElasticMemoryEngine.bind_client`; callers that manage moves
    by hand may call it directly.
    """

    def __init__(self, server, app_id: str, max_bytes: int, **client_kwargs):
        # Local import: repro.core.client imports the server module,
        # which imports this one — the shim resolves the cycle lazily.
        from repro.core.client import GuardianClient

        self.app_id = app_id
        self._inner = GuardianClient(
            server, app_id, max_bytes, **client_kwargs
        )
        self._origin_base = server.allocator.partition(app_id).base
        self._delta = 0
        self.rebases = 0

    @property
    def delta(self) -> int:
        """Physical-minus-virtual base offset (0 until the first move)."""
        return self._delta

    @property
    def channel(self):
        return self._inner.channel

    def rebase(self, new_base: int) -> None:
        """Point the shim's translation at the partition's new base."""
        self._delta = new_base - self._origin_base
        self.rebases += 1

    def _phys(self, virtual: int) -> int:
        return virtual + self._delta

    def _virt(self, physical: int) -> int:
        return physical - self._delta

    # -- GpuBackend interface --------------------------------------------------

    def malloc(self, size: int) -> int:
        return self._virt(self._inner.malloc(size))

    def free(self, address: int) -> None:
        self._inner.free(self._phys(address))

    def memcpy_h2d(self, dst: int, data: bytes, stream_id: int = 0) -> None:
        self._inner.memcpy_h2d(self._phys(dst), data, stream_id)

    def memcpy_d2h(self, src: int, size: int, stream_id: int = 0) -> bytes:
        return self._inner.memcpy_d2h(self._phys(src), size, stream_id)

    def memcpy_d2d(self, dst: int, src: int, size: int,
                   stream_id: int = 0) -> None:
        self._inner.memcpy_d2d(self._phys(dst), self._phys(src), size,
                               stream_id)

    def memset(self, dst: int, value: int, size: int,
               stream_id: int = 0) -> None:
        self._inner.memset(self._phys(dst), value, size, stream_id)

    def register_fatbin(self, fatbin) -> dict[str, int]:
        return self._inner.register_fatbin(fatbin)

    def load_module_ptx(self, ptx_text: str) -> dict[str, int]:
        return self._inner.load_module_ptx(ptx_text)

    def launch_kernel(self, handle, grid, block, params,
                      stream_id: int = 0) -> None:
        # Pointer parameters stay virtual: the bitwise fence relocates
        # them onto the current base in-kernel (class docstring).
        self._inner.launch_kernel(handle, grid, block, params, stream_id)

    def create_stream(self) -> int:
        return self._inner.create_stream()

    def synchronize(self) -> None:
        self._inner.synchronize()

    def get_export_table(self, table_uuid: str) -> dict:
        return self._inner.get_export_table(table_uuid)

    def device_spec(self):
        return self._inner.device_spec()

    # -- lifecycle -------------------------------------------------------------

    def grow_partition(self, new_max_bytes: int) -> int:
        if self._delta:
            raise PartitionError(
                f"tenant {self.app_id!r}: partition growth after a "
                f"relocation is not supported (the widened fence mask "
                f"would leak origin-base bits)"
            )
        return self._inner.grow_partition(new_max_bytes)

    def shrink_partition(self) -> int:
        """Request an opportunistic shrink; returns the (possibly
        unchanged) partition size. Safe at any delta: narrowing the
        mask only ever strips high bits the fence already owns."""
        return self._inner.shrink_partition()

    def flush(self) -> int:
        return self._inner.flush()

    def close(self) -> None:
        self._inner.close()
