"""The client <-> server IPC channel (paper §4.2.4).

Guardian applications and the GuardianServer run in different address
spaces; operations and data cross via a message queue plus a shared
memory segment, like other API-remoting systems. The simulator models
that boundary explicitly:

- every forwarded call costs a fixed round-trip (enqueue, wake-up,
  dispatch, reply) on the *client's* critical path;
- bulk payloads (transfer data, fatbins) cost extra cycles proportional
  to their size (one memcpy into / out of the shared segment);
- the server's own per-operation work (lookup, augment, checks) is
  reported back and charged to the same critical path, because the
  intercepted calls are synchronous.

These per-call costs are what the paper's "G-Safe without protection"
configuration isolates (3.7%-10% vs native, §6.2) and what Table 5
breaks down for ``cudaLaunchKernel``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IPCError


@dataclass(frozen=True)
class IPCCostModel:
    """CPU cycles charged per forwarded call.

    ``roundtrip`` covers both queue crossings; ``bytes_per_cycle`` is
    the shared-memory copy bandwidth (a cache-resident memcpy moves
    roughly 8-16 bytes per cycle; we use 8 to stay conservative).
    """

    roundtrip: int = 1_400
    marshal: int = 150
    bytes_per_cycle: int = 8

    def payload_cycles(self, payload_bytes: int) -> int:
        return payload_bytes // self.bytes_per_cycle


@dataclass
class IPCStats:
    """Per-channel counters."""

    messages: int = 0
    payload_bytes: int = 0
    client_cycles: float = 0.0
    server_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        return self.client_cycles + self.server_cycles


class IPCChannel:
    """A synchronous call channel from one client to the server.

    ``target`` is the server-side dispatcher: an object whose methods
    return ``(result, server_cycles)``. Both the transport cost and the
    reported server cycles land on the client's critical path.
    """

    def __init__(self, target, app_id: str,
                 costs: IPCCostModel | None = None):
        self._target = target
        self.app_id = app_id
        self.costs = costs or IPCCostModel()
        self.stats = IPCStats()
        self._closed = False

    def call(self, method: str, *args, payload_bytes: int = 0,
             sync: bool = True):
        """Forward one call; returns the server's result.

        ``sync=False`` models the asynchronous operations (kernel
        launches, H2D copies): the client pays only the *send* half of
        the round-trip and does not wait for the server's processing —
        which still accumulates in the server's busy time and bounds
        throughput there, the way real CUDA async submission works.
        Synchronous operations (mallocs, D2H copies, module loads) put
        the full round-trip plus the server's work on the client's
        critical path.
        """
        if self._closed:
            raise IPCError(
                f"channel of app {self.app_id!r} is closed"
            )
        handler = getattr(self._target, method, None)
        if handler is None:
            raise IPCError(f"server has no method {method!r}")
        transport = self.costs.marshal + self.costs.payload_cycles(
            payload_bytes
        )
        transport += self.costs.roundtrip if sync else (
            self.costs.roundtrip // 2
        )
        self.stats.messages += 1
        self.stats.payload_bytes += payload_bytes
        self.stats.client_cycles += transport
        result, server_cycles = handler(self.app_id, *args)
        self.stats.server_cycles += server_cycles
        if sync:
            # The client blocks until the server replies.
            self.stats.client_cycles += server_cycles
        return result

    def close(self) -> None:
        self._closed = True
