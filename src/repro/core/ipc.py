"""The client <-> server IPC channel (paper §4.2.4).

Guardian applications and the GuardianServer run in different address
spaces; operations and data cross via a message queue plus a shared
memory segment, like other API-remoting systems. The simulator models
that boundary explicitly:

- every forwarded call costs a fixed round-trip (enqueue, wake-up,
  dispatch, reply) on the *client's* critical path;
- bulk payloads (transfer data, fatbins) cost extra cycles proportional
  to their size (one memcpy into / out of the shared segment);
- the server's own per-operation work (lookup, augment, checks) is
  reported back and charged to the same critical path, because the
  intercepted calls are synchronous.

These per-call costs are what the paper's "G-Safe without protection"
configuration isolates (3.7%-10% vs native, §6.2) and what Table 5
breaks down for ``cudaLaunchKernel``.

**Batched asynchronous submission** (opt-in, ``batching=True``):
consecutive ``sync=False`` calls — kernel launches, H2D copies,
memsets — are queued client-side and delivered in one message-queue
crossing at the next flush point (a synchronous call, an explicit
:meth:`IPCChannel.flush`, a full batch, or channel close). A batch of
``k`` calls costs ``roundtrip/2 + k*marshal`` plus the payload copies
(payloads are staged into the shared segment at call time, since the
caller may reuse its buffers immediately), instead of
``k*(roundtrip/2 + marshal)``: the per-message wake-up is amortised
exactly the way real command-queue batching amortises it. Server-side
errors for batched operations surface at the flush point — the same
deferred-error semantics real asynchronous CUDA submission has. With
``batching=False`` (the default) the channel is cycle-for-cycle
identical to the unbatched model the paper's figures assume.

**Bounded queue + shedding** (opt-in, ``queue_limit``): real command
queues are finite; an unbounded client-side batch hides overload
instead of surfacing it. With ``queue_limit`` set, an asynchronous
call that arrives while the queue already holds ``queue_limit``
entries hits the overflow policy: the default (``shed_overflow=False``)
*flushes* — the caller pays the queue-crossing now, which is exactly
the stall-the-producer backpressure a full hardware ring exerts —
while ``shed_overflow=True`` *sheds* the call
(:class:`~repro.errors.QueueSaturated`, counted in
``IPCStats.shed_calls``; nothing reaches the server). With
``queue_limit=None`` (the default) both paths are dead code and the
channel stays bit-identical to the unbounded model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ChannelClosedError, IPCError, QueueSaturated
from repro.core.tracecache import signature_of


@dataclass(frozen=True)
class IPCCostModel:
    """CPU cycles charged per forwarded call.

    ``roundtrip`` covers both queue crossings; ``bytes_per_cycle`` is
    the shared-memory copy bandwidth (a cache-resident memcpy moves
    roughly 8-16 bytes per cycle; we use 8 to stay conservative).
    """

    roundtrip: int = 1_400
    marshal: int = 150
    #: Marshalling a call whose shape the server's compiled trace
    #: already pinned: the argument layout is pre-agreed between both
    #: ends, so the client stages the payload and bumps a command
    #: cursor instead of serialising the full argument tuple.
    marshal_cached: int = 40
    bytes_per_cycle: int = 8

    def payload_cycles(self, payload_bytes: int) -> int:
        return payload_bytes // self.bytes_per_cycle


@dataclass
class IPCStats:
    """Per-channel counters."""

    messages: int = 0
    payload_bytes: int = 0
    client_cycles: float = 0.0
    server_cycles: float = 0.0
    #: Batching counters: how many flushes delivered more than zero
    #: queued calls, how many calls travelled inside those batches, and
    #: the largest single batch.
    batches: int = 0
    batched_messages: int = 0
    largest_batch: int = 0
    #: Queued calls thrown away by :meth:`IPCChannel.abort` — the
    #: dead-client path must *not* deliver a crashed tenant's batch —
    #: and how many aborts actually discarded a non-empty batch, so
    #: fault-gauntlet runs can separate delivered from aborted batching.
    discarded_calls: int = 0
    aborted_batches: int = 0
    #: Batched calls marshalled at the ``marshal_cached`` rate because
    #: they matched the server's active specialized trace in sequence.
    marshal_cached_calls: int = 0
    #: Bounded-queue backpressure (zero with ``queue_limit`` unset):
    #: calls shed at a saturated queue, and flushes forced by the
    #: overflow policy rather than a full batch / an ordering point.
    shed_calls: int = 0
    overflow_flushes: int = 0

    @property
    def total_cycles(self) -> float:
        return self.client_cycles + self.server_cycles

    @property
    def mean_batch_size(self) -> float:
        """Mean calls per *delivered* batch.

        Aborted batches are tracked separately (``aborted_batches`` /
        ``discarded_calls``) and never dilute this figure; a channel
        that never flushed reports 0.0 rather than dividing by zero.
        """
        if not self.batches:
            return 0.0
        return self.batched_messages / self.batches


@dataclass
class _QueuedCall:
    method: str
    args: tuple
    payload_bytes: int
    #: Telemetry only (None with the knob off): the trace id minted at
    #: enqueue time — the same id travels with the call through its
    #: flush, so queue wait and dispatch share one trace — and the
    #: client-cycle instant the call entered the queue.
    trace_id: int | None = None
    enqueued_at: float = 0.0


class IPCChannel:
    """A synchronous call channel from one client to the server.

    ``target`` is the server-side dispatcher: an object whose methods
    return ``(result, server_cycles)``. Both the transport cost and the
    reported server cycles land on the client's critical path.
    """

    def __init__(self, target, app_id: str,
                 costs: IPCCostModel | None = None,
                 batching: bool = False,
                 max_batch: int = 64,
                 queue_limit: int | None = None,
                 shed_overflow: bool = False):
        if max_batch < 1:
            raise IPCError(f"bad max_batch {max_batch}")
        if queue_limit is not None and queue_limit < 1:
            raise IPCError(f"bad queue_limit {queue_limit}")
        self._target = target
        self.app_id = app_id
        self.costs = costs or IPCCostModel()
        self.batching = batching
        self.max_batch = max_batch
        self.queue_limit = queue_limit
        self.shed_overflow = shed_overflow
        self.stats = IPCStats()
        self._queue: list[_QueuedCall] = []
        self._closed = False
        # The server's telemetry spine, if its config enabled one
        # (resolved through the supervisor when one wraps the server).
        # None keeps every path below bit-identical to the stock
        # channel — the telemetry-off guarantee.
        self.telemetry = getattr(target, "telemetry", None)
        # The server's trace engine, if trace specialization is on
        # (again resolved through a supervising wrapper). The channel
        # keeps a *shadow cursor* over the compiled block's signature —
        # the simulator's stand-in for the server publishing the
        # compiled command layout into the shared segment — so calls
        # matching the trace in sequence marshal at the cheap
        # ``marshal_cached`` rate. None (knob off) leaves marshalling
        # bit-identical to the stock channel.
        self._trace_engine = getattr(target, "trace_engine", None)
        self._trace_cursor = 0

    def call(self, method: str, *args, payload_bytes: int = 0,
             sync: bool = True):
        """Forward one call; returns the server's result.

        ``sync=False`` models the asynchronous operations (kernel
        launches, H2D copies): the client pays only the *send* half of
        the round-trip and does not wait for the server's processing —
        which still accumulates in the server's busy time and bounds
        throughput there, the way real CUDA async submission works.
        Synchronous operations (mallocs, D2H copies, module loads) put
        the full round-trip plus the server's work on the client's
        critical path.

        With batching enabled, asynchronous calls are queued and
        delivered together at the next flush point; they return
        ``None`` immediately (every asynchronous operation in the
        backend surface returns ``None`` anyway).
        """
        if self._closed:
            raise ChannelClosedError(self.app_id)
        self._resolve_handler(method)
        if self.batching and not sync:
            return self._enqueue(method, args, payload_bytes)
        # A synchronous call is an ordering point: everything queued
        # before it must reach the server first (per-channel FIFO).
        self.flush()
        if method == "synchronize":
            # Sync is the trace block boundary on the server side too;
            # the shadow cursor rewinds with it. Other synchronous
            # calls (mallocs, D2H reads) interleave with a block
            # without disturbing its recorded async sequence, so they
            # leave the cursor alone.
            self._trace_cursor = 0
        transport = self.costs.marshal + self.costs.payload_cycles(
            payload_bytes
        )
        transport += self.costs.roundtrip if sync else (
            self.costs.roundtrip // 2
        )
        self.stats.messages += 1
        self.stats.payload_bytes += payload_bytes
        self.stats.client_cycles += transport
        telemetry = self.telemetry
        trace_id = (
            telemetry.tracer.new_trace() if telemetry is not None else None
        )
        result, server_cycles = self._dispatch(method, args,
                                               trace_id=trace_id)
        if sync:
            # The client blocks until the server replies.
            self.stats.client_cycles += server_cycles
        if telemetry is not None:
            telemetry.record_call(
                self.app_id, method,
                transport + (server_cycles if sync else 0.0),
            )
        return result

    def flush(self) -> int:
        """Deliver all queued asynchronous calls in one round-trip half.

        Returns the number of calls delivered. The batch pays one
        ``roundtrip/2`` (marshalling and payload staging were already
        charged at call time). A server-side error propagates from the
        offending call; earlier calls in the batch have already been
        delivered, later ones are dropped — the deferred-error contract
        of asynchronous submission.
        """
        if not self._queue:
            return 0
        batch, self._queue = self._queue, []
        self.stats.client_cycles += self.costs.roundtrip // 2
        self.stats.batches += 1
        self.stats.batched_messages += len(batch)
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        telemetry = self.telemetry
        if telemetry is not None:
            # Every queued call waited from its enqueue instant to this
            # flush — a span on the client's own cycle axis.
            flushed_at = self.stats.client_cycles
            for queued in batch:
                telemetry.tracer.emit(
                    f"queue_wait:{queued.method}", "queue", self.app_id,
                    track=f"client:{self.app_id}",
                    start=queued.enqueued_at, end=flushed_at,
                    trace_id=queued.trace_id,
                )
                telemetry.record_queue_wait(
                    self.app_id, flushed_at - queued.enqueued_at
                )
        for queued in batch:
            self._dispatch(queued.method, queued.args,
                           trace_id=queued.trace_id)
        return len(batch)

    @property
    def queued_calls(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        """Flush any pending batch and close the channel.

        Idempotent: a second close is a no-op, and the channel ends up
        closed even if the final flush raises (the error still
        propagates, but a retried close won't redeliver the batch —
        ``flush`` detaches the queue before dispatching).
        """
        if self._closed:
            return
        try:
            self.flush()
        finally:
            self._closed = True

    def abort(self) -> int:
        """Close without delivering: the dead-client teardown.

        A client that crashes with a non-empty batch pending must not
        have that batch executed on its behalf — the crash happened
        *before* the flush point, so the deferred-submission contract
        says those operations never reached the server. Returns how
        many queued calls were discarded. Idempotent, like ``close``.
        """
        discarded = len(self._queue)
        self._queue = []
        self.stats.discarded_calls += discarded
        if discarded:
            self.stats.aborted_batches += 1
        self._closed = True
        return discarded

    @property
    def closed(self) -> bool:
        return self._closed

    # -- internals ---------------------------------------------------------------

    def _enqueue(self, method: str, args: tuple, payload_bytes: int):
        # Bounded queue: a call arriving at a full queue either sheds
        # (it never marshals, never reaches the server) or forces an
        # early flush — the producer stalls on the queue crossing, the
        # classic full-ring backpressure. The shed check runs before
        # any charging so a shed call is cycle-free on both sides.
        if (self.queue_limit is not None
                and len(self._queue) >= self.queue_limit):
            if self.shed_overflow:
                self.stats.shed_calls += 1
                raise QueueSaturated(self.app_id, method, self.queue_limit)
            self.stats.overflow_flushes += 1
            self.flush()
        # Stage the payload into the shared segment now (the caller may
        # reuse its buffer) and pay the per-call marshalling; the
        # round-trip half is paid once per batch at flush time.
        self.stats.messages += 1
        self.stats.payload_bytes += payload_bytes
        per_call = self._marshal_cost(method, args)
        marshal = per_call + self.costs.payload_cycles(payload_bytes)
        self.stats.client_cycles += marshal
        queued = _QueuedCall(method, args, payload_bytes)
        telemetry = self.telemetry
        if telemetry is not None:
            queued.trace_id = telemetry.tracer.new_trace()
            queued.enqueued_at = self.stats.client_cycles
            # A batched call's client-visible cost is its marshalling;
            # the server work lands on the server's busy time.
            telemetry.record_call(self.app_id, method, marshal)
        self._queue.append(queued)
        if len(self._queue) >= self.max_batch:
            self.flush()
        return None

    def _marshal_cost(self, method: str, args: tuple) -> int:
        """Per-call marshalling cost, trace-discounted when possible.

        While the server holds a compiled trace for this tenant, the
        shadow cursor walks the compiled block's signature sequence; a
        call matching the expected next signature marshals at
        ``marshal_cached``. Any deviation parks the cursor past the end
        of the block — no further discounts — until the next
        ``synchronize`` rewinds it, mirroring how the server-side trace
        drops on deviation and re-records.
        """
        engine = self._trace_engine
        if engine is None:
            return self.costs.marshal
        signature = engine.active_signature(self.app_id)
        if signature is None:
            self._trace_cursor = 0
            return self.costs.marshal
        cursor = self._trace_cursor
        if cursor >= len(signature):
            return self.costs.marshal
        expected = signature_of(method, args)
        if expected is None or expected != signature[cursor]:
            self._trace_cursor = len(signature)
            return self.costs.marshal
        self._trace_cursor = cursor + 1
        self.stats.marshal_cached_calls += 1
        return self.costs.marshal_cached

    def _dispatch(self, method: str, args: tuple,
                  trace_id: int | None = None):
        handler = self._resolve_handler(method)
        telemetry = self.telemetry
        if telemetry is None:
            result, server_cycles = handler(self.app_id, *args)
            self.stats.server_cycles += server_cycles
            return result, server_cycles
        # The call span: opened at the dispatch boundary so every
        # charge the handler makes — including the supervisor's fault
        # cycles — lands inside it. Per-tenant call-span durations
        # therefore sum to exactly the server's busy-clock delta.
        span = telemetry.tracer.begin(method, "call", self.app_id,
                                      trace_id=trace_id)
        try:
            result, server_cycles = handler(self.app_id, *args)
        except Exception as failure:
            span.attrs["error"] = type(failure).__name__
            raise
        finally:
            telemetry.tracer.end(span)
        span.attrs["server_cycles"] = server_cycles
        telemetry.record_dispatch(self.app_id, method, server_cycles)
        self.stats.server_cycles += server_cycles
        return result, server_cycles

    def _resolve_handler(self, method: str):
        handler = getattr(self._target, method, None)
        if handler is None:
            raise IPCError(f"server has no method {method!r}")
        return handler
