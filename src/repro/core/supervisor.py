"""Server-side tenant supervision: deadlines, retries, quarantine.

The GuardianServer's handlers enforce *spatial* safety (bounds,
partitions, patched PTX). The :class:`TenantSupervisor` wraps every
handler with the *temporal* safety the production north star needs — a
defined containment story for tenants that misbehave in ways the
happy-path traps never see:

- **per-tenant deadlines** — a call whose charged cycles exceed the
  policy's deadline is recorded as a violation (the tenant is slow or
  its messages are being delayed; either way it is burning the shared
  server's time);
- **bounded retry with backoff** — transient message-queue faults
  (dropped or corrupted crossings, detected by sequence numbers /
  checksums) are retried up to ``max_retries`` times with exponential
  backoff before surfacing an :class:`IPCError`;
- **a fault budget that escalates to quarantine** — every recorded
  fault charges a kind-specific weight against the tenant's budget;
  exhausting it (or hitting an unrecoverable fault: a wedged stream, a
  dead client) triggers the server's containment sequence
  (:meth:`GuardianServer.quarantine`): stream drained and destroyed,
  handles dropped, partition scrubbed and reclaimed. Other tenants'
  bounds-table epochs, partitions and in-flight batches are untouched.

Fault *injection* also lives at this boundary: the supervisor is the
server end of the message queue, so a :class:`FaultPlan`'s IPC, PTX,
allocator and stream faults all fire here, deterministically.

With no plan installed the wrapper is pure pass-through — zero extra
cycles, so every per-operation cost stays bit-identical to the stock
server (pinned by the gauntlet's no-plan test).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.server import GuardianServer
from repro.driver.fatbin import FatBinary
from repro.errors import (
    AllocationError,
    BoundsViolation,
    GuardianError,
    LaunchError,
    PTXError,
    StreamFault,
    TenantQuarantined,
    TransientIPCFault,
)
from repro.faults.inject import mutate_fatbin, mutate_ptx_text
from repro.faults.plan import FaultKind, FaultPlan, FiredFault, Site
from repro.telemetry import maybe_span


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs of the containment state machine (DESIGN.md §6)."""

    #: Resend attempts for one transient IPC fault before giving up.
    max_retries: int = 3
    #: Backoff charged per resend attempt: base * 2**attempt cycles.
    backoff_base_cycles: int = 4_000
    #: Fractional jitter applied to each backoff step (0.0 = off, the
    #: stock exact-exponential behaviour). With jitter ``j`` each step
    #: is scaled by a factor drawn uniformly from [1-j/2, 1+j/2] — the
    #: standard defence against synchronized retry storms when many
    #: lanes hit the same transient fault. The draws come from an RNG
    #: seeded off the installed fault plan, so gauntlet runs stay
    #: reproducible.
    backoff_jitter: float = 0.0
    #: Cycles detecting and dropping a duplicated message.
    duplicate_detect_cycles: int = 700
    #: Per-call deadline on the server's charged cycles.
    deadline_cycles: float = 5_000_000.0
    #: Budget a tenant may burn before quarantine.
    fault_budget: float = 8.0
    #: Weights charged against the budget per fault class.
    weight_retry: float = 1.0
    weight_exhausted: float = 4.0
    weight_violation: float = 2.0
    weight_ptx: float = 2.0
    weight_alloc: float = 1.0
    weight_deadline: float = 1.0
    weight_rejected: float = 0.5
    #: Zero the partition before the region is reusable.
    scrub_on_quarantine: bool = True
    #: A fresh ``attach`` after quarantine re-admits the tenant with a
    #: zeroed budget (a new tenant instance, operator-sanctioned).
    readmit_after_quarantine: bool = True
    #: The migration rung below eviction (None = off, the stock
    #: two-rung ladder). When a tenant's spent budget crosses
    #: ``migrate_budget_fraction * fault_budget`` and a
    #: ``migration_hook`` is installed (the cluster control plane
    #: installs one per node), the supervisor asks the hook to move
    #: the tenant to a healthier node instead of waiting for the
    #: budget to exhaust into quarantine. The hook runs *after* the
    #: in-flight call completes — never mid-dispatch.
    migrate_budget_fraction: Optional[float] = None


@dataclass
class FailureRecord:
    """One structured failure event, surfaced via analysis/metrics."""

    tenant: str
    op: str
    kind: str
    action: str  # retried | exhausted | suppressed | delayed | rejected
    #          # | fenced | armed | deadline | quarantined | reaped
    #          # | migrated
    attempts: int = 0
    cycles: float = 0.0
    detail: str = ""
    #: The node whose supervisor recorded this (cluster deployments
    #: stamp their node id; single-node supervisors leave it empty).
    node: str = ""


@dataclass
class QuarantineRecord:
    """One quarantine event: who, why, and what was reclaimed.

    ``lane_cycles`` is the victim's dispatch-lane clock at eviction
    (0.0 in serial mode): quarantine drains *one lane*, and the record
    keeps how far that lane had run — sibling lanes keep their own
    clocks and are never touched.
    """

    tenant: str
    reason: str
    budget_spent: float
    bytes_scrubbed: int
    lane_cycles: float = 0.0


@dataclass
class _TenantState:
    budget: float = 0.0
    quarantined: bool = False
    reason: str = ""
    deadline_violations: int = 0
    #: Set by the budget ladder when the migration rung is crossed;
    #: consumed (and the hook invoked) after the in-flight call ends.
    migration_pending: bool = False


#: The server handlers the supervisor wraps; everything else resolved
#: through the supervisor forwards to the server unchanged.
_HANDLERS = frozenset({
    "attach", "detach", "grow_partition",
    "malloc", "free",
    "memcpy_h2d", "memcpy_d2h", "memcpy_d2d", "memset",
    "register_fatbin", "load_module_ptx",
    "launch_kernel", "create_stream", "synchronize", "get_spec",
})


class TenantSupervisor:
    """Wraps a :class:`GuardianServer` as the IPC dispatch target."""

    def __init__(self, server: GuardianServer,
                 plan: Optional[FaultPlan] = None,
                 policy: Optional[SupervisorPolicy] = None,
                 node: str = ""):
        self._server = server
        self.plan = plan
        self.policy = policy or SupervisorPolicy()
        self.node = node
        #: Installed by the cluster control plane: ``hook(app_id,
        #: reason) -> bool`` (True = the tenant moved and this
        #: supervisor no longer owns it). Must not raise; failure
        #: handling is the hook's own business.
        self.migration_hook: Optional[Callable[[str, str], bool]] = None
        self._states: dict[str, _TenantState] = {}
        self.records: list[FailureRecord] = []
        self.quarantines: list[QuarantineRecord] = []
        self._jitter_rng = self._seed_jitter(plan)

    @staticmethod
    def _seed_jitter(plan: Optional[FaultPlan]) -> random.Random:
        # Derived from the plan's seed (not its live RNG) so jitter
        # draws never perturb the plan's own parameter stream.
        return random.Random(0x9E3779B9 ^ (plan.seed if plan else 0))

    @property
    def server(self) -> GuardianServer:
        return self._server

    def install_plan(self, plan: Optional[FaultPlan]) -> None:
        self.plan = plan
        self._jitter_rng = self._seed_jitter(plan)

    def __getattr__(self, name: str):
        if name in _HANDLERS:
            def handler(app_id, *args, _method=name):
                return self._supervised(_method, app_id, *args)
            return handler
        return getattr(self._server, name)

    # -- tenant state ------------------------------------------------------------

    def state_of(self, app_id: str) -> _TenantState:
        return self._states.setdefault(app_id, _TenantState())

    def is_quarantined(self, app_id: str) -> bool:
        state = self._states.get(app_id)
        return state is not None and state.quarantined

    def forget(self, app_id: str) -> None:
        """Drop a tenant's supervision state without quarantining it.

        The cluster calls this on the *source* supervisor once a
        migration lands: the tenant's fault history travelled into the
        node's failure-domain score (where it keeps steering
        placement), but the tenant itself starts its new residency
        with a clean budget — and a later re-attach here must not
        inherit the departed instance's ledger.
        """
        self._states.pop(app_id, None)

    def quarantine_tenant(self, app_id: str, reason: str) -> None:
        """Operator/cluster-initiated quarantine (not budget-driven).

        The cluster's last rung when a tenant on a dying node cannot
        be migrated: same containment sequence, recorded against this
        supervisor so the failure report and ``is_quarantined`` agree
        with the server's state. Idempotent like the underlying
        :meth:`GuardianServer.quarantine`.
        """
        self._quarantine(app_id, self.state_of(app_id), reason)

    def reap(self, app_id: str) -> None:
        """Clean up after a dead client (crash detected out-of-band).

        The client's stranded batch was discarded at its end of the
        channel; here the server end quarantines whatever the tenant
        left behind — partition, stream, handles.
        """
        state = self.state_of(app_id)
        self._record(app_id, "<reaper>", FaultKind.CLIENT_CRASH.value,
                     "reaped", detail="client died; server-side cleanup")
        self._quarantine(app_id, state, "client crashed")

    # -- the dispatch wrapper ----------------------------------------------------

    def _supervised(self, method: str, app_id: str, *args):
        try:
            return self._supervised_inner(method, app_id, *args)
        finally:
            # The migration rung fires strictly between calls: moving
            # the tenant mid-dispatch would detach it from the very
            # server executing its call.
            self._maybe_migrate(app_id, method)

    def _maybe_migrate(self, app_id: str, method: str) -> None:
        state = self._states.get(app_id)
        if (
            state is None
            or not state.migration_pending
            or state.quarantined
            or self.migration_hook is None
        ):
            return
        state.migration_pending = False
        reason = (
            f"fault budget {state.budget:.1f}/"
            f"{self.policy.fault_budget:.1f}: migrating before eviction"
        )
        if self.migration_hook(app_id, reason):
            self._record(app_id, method, "migration", "migrated",
                         detail=reason)
            # The tenant now lives on another node; its state here
            # would otherwise leak onto a future re-attach.
            self._states.pop(app_id, None)

    def _supervised_inner(self, method: str, app_id: str, *args):
        state = self.state_of(app_id)
        if state.quarantined:
            if method == "attach" and self.policy.readmit_after_quarantine:
                state = _TenantState()
                self._states[app_id] = state
            else:
                raise TenantQuarantined(app_id, state.reason)

        fired = None
        if self.plan is not None:
            fired = self.plan.fire(Site.SERVER, app_id, method)
        fault_cycles = 0.0
        armed_stream_fault: Optional[FiredFault] = None
        if fired is not None:
            fault_cycles, args, armed_stream_fault = self._apply_fault(
                method, app_id, state, fired, args
            )

        try:
            result, cycles = getattr(self._server, method)(app_id, *args)
        except BoundsViolation as failure:
            self._fail(state, app_id, method, "bounds_violation", "fenced",
                       self.policy.weight_violation, detail=str(failure))
            raise
        except StreamFault as failure:
            # The stream is wedged — no retry can help; contain now.
            self._record(app_id, method, FaultKind.STREAM_FAULT.value,
                         "quarantined", detail=str(failure))
            self._quarantine(app_id, state,
                             f"stream fault: {failure.reason}")
            raise
        except AllocationError as failure:
            self._fail(state, app_id, method, "alloc_exhaust", "rejected",
                       self.policy.weight_alloc, detail=str(failure))
            raise
        except PTXError as failure:
            self._fail(state, app_id, method, "malformed_ptx", "rejected",
                       self.policy.weight_ptx, detail=str(failure))
            raise
        except (GuardianError, LaunchError) as failure:
            # PatcherError lands here too, as do handle/config rejections
            # and server-terminated kernels: clean per-tenant errors, but
            # a tenant producing them in bulk is misbehaving.
            weight = (self.policy.weight_ptx
                      if "patcher" in type(failure).__name__.lower()
                      else self.policy.weight_rejected)
            self._fail(state, app_id, method, type(failure).__name__,
                       "rejected", weight, detail=str(failure))
            raise

        if armed_stream_fault is not None:
            self._arm_stream_fault(app_id, method, armed_stream_fault)
        if fault_cycles:
            # Fault handling burns real server time; charge it to the
            # busy clock and to the caller's critical path. The span
            # nests inside the call span the IPC channel opened, so
            # fault cycles stay inside the per-tenant reconciliation.
            with maybe_span(self._server.telemetry,
                            f"fault:{fired.kind.value}", "fault", app_id,
                            action="handled"):
                self._server._charge(fault_cycles)
            cycles += fault_cycles
        if cycles > self.policy.deadline_cycles:
            state.deadline_violations += 1
            self._fail(state, app_id, method, "deadline", "deadline",
                       self.policy.weight_deadline,
                       cycles=cycles,
                       detail=f"{cycles:,.0f} > "
                              f"{self.policy.deadline_cycles:,.0f} cycles")
        if method == "detach":
            self._states.pop(app_id, None)
        return result, cycles

    # -- fault application --------------------------------------------------------

    def _apply_fault(self, method: str, app_id: str, state: _TenantState,
                     fired: FiredFault, args: tuple):
        """Realise one fired fault; returns (cycles, args, armed)."""
        kind = fired.kind
        if kind.retryable:
            return self._retry_transport(method, app_id, state, fired), \
                args, None
        if kind is FaultKind.IPC_DUPLICATE:
            cycles = float(self.policy.duplicate_detect_cycles)
            self._record(app_id, method, kind.value, "suppressed",
                         cycles=cycles,
                         detail="duplicate delivery detected by seqno")
            return cycles, args, None
        if kind is FaultKind.IPC_DELAY:
            self._record(app_id, method, kind.value, "delayed",
                         cycles=fired.delay_cycles,
                         detail=f"queued {fired.delay_cycles:,.0f} cycles")
            return fired.delay_cycles, args, None
        if kind is FaultKind.ALLOC_EXHAUST and method == "malloc":
            self._fail(state, app_id, method, kind.value, "rejected",
                       self.policy.weight_alloc,
                       detail="injected partition exhaustion")
            raise AllocationError(
                f"tenant {app_id!r}: partition exhausted (injected)"
            )
        if kind in (FaultKind.PTX_TRUNCATE, FaultKind.PTX_CORRUPT):
            return 0.0, self._mutate_module_args(method, args, fired), None
        if kind is FaultKind.STREAM_FAULT:
            return 0.0, args, fired
        return 0.0, args, None

    def _retry_transport(self, method: str, app_id: str,
                         state: _TenantState, fired: FiredFault) -> float:
        """Resend a dropped/corrupted crossing with exponential backoff."""
        policy = self.policy
        failed_attempts = fired.spec.times
        if failed_attempts > policy.max_retries:
            cycles = self._backoff_cycles(policy.max_retries)
            with maybe_span(self._server.telemetry,
                            f"fault:{fired.kind.value}", "fault", app_id,
                            action="exhausted",
                            attempts=policy.max_retries):
                self._server._charge(cycles)
            self._fail(state, app_id, method, fired.kind.value, "exhausted",
                       policy.weight_exhausted,
                       attempts=policy.max_retries, cycles=cycles,
                       detail="retry budget exhausted")
            raise TransientIPCFault(app_id, method, fired.kind.value,
                                    policy.max_retries)
        cycles = self._backoff_cycles(failed_attempts)
        self._bump(state, app_id, policy.weight_retry)
        self._record(app_id, method, fired.kind.value, "retried",
                     attempts=failed_attempts, cycles=cycles,
                     detail=f"recovered after {failed_attempts} resend(s)")
        return cycles

    def _backoff_cycles(self, attempts: int) -> float:
        """Exponential backoff across ``attempts`` resends, each step
        optionally jittered (``policy.backoff_jitter``). With jitter
        off the sum is exactly ``sum(base * 2**i)`` — the pinned stock
        figure; no RNG draw happens, so enabling jitter for one run
        never shifts another's draws."""
        policy = self.policy
        jitter = policy.backoff_jitter
        total = 0.0
        for attempt in range(attempts):
            step = float(policy.backoff_base_cycles * 2 ** attempt)
            if jitter:
                step *= 1.0 + jitter * (self._jitter_rng.random() - 0.5)
            total += step
        return total

    def _mutate_module_args(self, method: str, args: tuple,
                            fired: FiredFault) -> tuple:
        telemetry = self._server.telemetry
        if method == "load_module_ptx" and args:
            return (mutate_ptx_text(args[0], fired,
                                    telemetry=telemetry),) + args[1:]
        if method == "register_fatbin" and args \
                and isinstance(args[0], FatBinary):
            return (mutate_fatbin(args[0], fired,
                                  telemetry=telemetry),) + args[1:]
        return args

    def _arm_stream_fault(self, app_id: str, method: str,
                          fired: FiredFault) -> None:
        tenant = self._server._tenants.get(app_id)
        if tenant is None:
            return
        tenant.stream.fault = fired.reason
        self._record(app_id, method, fired.kind.value, "armed",
                     detail=f"async {fired.reason}; surfaces at next "
                            f"ordering point")

    # -- budget and quarantine ----------------------------------------------------

    def _fail(self, state: _TenantState, app_id: str, op: str, kind: str,
              action: str, weight: float, attempts: int = 0,
              cycles: float = 0.0, detail: str = "") -> None:
        self._record(app_id, op, kind, action, attempts=attempts,
                     cycles=cycles, detail=detail)
        self._bump(state, app_id, weight)

    def _bump(self, state: _TenantState, app_id: str,
              weight: float) -> None:
        state.budget += weight
        if not state.quarantined and state.budget >= self.policy.fault_budget:
            self._quarantine(app_id, state, "fault budget exhausted")
            return
        fraction = self.policy.migrate_budget_fraction
        if (
            fraction is not None
            and not state.quarantined
            and self.migration_hook is not None
            and state.budget >= fraction * self.policy.fault_budget
        ):
            state.migration_pending = True

    def _quarantine(self, app_id: str, state: _TenantState,
                    reason: str) -> None:
        if state.quarantined:
            return
        state.quarantined = True
        state.reason = reason
        lane = self._server.lane_view(app_id)
        lane_cycles = lane.clock if lane is not None else 0.0
        scrubbed = self._server.quarantine(app_id, reason=reason) \
            if self.policy.scrub_on_quarantine else self._unscrubbed(app_id)
        self.quarantines.append(QuarantineRecord(
            tenant=app_id, reason=reason, budget_spent=state.budget,
            bytes_scrubbed=scrubbed, lane_cycles=lane_cycles,
        ))
        self._record(app_id, "<quarantine>", "quarantine", "quarantined",
                     detail=reason)

    def _unscrubbed(self, app_id: str) -> int:
        self._server.detach(app_id)
        return 0

    def _record(self, tenant: str, op: str, kind: str, action: str,
                attempts: int = 0, cycles: float = 0.0,
                detail: str = "") -> None:
        self.records.append(FailureRecord(
            tenant=tenant, op=op, kind=kind, action=action,
            attempts=attempts, cycles=cycles, detail=detail,
            node=self.node,
        ))
        telemetry = self._server.telemetry
        if telemetry is not None:
            telemetry.fault_events.inc(
                tenant=tenant, kind=kind, action=action,
                node=self.node or "<local>",
            )
