"""Guardian core — the paper's contribution.

Three cooperating mechanisms provide memory-safe spatial GPU sharing
(paper Fig. 3):

1. the preloaded client library (:mod:`repro.core.client`) intercepts
   every CUDA runtime/driver call and forwards it over IPC
   (:mod:`repro.core.ipc`) to the trusted server;
2. the GuardianServer (:mod:`repro.core.server`) owns the single GPU
   context, partitions device memory per tenant
   (:mod:`repro.core.allocator`, :mod:`repro.core.bounds_table`),
   range-checks every host-initiated transfer, and launches *sandboxed*
   kernels on per-tenant streams;
3. the offline PTX patcher (:mod:`repro.core.patcher`) instruments
   every load/store of every kernel — extracted from fatbins with
   ``cuobjdump`` — with one of three bounds-enforcement schemes
   (:mod:`repro.core.policy`), whose address math lives in
   :mod:`repro.core.masks`.
"""

from repro.core.allocator import GuardianAllocator, Partition
from repro.core.bounds_table import PartitionBoundsTable, PartitionRecord
from repro.core.client import GuardianClient, preload_guardian
from repro.core.masks import fence_address, partition_mask
from repro.core.patcher import PatchReport, PTXPatcher
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer

__all__ = [
    "FencingMode",
    "GuardianAllocator",
    "GuardianClient",
    "GuardianServer",
    "Partition",
    "PartitionBoundsTable",
    "PartitionRecord",
    "PatchReport",
    "PTXPatcher",
    "fence_address",
    "partition_mask",
    "preload_guardian",
]
