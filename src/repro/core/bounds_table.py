"""The partition bounds table (paper §4.2.1).

For each application the server stores the application id, the
partition base address and the partition size; derived values (mask,
end, division magic) are precomputed here so a kernel launch only does
one dictionary lookup. The table is consulted

- on every data transfer, to verify source/destination ranges
  (§4.2.2), and
- on every kernel launch, to fetch the extra sandbox parameters
  (§4.2.3).

The table also maintains a per-application **epoch counter**: every
mutation of an application's record (register, remove — and therefore
partition growth, which re-registers) bumps the epoch. Consumers that
cache derived launch state (the server's launch fast path) compare
their cached epoch against :meth:`PartitionBoundsTable.epoch` and
rebuild on mismatch, so a grown partition's widened mask is always
picked up by the next launch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError
from repro.core import masks
from repro.core.policy import FencingMode


@dataclass(frozen=True)
class PartitionRecord:
    """One row of the bounds table."""

    app_id: str
    base: int
    size: int

    @property
    def end(self) -> int:
        """One past the last byte of the partition."""
        return self.base + self.size

    @property
    def mask(self) -> int:
        return masks.partition_mask(self.size)

    @property
    def magic(self) -> int:
        return masks.division_magic(self.size)

    def contains(self, address: int, length: int = 1) -> bool:
        """Is [address, address+length) entirely inside the partition?"""
        return (
            self.base <= address
            and length >= 0
            and address + length <= self.end
        )

    def extra_param_values(self, mode: FencingMode) -> list[int]:
        """The values for ``mode``'s extra kernel parameters, in the
        order :meth:`FencingMode.extra_params` declares them."""
        if mode is FencingMode.NONE:
            return []
        if mode is FencingMode.BITWISE:
            return [self.base, self.mask]
        if mode is FencingMode.MODULO:
            return [self.base, self.size, self.magic]
        return [self.base, self.end]


class PartitionBoundsTable:
    """app id -> partition record, with range validation."""

    def __init__(self):
        self._records: dict[str, PartitionRecord] = {}
        #: Monotone per-app mutation counters (never reset, even when a
        #: record is removed — a re-attached app must not alias a stale
        #: cached epoch).
        self._epochs: dict[str, int] = {}

    def register(self, app_id: str, base: int, size: int) -> PartitionRecord:
        if app_id in self._records:
            raise PartitionError(f"app {app_id!r} already has a partition")
        # Size-alignment is a bitwise-fencing requirement; partitions
        # of arbitrary size (modulo/checking modes) skip it.
        if masks.is_power_of_two(size):
            masks.check_alignment(base, size)
        record = PartitionRecord(app_id=app_id, base=base, size=size)
        self._records[app_id] = record
        self._bump_epoch(app_id)
        return record

    def remove(self, app_id: str) -> None:
        if self._records.pop(app_id, None) is not None:
            self._bump_epoch(app_id)

    def epoch(self, app_id: str) -> int:
        """Mutation count of ``app_id``'s record (0 = never registered)."""
        return self._epochs.get(app_id, 0)

    def epochs(self) -> dict[str, int]:
        """Snapshot of every app's epoch counter.

        The containment tests diff two snapshots to prove a quarantine
        touched *only* the evicted tenant's row: every other app's
        epoch must be unchanged, or its cached launch state would have
        been spuriously invalidated (or worse, silently stale).
        """
        return dict(self._epochs)

    def _bump_epoch(self, app_id: str) -> None:
        self._epochs[app_id] = self._epochs.get(app_id, 0) + 1

    def lookup(self, app_id: str) -> PartitionRecord:
        try:
            return self._records[app_id]
        except KeyError:
            raise PartitionError(
                f"app {app_id!r} has no registered partition"
            ) from None

    def owner_of(self, address: int) -> str | None:
        """Which tenant owns ``address`` (diagnostics only)."""
        for record in self._records.values():
            if record.contains(address):
                return record.app_id
        return None

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, app_id: str) -> bool:
        return app_id in self._records

    def records(self) -> list[PartitionRecord]:
        return list(self._records.values())
