"""The partition bounds table (paper §4.2.1).

For each application the server stores the application id, the
partition base address and the partition size; derived values (mask,
end, division magic) are **precomputed at registration** so a kernel
launch or transfer check touches no arithmetic at all — one dictionary
probe returns a record whose fields are plain attributes. The table is
consulted

- on every data transfer, to verify source/destination ranges
  (§4.2.2), and
- on every kernel launch, to fetch the extra sandbox parameters
  (§4.2.3).

**Read path (RCU-style snapshots).** Mutations (register/remove) are
rare — tenant attach, detach, partition growth — while reads happen on
every transfer and launch. The table therefore keeps its mutations
behind a writer lock and, after each one, publishes a fresh immutable
:class:`BoundsSnapshot`; hot-path readers (:meth:`read`,
:meth:`snapshot`) grab the currently-published snapshot with a single
attribute load and never touch the writer lock. A reader that raced a
writer sees either the old or the new epoch in full — never a torn
table — which is exactly the guarantee the server's concurrent
dispatch lanes need (DESIGN.md §7).

The table also maintains a per-application **epoch counter**: every
mutation of an application's record (register, remove — and therefore
partition growth, which re-registers) bumps the epoch. Consumers that
cache derived launch state (the server's launch fast path) compare
their cached epoch against :meth:`PartitionBoundsTable.epoch` and
rebuild on mismatch, so a grown partition's widened mask is always
picked up by the next launch.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitionError
from repro.core import masks
from repro.core.policy import FencingMode


@dataclass(frozen=True)
class PartitionRecord:
    """One row of the bounds table.

    ``end``, ``mask`` and ``magic`` are precomputed fields, not
    per-call properties: a record is built once per partition mutation
    and read on every launch and transfer, so the derived values are
    paid for at write time (``mask`` is only meaningful for
    power-of-two partitions — bitwise fencing requires them — and is 0
    for arbitrary-size partitions, which only ever use ``size``/
    ``magic``/``end``).
    """

    app_id: str
    base: int
    size: int
    #: One past the last byte of the partition.
    end: int = field(init=False, repr=False)
    #: Bitwise fence mask (``size - 1``); 0 unless size is a power of 2.
    mask: int = field(init=False, repr=False)
    #: Fixed-point reciprocal ``floor(2^64 / size)`` for modulo fencing.
    magic: int = field(init=False, repr=False)

    def __post_init__(self):
        object.__setattr__(self, "end", self.base + self.size)
        object.__setattr__(
            self, "mask",
            masks.partition_mask(self.size)
            if masks.is_power_of_two(self.size) else 0,
        )
        object.__setattr__(self, "magic", masks.division_magic(self.size))

    def contains(self, address: int, length: int = 1) -> bool:
        """Is [address, address+length) entirely inside the partition?"""
        return (
            self.base <= address
            and length >= 0
            and address + length <= self.end
        )

    def contains_all(self, ranges) -> bool:
        """Is every ``(address, length)`` range inside the partition?"""
        return all(
            self.contains(address, length) for address, length in ranges
        )

    def contains_batch(self, starts, sizes) -> bool:
        """Vectorized containment over parallel numpy arrays.

        One sweep evaluates the same three-clause predicate
        :meth:`contains` applies per range — lower bound, non-negative
        length, upper bound — across the whole batch. This is the
        trace-specialization prologue's one-shot bounds check
        (``enable_vectorized_bounds``): the per-range predicate stays
        the flat GPUArmor-style comparison; only the loop over ranges
        is vectorized.
        """
        return bool(np.all(
            (starts >= self.base)
            & (sizes >= 0)
            & (starts + sizes <= self.end)
        ))

    def extra_param_values(self, mode: FencingMode) -> list[int]:
        """The values for ``mode``'s extra kernel parameters, in the
        order :meth:`FencingMode.extra_params` declares them."""
        if mode is FencingMode.NONE:
            return []
        if mode is FencingMode.BITWISE:
            return [self.base, self.mask]
        if mode is FencingMode.MODULO:
            return [self.base, self.size, self.magic]
        return [self.base, self.end]


class BoundsSnapshot:
    """An immutable epoch snapshot of the whole table.

    Published by writers, shared by reference with every reader until
    the next mutation; must never be mutated after construction.
    ``version`` increments with each published snapshot, so consumers
    can detect (and tests can pin) snapshot turnover.
    """

    __slots__ = ("records", "version")

    def __init__(self, records: dict[str, PartitionRecord], version: int):
        self.records = records
        self.version = version

    def read(self, app_id: str) -> PartitionRecord:
        try:
            return self.records[app_id]
        except KeyError:
            raise PartitionError(
                f"app {app_id!r} has no registered partition"
            ) from None

    def __contains__(self, app_id: str) -> bool:
        return app_id in self.records

    def __len__(self) -> int:
        return len(self.records)


class PartitionBoundsTable:
    """app id -> partition record, with range validation."""

    def __init__(self):
        self._records: dict[str, PartitionRecord] = {}
        #: Monotone per-app mutation counters (never reset, even when a
        #: record is removed — a re-attached app must not alias a stale
        #: cached epoch).
        self._epochs: dict[str, int] = {}
        #: Writer lock: mutations are serialized; readers never take it.
        self._write_lock = threading.Lock()
        self._snapshot = BoundsSnapshot({}, 0)

    # -- write path (serialized behind the lock) ---------------------------

    def register(self, app_id: str, base: int, size: int) -> PartitionRecord:
        with self._write_lock:
            if app_id in self._records:
                raise PartitionError(
                    f"app {app_id!r} already has a partition"
                )
            # Size-alignment is a bitwise-fencing requirement; partitions
            # of arbitrary size (modulo/checking modes) skip it.
            if masks.is_power_of_two(size):
                masks.check_alignment(base, size)
            record = PartitionRecord(app_id=app_id, base=base, size=size)
            self._records[app_id] = record
            self._bump_epoch(app_id)
            self._publish()
            return record

    def remove(self, app_id: str) -> None:
        with self._write_lock:
            if self._records.pop(app_id, None) is not None:
                self._bump_epoch(app_id)
                self._publish()

    def _bump_epoch(self, app_id: str) -> None:
        self._epochs[app_id] = self._epochs.get(app_id, 0) + 1

    def _publish(self) -> None:
        """Copy-on-write: the new snapshot replaces the old one in a
        single reference assignment, so concurrent readers see either
        version in full."""
        self._snapshot = BoundsSnapshot(
            dict(self._records), self._snapshot.version + 1
        )

    # -- read path (lock-free, RCU-style) ----------------------------------

    def snapshot(self) -> BoundsSnapshot:
        """The currently-published immutable snapshot."""
        return self._snapshot

    def read(self, app_id: str) -> PartitionRecord:
        """Hot-path lookup through the published snapshot — no writer
        lock, no copy; equivalent to :meth:`lookup` for any quiescent
        table."""
        return self._snapshot.read(app_id)

    def epoch(self, app_id: str) -> int:
        """Mutation count of ``app_id``'s record (0 = never registered)."""
        return self._epochs.get(app_id, 0)

    def epochs(self) -> dict[str, int]:
        """Snapshot of every app's epoch counter.

        The containment tests diff two snapshots to prove a quarantine
        touched *only* the evicted tenant's row: every other app's
        epoch must be unchanged, or its cached launch state would have
        been spuriously invalidated (or worse, silently stale).
        """
        return dict(self._epochs)

    def lookup(self, app_id: str) -> PartitionRecord:
        try:
            return self._records[app_id]
        except KeyError:
            raise PartitionError(
                f"app {app_id!r} has no registered partition"
            ) from None

    def owner_of(self, address: int) -> str | None:
        """Which tenant owns ``address`` (diagnostics only)."""
        for record in self._records.values():
            if record.contains(address):
                return record.app_id
        return None

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, app_id: str) -> bool:
        return app_id in self._records

    def records(self) -> list[PartitionRecord]:
        return list(self._records.values())
