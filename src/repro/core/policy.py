"""Bounds-enforcement policies (the paper's §4.4 trade-off space).

Guardian supports three schemes, selectable at run time:

=============  =========  =============  ==========================
mode           ~cycles    partition      semantics on violation
               per ld/st  size
=============  =========  =============  ==========================
BITWISE        8          power of two   wrap into own partition
MODULO         ~38        arbitrary      wrap into own partition
CHECKING       80         arbitrary      detect; return from kernel
=============  =========  =============  ==========================

plus ``NONE`` — interception/forwarding without any checks (the
"G-Safe without protection" configuration used to isolate overheads).

Each mode needs different extra kernel parameters; the server fetches
them from the partition bounds table at every launch (§4.2.3).
"""

from __future__ import annotations

import enum


class FencingMode(enum.Enum):
    """Which bounds-enforcement scheme the patcher/server applies."""

    NONE = "none"
    BITWISE = "bitwise"
    MODULO = "modulo"
    CHECKING = "checking"

    @property
    def extra_params(self) -> tuple[str, ...]:
        """The extra kernel parameters this mode appends (in order)."""
        return _EXTRA_PARAMS[self]

    @property
    def requires_power_of_two(self) -> bool:
        return self is FencingMode.BITWISE

    @property
    def detects_violations(self) -> bool:
        """Only address *checking* can report an out-of-bounds access;
        fencing silently contains it (paper: checking is the debug
        mode, fencing the production mode)."""
        return self is FencingMode.CHECKING


_EXTRA_PARAMS = {
    FencingMode.NONE: (),
    FencingMode.BITWISE: ("guardian_base", "guardian_mask"),
    FencingMode.MODULO: (
        "guardian_base", "guardian_size", "guardian_magic"
    ),
    FencingMode.CHECKING: ("guardian_base", "guardian_end"),
}
