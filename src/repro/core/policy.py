"""Bounds-enforcement, lane-scheduling, and autoscaling policies.

Three pluggable policy families live here:

1. **Bounds enforcement** (:class:`FencingMode`, the paper's §4.4
   trade-off space) — which sandboxing scheme the patcher/server apply.
2. **Lane scheduling** (:class:`LaneSchedulingPolicy`) — when the
   server runs in concurrent-dispatch mode (``ServerConfig.concurrency``,
   DESIGN.md §7), which tenant's lane advances first at each
   serialization point (the shared critical section guarding
   bounds-table writes, allocator mutations and patch-cache misses).
3. **Lane autoscaling** (:class:`AutoscalePolicy`) — the SLO control
   loop's decision point (DESIGN.md §13): given a class's windowed
   quantiles and its SLO target, widen, narrow, or hold the service
   capacity. Consulted by the open-loop load generator's driver at
   each control interval; nothing in the stock server calls it.

Guardian supports three bounds schemes, selectable at run time:

=============  =========  =============  ==========================
mode           ~cycles    partition      semantics on violation
               per ld/st  size
=============  =========  =============  ==========================
BITWISE        8          power of two   wrap into own partition
MODULO         ~38        arbitrary      wrap into own partition
CHECKING       80         arbitrary      detect; return from kernel
=============  =========  =============  ==========================

plus ``NONE`` — interception/forwarding without any checks (the
"G-Safe without protection" configuration used to isolate overheads).

Each mode needs different extra kernel parameters; the server fetches
them from the partition bounds table at every launch (§4.2.3).
"""

from __future__ import annotations

import enum


class FencingMode(enum.Enum):
    """Which bounds-enforcement scheme the patcher/server applies."""

    NONE = "none"
    BITWISE = "bitwise"
    MODULO = "modulo"
    CHECKING = "checking"

    @property
    def extra_params(self) -> tuple[str, ...]:
        """The extra kernel parameters this mode appends (in order)."""
        return _EXTRA_PARAMS[self]

    @property
    def requires_power_of_two(self) -> bool:
        return self is FencingMode.BITWISE

    @property
    def detects_violations(self) -> bool:
        """Only address *checking* can report an out-of-bounds access;
        fencing silently contains it (paper: checking is the debug
        mode, fencing the production mode)."""
        return self is FencingMode.CHECKING


_EXTRA_PARAMS = {
    FencingMode.NONE: (),
    FencingMode.BITWISE: ("guardian_base", "guardian_mask"),
    FencingMode.MODULO: (
        "guardian_base", "guardian_size", "guardian_magic"
    ),
    FencingMode.CHECKING: ("guardian_base", "guardian_end"),
}


# --------------------------------------------------------------------------
# Lane scheduling (concurrent dispatch, DESIGN.md §7)
# --------------------------------------------------------------------------


class LaneSchedulingPolicy:
    """Arbitration of the server's shared critical section.

    When concurrent dispatch is enabled every tenant accumulates host
    cycles on its own lane; host-side serialization points charge one
    shared critical section. The policy decides the *start time* of a
    lane's next critical-section entry, given the lane's own clock and
    the instant the section last became free. Implementations must be
    deterministic (pure functions of the accounting state) so modelled
    makespans are reproducible.
    """

    name = "base"

    def grant(self, lane, lanes, critical_clock: float) -> float:
        """Return the cycle instant at which ``lane`` may enter the
        shared critical section.

        ``lane`` carries ``clock`` (lane-local completion time) and
        ``critical`` (cycles this lane has already spent inside the
        section); ``lanes`` is the mapping of all live lanes;
        ``critical_clock`` is when the section last became free. The
        returned instant is clamped to ``max(lane.clock,
        critical_clock)`` by the caller, so a policy only ever *delays*
        entry, never reorders completed work.
        """
        raise NotImplementedError


class FifoLanePolicy(LaneSchedulingPolicy):
    """First-come-first-served: a lane enters the section as soon as
    both the lane and the section are free. A tenant that hammers
    serialization points can monopolise the section."""

    name = "fifo"

    def grant(self, lane, lanes, critical_clock: float) -> float:
        return max(lane.clock, critical_clock)


class FairShareLanePolicy(LaneSchedulingPolicy):
    """Virtual-time fair queuing over the shared critical section.

    Each lane's *virtual time* is its accumulated critical-section
    usage scaled by the number of live lanes: a lane that has consumed
    more than its time-proportional share is throttled until the
    section clock catches up with its normalized usage, leaving gaps
    its siblings can use. With symmetric tenants this degenerates to
    FIFO; with one spammy tenant it bounds that tenant's share at
    ~1/n without starving it.
    """

    name = "fair"

    def grant(self, lane, lanes, critical_clock: float) -> float:
        virtual = lane.critical * max(1, len(lanes))
        return max(lane.clock, critical_clock, virtual)


_LANE_POLICIES = {
    "fifo": FifoLanePolicy,
    "fair": FairShareLanePolicy,
    "fair-share": FairShareLanePolicy,
}


def lane_scheduling_policy(name: str) -> LaneSchedulingPolicy:
    """Resolve a ``ServerConfig.lane_policy`` string to a policy."""
    try:
        return _LANE_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown lane policy {name!r}; expected one of "
            f"{sorted(_LANE_POLICIES)}"
        ) from None


# --------------------------------------------------------------------------
# Lane autoscaling (SLO control loop, DESIGN.md §13)
# --------------------------------------------------------------------------


class AutoscalePolicy:
    """Capacity decision at each control interval of the load driver.

    ``decide`` receives the observed window (per-class dicts with at
    least ``p99`` — modelled cycles, or ``None`` for an empty window —
    and ``slo`` — the class's p99 target), the current capacity, and
    the configured bounds. It returns the *new* capacity; the caller
    clamps it into ``[min_capacity, max_capacity]``. Implementations
    must be pure functions of their arguments so modelled runs stay
    reproducible.
    """

    name = "base"

    def decide(self, window: dict, capacity: int,
               min_capacity: int, max_capacity: int) -> int:
        raise NotImplementedError


class HoldAutoscaler(AutoscalePolicy):
    """Never changes capacity — the control loop's null hypothesis."""

    name = "hold"

    def decide(self, window: dict, capacity: int,
               min_capacity: int, max_capacity: int) -> int:
        return capacity


class P99BreachAutoscaler(AutoscalePolicy):
    """Widen on a p99 SLO breach, narrow when comfortably under.

    If any class's windowed p99 exceeds its SLO target, add one lane.
    If *every* class with traffic sits below ``narrow_ratio`` of its
    target (default: half), remove one. Empty windows (``p99`` is
    ``None``) hold — no data is not evidence of headroom.
    """

    name = "p99-breach"

    def __init__(self, narrow_ratio: float = 0.5):
        self.narrow_ratio = narrow_ratio

    def decide(self, window: dict, capacity: int,
               min_capacity: int, max_capacity: int) -> int:
        observed = [
            entry for entry in window.values()
            if entry.get("p99") is not None and entry.get("slo")
        ]
        if not observed:
            return capacity
        if any(entry["p99"] > entry["slo"] for entry in observed):
            return capacity + 1
        if all(entry["p99"] < self.narrow_ratio * entry["slo"]
               for entry in observed):
            return capacity - 1
        return capacity


_AUTOSCALE_POLICIES = {
    "hold": HoldAutoscaler,
    "p99": P99BreachAutoscaler,
    "p99-breach": P99BreachAutoscaler,
}


def autoscale_policy(name: str) -> AutoscalePolicy:
    """Resolve a ``LoadgenConfig.autoscale_policy`` string."""
    try:
        return _AUTOSCALE_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown autoscale policy {name!r}; expected one of "
            f"{sorted(_AUTOSCALE_POLICIES)}"
        ) from None


# --------------------------------------------------------------------------
# Defragmentation (elastic memory engine, DESIGN.md §14)
# --------------------------------------------------------------------------


class DefragPolicy:
    """When the elastic engine should compact (DESIGN.md §14).

    ``should_defrag`` receives the allocator's fragmentation view — a
    dict with at least ``score`` (largest-carveable / unpartitioned
    bytes, 1.0 = one perfect block), ``largest_carveable``,
    ``bytes_unpartitioned`` and ``gaps`` — plus the partition size the
    caller is trying to place (0 for a background sweep). Returning
    True authorises relocations; the engine still only moves tenants
    whose relocation strictly lowers their base. Implementations must
    be pure functions of their arguments (deterministic replans).
    """

    name = "base"

    def should_defrag(self, view: dict, want_bytes: int = 0) -> bool:
        raise NotImplementedError


class NeverDefragPolicy(DefragPolicy):
    """Compaction's null hypothesis: never relocate anybody."""

    name = "never"

    def should_defrag(self, view: dict, want_bytes: int = 0) -> bool:
        return False


class ThresholdDefragPolicy(DefragPolicy):
    """Compact when free space is badly stranded.

    Triggers when the fragmentation score falls below ``threshold``
    (default 0.5: less than half the free bytes are reachable by the
    largest possible carve) — or, when the caller is trying to place a
    partition, whenever the free bytes could hold it but no single gap
    can (the precise moment compaction converts stranded capacity into
    an admission).
    """

    name = "threshold"

    def __init__(self, threshold: float = 0.5):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(
                f"defrag threshold must be in [0, 1], got {threshold}"
            )
        self.threshold = threshold

    def should_defrag(self, view: dict, want_bytes: int = 0) -> bool:
        if (want_bytes
                and view["bytes_unpartitioned"] >= want_bytes
                and view["largest_carveable"] < want_bytes):
            return True
        return view["score"] < self.threshold


_DEFRAG_POLICIES = {
    "never": NeverDefragPolicy,
    "threshold": ThresholdDefragPolicy,
}


def defrag_policy(name: str, **kwargs) -> DefragPolicy:
    """Resolve a ``ServerConfig.defrag_policy`` string.

    ``kwargs`` forward to the policy constructor (the server passes
    ``threshold=config.defrag_threshold``; policies without that knob
    simply don't accept it).
    """
    try:
        cls = _DEFRAG_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown defrag policy {name!r}; expected one of "
            f"{sorted(_DEFRAG_POLICIES)}"
        ) from None
    return cls(**kwargs)
