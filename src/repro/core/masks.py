"""Partition mask arithmetic — the math of the paper's Fig. 5.

A partition is a contiguous, power-of-two sized, size-aligned block of
device memory. Its *mask* is ``size - 1`` (the low bits that vary
inside the partition). Fencing an address is two bitwise operations::

    fenced = (address & mask) | base

For any address, the result lies inside the partition; for an address
already inside, the result is the address itself. That is the whole
trick: out-of-partition accesses *wrap around* into the offender's own
partition (possibly corrupting the offender's data — never a
neighbour's), at a cost of ~8 cycles.

The paper's example: partition at ``0x7fa2d0000000`` of 16 MB has end
``0x7fa2d0ffffff`` and mask ``0x000000ffffff``.
"""

from __future__ import annotations

from repro.errors import PartitionError

#: Address width of the device address space.
ADDRESS_BITS = 64
_ADDRESS_MASK = (1 << ADDRESS_BITS) - 1


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ..."""
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= value."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def partition_mask(size: int) -> int:
    """The bitwise-AND mask of a partition of ``size`` bytes."""
    if not is_power_of_two(size):
        raise PartitionError(
            f"bitwise fencing requires a power-of-two partition, "
            f"got {size:#x}"
        )
    return size - 1


def check_alignment(base: int, size: int) -> None:
    """A partition must be aligned to its own size for the OR with the
    base to be correct (the base contributes only high bits)."""
    if base & partition_mask(size):
        raise PartitionError(
            f"partition base {base:#x} is not aligned to its size "
            f"{size:#x}"
        )


def fence_address(address: int, base: int, mask: int) -> int:
    """Address fencing with bitwise operations (the paper's Listing 2).

    Exactly what the two patched-in instructions compute::

        and.b64  %addr, %addr, %mask
        or.b64   %addr, %addr, %base
    """
    return ((address & _ADDRESS_MASK) & mask) | base


def modulo_fence(address: int, base: int, size: int) -> int:
    """Address fencing with modulo (works for any partition size)::

        fenced = base + ((address - base) mod size)
    """
    return base + ((address - base) % size)


def division_magic(size: int) -> int:
    """The ``1/partition_size`` fixed-point reciprocal parameter.

    The paper's inline 64-bit modulo avoids the division function call
    by passing this precomputed magic: ``floor(2^64 / size)``. The
    patched code computes ``q = mulhi(t, magic) ~= t / size`` and a
    single conditional correction fixes the off-by-one.
    """
    if size <= 0:
        raise PartitionError(f"bad partition size {size}")
    return (1 << 64) // size


def in_bounds(address: int, width: int, base: int, size: int) -> bool:
    """Address-checking predicate: does [address, address+width) fall
    inside [base, base+size)? (What the conditional checks verify.)"""
    return base <= address and address + width <= base + size
