"""Guardian's custom GPU memory allocator (paper §4.2.1).

At server start the allocator *reserves all device memory* and carves
it into contiguous per-tenant partitions:

- partitions are **power-of-two sized and size-aligned** so the
  two-instruction bitwise fence is valid (the paper optimises for the
  common case — PyTorch's and TensorFlow's own caching allocators are
  power-of-two anyway);
- within a partition, ``cudaMalloc``/``cudaFree`` are served by a
  conventional first-fit allocator, so *the tenant sees an ordinary
  CUDA allocator* and no per-allocation metadata is needed — only the
  partition (base, size) pair, which fits in two registers.

Tenants must declare their maximum memory up front (static
partitioning, the paper's stated limitation; resizing is future work).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AllocationError, PartitionError
from repro.core import masks
from repro.core.bounds_table import PartitionBoundsTable, PartitionRecord
from repro.gpu.allocator import FirstFitAllocator


@dataclass
class Partition:
    """One tenant's contiguous block plus its in-partition allocator."""

    record: PartitionRecord
    heap: FirstFitAllocator

    @property
    def app_id(self) -> str:
        return self.record.app_id

    @property
    def base(self) -> int:
        return self.record.base

    @property
    def size(self) -> int:
        return self.record.size

    def malloc(self, size: int) -> int:
        try:
            return self.heap.allocate(size)
        except AllocationError as exc:
            raise AllocationError(
                f"tenant {self.app_id!r}: {exc} (partition of "
                f"{self.size} bytes)"
            ) from exc

    def free(self, address: int) -> None:
        self.heap.free(address)


@dataclass
class _Gap:
    start: int
    size: int


class GuardianAllocator:
    """Reserves the whole GPU and hands out aligned partitions."""

    def __init__(self, base: int, total_bytes: int,
                 require_power_of_two: bool = True):
        self.base = base
        self.total_bytes = total_bytes
        self.require_power_of_two = require_power_of_two
        self.bounds = PartitionBoundsTable()
        self._partitions: dict[str, Partition] = {}
        self._gaps: list[_Gap] = [_Gap(base, total_bytes)]

    # -- partition lifecycle -----------------------------------------------------

    def create_partition(self, app_id: str, max_bytes: int) -> Partition:
        """Carve out a partition for a new tenant.

        ``max_bytes`` is the tenant's declared maximum; it is rounded
        up to the next power of two (bitwise-fencing requirement).
        """
        if app_id in self._partitions:
            raise PartitionError(f"app {app_id!r} already has a partition")
        if max_bytes <= 0:
            raise PartitionError(f"bad partition request: {max_bytes} bytes")
        size = (
            masks.next_power_of_two(max_bytes)
            if self.require_power_of_two
            else max_bytes
        )
        start = self._take_aligned(size)
        record = self.bounds.register(app_id, start, size)
        partition = Partition(
            record=record,
            heap=FirstFitAllocator(start, size),
        )
        self._partitions[app_id] = partition
        return partition

    def grow_partition(self, app_id: str, new_max_bytes: int) -> Partition:
        """Grow a tenant's partition in place (the paper's future-work
        item, §4.2.1, implemented for the buddy case).

        Growth doubles the partition until it covers
        ``new_max_bytes``. Because partitions are size-aligned, a
        partition can absorb exactly its *buddy* region (the block of
        equal size immediately above it) — and doing so keeps the base
        address unchanged, so every pointer the tenant already holds
        stays valid and only the mask widens. If a buddy region is
        occupied by another tenant, growth fails with
        :class:`PartitionError` (migration would invalidate tenant
        pointers, which Guardian cannot do transparently).
        """
        old = self.partition(app_id)
        if new_max_bytes <= old.size:
            return old
        target = (
            masks.next_power_of_two(new_max_bytes)
            if self.require_power_of_two
            else new_max_bytes
        )
        size = old.size
        base = old.base
        # Growth is all-or-nothing: a doubling chain that fails midway
        # (a 1M->4M grow whose first buddy is free but whose second is
        # occupied) must hand every absorbed buddy back, or those bytes
        # leak — owned by no partition and absent from the gap list.
        absorbed: list[_Gap] = []

        def _rollback_and_raise(message: str):
            for gap in absorbed:
                self._insert_gap(gap)
            raise PartitionError(message)

        while size < target:
            if base % (2 * size) != 0:
                _rollback_and_raise(
                    f"partition of {app_id!r} at {base:#x} is the high "
                    f"buddy of its pair; in-place growth impossible"
                )
            if not self._take_exact(base + size, size):
                _rollback_and_raise(
                    f"buddy region [{base + size:#x}, "
                    f"{base + 2 * size:#x}) is not free; cannot grow "
                    f"{app_id!r} without migrating it"
                )
            absorbed.append(_Gap(base + size, size))
            size *= 2

        self.bounds.remove(app_id)
        record = self.bounds.register(app_id, base, size)
        grown = Partition(record=record, heap=old.heap)
        # Hand the absorbed space to the tenant's heap as free blocks.
        grown.heap.extend(size - old.size)
        self._partitions[app_id] = grown
        return grown

    def shrink_partition(self, app_id: str,
                         min_bytes: int = 4096) -> Partition:
        """Shrink a tenant's partition in place (inverse of
        :meth:`grow_partition`, the elastic engine's reclaim step).

        Repeatedly releases the *upper buddy half* while the heap's
        high-water mark fits in the lower half: the base address — and
        with it every pointer the tenant holds — is unchanged, only the
        mask narrows, published to the bounds table under a fresh
        epoch so subsequent launches pick up the tighter fence.
        ``min_bytes`` floors the result (tiny partitions buy nothing
        and churn the bounds table). Returns the (possibly unchanged)
        partition; a partition that cannot shrink is returned as-is —
        shrink is opportunistic, never an error.
        """
        old = self.partition(app_id)
        floor = max(
            old.heap.high_water,
            masks.next_power_of_two(max(min_bytes, 1))
            if self.require_power_of_two else max(min_bytes, 1),
        )
        size = old.size
        base = old.base
        released: list[_Gap] = []
        while size // 2 >= floor and size // 2 > 0:
            half = size // 2
            # Release [base+half, base+size) — the upper buddy. The
            # heap is trimmed first so a failure (racing allocation
            # above the cut) leaves the gap list untouched.
            old.heap.shrink(half)
            released.append(_Gap(base + half, half))
            size = half
        if size == old.size:
            return old
        for gap in released:
            self._insert_gap(gap)
        self.bounds.remove(app_id)
        record = self.bounds.register(app_id, base, size)
        shrunk = Partition(record=record, heap=old.heap)
        self._partitions[app_id] = shrunk
        return shrunk

    def largest_carveable(self) -> int:
        """The largest power-of-two, size-aligned partition the gap
        list can hold right now — the numerator of the elastic
        engine's fragmentation score. 0 with no usable gap."""
        best = 0
        for gap in self._gaps:
            size = 1 << (gap.size.bit_length() - 1) if gap.size else 0
            while size > best:
                if self._find_fit(size, [gap]) is not None:
                    best = size
                    break
                size //= 2
        return best

    def fragmentation_score(self) -> float:
        """``largest_carveable / bytes_unpartitioned`` in [0, 1].

        1.0 means the free space is one perfectly usable block; low
        values mean free bytes exist but are stranded in gaps too
        small or misaligned to carve — the signal the
        :class:`~repro.core.policy.DefragPolicy` triggers on. An
        allocator with no free bytes scores 1.0 (nothing is stranded).
        """
        free = self.bytes_unpartitioned
        if free == 0:
            return 1.0
        return self.largest_carveable() / free

    def best_relocation(self, app_id: str) -> Optional[int]:
        """Where compaction would move ``app_id``: the lowest aligned
        base the partition would land on if its own region were free,
        or ``None`` when no strictly lower placement exists.

        Non-mutating: builds a hypothetical gap view with the tenant's
        region merged in and runs the same first-fit predicate the real
        carve uses, so the planned base is exactly where
        ``create_partition`` will place the tenant after an
        evacuate/restore cycle.
        """
        partition = self.partition(app_id)
        merged: list[_Gap] = []
        own = _Gap(partition.base, partition.size)
        inserted = False
        for gap in self._gaps:
            if not inserted and own.start < gap.start:
                merged.append(_Gap(own.start, own.size))
                inserted = True
            merged.append(_Gap(gap.start, gap.size))
        if not inserted:
            merged.append(_Gap(own.start, own.size))
        coalesced: list[_Gap] = []
        for gap in merged:
            if coalesced and \
                    coalesced[-1].start + coalesced[-1].size == gap.start:
                coalesced[-1].size += gap.size
            else:
                coalesced.append(gap)
        fit = self._find_fit(partition.size, coalesced)
        if fit is None:
            return None
        _, aligned = fit
        if aligned >= partition.base:
            return None
        return aligned

    def _take_exact(self, start: int, size: int) -> bool:
        """Claim exactly [start, start+size) from the gap list.

        The gap list is start-sorted (the :meth:`_insert_gap`
        invariant), so only one gap can possibly contain ``start``: the
        rightmost gap whose start is <= it — a bisect probe, the same
        bound as insertion, instead of the previous linear scan (which
        made buddy-growth churn over a fragmented list quadratic; the
        micro-bench in tests/core/test_guardian_allocator.py pins it).
        """
        gaps = self._gaps
        index = bisect.bisect_right(
            gaps, start, key=lambda entry: entry.start
        ) - 1
        if index < 0:
            return False
        gap = gaps[index]
        if not (gap.start <= start
                and start + size <= gap.start + gap.size):
            return False
        del gaps[index]
        if gap.start < start:
            self._insert_gap(_Gap(gap.start, start - gap.start))
        tail = gap.start + gap.size - (start + size)
        if tail:
            self._insert_gap(_Gap(start + size, tail))
        return True

    def release_partition(self, app_id: str, scrubber=None) -> None:
        """Return a tenant's partition to the free list.

        ``scrubber(base, size)``, when given, runs *before* the region
        becomes allocatable again — the quarantine path uses it to zero
        the evicted tenant's memory so no later partition can observe
        stale data. The scrub must precede the gap insertion: once the
        region is in the free list a concurrent create_partition could
        hand it out.
        """
        partition = self._partitions.pop(app_id, None)
        if partition is None:
            return
        self.bounds.remove(app_id)
        if scrubber is not None:
            scrubber(partition.base, partition.size)
        self._insert_gap(_Gap(partition.base, partition.size))

    def can_carve(self, max_bytes: int) -> bool:
        """True when a partition for ``max_bytes`` could be created now.

        A non-mutating twin of :meth:`create_partition`'s carving step;
        the cluster's placement scheduler uses it to test capacity fit
        without touching the gap list. Shares :meth:`_find_fit` with
        the mutating path so the two can never disagree.
        """
        if max_bytes <= 0:
            return False
        size = (
            masks.next_power_of_two(max_bytes)
            if self.require_power_of_two
            else max_bytes
        )
        return self._find_fit(size) is not None

    def partition(self, app_id: str) -> Partition:
        try:
            return self._partitions[app_id]
        except KeyError:
            raise PartitionError(
                f"app {app_id!r} has no partition"
            ) from None

    def partitions(self) -> list[Partition]:
        return list(self._partitions.values())

    @property
    def bytes_partitioned(self) -> int:
        return sum(p.size for p in self._partitions.values())

    @property
    def bytes_unpartitioned(self) -> int:
        return sum(gap.size for gap in self._gaps)

    # -- tenant-facing allocation --------------------------------------------------

    def malloc(self, app_id: str, size: int) -> int:
        """Serve a tenant's cudaMalloc from its own partition."""
        return self.partition(app_id).malloc(size)

    def free(self, app_id: str, address: int) -> None:
        """Serve a tenant's cudaFree (ownership-checked)."""
        partition = self.partition(app_id)
        if not partition.record.contains(address):
            raise AllocationError(
                f"tenant {app_id!r} freeing 0x{address:x} outside its "
                f"partition"
            )
        partition.free(address)

    # -- size-aligned carving ---------------------------------------------------------

    def _alignment_for(self, size: int) -> int:
        """The placement alignment a ``size``-byte partition needs:
        its own size for the bitwise fence, a bounded power of two
        otherwise (arbitrary-size modes still like aligned bases)."""
        if self.require_power_of_two:
            return size
        return masks.next_power_of_two(min(size, 1 << 20))

    def _find_fit(self, size: int,
                  gaps: Optional[list[_Gap]] = None
                  ) -> Optional[tuple[int, int]]:
        """First aligned fit for ``size`` bytes: ``(gap index, aligned
        start)``, or ``None`` when no gap can hold it.

        The one fit predicate shared by :meth:`can_carve` (non-mutating
        probe), :meth:`_take_aligned` (the mutating carve), the elastic
        engine's fragmentation score (:meth:`largest_carveable`) and
        its relocation planner (:meth:`best_relocation`, which passes
        its own hypothetical ``gaps`` view).
        """
        align = self._alignment_for(size)
        for index, gap in enumerate(self._gaps if gaps is None else gaps):
            aligned = -(-gap.start // align) * align
            if gap.size - (aligned - gap.start) >= size:
                return index, aligned
        return None

    def _take_aligned(self, size: int) -> int:
        """First-fit over the gap list, honouring size-alignment.

        Alignment waste before the chosen block stays in the gap list
        and remains usable by smaller partitions.
        """
        fit = self._find_fit(size)
        if fit is None:
            raise PartitionError(
                f"cannot carve a {size}-byte aligned partition "
                f"({self.bytes_unpartitioned} bytes unpartitioned, "
                f"fragmented over {len(self._gaps)} gaps)"
            )
        index, aligned = fit
        gap = self._gaps[index]
        waste = aligned - gap.start
        remainder_start = aligned + size
        remainder_size = gap.start + gap.size - remainder_start
        del self._gaps[index]
        if waste:
            self._insert_gap(_Gap(gap.start, waste))
        if remainder_size:
            self._insert_gap(_Gap(remainder_start, remainder_size))
        return aligned

    def _insert_gap(self, gap: _Gap) -> None:
        """Insert into the start-sorted gap list.

        The list is kept sorted at all times, so insertion is a bisect
        probe and coalescing only ever needs to look at the two
        immediate neighbours — freed regions are disjoint, so no other
        gap can become adjacent. (The previous linear position scan
        plus repeated whole-list merge passes made a 1k malloc/free
        churn quadratic; the micro-bench in
        tests/core/test_guardian_allocator.py pins the new bound.)
        """
        gaps = self._gaps
        position = bisect.bisect_left(
            gaps, gap.start, key=lambda entry: entry.start
        )
        previous = gaps[position - 1] if position else None
        if previous is not None \
                and previous.start + previous.size == gap.start:
            previous.size += gap.size
            merged, index = previous, position - 1
        else:
            gaps.insert(position, gap)
            merged, index = gap, position
        if index + 1 < len(gaps):
            following = gaps[index + 1]
            if merged.start + merged.size == following.start:
                merged.size += following.size
                del gaps[index + 1]
