"""The Guardian client library — the paper's preloaded ``lgSafe``.

This is the LD_PRELOAD shim (§4.1): it implements the same driver-level
interface the CUDA runtime and the accelerated libraries bind
(:class:`repro.runtime.backend.GpuBackend`), but every operation is
forwarded over IPC to the GuardianServer. Because interposition happens
at the runtime/driver *library* level — not at the accelerated-library
level — the **implicit** CUDA calls made inside closed-source library
functions are intercepted too, which is precisely what distinguishes
Guardian from prior API-remoting systems (Fig. 4).

The shim also carries Guardian's minimal ``cudaGetExportTable``
implementation: the hidden function tables are rebuilt locally, bound
to the shim itself, so the hidden functions that do touch the GPU also
route through the server.

Use :func:`preload_guardian` to install a client into a process's
dynamic loader *before* the application starts — the same ordering
constraint real LD_PRELOAD has.
"""

from __future__ import annotations

from typing import Optional

from repro.core.ipc import IPCChannel, IPCCostModel
from repro.core.server import GuardianServer
from repro.driver.fatbin import FatBinary
from repro.errors import ClientCrashed
from repro.faults.plan import FaultKind, FaultPlan, Site
from repro.runtime.backend import BackendProfile, GpuBackend
from repro.runtime.interpose import LIBCUDA, DynamicLoader

#: Cycles the shim itself burns per intercepted call (PLT indirection,
#: argument repacking) — on top of the IPC transport.
INTERCEPT_CYCLES = 120


class GuardianClient(GpuBackend):
    """One tenant's view of the GPU, remoted through the server."""

    def __init__(
        self,
        server: GuardianServer,
        app_id: str,
        max_bytes: int,
        ipc_costs: Optional[IPCCostModel] = None,
        batching: Optional[bool] = None,
        max_batch: Optional[int] = None,
        queue_limit: Optional[int] = None,
        shed_overflow: Optional[bool] = None,
        fault_plan: Optional[FaultPlan] = None,
        attach: bool = True,
    ):
        self.app_id = app_id
        # Client-side fault injection: the only fault that fires here
        # is a crash of the client process itself — everything else
        # happens on the far side of the message queue.
        self._faults = fault_plan
        self.crashed = False
        # Batching defaults come from the server's hot-path config, so
        # enabling it in one place configures every attaching tenant;
        # explicit arguments override per client.
        if batching is None:
            batching = server.config.enable_ipc_batching
        if max_batch is None:
            max_batch = server.config.ipc_max_batch
        if queue_limit is None:
            queue_limit = server.config.ipc_queue_limit
        if shed_overflow is None:
            shed_overflow = server.config.ipc_shed_overflow
        self.channel = IPCChannel(server, app_id, costs=ipc_costs,
                                  batching=batching, max_batch=max_batch,
                                  queue_limit=queue_limit,
                                  shed_overflow=shed_overflow)
        self.profile = BackendProfile()
        self._spec = None
        self._export_tables = None
        # Attach declares the tenant's maximum memory requirement —
        # Guardian's static-partitioning contract (§4.2.1). A rebind
        # after live migration skips it: the target server already
        # adopted the tenant via restore_tenant.
        if attach:
            self._call("attach", max_bytes)

    # -- plumbing -----------------------------------------------------------------

    @property
    def telemetry(self):
        """The server's telemetry spine (None with the knob off)."""
        return self.channel.telemetry

    @property
    def trace_engine(self):
        """The server's trace-specialization engine (None with
        ``enable_trace_specialization`` off). Exposed for tests and
        metrics; the channel already consults it directly to marshal
        trace-matching calls at the discounted rate."""
        return self.channel._trace_engine

    def _call(self, method: str, *args, payload_bytes: int = 0,
              sync: bool = True):
        if self.crashed:
            raise ClientCrashed(self.app_id, method)
        if self._faults is not None:
            fired = self._faults.fire(Site.CLIENT, self.app_id, method)
            if fired is not None and fired.kind is FaultKind.CLIENT_CRASH:
                # The process dies before the message leaves it: any
                # batch queued in the channel is stranded (never
                # flushed), exactly the state the server-side reaper
                # has to clean up after.
                self.crashed = True
                if self.telemetry is not None:
                    self.telemetry.client_crashes.inc(
                        tenant=self.app_id, method=method
                    )
                raise ClientCrashed(self.app_id, method)
        self.profile.charge(method, INTERCEPT_CYCLES)
        before = self.channel.stats.client_cycles
        result = self.channel.call(
            method, *args, payload_bytes=payload_bytes, sync=sync
        )
        self.profile.cycles += (
            self.channel.stats.client_cycles - before
        )
        return result

    def close(self) -> None:
        """Detach from the server and release the partition.

        A crashed client cannot say goodbye: its pending batch is
        discarded (never delivered) and the server-side reaper — not
        this method — reclaims the partition.
        """
        if self.crashed:
            self.channel.abort()
            return
        self._call("detach")
        self.channel.close()

    def grow_partition(self, new_max_bytes: int) -> int:
        """Request in-place partition growth; returns the new size.

        All existing device pointers remain valid (the base address is
        unchanged; only the fence mask widens).
        """
        return self._call("grow_partition", new_max_bytes)

    def shrink_partition(self) -> int:
        """Request an opportunistic in-place shrink (elastic engine,
        DESIGN.md §14); returns the new — possibly unchanged — size.

        All existing device pointers remain valid (the base address is
        unchanged; only the fence mask narrows). Requires
        ``ServerConfig.enable_shrink`` on the server.
        """
        return self._call("shrink_partition")

    def flush(self) -> int:
        """Deliver any batched asynchronous calls now; returns how many
        were delivered. A no-op without batching — callers that want an
        explicit submission point (benchmark harnesses, checkpointing)
        don't need to know whether the channel batches."""
        if self.crashed:
            raise ClientCrashed(self.app_id, "flush")
        return self.channel.flush()

    # -- GpuBackend interface ------------------------------------------------------

    def malloc(self, size: int) -> int:
        return self._call("malloc", size)

    def free(self, address: int) -> None:
        self._call("free", address)

    def memcpy_h2d(self, dst: int, data: bytes, stream_id: int = 0) -> None:
        # Async submission: the copy is staged into the shared segment
        # and the client continues.
        self._call("memcpy_h2d", dst, data, stream_id,
                   payload_bytes=len(data), sync=False)

    def memcpy_d2h(self, src: int, size: int, stream_id: int = 0) -> bytes:
        return self._call("memcpy_d2h", src, size, stream_id,
                          payload_bytes=size)

    def memcpy_d2d(self, dst: int, src: int, size: int,
                   stream_id: int = 0) -> None:
        self._call("memcpy_d2d", dst, src, size, stream_id, sync=False)

    def memset(self, dst: int, value: int, size: int,
               stream_id: int = 0) -> None:
        self._call("memset", dst, value, size, stream_id, sync=False)

    def register_fatbin(self, fatbin: FatBinary) -> dict[str, int]:
        payload = sum(len(entry.payload) for entry in fatbin.entries)
        return self._call("register_fatbin", fatbin, payload_bytes=payload)

    def load_module_ptx(self, ptx_text: str) -> dict[str, int]:
        return self._call("load_module_ptx", ptx_text,
                          payload_bytes=len(ptx_text))

    def launch_kernel(self, handle, grid, block, params,
                      stream_id: int = 0) -> None:
        # Kernel launches are asynchronous (~8 bytes per argument
        # cross the shared segment); the server's lookup + augment +
        # syscall cycles land on the server's busy time.
        self._call("launch_kernel", handle, grid, block, list(params),
                   stream_id, payload_bytes=8 * len(params), sync=False)

    def create_stream(self) -> int:
        return self._call("create_stream")

    def synchronize(self) -> None:
        self._call("synchronize")

    def get_export_table(self, table_uuid: str) -> dict:
        """Guardian's minimal export-table implementation (§4.1)."""
        if self._export_tables is None:
            from repro.runtime.export_table import build_export_tables

            self._export_tables = build_export_tables(self)
        table = self._export_tables.get(table_uuid)
        if table is None:
            from repro.errors import GuardianError

            raise GuardianError(
                f"export table {table_uuid!r} is not in Guardian's "
                f"minimal implementation"
            )
        return table

    def device_spec(self):
        if self._spec is None:
            self._spec = self._call("get_spec")
        return self._spec


def preload_guardian(
    loader: DynamicLoader,
    server: GuardianServer,
    app_id: str,
    max_bytes: int,
    ipc_costs: Optional[IPCCostModel] = None,
    batching: Optional[bool] = None,
    max_batch: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> GuardianClient:
    """Install the Guardian shim into a process (the LD_PRELOAD moment).

    Must run before the application creates its CUDA runtime or loads
    any accelerated library — afterwards those components would already
    hold the real driver binding.
    """
    client = GuardianClient(server, app_id, max_bytes, ipc_costs=ipc_costs,
                            batching=batching, max_batch=max_batch,
                            fault_plan=fault_plan)
    loader.preload(LIBCUDA, client)
    return client
