"""Trace specialization: record, guard, and replay the steady state.

PR 1's launch fast path removed re-augmentation but still walks the
full interpreted path per call — dict lookups, per-op dispatch, one
``cuLaunchKernel`` syscall per launch, one bounds check per transfer.
A tenant whose steady state is a fixed loop (the common inference
serving shape) pays all of that for a call sequence the server has
already validated many times over.

This module compiles that steady state away, following the two-trace
design of lightning-thunder's jit (SNIPPETS.md snippet 3): a
**prologue of guards** plus a **computation trace**.

Recorder
    Between two ``synchronize`` calls the engine records the *static
    signature* of every asynchronous operation a tenant submits
    (launch / H2D / D2D / memset — payload bytes excluded, they are
    taken live at replay). When ``trace_hot_threshold`` consecutive
    sync-delimited blocks carry the identical signature sequence, the
    block is compiled into a :class:`SpecializedTrace`.

Compile-time validation
    Compilation re-resolves every kernel handle and re-checks every
    transfer range against the tenant's current bounds record. A block
    containing anything unresolvable or out of bounds is never
    specialized — the interpreted path keeps rejecting it, so the
    fence is not weakened by one cycle of charge.

Guard set (checked once per replayed block)
    - the bounds-table **epoch and record identity** (partition
      resize, release + re-register, migration all bump/replace it),
    - the **ServerConfig object identity** (live reconfiguration swaps
      the frozen config object),
    - the **stream object identity + tenant incarnation** (destroy /
      quarantine / re-attach produce a fresh stream and generation),
      and a healthy (fault-free) stream,
    - **module handle identity** per recorded launch (the resolved
      function pair must still be the one compiled against),
    - the recomputed native-vs-sandboxed launch decision.

Replay
    A guarded block replays with one fused submit — the CUDA-Graphs
    analogue: one ``trace_submit`` (a batched syscall) per block plus
    ``trace_replay_op`` per operation, instead of per-call dispatch,
    lookups and driver-issue work. Every driver call still executes
    (functional effects are bit-identical); only the modelled host
    cycles shrink. With ``enable_vectorized_bounds`` the block's
    pre-validated transfer ranges are range-checked **in one numpy
    shot** against the guarded bounds record at block entry; with the
    knob off each replayed transfer charges (and evaluates) the flat
    per-op check. Either way the containment predicate is evaluated —
    GPUArmor's lesson is that the check stays flat, not that it
    disappears.

Invalidation lattice
    Any guard failure, any mid-block signature deviation, a shorter or
    longer block than recorded, a partition grow (eager), a detach /
    quarantine / evacuate / migration (eager, via :meth:`forget`) —
    all drop the trace and fall back to the interpreted path
    bit-identically; recording then starts over. ``restore_tenant``
    and ``attach`` forget any state recorded under the app's previous
    life, so stale-epoch replay after a migration or re-attach is
    impossible by construction (the destination's engine has nothing
    to replay).

Everything here is opt-in (``ServerConfig.enable_trace_specialization``
off by default) and the engine charges exclusively through
``GuardianServer._charge``, so the cycle-accounting invariant — a
handler returns exactly the ``stats.cycles`` delta it caused — holds
on the replay path too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import BoundsViolation, ExecutionError, GuardianError
from repro.core.policy import FencingMode
from repro.telemetry import maybe_span

#: Methods the recorder traces (the asynchronous submission surface).
TRACEABLE_METHODS = frozenset(
    {"launch_kernel", "memcpy_h2d", "memcpy_d2d", "memset"}
)


def launch_signature(handle, grid, block, params) -> tuple:
    return ("launch", handle, tuple(grid), tuple(block), tuple(params))


def h2d_signature(dst: int, size: int) -> tuple:
    #: Payload bytes are deliberately not part of the signature — the
    #: destination and size are what the bounds check validated; the
    #: bytes are staged fresh at every replay.
    return ("h2d", dst, size)


def d2d_signature(dst: int, src: int, size: int) -> tuple:
    return ("d2d", dst, src, size)


def memset_signature(dst: int, value: int, size: int) -> tuple:
    return ("memset", dst, value, size)


def signature_of(method: str, args: tuple) -> Optional[tuple]:
    """The static signature of one traceable IPC call, or None.

    Shared by the server-side recorder and the client-side marshal
    shadow cursor (:class:`repro.core.ipc.IPCChannel`), so both ends
    agree on what "the same call" means. ``args`` is the IPC argument
    tuple (no app_id).
    """
    try:
        if method == "launch_kernel":
            return launch_signature(args[0], args[1], args[2], args[3])
        if method == "memcpy_h2d":
            return h2d_signature(args[0], len(args[1]))
        if method == "memcpy_d2d":
            return d2d_signature(args[0], args[1], args[2])
        if method == "memset":
            return memset_signature(args[0], args[1], args[2])
    except (TypeError, IndexError):
        return None
    return None


@dataclass(frozen=True)
class _OpPlan:
    """One pre-validated operation of a compiled trace.

    ``kind`` mirrors the signature head; launches carry the resolved
    function and the fully-augmented parameter array (fencing extras
    appended at compile time), transfers carry their checked range(s).
    """

    sig: tuple
    kind: str
    #: launch: resolved CUfunction + prebuilt params.
    function: object = None
    launch_params: tuple = ()
    grid: tuple = ()
    block: tuple = ()
    handle: int = 0
    #: transfers: the ranges the interpreted path would check.
    ranges: tuple = ()
    dst: int = 0
    src: int = 0
    size: int = 0
    value: int = 0


@dataclass
class SpecializedTrace:
    """A compiled steady-state block: guard set + replay plans."""

    app_id: str
    signature: tuple
    ops: tuple
    #: Guard set (see module docstring).
    epoch: int
    record: object
    config: object
    stream: object
    incarnation: int
    use_native: bool
    #: handle -> (sandboxed, native) pair identity per recorded launch.
    pairs: tuple
    #: Every transfer range in the block, flattened in op order.
    ranges: tuple
    #: numpy views of ``ranges`` for the vectorized prologue check.
    starts: object = None
    sizes: object = None


@dataclass
class _TenantTraceState:
    """Per-tenant recorder / replay cursor."""

    recording: list = field(default_factory=list)
    last_block: Optional[tuple] = None
    stable_repeats: int = 0
    trace: Optional[SpecializedTrace] = None
    cursor: int = 0


class TraceEngine:
    """The server's trace-specialization layer.

    Owned by :class:`repro.core.server.GuardianServer` when
    ``enable_trace_specialization`` is on; ``None`` otherwise, which
    keeps the stock server bit-identical to the paper's numbers. The
    IPC channel resolves the engine through the server (or through a
    supervising wrapper's attribute fall-through) to drive its
    client-side marshal shadow cursor.
    """

    def __init__(self, server):
        self.server = server
        self._states: dict[str, _TenantTraceState] = {}

    # -- recorder + replay entry (called from the traced handlers) ----------

    def offer(self, app_id: str, sig: tuple, payload=None):
        """Offer one asynchronous call to the engine.

        Returns ``(result, charged_cycles)`` when the call was replayed
        from a specialized trace, or ``None`` when the caller must run
        the interpreted path (the call was recorded instead).
        """
        server = self.server
        if app_id not in server._tenants:
            # Unknown tenants never record or replay; the interpreted
            # path raises its usual error without touching engine state.
            return None
        state = self._states.get(app_id)
        if state is None:
            state = self._states[app_id] = _TenantTraceState()
        server.stats.trace_eligible_ops += 1
        trace = state.trace
        if trace is not None:
            if state.cursor == 0:
                # Block entry. Guards and the first-op signature are
                # pure predicates, checked *before* any fused charge —
                # a failed prologue costs nothing here and the
                # interpreted path charges itself normally.
                plan = trace.ops[0] if trace.ops else None
                tenant = server._tenants.get(app_id)
                if tenant is None or not self._guards_hold(tenant, trace):
                    server.stats.trace_guard_failures += 1
                    self._drop(state)
                    state.recording.append(sig)
                    return None
                if plan is None or plan.sig != sig:
                    self._drop(state)
                    state.recording.append(sig)
                    return None
                entry_cycles = self._enter_block(app_id, trace)
                state.cursor = 1
                result, cycles = self._replay(app_id, plan, payload)
                return result, entry_cycles + cycles
            plan = (
                trace.ops[state.cursor]
                if state.cursor < len(trace.ops) else None
            )
            if plan is None or plan.sig != sig:
                # Mid-block deviation: the steady state changed shape.
                # Nothing already replayed was skipped unsafely — every
                # replayed op matched its pre-validated plan — but the
                # trace no longer describes the workload.
                self._drop(state)
                state.recording.append(sig)
                return None
            state.cursor += 1
            return self._replay(app_id, plan, payload)
        # Recording mode.
        state.recording.append(sig)
        return None

    def block_boundary(self, app_id: str) -> None:
        """A ``synchronize`` closed the current block.

        Replay mode: a fully-replayed block counts as one trace replay
        and rewinds the cursor; a partially-replayed one means the
        block got *shorter* than recorded — a deviation, the trace is
        dropped. Recording mode: a block identical to the previous one
        moves the stability counter; at ``trace_hot_threshold``
        consecutive identical blocks the block compiles.
        """
        server = self.server
        state = self._states.get(app_id)
        if state is None:
            return
        trace = state.trace
        if trace is not None:
            if state.cursor == len(trace.ops) and trace.ops:
                server.stats.trace_replays += 1
                state.cursor = 0
            elif state.cursor > 0:
                self._drop(state)
            state.recording.clear()
            return
        block = tuple(state.recording)
        state.recording.clear()
        if not block or len(block) > server.config.trace_max_ops:
            state.last_block = None
            state.stable_repeats = 0
            return
        if block == state.last_block:
            state.stable_repeats += 1
            if state.stable_repeats + 1 >= server.config.trace_hot_threshold:
                trace = self._compile(app_id, block)
                if trace is not None:
                    state.trace = trace
                    state.cursor = 0
                    server.stats.traces_compiled += 1
                state.last_block = None
                state.stable_repeats = 0
        else:
            state.last_block = block
            state.stable_repeats = 0

    # -- invalidation lattice ----------------------------------------------

    def invalidate(self, app_id: str) -> None:
        """Eagerly drop ``app_id``'s trace and recording state (epoch
        bump: partition grow/release re-registers the bounds record, so
        anything recorded under the old record is history). The guard
        set would catch the stale epoch at the next block entry anyway;
        eager invalidation makes stale replay impossible even for a
        mutation landing *mid-block*."""
        state = self._states.get(app_id)
        if state is None:
            return
        self._drop(state)
        state.recording.clear()
        state.last_block = None
        state.stable_repeats = 0

    def forget(self, app_id: str) -> None:
        """Remove every trace of ``app_id`` — detach, quarantine,
        evacuate, restore (migration landing) and re-attach all call
        this, so a tenant's next life starts cold: no replay, no
        half-recorded block, no stability credit carried across an
        incarnation or across nodes."""
        state = self._states.pop(app_id, None)
        if state is not None and state.trace is not None:
            self.server.stats.trace_invalidations += 1

    def _drop(self, state: _TenantTraceState) -> None:
        if state.trace is not None:
            self.server.stats.trace_invalidations += 1
        state.trace = None
        state.cursor = 0

    # -- client-side view ---------------------------------------------------

    def active_signature(self, app_id: str) -> Optional[tuple]:
        """The compiled block's signature sequence, for the IPC
        channel's marshal shadow cursor; None while interpreting."""
        state = self._states.get(app_id)
        if state is None or state.trace is None:
            return None
        return state.trace.signature

    def has_trace(self, app_id: str) -> bool:
        return self.active_signature(app_id) is not None

    # -- compile ------------------------------------------------------------

    def _compile(self, app_id: str,
                 block: tuple) -> Optional[SpecializedTrace]:
        """Validate and lower one stable block; None if anything in it
        cannot be pre-validated (unknown handle, out-of-bounds range,
        unhashable shape) — those blocks stay interpreted forever."""
        server = self.server
        tenant = server._tenants.get(app_id)
        if tenant is None:
            return None
        try:
            record = server.allocator.bounds.read(app_id)
        except Exception:
            return None
        epoch = server.allocator.bounds.epoch(app_id)
        use_native = self._use_native(tenant)
        extras = (
            [] if use_native else record.extra_param_values(server.mode)
        )
        ops: list[_OpPlan] = []
        pairs: list[tuple] = []
        ranges: list[tuple] = []
        for sig in block:
            kind = sig[0]
            if kind == "launch":
                _, handle, grid, kblock, params = sig
                pair = tenant.functions.get(handle)
                if pair is None:
                    return None
                sandboxed, native = pair
                ops.append(_OpPlan(
                    sig=sig, kind="launch",
                    function=native if use_native else sandboxed,
                    launch_params=tuple(list(params) + list(extras)),
                    grid=grid, block=kblock, handle=handle,
                ))
                pairs.append((handle, pair))
            elif kind == "h2d":
                _, dst, size = sig
                if not record.contains(dst, size):
                    return None
                ops.append(_OpPlan(sig=sig, kind="h2d", dst=dst,
                                   size=size, ranges=((dst, size),)))
                ranges.append((dst, size))
            elif kind == "d2d":
                _, dst, src, size = sig
                if not (record.contains(src, size)
                        and record.contains(dst, size)):
                    return None
                ops.append(_OpPlan(
                    sig=sig, kind="d2d", dst=dst, src=src, size=size,
                    ranges=((src, size), (dst, size)),
                ))
                ranges.extend(((src, size), (dst, size)))
            elif kind == "memset":
                _, dst, value, size = sig
                if not record.contains(dst, size):
                    return None
                ops.append(_OpPlan(sig=sig, kind="memset", dst=dst,
                                   value=value, size=size,
                                   ranges=((dst, size),)))
                ranges.append((dst, size))
            else:
                return None
        trace = SpecializedTrace(
            app_id=app_id,
            signature=block,
            ops=tuple(ops),
            epoch=epoch,
            record=record,
            config=server.config,
            stream=tenant.stream,
            incarnation=tenant.incarnation,
            use_native=use_native,
            pairs=tuple(pairs),
            ranges=tuple(ranges),
        )
        if server.config.enable_vectorized_bounds and ranges:
            trace.starts = np.fromiter(
                (start for start, _ in ranges), dtype=np.int64,
                count=len(ranges),
            )
            trace.sizes = np.fromiter(
                (size for _, size in ranges), dtype=np.int64,
                count=len(ranges),
            )
        return trace

    def _use_native(self, tenant) -> bool:
        server = self.server
        return (
            server.standalone_native and server.tenant_count == 1
        ) or server.mode is FencingMode.NONE

    # -- guards + replay ----------------------------------------------------

    def _guards_hold(self, tenant, trace: SpecializedTrace) -> bool:
        """The prologue guard set. Pure predicates — the modelled cost
        is ``trace_guard``, charged by :meth:`_enter_block` only when
        the guards hold (a failed guard falls back before any fused
        charge; the interpreted path then charges itself normally)."""
        server = self.server
        if server.config is not trace.config:
            return False
        if tenant.incarnation != trace.incarnation:
            return False
        if tenant.stream is not trace.stream:
            return False
        if tenant.stream.fault is not None:
            return False
        bounds = server.allocator.bounds
        if bounds.epoch(trace.app_id) != trace.epoch:
            return False
        try:
            if bounds.read(trace.app_id) is not trace.record:
                return False
        except Exception:
            return False
        if self._use_native(tenant) != trace.use_native:
            return False
        for handle, pair in trace.pairs:
            if tenant.functions.get(handle) is not pair:
                return False
        return True

    def _enter_block(self, app_id: str, trace: SpecializedTrace) -> float:
        """Charge the fused block's prologue: the guard evaluation plus
        one batched submit (the CUDA-Graphs-style single syscall that
        replaces per-launch driver issuance), plus — with vectorized
        bounds on — the one-shot numpy range check of every transfer
        range the block carries."""
        server = self.server
        costs = server.costs
        cycles = float(costs.trace_guard + costs.trace_submit)
        vectorized = (
            server.config.enable_vectorized_bounds and trace.ranges
        )
        if vectorized:
            cycles += (
                costs.vector_check_base
                + costs.vector_check_per_range * len(trace.ranges)
            )
        with maybe_span(server.telemetry, "trace_replay", "launch",
                        app_id, ops=len(trace.ops),
                        ranges=len(trace.ranges)):
            server._charge(cycles)
        if vectorized:
            record = trace.record
            server.stats.transfers_checked += len(trace.ranges)
            server.stats.trace_ranges_prechecked += len(trace.ranges)
            if not record.contains_batch(trace.starts, trace.sizes):
                # Unreachable while the record-identity guard holds
                # (compile pre-validated these exact ranges against
                # this exact record), but the fence stays closed even
                # if it somehow doesn't.
                server.stats.transfers_rejected += 1
                state = self._states.get(app_id)
                if state is not None:
                    self._drop(state)
                start, size = trace.ranges[0]
                raise BoundsViolation(app_id, start, size,
                                      detail="trace prologue")
        return cycles

    def _replay(self, app_id: str, plan: _OpPlan, payload):
        """Execute one pre-validated op with fused-replay charging.

        The driver call is the same one the interpreted path issues —
        same function, same bytes, same stream — so functional results
        are bit-identical; the per-op model cost is ``trace_replay_op``
        (command-buffer cursor bump + payload pointer patch) instead of
        lookup/augment/issue, plus the flat per-range check when the
        vectorized prologue didn't already cover it.
        """
        server = self.server
        costs = server.costs
        tenant = server._tenants[app_id]
        stats = server.stats
        cycles = float(costs.trace_replay_op)
        if plan.ranges and not server.config.enable_vectorized_bounds:
            record = server.allocator.bounds.read(app_id)
            for start, size in plan.ranges:
                stats.transfers_checked += 1
                cycles += costs.transfer_check
                if not record.contains(start, size):
                    stats.transfers_rejected += 1
                    server._charge(cycles)
                    state = self._states.get(app_id)
                    if state is not None:
                        self._drop(state)
                    raise BoundsViolation(app_id, start, size,
                                          detail="trace replay")
        server._charge(cycles)
        stats.trace_replay_ops += 1
        if plan.kind == "launch":
            stats.launches += 1
            if self._use_native(tenant):
                stats.native_launches += 1
            try:
                server.driver.cuLaunchKernel(
                    plan.function, plan.grid, plan.block,
                    list(plan.launch_params), tenant.stream,
                    tag=app_id, release_cycles=server._release(),
                )
            except ExecutionError as failure:
                stats.kernels_killed += 1
                raise GuardianError(
                    f"tenant {app_id!r}: kernel terminated by the "
                    f"server ({failure})"
                ) from failure
            return None, cycles
        if plan.kind == "h2d":
            server.driver.cuMemcpyHtoD(
                tenant.stream, plan.dst, payload, tag=app_id,
                release_cycles=server._release(),
            )
            return None, cycles
        if plan.kind == "d2d":
            server.driver.cuMemcpyDtoD(
                tenant.stream, plan.dst, plan.src, plan.size,
                tag=app_id, release_cycles=server._release(),
            )
            return None, cycles
        server.driver.cuMemsetD8(
            tenant.stream, plan.dst, plan.value, plan.size,
            tag=app_id, release_cycles=server._release(),
        )
        return None, cycles
