"""The offline PTX patcher (paper §4.3, Listing 2).

Takes kernels exactly as ``cuobjdump`` extracts them from closed-source
binaries — PTX text, no source — and rewrites every off-chip load,
store and atomic so the kernel cannot touch memory outside its tenant's
partition. ``.func`` device functions are instrumented identically to
``.entry`` kernels.

Per :class:`~repro.core.policy.FencingMode`:

``BITWISE``
    Appends two parameters (partition base, mask) and, before every
    access, two bitwise instructions (paper Listing 2)::

        and.b64  %addr, %addr, %guardian_mask
        or.b64   %addr, %addr, %guardian_base

    For the register-direct addressing mode the masking is applied
    *in place* to the address register, exactly as in Listing 2; the
    ``address+offset`` mode first materialises the effective address in
    a temporary register (the paper's second addressing mode, §4.3).

``MODULO``
    Appends (base, size, magic = floor(2^64/size)) and computes
    ``base + ((addr - base) mod size)`` inline — multiply-by-reciprocal
    plus one conditional correction, avoiding the CUDA 64-bit modulo
    function call (§4.4).

``CHECKING``
    Appends (base, end) and emits conditional lower/upper bounds checks
    before each access; a violating thread branches to an injected
    return label (the "detect and return" debug mode, §4.4). Two
    ``setp`` + guarded ``bra`` pairs cost the paper's ~80 cycles.

Indirect branches (``brx.idx``) are additionally sandboxed by wrapping
the index modulo the target-table length (§4.3, threat model §3).

Instructions with a predicate guard are first normalised into an
explicit branch-around block so the injected fencing code never mutates
state of a predicated-off access.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import PatcherError, ReproError
from repro.core.policy import FencingMode
from repro.ptx import isa
from repro.ptx.ast import (
    Guard,
    Immediate,
    Instruction,
    Kernel,
    Label,
    MemRef,
    Module,
    Param,
    RegDecl,
    Register,
    Symbol,
    TargetList,
)
from repro.ptx.parser import parse_module
from repro.ptx.emitter import emit_module

#: Register names the patcher introduces (its private bank prefixes).
_B64_PREFIX = "%grd"
_B32_PREFIX = "%grdi"
_PRED_PREFIX = "%grdp"

#: State spaces whose accesses must be fenced: everything reachable by
#: co-running kernels (off-chip, shared address space — paper §2.3).
#: ``param`` is the read-only launch buffer, ``shared`` is per-block
#: on-chip, ``local`` is per-thread — none are cross-tenant reachable.
_FENCED_SPACES = frozenset({"global", "generic", "const", None})

_OOB_LABEL = "$GUARDIAN_OOB"


@dataclass
class PatchReport:
    """What the patcher did to one kernel (drives Table 3 / Fig. 10)."""

    kernel: str
    mode: FencingMode
    is_entry: bool = True
    loads_instrumented: int = 0
    stores_instrumented: int = 0
    atomics_instrumented: int = 0
    direct_sites: int = 0
    offset_sites: int = 0
    symbol_sites: int = 0
    brx_sites: int = 0
    extra_instructions: int = 0
    extra_params: int = 0
    extra_param_bytes: int = 0

    @property
    def sites(self) -> int:
        return (
            self.loads_instrumented
            + self.stores_instrumented
            + self.atomics_instrumented
        )


class PatchCache:
    """Content-addressed cache of patched PTX, shared across tenants.

    Closed-source library PTX (cuBLAS, cuDNN, ...) is byte-identical
    across every tenant that deploys the same library version, so the
    offline parse+patch pass only needs to run once per distinct text
    and fencing mode. Entries are keyed by
    ``(sha256(ptx_text), FencingMode)`` — content-addressed, so two
    tenants registering the same library through *different*
    ``FatBinary`` objects still share one entry — and bounded by an LRU
    policy.

    The cached value is ``(patched_text, reports)``. Report objects are
    shared by reference between tenants; they are never mutated after
    patching, so sharing is safe (and is exactly what makes the cache a
    win: per-tenant state stays limited to the partition-bound launch
    parameters, which are *not* baked into the patched text).
    """

    def __init__(self, capacity: int = 64):
        if capacity < 0:
            raise PatcherError(f"bad patch-cache capacity {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[
            tuple[str, FencingMode], tuple[str, list[PatchReport]]
        ] = OrderedDict()

    @staticmethod
    def key_for(ptx_text: str, mode: FencingMode
                ) -> tuple[str, FencingMode]:
        digest = hashlib.sha256(ptx_text.encode("utf-8")).hexdigest()
        return (digest, mode)

    def get(self, ptx_text: str, mode: FencingMode
            ) -> tuple[str, list[PatchReport]] | None:
        """Probe the cache; refreshes LRU recency on a hit."""
        key = self.key_for(ptx_text, mode)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, ptx_text: str, mode: FencingMode,
            patched_text: str, reports: list[PatchReport]) -> int:
        """Insert an entry; returns how many entries were evicted."""
        if self.capacity == 0:
            return 0
        key = self.key_for(ptx_text, mode)
        self._entries[key] = (patched_text, reports)
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            evicted += 1
        return evicted

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, FencingMode]) -> bool:
        return key in self._entries


class ThreadSafePatchCache(PatchCache):
    """A :class:`PatchCache` safe to share across patcher threads.

    Every operation (probe, insert, len, contains) holds one mutex, so
    the LRU bookkeeping — ``move_to_end`` + eviction — can never be
    interleaved by two workers of the server's patch pool. The values
    themselves stay immutable, so hits may still be returned by
    reference without copying.
    """

    def __init__(self, capacity: int = 64):
        super().__init__(capacity)
        self._mutex = threading.RLock()

    def get(self, ptx_text: str, mode: FencingMode
            ) -> tuple[str, list[PatchReport]] | None:
        with self._mutex:
            return super().get(ptx_text, mode)

    def put(self, ptx_text: str, mode: FencingMode,
            patched_text: str, reports: list[PatchReport]) -> int:
        with self._mutex:
            return super().put(ptx_text, mode, patched_text, reports)

    def __len__(self) -> int:
        with self._mutex:
            return super().__len__()

    def __contains__(self, key: tuple[str, FencingMode]) -> bool:
        with self._mutex:
            return super().__contains__(key)


#: Bump when the on-disk entry layout (or anything baked into a cached
#: patched text, e.g. the patcher's instrumentation sequences) changes
#: incompatibly. The version is part of every entry's file name, so old
#: and new processes never read each other's entries — stale versions
#: are simply never probed again and can be garbage-collected offline.
DISK_FORMAT_VERSION = 1


class DiskPatchCache(ThreadSafePatchCache):
    """A patch cache persisted to a content-addressed on-disk store.

    The in-memory LRU (inherited) stays the first-level cache; misses
    fall through to ``directory``, where each entry lives in its own
    file named ``{sha256(text)}-{mode}-v{DISK_FORMAT_VERSION}.json``.
    Because the key is the *content* hash, entries written by one
    server process are valid for every other process (and node) that
    patches the same library text in the same fencing mode — cold-start
    patch cost amortizes across the fleet, not just across tenants.

    Durability rules:

    - **atomic writes** — entries are serialised to a temp file in the
      same directory and ``os.replace``d into place, so readers never
      observe a torn entry and concurrent writers of the same key
      settle on one complete file;
    - **versioned keys** — ``DISK_FORMAT_VERSION`` is part of the file
      name, so a format change is an automatic cold start rather than
      a parse error;
    - **corrupt entries are misses** — any unreadable/undecodable file
      is ignored (counted in ``disk_misses``); the patcher simply runs
      and the next ``put`` rewrites the entry.

    Thread safety comes from the inherited mutex: every probe/insert —
    including the disk round-trip — runs under it, which also keeps the
    ``disk_*`` counters exact for the server's stats diffs.
    """

    def __init__(self, directory: str, capacity: int = 64):
        super().__init__(capacity)
        self.directory = os.path.expanduser(directory)
        os.makedirs(self.directory, exist_ok=True)
        #: Probes answered from disk (after an in-memory miss).
        self.disk_hits = 0
        #: Probes that missed both tiers (or hit a corrupt file).
        self.disk_misses = 0
        #: Entries written (or rewritten) to disk.
        self.disk_writes = 0

    def _path_for(self, key: tuple[str, FencingMode]) -> str:
        digest, mode = key
        return os.path.join(
            self.directory,
            f"{digest}-{mode.value}-v{DISK_FORMAT_VERSION}.json",
        )

    # -- probe/insert -------------------------------------------------------

    def get(self, ptx_text: str, mode: FencingMode
            ) -> tuple[str, list[PatchReport]] | None:
        entry, _ = self.get_with_source(ptx_text, mode)
        return entry

    def get_with_source(self, ptx_text: str, mode: FencingMode
                        ) -> tuple[
                            tuple[str, list[PatchReport]] | None,
                            str | None,
                        ]:
        """Probe both tiers; returns ``(entry, "memory"|"disk"|None)``.

        A disk hit is promoted into the in-memory LRU so the next probe
        for the same content is a memory hit.
        """
        with self._mutex:
            entry = PatchCache.get(self, ptx_text, mode)
            if entry is not None:
                return entry, "memory"
            key = self.key_for(ptx_text, mode)
            entry = self._load(self._path_for(key), mode)
            if entry is None:
                self.disk_misses += 1
                return None, None
            self.disk_hits += 1
            PatchCache.put(self, ptx_text, mode, entry[0], entry[1])
            return entry, "disk"

    def put(self, ptx_text: str, mode: FencingMode,
            patched_text: str, reports: list[PatchReport]) -> int:
        with self._mutex:
            evicted = PatchCache.put(
                self, ptx_text, mode, patched_text, reports
            )
            key = self.key_for(ptx_text, mode)
            self._store(self._path_for(key), patched_text, reports)
            self.disk_writes += 1
            return evicted

    # -- serialisation ------------------------------------------------------

    def _store(self, path: str, patched_text: str,
               reports: list[PatchReport]) -> None:
        serialised = []
        for report in reports:
            record = dataclasses.asdict(report)
            record["mode"] = report.mode.value
            serialised.append(record)
        payload = json.dumps({
            "version": DISK_FORMAT_VERSION,
            "patched_text": patched_text,
            "reports": serialised,
        })
        handle, temp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(payload)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    @staticmethod
    def _load(path: str, mode: FencingMode
              ) -> tuple[str, list[PatchReport]] | None:
        try:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
            if payload.get("version") != DISK_FORMAT_VERSION:
                return None
            patched_text = payload["patched_text"]
            if not isinstance(patched_text, str):
                return None
            reports = []
            for record in payload["reports"]:
                record = dict(record)
                record["mode"] = FencingMode(record["mode"])
                reports.append(PatchReport(**record))
            return patched_text, reports
        except (OSError, ValueError, TypeError, KeyError):
            # Missing, torn, corrupt, or future-format file: a miss.
            return None


@dataclass(frozen=True)
class PatchOutcome:
    """One text's trip through the parallel patch front-end.

    ``source`` is one of ``"hit"`` (already in the in-memory cache),
    ``"disk"`` (missed memory but found in a :class:`DiskPatchCache`'s
    on-disk store — charged as a disk lookup, not a patch), ``"join"``
    (another worker was patching the same content hash; we waited on
    its result — no second patch ran, no second patch is charged) or
    ``"patched"`` (this call ran the patcher).
    """

    patched_text: str
    reports: list[PatchReport]
    source: str


class ParallelPatcher:
    """Thread-pooled, single-flight front-end over a :class:`PTXPatcher`.

    The patcher is pure CPU and the patch cache is content-addressed,
    which makes cold patches *mergeable*: two tenants deploying the
    same library concurrently need one parse+patch, not two. This
    class provides

    - **single-flight misses**: concurrent :meth:`patch` calls on the
      same ``sha256(text)`` collapse onto one in-flight patch; the
      losers block on a :class:`~concurrent.futures.Future` and report
      ``source="join"`` so the caller charges a probe, not a patch;
    - **a worker pool** (:meth:`patch_many`): distinct cold texts of
      one deployment are patched on up to ``workers`` threads.

    All cache traffic goes through the (thread-safe) cache the caller
    supplies; with ``cache=None`` the front-end degrades to plain
    patching (every call reports ``"patched"``).
    """

    def __init__(self, patcher: PTXPatcher,
                 cache: PatchCache | None = None,
                 workers: int = 1):
        if workers < 1:
            raise PatcherError(f"bad patch worker count {workers}")
        self.patcher = patcher
        self.cache = cache
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._mutex = threading.Lock()
        self._inflight: dict[tuple[str, FencingMode], Future] = {}
        #: How many parse+patch passes actually ran (the thread-safety
        #: tests pin this to 1 for N concurrent same-hash misses).
        self.patches_run = 0
        #: Cumulative LRU evictions caused by this front-end's inserts;
        #: the server diffs it around a batch to keep its stats exact.
        self.evictions = 0

    def patch(self, ptx_text: str) -> PatchOutcome:
        """Patch one text through the cache with single-flight misses."""
        if self.cache is None:
            patched_text, reports = self.patcher.patch_text(ptx_text)
            with self._mutex:
                self.patches_run += 1
            return PatchOutcome(patched_text, reports, "patched")
        key = PatchCache.key_for(ptx_text, self.patcher.mode)
        probe = getattr(self.cache, "get_with_source", None)
        with self._mutex:
            if probe is not None:
                cached, tier = probe(ptx_text, self.patcher.mode)
                if cached is not None:
                    source = "hit" if tier == "memory" else "disk"
                    return PatchOutcome(cached[0], cached[1], source)
            else:
                cached = self.cache.get(ptx_text, self.patcher.mode)
                if cached is not None:
                    return PatchOutcome(cached[0], cached[1], "hit")
            pending = self._inflight.get(key)
            if pending is None:
                pending = Future()
                self._inflight[key] = pending
                owner = True
            else:
                owner = False
        if not owner:
            patched_text, reports = pending.result()
            return PatchOutcome(patched_text, reports, "join")
        try:
            patched_text, reports = self.patcher.patch_text(ptx_text)
        except BaseException as failure:
            pending.set_exception(failure)
            with self._mutex:
                self._inflight.pop(key, None)
            raise
        evicted = self.cache.put(
            ptx_text, self.patcher.mode, patched_text, reports
        )
        with self._mutex:
            self.patches_run += 1
            self.evictions += evicted
            self._inflight.pop(key, None)
        pending.set_result((patched_text, reports))
        return PatchOutcome(patched_text, reports, "patched")

    def patch_many(self, ptx_texts: list[str]) -> list[PatchOutcome]:
        """Patch a batch of texts, fanning cold ones across the pool.

        Results come back in input order. Duplicate texts inside one
        batch resolve through the single-flight path: the first
        occurrence patches, the rest join.
        """
        if len(ptx_texts) <= 1 or self.workers == 1:
            return [self.patch(text) for text in ptx_texts]
        pool = self._ensure_pool()
        futures = [pool.submit(self.patch, text) for text in ptx_texts]
        return [future.result() for future in futures]

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="guardian-patch",
            )
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class PTXPatcher:
    """Sandboxes PTX kernels for one fencing mode."""

    def __init__(self, mode: FencingMode = FencingMode.BITWISE):
        if not isinstance(mode, FencingMode):
            raise PatcherError(f"bad fencing mode {mode!r}")
        self.mode = mode

    # -- public API --------------------------------------------------------------

    def patch_text(self, ptx_text: str) -> tuple[str, list[PatchReport]]:
        """Patch PTX text (the cuobjdump output) and re-emit text.

        The input is attacker-controlled (it came out of a tenant's
        binary), so *any* failure — including a parser or patcher bug
        tripped by truncated/garbage text — must surface as a
        :class:`ReproError` the server can reject cleanly, never as a
        raw ``IndexError``/``RecursionError`` that would take the
        trusted process down with it.
        """
        try:
            module, reports = self.patch_module(parse_module(ptx_text))
            return emit_module(module), reports
        except ReproError:
            raise
        except Exception as failure:  # noqa: BLE001 — containment boundary
            raise PatcherError(
                f"malformed PTX crashed the patcher "
                f"({type(failure).__name__}: {failure})"
            ) from failure

    def patch_module(self, module: Module
                     ) -> tuple[Module, list[PatchReport]]:
        """Patch every kernel and device function of a module."""
        patched = Module(
            version=module.version,
            target=module.target,
            address_size=module.address_size,
            globals=list(module.globals),
        )
        reports = []
        for kernel in module.kernels.values():
            new_kernel, report = self.patch_kernel(kernel)
            patched.add(new_kernel)
            reports.append(report)
        return patched, reports

    def patch_kernel(self, kernel: Kernel) -> tuple[Kernel, PatchReport]:
        """Sandbox one kernel; returns (patched kernel, report)."""
        report = PatchReport(kernel=kernel.name, mode=self.mode,
                             is_entry=kernel.is_entry)
        if self.mode is FencingMode.NONE:
            return kernel, report

        state = _PatchState(kernel, self.mode)
        body: list = []
        needs_oob_label = False

        for statement in _normalise_guards(kernel.body, state):
            if not isinstance(statement, Instruction):
                body.append(statement)
                continue
            if statement.base_op == "brx":
                body.extend(state.sandbox_brx(statement, report))
                continue
            if (
                statement.is_memory_access
                and statement.space in _FENCED_SPACES
            ):
                emitted, oob_used = state.sandbox_access(statement, report)
                body.extend(emitted)
                needs_oob_label = needs_oob_label or oob_used
                continue
            body.append(statement)

        if needs_oob_label:
            body.append(Label(_OOB_LABEL))
            body.append(Instruction(opcode="ret"))
            report.extra_instructions += 1

        prologue = state.prologue(report)
        params = list(kernel.params) + state.extra_params()
        report.extra_params = len(state.extra_params())
        report.extra_param_bytes = sum(
            param.width for param in state.extra_params()
        )
        patched = Kernel(
            name=kernel.name,
            params=params,
            body=prologue + body,
            is_entry=kernel.is_entry,
            visible=kernel.visible,
        )
        return patched, report


class _PatchState:
    """Per-kernel bookkeeping while patching."""

    def __init__(self, kernel: Kernel, mode: FencingMode):
        self.kernel = kernel
        self.mode = mode
        self._label_counter = 0
        # Which of the private registers the emitted code actually used.
        self._b64_used = 0
        self._b32_used = 0
        self._pred_used = 0
        self._existing_prefixes = {
            statement.prefix
            for statement in kernel.body
            if isinstance(statement, RegDecl)
        }
        for prefix in (_B64_PREFIX, _B32_PREFIX, _PRED_PREFIX):
            if prefix in self._existing_prefixes:
                raise PatcherError(
                    f"kernel {kernel.name!r} already uses the reserved "
                    f"register prefix {prefix!r}"
                )

    # -- registers ----------------------------------------------------------------

    def _b64(self, index: int) -> Register:
        self._b64_used = max(self._b64_used, index)
        return Register(f"{_B64_PREFIX}{index}")

    def _b32(self, index: int) -> Register:
        self._b32_used = max(self._b32_used, index)
        return Register(f"{_B32_PREFIX}{index}")

    def _pred(self, index: int) -> Register:
        self._pred_used = max(self._pred_used, index)
        return Register(f"{_PRED_PREFIX}{index}")

    # Fixed roles for the first few private b64 registers.
    @property
    def reg_base(self) -> Register:
        return self._b64(1)

    @property
    def reg_second(self) -> Register:  # mask / size / end
        return self._b64(2)

    @property
    def reg_magic(self) -> Register:
        return self._b64(3)

    @property
    def reg_temp(self) -> Register:
        return self._b64(4)

    @property
    def reg_temp2(self) -> Register:
        return self._b64(5)

    @property
    def reg_temp3(self) -> Register:
        return self._b64(6)

    def fresh_label(self) -> str:
        self._label_counter += 1
        return f"$GRD_{self._label_counter}"

    # -- parameters -----------------------------------------------------------------

    def extra_params(self) -> list[Param]:
        names = self.mode.extra_params
        return [
            Param(name=f"{self.kernel.name}_{name}", param_type="u64")
            for name in names
        ]

    def prologue(self, report: PatchReport) -> list:
        """Register declarations plus parameter loads, inserted at the
        top of the body (the paper's Listing 2 lines 15-18)."""
        instructions: list = []
        param_regs = {
            FencingMode.BITWISE: [self.reg_base, self.reg_second],
            FencingMode.MODULO: [
                self.reg_base, self.reg_second, self.reg_magic
            ],
            FencingMode.CHECKING: [self.reg_base, self.reg_second],
        }[self.mode]
        for register, param in zip(param_regs, self.extra_params()):
            instructions.append(
                Instruction(
                    opcode="ld.param.u64",
                    operands=(register, MemRef(Symbol(param.name))),
                )
            )
        report.extra_instructions += len(instructions)

        decls: list = []
        if self._b64_used:
            decls.append(
                RegDecl(reg_type="b64", prefix=_B64_PREFIX,
                        count=self._b64_used + 1)
            )
        if self._b32_used:
            decls.append(
                RegDecl(reg_type="b32", prefix=_B32_PREFIX,
                        count=self._b32_used + 1)
            )
        if self._pred_used:
            decls.append(
                RegDecl(reg_type="pred", prefix=_PRED_PREFIX,
                        count=self._pred_used + 1)
            )
        return decls + instructions

    # -- access instrumentation -------------------------------------------------------

    def sandbox_access(self, instruction: Instruction, report: PatchReport
                       ) -> tuple[list, bool]:
        """Instrument one unguarded load/store/atomic.

        Returns (replacement statements, used-OOB-label?).
        """
        memref = _memref_of(instruction)
        if instruction.is_load:
            report.loads_instrumented += 1
        elif instruction.is_store:
            report.stores_instrumented += 1
        else:
            report.atomics_instrumented += 1

        emitted: list = []
        width = isa.type_width(instruction.dtype or "b32")

        # Resolve the effective address into a register we may fence.
        if isinstance(memref.base, Register) and memref.offset == 0:
            address = memref.base
            in_place = True
            report.direct_sites += 1
        else:
            address = self.reg_temp
            if isinstance(memref.base, Symbol):
                report.symbol_sites += 1
                emitted.append(Instruction(
                    opcode="mov.u64",
                    operands=(address, memref.base),
                ))
                if memref.offset:
                    emitted.append(Instruction(
                        opcode="add.s64",
                        operands=(address, address,
                                  Immediate(memref.offset)),
                    ))
            else:
                report.offset_sites += 1
                emitted.append(Instruction(
                    opcode="add.s64",
                    operands=(address, memref.base,
                              Immediate(memref.offset)),
                ))
            in_place = False

        used_oob = False
        if self.mode is FencingMode.BITWISE:
            emitted.extend(self._emit_bitwise(address))
        elif self.mode is FencingMode.MODULO:
            address = self._emit_modulo(emitted, address, in_place)
        else:
            used_oob = True
            emitted.extend(self._emit_check(address, width))

        # Everything emitted so far (address materialisation + fencing
        # or checks) is added work; the access itself replaces the
        # original instruction.
        report.extra_instructions += len(emitted)

        emitted.append(_with_memref(instruction, MemRef(address)))
        return emitted, used_oob

    def _emit_bitwise(self, address: Register) -> list:
        """Listing 2: AND with the mask, OR with the base."""
        return [
            Instruction(opcode="and.b64",
                        operands=(address, address, self.reg_second)),
            Instruction(opcode="or.b64",
                        operands=(address, address, self.reg_base)),
        ]

    def _emit_modulo(self, emitted: list, address: Register,
                     in_place: bool) -> Register:
        """Inline 64-bit modulo via the reciprocal magic parameter.

        t  = (addr - base) & 0x7fff...   (clamp sign for the estimate)
        q  = mulhi(t, magic)             (~ t / size)
        r  = t - q * size
        r -= size if r >= size           (single correction)
        fenced = base + r
        """
        temp = self.reg_temp if in_place else address
        quotient = self.reg_temp2
        scratch = self.reg_temp3
        predicate = self._pred(1)
        emitted.extend([
            Instruction(opcode="sub.s64",
                        operands=(temp, address, self.reg_base)),
            Instruction(opcode="and.b64",
                        operands=(temp, temp,
                                  Immediate(0x7FFFFFFFFFFFFFFF))),
            Instruction(opcode="mul.hi.u64",
                        operands=(quotient, temp, self.reg_magic)),
            Instruction(opcode="mul.lo.u64",
                        operands=(quotient, quotient, self.reg_second)),
            Instruction(opcode="sub.s64",
                        operands=(temp, temp, quotient)),
            Instruction(opcode="setp.ge.u64",
                        operands=(predicate, temp, self.reg_second)),
            Instruction(opcode="sub.s64",
                        operands=(scratch, temp, self.reg_second)),
            Instruction(opcode="selp.b64",
                        operands=(temp, scratch, temp, predicate)),
            Instruction(opcode="add.s64",
                        operands=(temp, self.reg_base, temp)),
        ])
        return temp

    def _emit_check(self, address: Register, width: int) -> list:
        """Conditional lower/upper bounds checks; violators return."""
        predicate = self._pred(1)
        last = self.reg_temp2
        return [
            Instruction(opcode="setp.lt.u64",
                        operands=(predicate, address, self.reg_base)),
            Instruction(opcode="bra", operands=(Symbol(_OOB_LABEL),),
                        guard=Guard(register=predicate.name)),
            Instruction(opcode="add.s64",
                        operands=(last, address, Immediate(width))),
            Instruction(opcode="setp.gt.u64",
                        operands=(predicate, last, self.reg_second)),
            Instruction(opcode="bra", operands=(Symbol(_OOB_LABEL),),
                        guard=Guard(register=predicate.name)),
        ]

    # -- indirect branches ------------------------------------------------------------

    def sandbox_brx(self, instruction: Instruction,
                    report: PatchReport) -> list:
        """Wrap a brx.idx index modulo the target-table size (§4.3)."""
        index_operand, targets = instruction.operands
        if not isinstance(targets, TargetList):
            raise PatcherError("brx.idx without a target list")
        report.brx_sites += 1
        wrapped = self._b32(1)
        emitted = [
            Instruction(
                opcode="rem.u32",
                operands=(wrapped, index_operand,
                          Immediate(len(targets.labels))),
            ),
            Instruction(
                opcode=instruction.opcode,
                operands=(wrapped, targets),
                guard=instruction.guard,
            ),
        ]
        report.extra_instructions += 1
        return emitted


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def _memref_of(instruction: Instruction) -> MemRef:
    for operand in instruction.operands:
        if isinstance(operand, MemRef):
            return operand
    raise PatcherError(
        f"memory instruction {instruction.opcode} has no memory operand"
    )


def _with_memref(instruction: Instruction, memref: MemRef) -> Instruction:
    operands = tuple(
        memref if isinstance(operand, MemRef) else operand
        for operand in instruction.operands
    )
    return Instruction(
        opcode=instruction.opcode,
        operands=operands,
        guard=instruction.guard,
    )


def _normalise_guards(body: list, state: _PatchState):
    """Rewrite guarded memory accesses into branch-around blocks.

    ``@%p st.global [%rd4], %r2`` becomes::

        @!%p bra $GRD_n;
        st.global [%rd4], %r2;
        $GRD_n:

    so the fencing code inserted later never executes (or mutates the
    address register) when the access is predicated off.
    """
    for statement in body:
        if (
            isinstance(statement, Instruction)
            and statement.guard is not None
            and (statement.is_memory_access or statement.base_op == "brx")
            and statement.space in _FENCED_SPACES
        ):
            label = state.fresh_label()
            yield Instruction(
                opcode="bra",
                operands=(Symbol(label),),
                guard=Guard(
                    register=statement.guard.register,
                    negated=not statement.guard.negated,
                ),
            )
            yield Instruction(
                opcode=statement.opcode,
                operands=statement.operands,
                guard=None,
            )
            yield Label(label)
        else:
            yield statement


# --------------------------------------------------------------------------
# Census (Table 3)
# --------------------------------------------------------------------------


@dataclass
class MemoryOpCensus:
    """Load/store inventory of a module (the paper's Table 3 rows)."""

    kernels: int = 0
    funcs: int = 0
    loads: int = 0
    stores: int = 0
    atomics: int = 0
    brx: int = 0


def count_memory_ops(module: Module) -> MemoryOpCensus:
    """Count kernels, device functions and their *fenced* memory
    instructions (off-chip loads/stores — the paper's Table 3 rows)."""
    census = MemoryOpCensus()
    for kernel in module.kernels.values():
        if kernel.is_entry:
            census.kernels += 1
        else:
            census.funcs += 1
        for instruction in kernel.instructions():
            if instruction.base_op == "brx":
                census.brx += 1
        for instruction in kernel.memory_accesses():
            if instruction.is_load:
                census.loads += 1
            elif instruction.is_store:
                census.stores += 1
            else:
                census.atomics += 1
    return census
