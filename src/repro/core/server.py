"""The GuardianServer — the trusted process with exclusive GPU access.

The server (the paper's *gSafeServer*, §4.2):

- creates the **single GPU context** all tenants share, with
  ``CUDA_FORCE_PTX_JIT`` set so embedded cuBINs can never bypass the
  patched PTX;
- reserves all device memory and partitions it
  (:class:`~repro.core.allocator.GuardianAllocator`);
- range-checks every host-initiated transfer against the partition
  bounds table (§4.2.2): H2D checks the destination, D2H the source,
  D2D both; violations are *fenced* — rejected before reaching the
  device;
- for every deployed binary, extracts the PTX (``cuobjdump``), patches
  it offline, loads **both** the sandboxed and the native module, and
  records the ``pointerToSymbol`` map from client kernel handles to
  ``CUfunction`` handles (§4.2.3);
- on each launch, looks up the sandboxed function (~557 cycles),
  augments the parameter array with the partition's mask/base (~400
  cycles), and issues it on the tenant's stream — or issues the
  *native* kernel when the tenant runs standalone and
  ``standalone_native`` is enabled (§4.2.3);
- gives each tenant its own CUDA stream, so different tenants' kernels
  execute concurrently (spatial sharing, §4.2.4).

Every public handler returns ``(result, server_cycles)`` — the
:class:`~repro.core.ipc.IPCChannel` charges the cycles back onto the
calling tenant's critical path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    BoundsViolation,
    ExecutionError,
    GuardianError,
    LaunchError,
    StreamFault,
)
from repro.core.allocator import GuardianAllocator
from repro.core.patcher import PatchCache, PatchReport, PTXPatcher
from repro.core.policy import FencingMode
from repro.driver.api import DriverAPI
from repro.driver.fatbin import FatBinary, cuobjdump
from repro.gpu.device import Device
from repro.gpu.stream import Stream
from repro.runtime.backend import CPU_GHZ, DriverCostModel


@dataclass(frozen=True)
class ServerCostModel:
    """Server-side CPU cycles per operation (the paper's Table 5).

    ``lookup`` is the pointerToSymbol search (measured 214-900, avg
    ~557); ``augment`` is allocating and filling the extended parameter
    array (300-600, avg ~400); ``launch_syscall`` is the native
    ``cuLaunchKernel`` the server finally issues (~9000).
    """

    lookup: int = 557
    augment: int = 400
    launch_syscall: int = 9_000
    transfer_check: int = 120
    malloc: int = 350
    free: int = 300
    dispatch: int = 80
    #: Launch fast path: one hash probe replacing the pointerToSymbol
    #: search *and* the parameter-array rebuild (vs lookup + augment).
    lookup_cached: int = 180
    #: Full PTX parse + patch + emit of one module text (offline-phase
    #: work; only charged when ``ServerConfig.charge_patch_cycles``).
    patch_module: int = 600_000
    #: Content-addressed cache probe (sha256 of the text + dict hit).
    patch_lookup: int = 2_500
    #: ``cuobjdump`` extraction of one fatBIN, and the memoised probe.
    extract: int = 40_000
    extract_lookup: int = 400
    #: The ordinary driver work the server performs on behalf of the
    #: tenant (same costs the native backend pays directly).
    driver: DriverCostModel = DriverCostModel()


@dataclass(frozen=True)
class ServerConfig:
    """Hot-path optimisation knobs.

    Everything defaults **off** so the stock server reproduces the
    paper's per-operation costs bit-for-bit (Table 5, Figure 7). The
    optimisations are this repo's beyond-the-paper work:

    - ``enable_patch_cache``: content-addressed PTX patch cache keyed
      on ``(sha256(text), mode)`` and shared across tenants, plus a
      ``cuobjdump`` extraction memo keyed on fatBIN content. A tenant
      deploying a library some other tenant already deployed pays a
      cache probe instead of a full parse + patch.
    - ``enable_launch_fast_path``: memoise each tenant's fencing
      parameter tuple; steady-state launches pay ``lookup_cached``
      instead of ``lookup + augment``. Invalidated by the bounds
      table's per-tenant epoch (bumped on partition grow/release).
    - ``enable_ipc_batching`` / ``ipc_max_batch``: clients coalesce
      consecutive asynchronous calls into one flush-on-sync batch
      (picked up by :class:`~repro.core.ipc.IPCChannel` at attach).
    - ``charge_patch_cycles``: account the offline patch/extract work
      in server cycles. Off by default because the paper reports
      patching as an offline phase outside the launch path; benchmarks
      that quantify the cache turn it on in *both* arms.
    """

    enable_patch_cache: bool = False
    patch_cache_capacity: int = 64
    enable_launch_fast_path: bool = False
    enable_ipc_batching: bool = False
    ipc_max_batch: int = 64
    charge_patch_cycles: bool = False

    @classmethod
    def hotpath(cls, **overrides) -> "ServerConfig":
        """All hot-path optimisations on."""
        values = dict(
            enable_patch_cache=True,
            enable_launch_fast_path=True,
            enable_ipc_batching=True,
        )
        values.update(overrides)
        return cls(**values)


@dataclass
class ServerStats:
    """Aggregate counters across all tenants."""

    launches: int = 0
    native_launches: int = 0
    transfers_checked: int = 0
    transfers_rejected: int = 0
    cycles: float = 0.0
    kernels_patched: int = 0
    modules_loaded: int = 0
    kernels_killed: int = 0
    # Hot-path cache counters (all zero when the knobs are off).
    patch_cache_hits: int = 0
    patch_cache_misses: int = 0
    patch_cache_evictions: int = 0
    extract_cache_hits: int = 0
    extract_cache_misses: int = 0
    fastpath_hits: int = 0
    fastpath_misses: int = 0
    syncs: int = 0
    sync_drained_tasks: int = 0
    streams_destroyed: int = 0
    # Containment counters (only move on the quarantine path).
    tenants_quarantined: int = 0
    bytes_scrubbed: int = 0
    stream_faults_surfaced: int = 0


@dataclass
class _Tenant:
    app_id: str
    stream: Stream
    #: client handle -> (sandboxed CUfunction, native CUfunction)
    functions: dict[int, tuple] = field(default_factory=dict)
    handle_counter: "itertools.count" = field(
        default_factory=lambda: itertools.count(0x4000)
    )
    patch_reports: list[PatchReport] = field(default_factory=list)
    #: Launch fast path memo: (bounds-table epoch, fencing values).
    #: Stale whenever the epoch no longer matches the table's.
    fast_launch: Optional[tuple[int, list]] = None


class GuardianServer:
    """The trusted GPU manager process."""

    def __init__(
        self,
        device: Device,
        mode: FencingMode = FencingMode.BITWISE,
        costs: Optional[ServerCostModel] = None,
        standalone_native: bool = False,
        config: Optional[ServerConfig] = None,
    ):
        self.device = device
        self.mode = mode
        self.costs = costs or ServerCostModel()
        self.standalone_native = standalone_native
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        # Hot-path caches (None = knob off, seed behaviour).
        self._patch_cache: Optional[PatchCache] = (
            PatchCache(self.config.patch_cache_capacity)
            if self.config.enable_patch_cache else None
        )
        self._extract_cache: Optional[dict] = (
            {} if self.config.enable_patch_cache else None
        )
        self._clock_ratio = device.spec.clock_ghz / CPU_GHZ
        # The server's driver: single context, PTX JIT forced so the
        # patched PTX always wins over embedded cuBINs.
        self.driver = DriverAPI(device, force_ptx_jit=True)
        self.context = self.driver.cuCtxCreate("guardian-server")
        # Reserve *all* remaining device memory for partitioning.
        reserve = device.allocator.bytes_free
        base = device.allocator.allocate(reserve)
        self.context.allocations.add(base)
        # Bitwise fencing needs power-of-two, size-aligned partitions;
        # modulo and checking accept arbitrary sizes (§4.4) — which is
        # exactly the capability their benchmarks exercise.
        self.allocator = GuardianAllocator(
            base, reserve,
            require_power_of_two=mode.requires_power_of_two
            or mode is FencingMode.NONE,
        )
        self.patcher = PTXPatcher(mode)
        self._tenants: dict[str, _Tenant] = {}

    # -- tenant lifecycle (not IPC-charged: happens once at attach) -----------

    def attach(self, app_id: str, max_bytes: int):
        """Register a tenant: carve its partition, create its stream."""
        if app_id in self._tenants:
            raise GuardianError(f"app {app_id!r} already attached")
        self.allocator.create_partition(app_id, max_bytes)
        tenant = _Tenant(
            app_id=app_id,
            stream=self.driver.cuStreamCreate(self.context),
        )
        self._tenants[app_id] = tenant
        return None, self.costs.dispatch

    def detach(self, app_id: str):
        """Tear a tenant down: drain and destroy its stream, drop its
        module/function handles, release its partition."""
        tenant = self._tenants.pop(app_id, None)
        if tenant is not None:
            # Submitted work keeps its functional effects (the deferred
            # timeline model); the drain records what the detach waited
            # on, then the stream's driver state is freed.
            self.stats.sync_drained_tasks += self.driver.cuStreamSynchronize(
                tenant.stream
            )
            self.driver.cuStreamDestroy(self.context, tenant.stream)
            self.stats.streams_destroyed += 1
            tenant.functions.clear()
            tenant.patch_reports.clear()
            tenant.fast_launch = None
        self.allocator.release_partition(app_id)
        return None, self.costs.dispatch

    def grow_partition(self, app_id: str, new_max_bytes: int):
        """Dynamic partition resizing (the paper's future-work item).

        In-place buddy growth: the tenant's base address — and with it
        every pointer the tenant holds — is unchanged; only the mask
        widens, which subsequent launches pick up automatically from
        the refreshed bounds-table record.
        """
        self._tenant(app_id)  # must be attached
        partition = self.allocator.grow_partition(app_id, new_max_bytes)
        self._charge(self.costs.malloc)
        return partition.size, self.costs.malloc

    @property
    def tenant_count(self) -> int:
        return len(self._tenants)

    def _tenant(self, app_id: str) -> _Tenant:
        try:
            return self._tenants[app_id]
        except KeyError:
            raise GuardianError(f"app {app_id!r} is not attached") from None

    # -- memory management (served from the tenant's partition) ----------------

    def malloc(self, app_id: str, size: int):
        address = self.allocator.malloc(app_id, size)
        cycles = self.costs.malloc + self.costs.driver.malloc
        self._charge(cycles)
        return address, cycles

    def free(self, app_id: str, address: int):
        self.allocator.free(app_id, address)
        cycles = self.costs.free + self.costs.driver.free
        self._charge(cycles)
        return None, cycles

    # -- checked transfers (§4.2.2) ----------------------------------------------

    def memcpy_h2d(self, app_id: str, dst: int, data: bytes,
                   stream_id: int = 0):
        record = self.allocator.bounds.lookup(app_id)
        cycles = self._check_range(app_id, record, dst, len(data),
                                   "H2D destination")
        tenant = self._tenant(app_id)
        cycles += self._charge(self.costs.driver.memcpy)
        self.driver.cuMemcpyHtoD(tenant.stream, dst, data, tag=app_id,
                                 release_cycles=self._release())
        return None, cycles

    def memcpy_d2h(self, app_id: str, src: int, size: int,
                   stream_id: int = 0):
        record = self.allocator.bounds.lookup(app_id)
        cycles = self._check_range(app_id, record, src, size, "D2H source")
        tenant = self._tenant(app_id)
        cycles += self._charge(self.costs.driver.memcpy)
        data = self.driver.cuMemcpyDtoH(tenant.stream, src, size, tag=app_id,
                                        release_cycles=self._release())
        return data, cycles

    def memcpy_d2d(self, app_id: str, dst: int, src: int, size: int,
                   stream_id: int = 0):
        record = self.allocator.bounds.lookup(app_id)
        cycles = self._check_range(app_id, record, src, size, "D2D source")
        cycles += self._check_range(app_id, record, dst, size,
                                    "D2D destination")
        tenant = self._tenant(app_id)
        cycles += self._charge(self.costs.driver.memcpy)
        self.driver.cuMemcpyDtoD(tenant.stream, dst, src, size, tag=app_id,
                                 release_cycles=self._release())
        return None, cycles

    def memset(self, app_id: str, dst: int, value: int, size: int,
               stream_id: int = 0):
        record = self.allocator.bounds.lookup(app_id)
        cycles = self._check_range(app_id, record, dst, size,
                                   "memset destination")
        tenant = self._tenant(app_id)
        cycles += self._charge(self.costs.driver.memcpy)
        self.driver.cuMemsetD8(tenant.stream, dst, value, size, tag=app_id,
                               release_cycles=self._release())
        return None, cycles

    def _check_range(self, app_id: str, record, address: int, size: int,
                     what: str) -> float:
        """Charge and return one range check's cost.

        Charging happens here and nowhere else, so a handler's returned
        total (the sum of its ``_check_range``/``_charge`` returns)
        always equals the ``stats.cycles`` delta it caused — including
        on the violation path, where the check is charged and then the
        transfer is fenced off before any driver work.
        """
        self.stats.transfers_checked += 1
        cost = self._charge(self.costs.transfer_check)
        if not record.contains(address, size):
            self.stats.transfers_rejected += 1
            raise BoundsViolation(app_id, address, size, detail=what)
        return cost

    # -- device code deployment (offline phase, §4.3) ------------------------------

    def register_fatbin(self, app_id: str, fatbin: FatBinary):
        """Extract, patch, and load a tenant binary's kernels.

        Returns kernel-name -> client handle. Both the sandboxed and
        the native variant are loaded so the server can pick per
        launch.
        """
        tenant = self._tenant(app_id)
        ptx_texts, cycles = self._extract_ptx(fatbin)
        if not ptx_texts:
            raise GuardianError(
                f"fatbin {fatbin.name!r} carries no PTX; Guardian "
                f"cannot sandbox cuBIN-only binaries"
            )
        handles: dict[str, int] = {}
        for ptx_text in ptx_texts:
            text_handles, patch_cycles = self._load_ptx_pair(
                tenant, ptx_text
            )
            handles.update(text_handles)
            cycles += patch_cycles
        return handles, self.costs.dispatch + cycles

    def load_module_ptx(self, app_id: str, ptx_text: str):
        """Explicit PTX load (the driver-API path some apps use)."""
        tenant = self._tenant(app_id)
        handles, cycles = self._load_ptx_pair(tenant, ptx_text)
        return handles, self.costs.dispatch + cycles

    def _extract_ptx(self, fatbin: FatBinary) -> tuple[list[str], float]:
        """``cuobjdump`` extraction, memoised on fatBIN content when
        the patch cache is enabled. Returns (texts, charged cycles)."""
        if self._extract_cache is None:
            return cuobjdump(fatbin), self._patch_charge(self.costs.extract)
        key = fatbin.content_key()
        cached = self._extract_cache.get(key)
        if cached is not None:
            self.stats.extract_cache_hits += 1
            return list(cached), self._patch_charge(
                self.costs.extract_lookup
            )
        ptx_texts = cuobjdump(fatbin)
        self._extract_cache[key] = tuple(ptx_texts)
        self.stats.extract_cache_misses += 1
        return ptx_texts, self._patch_charge(self.costs.extract)

    def _patch_text(self, ptx_text: str) -> tuple[str, list, float]:
        """Patch one PTX text, through the content-addressed cache when
        enabled. Returns (patched text, reports, charged cycles).

        A cache hit shares the patched text *and* the report list by
        reference across tenants — both are immutable once produced.
        """
        if self._patch_cache is not None:
            cached = self._patch_cache.get(ptx_text, self.mode)
            if cached is not None:
                self.stats.patch_cache_hits += 1
                patched_text, reports = cached
                return patched_text, reports, self._patch_charge(
                    self.costs.patch_lookup
                )
            patched_text, reports = self.patcher.patch_text(ptx_text)
            self.stats.patch_cache_evictions += self._patch_cache.put(
                ptx_text, self.mode, patched_text, reports
            )
            self.stats.patch_cache_misses += 1
            return patched_text, reports, self._patch_charge(
                self.costs.patch_module
            )
        patched_text, reports = self.patcher.patch_text(ptx_text)
        return patched_text, reports, self._patch_charge(
            self.costs.patch_module
        )

    def _patch_charge(self, cycles: float) -> float:
        """Offline-phase work is only accounted when the config says
        so — the paper keeps patching out of the measured hot path."""
        if not self.config.charge_patch_cycles:
            return 0.0
        return self._charge(cycles)

    def _load_ptx_pair(self, tenant: _Tenant, ptx_text: str
                       ) -> tuple[dict[str, int], float]:
        partition = self.allocator.partition(tenant.app_id)

        def allocate_in_partition(name: str, size: int) -> int:
            return partition.malloc(size)

        patched_text, reports, patch_cycles = self._patch_text(ptx_text)
        tenant.patch_reports.extend(reports)
        self.stats.kernels_patched += sum(
            1 for report in reports if report.is_entry
        )
        sandboxed = self.driver.cuModuleLoadData(
            self.context, patched_text,
            allocate_global=allocate_in_partition,
        )
        # The native variant shares the sandboxed module's .global
        # arrays, so a tenant flipping between them keeps its statics.
        native = self.driver.cuModuleLoadData(
            self.context, ptx_text,
            allocate_global=lambda name, size: (
                sandboxed.global_addresses[name]
            ),
        )
        self.stats.modules_loaded += 2

        handles: dict[str, int] = {}
        for name in sandboxed.kernel_names():
            handle = next(tenant.handle_counter)
            tenant.functions[handle] = (
                self.driver.cuModuleGetFunction(sandboxed, name),
                self.driver.cuModuleGetFunction(native, name),
            )
            handles[name] = handle
        return handles, patch_cycles

    # -- kernel launch (§4.2.3) -------------------------------------------------------

    def launch_kernel(self, app_id: str, handle: int,
                      grid: tuple, block: tuple, params: list,
                      stream_id: int = 0):
        tenant = self._tenant(app_id)
        self._raise_if_wedged(tenant)
        pair = tenant.functions.get(handle)
        if pair is None:
            raise LaunchError(
                f"app {app_id!r}: unknown kernel handle {handle:#x}"
            )
        sandboxed, native = pair

        use_native = (
            self.standalone_native
            and self.tenant_count == 1
        ) or self.mode is FencingMode.NONE
        if use_native:
            # pointerToSymbol lookup only; no parameter augmentation.
            function = native
            launch_params = list(params)
            self.stats.native_launches += 1
            cycles = float(self.costs.lookup)
        else:
            # Augment the parameter array with this partition's
            # fencing values (mask and base for bitwise, ...).
            extra, cycles = self._launch_extras(tenant)
            launch_params = list(params) + extra
            function = sandboxed

        cycles += self.costs.launch_syscall
        self.stats.launches += 1
        self._charge(cycles)
        try:
            self.driver.cuLaunchKernel(
                function, grid, block, launch_params, tenant.stream,
                tag=app_id, release_cycles=self._release(),
            )
        except ExecutionError as failure:
            # TReM-style revocation (§4.3, [53]): a runaway or faulting
            # kernel is terminated and reported to its *own* tenant;
            # other tenants' partitions and streams are untouched.
            self.stats.kernels_killed += 1
            raise GuardianError(
                f"tenant {app_id!r}: kernel terminated by the server "
                f"({failure})"
            ) from failure
        return None, cycles

    def _launch_extras(self, tenant: _Tenant) -> tuple[list, float]:
        """Fencing parameter values for a sandboxed launch, plus the
        host cycles to produce them.

        Slow path (paper Table 5): pointerToSymbol lookup + parameter
        array augmentation. Fast path: the tenant's fencing tuple is
        memoised against the bounds table's per-tenant epoch, so a
        steady-state launch pays a single cached probe; any partition
        mutation (grow/release+re-register) bumps the epoch and forces
        a rebuild that picks up the widened mask.
        """
        if self.config.enable_launch_fast_path:
            epoch = self.allocator.bounds.epoch(tenant.app_id)
            memo = tenant.fast_launch
            if memo is not None and memo[0] == epoch:
                self.stats.fastpath_hits += 1
                return memo[1], float(self.costs.lookup_cached)
            record = self.allocator.bounds.lookup(tenant.app_id)
            extra = record.extra_param_values(self.mode)
            tenant.fast_launch = (epoch, extra)
            self.stats.fastpath_misses += 1
            return extra, float(self.costs.lookup + self.costs.augment)
        record = self.allocator.bounds.lookup(tenant.app_id)
        extra = record.extra_param_values(self.mode)
        return extra, float(self.costs.lookup + self.costs.augment)

    # -- misc --------------------------------------------------------------------------

    def create_stream(self, app_id: str):
        """Per-tenant stream handle.

        All of a tenant's work funnels through its single server
        stream — the paper's in-order-per-application guarantee
        (§4.2.4) — so extra client streams alias the same server
        stream.
        """
        tenant = self._tenant(app_id)
        return tenant.stream.stream_id, self.costs.dispatch

    def synchronize(self, app_id: str):
        """Drain the tenant's stream.

        Functionally every submitted operation already executed (the
        deferred timing model), so the drain records how many pending
        operations the wait covered; their timing is resolved by the
        device's next timeline pass. Unknown tenants are rejected —
        sync is a per-tenant operation, not a broadcast.
        """
        tenant = self._tenant(app_id)
        self._raise_if_wedged(tenant)
        self.stats.syncs += 1
        self.stats.sync_drained_tasks += self.driver.cuStreamSynchronize(
            tenant.stream
        )
        return None, self.costs.dispatch

    def _raise_if_wedged(self, tenant: _Tenant) -> None:
        """Surface a sticky asynchronous stream fault at an ordering
        point — CUDA's sticky-context-error semantics. Checking a
        healthy stream is a no-cost predicate, so the stock per-op
        costs are unchanged."""
        if tenant.stream.fault is not None:
            self.stats.stream_faults_surfaced += 1
            raise StreamFault(tenant.app_id, tenant.stream.fault)

    # -- quarantine (containment mechanics; policy lives in the supervisor) ----

    def quarantine(self, app_id: str, reason: str = "") -> int:
        """Forcibly evict a tenant, leaving nothing reusable behind.

        The containment sequence the TenantSupervisor escalates to:

        1. drain and destroy the tenant's stream (clears any sticky
           fault with it),
        2. drop its module/function handles and launch memo,
        3. **scrub** the partition — zero every byte — before the
           region returns to the free list, so no later tenant can
           read the evicted tenant's data,
        4. release the partition.

        Other tenants are untouched by construction: their bounds
        records (and epochs), partitions, streams and handles are
        separate objects the sequence never reaches. Returns the number
        of bytes scrubbed. Idempotent for unknown/already-evicted
        tenants.
        """
        if app_id not in self._tenants:
            return 0
        scrubbed = 0

        def scrub(base: int, size: int) -> None:
            nonlocal scrubbed
            self.device.memory.fill(base, size, 0)
            scrubbed = size

        tenant = self._tenants.pop(app_id)
        self.stats.sync_drained_tasks += self.driver.cuStreamSynchronize(
            tenant.stream
        )
        self.driver.cuStreamDestroy(self.context, tenant.stream)
        self.stats.streams_destroyed += 1
        tenant.functions.clear()
        tenant.patch_reports.clear()
        tenant.fast_launch = None
        self.allocator.release_partition(app_id, scrubber=scrub)
        self.stats.tenants_quarantined += 1
        self.stats.bytes_scrubbed += scrubbed
        return scrubbed

    def get_spec(self, app_id: str):
        return self.device.spec, self.costs.dispatch

    def patch_reports(self, app_id: str) -> list[PatchReport]:
        return self._tenant(app_id).patch_reports

    def _charge(self, cycles: float) -> float:
        """Add host work to the server's busy clock; returns the amount
        so call sites can sum exactly what they charged."""
        self.stats.cycles += cycles
        return cycles

    def _release(self) -> float:
        """Device-clock instant at which the server finished issuing
        the current operation. Because the server processes all
        tenants' calls serially, these releases are monotone across
        tenants — the server-bottleneck effect of §6.1."""
        return self.stats.cycles * self._clock_ratio
