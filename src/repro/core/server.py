"""The GuardianServer — the trusted process with exclusive GPU access.

The server (the paper's *gSafeServer*, §4.2):

- creates the **single GPU context** all tenants share, with
  ``CUDA_FORCE_PTX_JIT`` set so embedded cuBINs can never bypass the
  patched PTX;
- reserves all device memory and partitions it
  (:class:`~repro.core.allocator.GuardianAllocator`);
- range-checks every host-initiated transfer against the partition
  bounds table (§4.2.2): H2D checks the destination, D2H the source,
  D2D both; violations are *fenced* — rejected before reaching the
  device;
- for every deployed binary, extracts the PTX (``cuobjdump``), patches
  it offline, loads **both** the sandboxed and the native module, and
  records the ``pointerToSymbol`` map from client kernel handles to
  ``CUfunction`` handles (§4.2.3);
- on each launch, looks up the sandboxed function (~557 cycles),
  augments the parameter array with the partition's mask/base (~400
  cycles), and issues it on the tenant's stream — or issues the
  *native* kernel when the tenant runs standalone and
  ``standalone_native`` is enabled (§4.2.3);
- gives each tenant its own CUDA stream, so different tenants' kernels
  execute concurrently (spatial sharing, §4.2.4).

Every public handler returns ``(result, server_cycles)`` — the
:class:`~repro.core.ipc.IPCChannel` charges the cycles back onto the
calling tenant's critical path.

**Concurrent dispatch (DESIGN.md §7).** With
``ServerConfig.concurrency`` enabled the server additionally books
every charge onto the calling tenant's *dispatch lane*: lane-local
work (range checks, launch lookup/augment/syscall, driver work)
advances only that tenant's lane clock, while host-side serialization
points — bounds-table writes, allocator mutations, patch-cache
misses — pass through one shared critical section arbitrated by a
pluggable :class:`~repro.core.policy.LaneSchedulingPolicy`. Aggregate
host makespan (:meth:`GuardianServer.makespan_cycles`) then becomes
the critical path across lanes instead of the serial sum, and stream
releases are driven by the lane clock, so independent tenants' device
work overlaps. ``stats.cycles`` keeps its serial meaning — total work,
which with the knob off (the default) is also the makespan — so all
Table 5 numbers stay bit-identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    AdmissionRejected,
    BoundsViolation,
    ExecutionError,
    GuardianError,
    LaunchError,
    MigrationError,
    StreamFault,
)
from repro.core.allocator import GuardianAllocator
from repro.core.patcher import (
    DiskPatchCache,
    ParallelPatcher,
    PatchCache,
    PatchReport,
    PTXPatcher,
    ThreadSafePatchCache,
)
from repro.core.tracecache import (
    TraceEngine,
    d2d_signature,
    h2d_signature,
    launch_signature,
    memset_signature,
)
from repro.core.policy import FencingMode, lane_scheduling_policy
from repro.driver.api import DriverAPI
from repro.driver.fatbin import FatBinary, cuobjdump
from repro.gpu.allocator import FirstFitAllocator
from repro.gpu.device import Device
from repro.gpu.stream import Stream
from repro.runtime.backend import CPU_GHZ, DriverCostModel
from repro.telemetry import Telemetry, maybe_span


@dataclass(frozen=True)
class ServerCostModel:
    """Server-side CPU cycles per operation (the paper's Table 5).

    ``lookup`` is the pointerToSymbol search (measured 214-900, avg
    ~557); ``augment`` is allocating and filling the extended parameter
    array (300-600, avg ~400); ``launch_syscall`` is the native
    ``cuLaunchKernel`` the server finally issues (~9000).
    """

    lookup: int = 557
    augment: int = 400
    launch_syscall: int = 9_000
    transfer_check: int = 120
    malloc: int = 350
    free: int = 300
    dispatch: int = 80
    #: Launch fast path: one hash probe replacing the pointerToSymbol
    #: search *and* the parameter-array rebuild (vs lookup + augment).
    lookup_cached: int = 180
    #: Full PTX parse + patch + emit of one module text (offline-phase
    #: work; only charged when ``ServerConfig.charge_patch_cycles``).
    patch_module: int = 600_000
    #: Content-addressed cache probe (sha256 of the text + dict hit).
    patch_lookup: int = 2_500
    #: ``cuobjdump`` extraction of one fatBIN, and the memoised probe.
    extract: int = 40_000
    extract_lookup: int = 400
    #: Disk-backed patch-cache probe that found the patched text on
    #: disk: open + read + json decode of a content-addressed file —
    #: far above a dict hit, far below a re-patch.
    patch_disk_lookup: int = 25_000
    #: Trace specialization (repro.core.tracecache, DESIGN.md §12).
    #: One guard-set evaluation per replayed block; one batched submit
    #: syscall per block (the CUDA-Graphs analogue — it replaces every
    #: per-launch ``launch_syscall`` in the block); one command-buffer
    #: cursor bump + payload pointer patch per replayed op.
    trace_guard: int = 300
    trace_submit: int = 9_000
    trace_replay_op: int = 60
    #: Vectorized bounds prologue: one numpy sweep over a block's
    #: transfer ranges (fixed setup + a few cycles per range) instead
    #: of one flat ``transfer_check`` per range.
    vector_check_base: int = 120
    vector_check_per_range: int = 4
    #: The ordinary driver work the server performs on behalf of the
    #: tenant (same costs the native backend pays directly).
    driver: DriverCostModel = DriverCostModel()


@dataclass(frozen=True)
class ServerConfig:
    """Hot-path optimisation knobs.

    Everything defaults **off** so the stock server reproduces the
    paper's per-operation costs bit-for-bit (Table 5, Figure 7). The
    optimisations are this repo's beyond-the-paper work:

    - ``enable_patch_cache``: content-addressed PTX patch cache keyed
      on ``(sha256(text), mode)`` and shared across tenants, plus a
      ``cuobjdump`` extraction memo keyed on fatBIN content. A tenant
      deploying a library some other tenant already deployed pays a
      cache probe instead of a full parse + patch.
    - ``enable_launch_fast_path``: memoise each tenant's fencing
      parameter tuple; steady-state launches pay ``lookup_cached``
      instead of ``lookup + augment``. Invalidated by the bounds
      table's per-tenant epoch (bumped on partition grow/release).
    - ``enable_ipc_batching`` / ``ipc_max_batch``: clients coalesce
      consecutive asynchronous calls into one flush-on-sync batch
      (picked up by :class:`~repro.core.ipc.IPCChannel` at attach).
    - ``charge_patch_cycles``: account the offline patch/extract work
      in server cycles. Off by default because the paper reports
      patching as an offline phase outside the launch path; benchmarks
      that quantify the cache turn it on in *both* arms.
    - ``concurrency``: per-tenant dispatch lanes with overlap-aware
      cycle accounting (module docstring, DESIGN.md §7). ``stats``
      totals are unchanged; :meth:`GuardianServer.makespan_cycles` and
      stream release instants become lane-local.
    - ``lane_policy``: which tenant's lane enters the shared critical
      section first at each ordering point (``"fifo"`` or ``"fair"``,
      resolved by :func:`~repro.core.policy.lane_scheduling_policy`).
    - ``patch_workers``: thread-pool width for cold-PTX patching in
      concurrency mode; single-flight dedup means concurrent same-hash
      misses still run (and charge) exactly one patch.
    - ``coalesce_transfer_checks``: contiguous chunked
      ``memcpy_*``/``memset`` ranges collapse into one charged
      ``_check_range`` per run (the containment predicate itself is
      still evaluated for every chunk — only the modelled cost is
      coalesced).
    - ``telemetry``: per-call span tracing + the unified metrics
      registry (:mod:`repro.telemetry`, DESIGN.md §11). Observation
      only: no hook charges cycles, so every modelled total is
      bit-identical with the knob on or off — the stock default stays
      the paper's numbers *and* so does the instrumented run.
      ``telemetry_capacity`` bounds the span ring buffer.
    - ``enable_trace_specialization``: record a tenant's steady-state
      sync-to-sync call sequence and, once it repeats
      ``trace_hot_threshold`` consecutive times, replay it as one
      guarded fused block (:mod:`repro.core.tracecache`, DESIGN.md
      §12). Any guard failure or epoch bump falls back to the
      interpreted path bit-identically. ``trace_max_ops`` bounds how
      long a block the recorder will consider.
    - ``enable_vectorized_bounds``: range-check a replayed block's
      pre-validated transfer ranges in one numpy sweep at block entry
      instead of one flat check per op (only consulted by the trace
      replay path — the interpreted path's checks are untouched).
    - ``patch_cache_dir``: back the content-addressed patch cache with
      an on-disk store (atomic writes, versioned keys) so cold-start
      patch cost amortizes across server processes. Implies the patch
      cache. ``None`` (default) keeps the cache memory-only.
    - ``max_resident_tenants``: bounded admission (DESIGN.md §13).
      ``attach`` raises :class:`~repro.errors.AdmissionRejected` when
      the server already hosts this many tenants — the shed signal the
      open-loop load generator's backpressure path consumes. Rejection
      happens before any state is created, so resident tenants (their
      partitions, bounds epochs, streams) are untouched by construction.
      ``None`` (default) admits without bound, exactly the stock
      behaviour. Live-migration restores are *not* gated: the cluster's
      placement already decided the move, and bouncing a mid-flight
      tenant would strand it.
    - ``ipc_queue_limit`` / ``ipc_shed_overflow``: bound every
      attaching client's batched-call queue (picked up like the
      batching defaults). A full queue either forces an early flush
      (default — the producer stalls, hardware-ring backpressure) or
      sheds the call (:class:`~repro.errors.QueueSaturated`). ``None``
      keeps the queue unbounded and both paths dead code.
    - ``enable_shrink`` / ``enable_compaction`` /
      ``enable_oversubscription``: the elastic memory engine
      (:mod:`repro.core.elastic`, DESIGN.md §14) — buddy-half shrink of
      over-provisioned partitions, policy-driven intra-node compaction
      reusing the migration machinery, and swap-to-host
      oversubscription with modelled PCIe costs. With all three off
      (the default) no engine is constructed and the server is the
      stock server. ``oversubscription_ratio`` hard-caps total declared
      bytes (resident + swapped) at that multiple of physical capacity;
      ``defrag_policy``/``defrag_threshold`` select the
      :class:`~repro.core.policy.DefragPolicy`;
      ``min_partition_bytes`` floors how far a shrink may go.
    """

    enable_patch_cache: bool = False
    patch_cache_capacity: int = 64
    enable_launch_fast_path: bool = False
    enable_ipc_batching: bool = False
    ipc_max_batch: int = 64
    charge_patch_cycles: bool = False
    concurrency: bool = False
    lane_policy: str = "fifo"
    patch_workers: int = 4
    coalesce_transfer_checks: bool = False
    telemetry: bool = False
    telemetry_capacity: int = 65_536
    enable_trace_specialization: bool = False
    trace_hot_threshold: int = 2
    trace_max_ops: int = 512
    enable_vectorized_bounds: bool = False
    patch_cache_dir: Optional[str] = None
    max_resident_tenants: Optional[int] = None
    ipc_queue_limit: Optional[int] = None
    ipc_shed_overflow: bool = False
    enable_shrink: bool = False
    enable_compaction: bool = False
    enable_oversubscription: bool = False
    oversubscription_ratio: float = 2.0
    defrag_policy: str = "threshold"
    defrag_threshold: float = 0.5
    min_partition_bytes: int = 4096

    @classmethod
    def hotpath(cls, **overrides) -> "ServerConfig":
        """All hot-path optimisations on."""
        values = dict(
            enable_patch_cache=True,
            enable_launch_fast_path=True,
            enable_ipc_batching=True,
        )
        values.update(overrides)
        return cls(**values)

    @classmethod
    def concurrent(cls, **overrides) -> "ServerConfig":
        """Concurrent multi-tenant dispatch plus every hot-path cache."""
        values = dict(
            enable_patch_cache=True,
            enable_launch_fast_path=True,
            enable_ipc_batching=True,
            concurrency=True,
            coalesce_transfer_checks=True,
        )
        values.update(overrides)
        return cls(**values)

    @classmethod
    def traced(cls, **overrides) -> "ServerConfig":
        """Every hot-path cache plus steady-state trace specialization
        and the vectorized bounds prologue."""
        values = dict(
            enable_patch_cache=True,
            enable_launch_fast_path=True,
            enable_ipc_batching=True,
            enable_trace_specialization=True,
            enable_vectorized_bounds=True,
        )
        values.update(overrides)
        return cls(**values)

    @classmethod
    def elastic(cls, **overrides) -> "ServerConfig":
        """All three elastic memory mechanisms on (DESIGN.md §14)."""
        values = dict(
            enable_shrink=True,
            enable_compaction=True,
            enable_oversubscription=True,
        )
        values.update(overrides)
        return cls(**values)


@dataclass
class ServerStats:
    """Aggregate counters across all tenants."""

    launches: int = 0
    native_launches: int = 0
    transfers_checked: int = 0
    transfers_rejected: int = 0
    cycles: float = 0.0
    kernels_patched: int = 0
    modules_loaded: int = 0
    kernels_killed: int = 0
    # Hot-path cache counters (all zero when the knobs are off).
    patch_cache_hits: int = 0
    patch_cache_misses: int = 0
    patch_cache_evictions: int = 0
    extract_cache_hits: int = 0
    extract_cache_misses: int = 0
    fastpath_hits: int = 0
    fastpath_misses: int = 0
    syncs: int = 0
    sync_drained_tasks: int = 0
    streams_destroyed: int = 0
    # Containment counters (only move on the quarantine path).
    tenants_quarantined: int = 0
    bytes_scrubbed: int = 0
    stream_faults_surfaced: int = 0
    # Migration counters (only move on the cluster's migrate path).
    tenants_migrated_in: int = 0
    tenants_migrated_out: int = 0
    # Concurrent-dispatch counters (zero unless the knobs are on).
    checks_coalesced: int = 0
    patch_inflight_joins: int = 0
    lanes_retired: int = 0
    # Trace-specialization counters (zero unless the knob is on).
    traces_compiled: int = 0
    trace_replays: int = 0
    trace_replay_ops: int = 0
    trace_eligible_ops: int = 0
    trace_invalidations: int = 0
    trace_guard_failures: int = 0
    trace_ranges_prechecked: int = 0
    # Disk patch-cache counters (zero unless patch_cache_dir is set).
    patch_disk_hits: int = 0
    patch_disk_writes: int = 0
    # Bounded-admission counter (zero unless max_resident_tenants set).
    admissions_rejected: int = 0
    # Elastic memory counters (zero unless an elastic knob is on).
    partitions_shrunk: int = 0
    bytes_reclaimed: int = 0
    tenants_compacted: int = 0
    bytes_compacted: int = 0
    swaps_out: int = 0
    swaps_in: int = 0
    bytes_swapped_out: int = 0
    bytes_swapped_in: int = 0


@dataclass(frozen=True)
class _ModuleImage:
    """Everything needed to replay one module load on another node.

    ``handles`` are the client handles this load handed out (reused
    verbatim on restore so the client's handles stay valid);
    ``global_offsets`` pin each ``.global`` symbol's placement
    *relative to the partition base*, so the restore can re-load the
    module with its statics exactly where the migrated partition bytes
    already put their contents.
    """

    ptx_text: str
    patched_text: str
    reports: tuple
    #: kernel name -> client handle.
    handles: tuple[tuple[str, int], ...]
    #: global symbol name -> offset from the partition base.
    global_offsets: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class TenantSnapshot:
    """A quiesced tenant, ready to be replayed onto another server.

    Produced by :meth:`GuardianServer.snapshot_tenant` after draining
    the tenant's stream; consumed by
    :meth:`GuardianServer.restore_tenant`. All addresses inside are
    partition-relative (heap state, global offsets) except
    ``source_base``, kept so the cluster client can translate the
    tenant's still-held absolute pointers.
    """

    app_id: str
    size: int
    source_base: int
    #: Bounds-table epoch at snapshot time (the fast-launch memo's
    #: validity token on the source; informational after restore — the
    #: target re-publishes its own record at a fresh epoch).
    bounds_epoch: int
    #: The partition's bytes, in full.
    data: bytes
    heap_free: tuple[tuple[int, int], ...]
    heap_live: tuple[tuple[int, int], ...]
    modules: tuple[_ModuleImage, ...]
    next_handle: int
    #: Launch fast-path memo state (epoch it was memoised at, or None).
    #: Recorded for completeness; restore starts the memo cold because
    #: the target node's epoch counter is unrelated to the source's.
    fast_launch_epoch: Optional[int]
    fencing_mode: str
    incarnation: int
    #: The tenant's modelled L2 residency (partition-relative line
    #: addresses, MRU-first per set). The restore installs them at the
    #: new base — the migration copy lands through L2, like a real
    #: PCIe DMA — so post-migration kernel timing is bit-identical to
    #: a never-migrated run instead of paying a spurious cold-cache
    #: penalty the tenant's own history doesn't justify.
    l2_lines: tuple[int, ...] = ()


@dataclass
class _Tenant:
    app_id: str
    stream: Stream
    #: client handle -> (sandboxed CUfunction, native CUfunction)
    functions: dict[int, tuple] = field(default_factory=dict)
    handle_counter: "itertools.count" = field(
        default_factory=lambda: itertools.count(0x4000)
    )
    patch_reports: list[PatchReport] = field(default_factory=list)
    #: Launch fast path memo: (bounds-table epoch, fencing values).
    #: Stale whenever the epoch no longer matches the table's.
    fast_launch: Optional[tuple[int, list]] = None
    #: Replayable module loads, in load order (migration feedstock).
    modules: list[_ModuleImage] = field(default_factory=list)
    #: Monotone per-app_id attach generation; a quarantine request
    #: carrying a stale incarnation is a no-op (the tenant it targeted
    #: is already gone and a new instance took the name).
    incarnation: int = 0


@dataclass
class _Lane:
    """Per-tenant dispatch-lane accounting (concurrency mode only).

    A lane is pure bookkeeping: ``clock`` is the lane-local instant at
    which the tenant's last host-side work completed, ``busy`` the
    total work executed on the lane's behalf, ``critical``/``stalled``
    the portions spent inside — and waiting for — the shared critical
    section. The sum of every lane's ``busy`` equals ``stats.cycles``
    (work is conserved); the max of their clocks is the makespan.
    """

    app_id: str
    clock: float = 0.0
    busy: float = 0.0
    critical: float = 0.0
    stalled: float = 0.0
    ops: int = 0


class GuardianServer:
    """The trusted GPU manager process."""

    def __init__(
        self,
        device: Device,
        mode: FencingMode = FencingMode.BITWISE,
        costs: Optional[ServerCostModel] = None,
        standalone_native: bool = False,
        config: Optional[ServerConfig] = None,
    ):
        self.device = device
        self.mode = mode
        self.costs = costs or ServerCostModel()
        self.standalone_native = standalone_native
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        # The telemetry spine (None = knob off, the stock server).
        # Channels, the supervisor, the device and the cluster all
        # resolve this attribute, so one deployment shares one tracer
        # clock and one registry.
        self.telemetry: Optional[Telemetry] = (
            Telemetry(self.config.telemetry_capacity)
            if self.config.telemetry else None
        )
        if self.telemetry is not None:
            device.telemetry = self.telemetry
        # Hot-path caches (None = knob off, seed behaviour). In
        # concurrency mode the cache is the thread-safe variant because
        # the patch pool's workers share it; a configured
        # ``patch_cache_dir`` backs the cache with the on-disk store
        # (itself lock-protected, so it serves both modes) and implies
        # the cache even if ``enable_patch_cache`` wasn't set.
        patch_caching = (
            self.config.enable_patch_cache
            or self.config.patch_cache_dir is not None
        )
        if not patch_caching:
            self._patch_cache: Optional[PatchCache] = None
        elif self.config.patch_cache_dir is not None:
            self._patch_cache = DiskPatchCache(
                self.config.patch_cache_dir,
                self.config.patch_cache_capacity,
            )
        elif self.config.concurrency:
            self._patch_cache = ThreadSafePatchCache(
                self.config.patch_cache_capacity
            )
        else:
            self._patch_cache = PatchCache(self.config.patch_cache_capacity)
        self._extract_cache: Optional[dict] = (
            {} if patch_caching else None
        )
        # The trace-specialization engine (None = knob off). Exposed as
        # a public attribute so the IPC channel — possibly through a
        # supervising wrapper's attribute fall-through — can drive its
        # client-side marshal shadow cursor off the active trace.
        self.trace_engine: Optional[TraceEngine] = (
            TraceEngine(self)
            if self.config.enable_trace_specialization else None
        )
        self._clock_ratio = device.spec.clock_ghz / CPU_GHZ
        # Concurrent-dispatch state (inert while the knob is off).
        self._concurrent = self.config.concurrency
        self._lane_policy = lane_scheduling_policy(self.config.lane_policy)
        self._lanes: dict[str, _Lane] = {}
        self._retired_lanes: list[_Lane] = []
        self._active_lane: Optional[_Lane] = None
        self._critical_clock = 0.0
        self._coalesce = self.config.coalesce_transfer_checks
        #: app_id -> run-kind -> (record, next expected address).
        self._check_runs: dict[str, dict[str, tuple]] = {}
        # The server's driver: single context, PTX JIT forced so the
        # patched PTX always wins over embedded cuBINs.
        self.driver = DriverAPI(device, force_ptx_jit=True)
        self.context = self.driver.cuCtxCreate("guardian-server")
        # Reserve *all* remaining device memory for partitioning.
        reserve = device.allocator.bytes_free
        base = device.allocator.allocate(reserve)
        self.context.allocations.add(base)
        # Bitwise fencing needs power-of-two, size-aligned partitions;
        # modulo and checking accept arbitrary sizes (§4.4) — which is
        # exactly the capability their benchmarks exercise.
        self.allocator = GuardianAllocator(
            base, reserve,
            require_power_of_two=mode.requires_power_of_two
            or mode is FencingMode.NONE,
        )
        self.patcher = PTXPatcher(mode)
        # The parallel patch front-end exists only in concurrency mode;
        # it shares the (thread-safe) patch cache so its results are
        # visible to every tenant's later registrations.
        self._parallel_patcher: Optional[ParallelPatcher] = (
            ParallelPatcher(
                self.patcher,
                cache=self._patch_cache,
                workers=self.config.patch_workers,
            )
            if self._concurrent else None
        )
        self._tenants: dict[str, _Tenant] = {}
        #: app_id -> attach generation (see _Tenant.incarnation).
        self._incarnations: dict[str, int] = {}
        # The elastic memory engine (None = all elastic knobs off, the
        # stock server). Constructed last: the engine reads the
        # allocator and telemetry attributes above.
        if (self.config.enable_shrink
                or self.config.enable_compaction
                or self.config.enable_oversubscription):
            from repro.core.elastic import ElasticMemoryEngine

            self.elastic: Optional[ElasticMemoryEngine] = (
                ElasticMemoryEngine(self)
            )
        else:
            self.elastic = None

    # -- tenant lifecycle (not IPC-charged: happens once at attach) -----------

    def _next_incarnation(self, app_id: str) -> int:
        generation = self._incarnations.get(app_id, 0) + 1
        self._incarnations[app_id] = generation
        return generation

    def attach(self, app_id: str, max_bytes: int):
        """Register a tenant: carve its partition, create its stream.

        With ``max_resident_tenants`` configured, a full house rejects
        the newcomer *before* any state is created — the bounded
        admission queue the open-loop load generator sheds against.
        """
        if app_id in self._tenants:
            raise GuardianError(f"app {app_id!r} already attached")
        limit = self.config.max_resident_tenants
        if limit is not None and len(self._tenants) >= limit:
            self.stats.admissions_rejected += 1
            raise AdmissionRejected(app_id, len(self._tenants), limit)
        self.allocator.create_partition(app_id, max_bytes)
        if self.trace_engine is not None:
            # A re-used app name starts its trace life cold; nothing
            # recorded by a previous incarnation may replay.
            self.trace_engine.forget(app_id)
        tenant = _Tenant(
            app_id=app_id,
            stream=self.driver.cuStreamCreate(self.context),
            incarnation=self._next_incarnation(app_id),
        )
        self._tenants[app_id] = tenant
        if self.elastic is not None:
            # Recency bookkeeping only (never charged): a tenant that
            # never launches still has a well-defined LRU age.
            self.elastic.note_use(app_id)
        if self._concurrent:
            # A fresh lane starts at the critical clock: attaching is a
            # bounds-table write, so the newcomer orders after whatever
            # serialized work is already in flight.
            self._lanes[app_id] = _Lane(
                app_id=app_id, clock=self._critical_clock
            )
            self._active_lane = self._lanes[app_id]
        return None, self.costs.dispatch

    def detach(self, app_id: str):
        """Tear a tenant down: drain and destroy its stream, drop its
        module/function handles, release its partition."""
        self._enter(app_id)
        if self.trace_engine is not None:
            self.trace_engine.forget(app_id)
        if self.elastic is not None:
            self.elastic.forget(app_id)
        tenant = self._tenants.pop(app_id, None)
        if tenant is not None:
            # Submitted work keeps its functional effects (the deferred
            # timeline model); the drain records what the detach waited
            # on, then the stream's driver state is freed.
            self.stats.sync_drained_tasks += self.driver.cuStreamSynchronize(
                tenant.stream
            )
            self.driver.cuStreamDestroy(self.context, tenant.stream)
            self.stats.streams_destroyed += 1
            tenant.functions.clear()
            tenant.patch_reports.clear()
            tenant.modules.clear()
            tenant.fast_launch = None
        self.allocator.release_partition(app_id)
        self._retire_lane(app_id)
        return None, self.costs.dispatch

    def grow_partition(self, app_id: str, new_max_bytes: int):
        """Dynamic partition resizing (the paper's future-work item).

        In-place buddy growth: the tenant's base address — and with it
        every pointer the tenant holds — is unchanged; only the mask
        widens, which subsequent launches pick up automatically from
        the refreshed bounds-table record.
        """
        self._enter(app_id)
        self._tenant(app_id)  # must be attached
        if self.trace_engine is not None:
            # Eager: the grow bumps the bounds epoch, so anything
            # recorded or compiled against the old record is stale now,
            # not merely at the next block entry's guard check.
            self.trace_engine.invalidate(app_id)
        partition = self.allocator.grow_partition(app_id, new_max_bytes)
        # A grow rewrites the tenant's bounds record — a serialization
        # point every lane must order against.
        self._charge(self.costs.malloc, critical=True)
        return partition.size, self.costs.malloc

    def shrink_partition(self, app_id: str):
        """Opportunistic elastic shrink (inverse of
        :meth:`grow_partition`, DESIGN.md §14; knob-gated).

        Releases upper buddy halves while the tenant's heap high-water
        mark fits below: base unchanged, mask narrows, bounds record
        republished under a fresh epoch. Returns the (possibly
        unchanged) partition size; a partition that cannot shrink
        charges nothing.
        """
        self._enter(app_id)
        self._tenant(app_id)  # must be attached
        if self.elastic is None or not self.config.enable_shrink:
            raise GuardianError(
                "partition shrink requires ServerConfig.enable_shrink"
            )
        return self.elastic.shrink(app_id)

    @property
    def tenant_count(self) -> int:
        return len(self._tenants)

    def _tenant(self, app_id: str) -> _Tenant:
        try:
            return self._tenants[app_id]
        except KeyError:
            raise GuardianError(f"app {app_id!r} is not attached") from None

    # -- memory management (served from the tenant's partition) ----------------

    def malloc(self, app_id: str, size: int):
        self._enter(app_id)
        address = self.allocator.malloc(app_id, size)
        cycles = self.costs.malloc + self.costs.driver.malloc
        # Allocator mutations serialize across lanes.
        self._charge(cycles, critical=True)
        return address, cycles

    def free(self, app_id: str, address: int):
        self._enter(app_id)
        self.allocator.free(app_id, address)
        cycles = self.costs.free + self.costs.driver.free
        self._charge(cycles, critical=True)
        return None, cycles

    # -- checked transfers (§4.2.2) ----------------------------------------------

    def memcpy_h2d(self, app_id: str, dst: int, data: bytes,
                   stream_id: int = 0):
        self._enter(app_id)
        if self.trace_engine is not None:
            replayed = self.trace_engine.offer(
                app_id, h2d_signature(dst, len(data)), payload=data
            )
            if replayed is not None:
                return replayed
        record = self.allocator.bounds.read(app_id)
        cycles = self._check_range(app_id, record, dst, len(data),
                                   "H2D destination", run="h2d")
        tenant = self._tenant(app_id)
        cycles += self._charge(self.costs.driver.memcpy)
        self.driver.cuMemcpyHtoD(tenant.stream, dst, data, tag=app_id,
                                 release_cycles=self._release())
        return None, cycles

    def memcpy_d2h(self, app_id: str, src: int, size: int,
                   stream_id: int = 0):
        self._enter(app_id)
        record = self.allocator.bounds.read(app_id)
        cycles = self._check_range(app_id, record, src, size, "D2H source",
                                   run="d2h")
        tenant = self._tenant(app_id)
        cycles += self._charge(self.costs.driver.memcpy)
        data = self.driver.cuMemcpyDtoH(tenant.stream, src, size, tag=app_id,
                                        release_cycles=self._release())
        return data, cycles

    def memcpy_d2d(self, app_id: str, dst: int, src: int, size: int,
                   stream_id: int = 0):
        self._enter(app_id)
        if self.trace_engine is not None:
            replayed = self.trace_engine.offer(
                app_id, d2d_signature(dst, src, size)
            )
            if replayed is not None:
                return replayed
        record = self.allocator.bounds.read(app_id)
        cycles = self._check_range(app_id, record, src, size, "D2D source",
                                   run="d2d:src")
        cycles += self._check_range(app_id, record, dst, size,
                                    "D2D destination", run="d2d:dst")
        tenant = self._tenant(app_id)
        cycles += self._charge(self.costs.driver.memcpy)
        self.driver.cuMemcpyDtoD(tenant.stream, dst, src, size, tag=app_id,
                                 release_cycles=self._release())
        return None, cycles

    def memset(self, app_id: str, dst: int, value: int, size: int,
               stream_id: int = 0):
        self._enter(app_id)
        if self.trace_engine is not None:
            replayed = self.trace_engine.offer(
                app_id, memset_signature(dst, value, size)
            )
            if replayed is not None:
                return replayed
        record = self.allocator.bounds.read(app_id)
        cycles = self._check_range(app_id, record, dst, size,
                                   "memset destination", run="memset")
        tenant = self._tenant(app_id)
        cycles += self._charge(self.costs.driver.memcpy)
        self.driver.cuMemsetD8(tenant.stream, dst, value, size, tag=app_id,
                               release_cycles=self._release())
        return None, cycles

    def _check_range(self, app_id: str, record, address: int, size: int,
                     what: str, run: Optional[str] = None) -> float:
        """Charge and return one range check's cost.

        Charging happens here and nowhere else, so a handler's returned
        total (the sum of its ``_check_range``/``_charge`` returns)
        always equals the ``stats.cycles`` delta it caused — including
        on the violation path, where the check is charged and then the
        transfer is fenced off before any driver work.

        With ``coalesce_transfer_checks`` on, contiguous chunked ranges
        of one operation kind (``run``) against one partition record
        collapse into a single charged check per run: an extension that
        starts exactly where the previous chunk ended still evaluates
        the containment predicate (safety is unchanged) but skips the
        ``transfer_check`` charge. Any discontinuity — or any bounds
        mutation, which replaces the record object — starts a new run.
        """
        if run is not None and self._coalesce:
            runs = self._check_runs.setdefault(app_id, {})
            memo = runs.get(run)
            if (
                memo is not None
                and memo[0] is record
                and memo[1] == address
                and record.contains(address, size)
            ):
                runs[run] = (record, address + size)
                self.stats.checks_coalesced += 1
                return 0.0
        self.stats.transfers_checked += 1
        with maybe_span(self.telemetry, "bounds_check", "bounds", app_id,
                        what=what, address=address, size=size) as span:
            cost = self._charge(self.costs.transfer_check)
            contained = record.contains(address, size)
            if span is not None:
                span.attrs["ok"] = contained
        if not contained:
            self.stats.transfers_rejected += 1
            raise BoundsViolation(app_id, address, size, detail=what)
        if run is not None and self._coalesce:
            self._check_runs.setdefault(app_id, {})[run] = (
                record, address + size
            )
        return cost

    # -- device code deployment (offline phase, §4.3) ------------------------------

    def register_fatbin(self, app_id: str, fatbin: FatBinary):
        """Extract, patch, and load a tenant binary's kernels.

        Returns kernel-name -> client handle. Both the sandboxed and
        the native variant are loaded so the server can pick per
        launch.
        """
        self._enter(app_id)
        tenant = self._tenant(app_id)
        with maybe_span(self.telemetry, "extract_ptx", "patch", app_id,
                        fatbin=fatbin.name):
            ptx_texts, cycles = self._extract_ptx(fatbin)
        if not ptx_texts:
            raise GuardianError(
                f"fatbin {fatbin.name!r} carries no PTX; Guardian "
                f"cannot sandbox cuBIN-only binaries"
            )
        with maybe_span(self.telemetry, "patch_ptx", "patch", app_id,
                        texts=len(ptx_texts)):
            patched, patch_cycles = self._patch_texts(ptx_texts)
        cycles += patch_cycles
        handles: dict[str, int] = {}
        for ptx_text, (patched_text, reports) in zip(ptx_texts, patched):
            handles.update(
                self._load_modules(tenant, ptx_text, patched_text, reports)
            )
        return handles, self.costs.dispatch + cycles

    def load_module_ptx(self, app_id: str, ptx_text: str):
        """Explicit PTX load (the driver-API path some apps use)."""
        self._enter(app_id)
        tenant = self._tenant(app_id)
        with maybe_span(self.telemetry, "patch_ptx", "patch", app_id,
                        texts=1):
            handles, cycles = self._load_ptx_pair(tenant, ptx_text)
        return handles, self.costs.dispatch + cycles

    def _extract_ptx(self, fatbin: FatBinary) -> tuple[list[str], float]:
        """``cuobjdump`` extraction, memoised on fatBIN content when
        the patch cache is enabled. Returns (texts, charged cycles)."""
        if self._extract_cache is None:
            return cuobjdump(fatbin), self._patch_charge(self.costs.extract)
        key = fatbin.content_key()
        cached = self._extract_cache.get(key)
        if cached is not None:
            self.stats.extract_cache_hits += 1
            return list(cached), self._patch_charge(
                self.costs.extract_lookup
            )
        ptx_texts = cuobjdump(fatbin)
        self._extract_cache[key] = tuple(ptx_texts)
        self.stats.extract_cache_misses += 1
        return ptx_texts, self._patch_charge(self.costs.extract)

    def _patch_text(self, ptx_text: str) -> tuple[str, list, float]:
        """Patch one PTX text, through the content-addressed cache when
        enabled. Returns (patched text, reports, charged cycles).

        A cache hit shares the patched text *and* the report list by
        reference across tenants — both are immutable once produced.
        """
        if self._parallel_patcher is not None:
            return self._patch_one_pooled(ptx_text)
        if self._patch_cache is not None:
            probe = getattr(self._patch_cache, "get_with_source", None)
            if probe is not None:
                cached, tier = probe(ptx_text, self.mode)
            else:
                cached, tier = (
                    self._patch_cache.get(ptx_text, self.mode), "memory"
                )
            if cached is not None:
                self.stats.patch_cache_hits += 1
                patched_text, reports = cached
                if tier == "disk":
                    # Found in the persistent store: charged as a disk
                    # lookup (deserialize + promote), still far cheaper
                    # than a parse+patch pass.
                    self.stats.patch_disk_hits += 1
                    return patched_text, reports, self._patch_charge(
                        self.costs.patch_disk_lookup
                    )
                return patched_text, reports, self._patch_charge(
                    self.costs.patch_lookup
                )
            patched_text, reports = self.patcher.patch_text(ptx_text)
            writes_before = getattr(self._patch_cache, "disk_writes", 0)
            self.stats.patch_cache_evictions += self._patch_cache.put(
                ptx_text, self.mode, patched_text, reports
            )
            self.stats.patch_disk_writes += (
                getattr(self._patch_cache, "disk_writes", 0) - writes_before
            )
            self.stats.patch_cache_misses += 1
            return patched_text, reports, self._patch_charge(
                self.costs.patch_module
            )
        patched_text, reports = self.patcher.patch_text(ptx_text)
        return patched_text, reports, self._patch_charge(
            self.costs.patch_module
        )

    def _patch_one_pooled(self, ptx_text: str) -> tuple[str, list, float]:
        """One text through the single-flight parallel patch front-end
        (concurrency mode). Same stats/charging contract as the serial
        cache path; an in-flight join counts as a hit — one patch ran
        somewhere, and only that one is charged a ``patch_module``."""
        patcher = self._parallel_patcher
        evictions_before = patcher.evictions
        writes_before = getattr(self._patch_cache, "disk_writes", 0)
        outcome = patcher.patch(ptx_text)
        self.stats.patch_cache_evictions += (
            patcher.evictions - evictions_before
        )
        self.stats.patch_disk_writes += (
            getattr(self._patch_cache, "disk_writes", 0) - writes_before
        )
        if outcome.source == "patched":
            if self._patch_cache is not None:
                self.stats.patch_cache_misses += 1
            charged = self._patch_charge(
                self.costs.patch_module, critical=True
            )
        elif outcome.source == "disk":
            self.stats.patch_cache_hits += 1
            self.stats.patch_disk_hits += 1
            charged = self._patch_charge(self.costs.patch_disk_lookup)
        else:
            self.stats.patch_cache_hits += 1
            if outcome.source == "join":
                self.stats.patch_inflight_joins += 1
            charged = self._patch_charge(self.costs.patch_lookup)
        return outcome.patched_text, outcome.reports, charged

    def _patch_texts(self, ptx_texts: list[str]
                     ) -> tuple[list[tuple[str, list]], float]:
        """Patch one deployment's texts; returns ``([(patched_text,
        reports), ...], charged cycles)`` in input order.

        Serial mode delegates to :meth:`_patch_text` per text. In
        concurrency mode cold texts fan out across the patch pool: the
        *charged span* is the pool's critical path — ``ceil(cold /
        workers)`` rounds of ``patch_module`` — while ``stats.cycles``
        still absorbs the full ``cold × patch_module`` of work (work is
        conserved; only the lane clock advances by the shorter span).
        """
        patcher = self._parallel_patcher
        if patcher is None or len(ptx_texts) <= 1:
            results: list[tuple[str, list]] = []
            charged = 0.0
            for ptx_text in ptx_texts:
                patched_text, reports, cycles = self._patch_text(ptx_text)
                results.append((patched_text, reports))
                charged += cycles
            return results, charged
        evictions_before = patcher.evictions
        writes_before = getattr(self._patch_cache, "disk_writes", 0)
        outcomes = patcher.patch_many(ptx_texts)
        self.stats.patch_cache_evictions += (
            patcher.evictions - evictions_before
        )
        self.stats.patch_disk_writes += (
            getattr(self._patch_cache, "disk_writes", 0) - writes_before
        )
        hits = 0
        disk_hits = 0
        cold = 0
        for outcome in outcomes:
            if outcome.source == "patched":
                cold += 1
                if self._patch_cache is not None:
                    self.stats.patch_cache_misses += 1
            elif outcome.source == "disk":
                disk_hits += 1
                self.stats.patch_cache_hits += 1
                self.stats.patch_disk_hits += 1
            else:
                hits += 1
                self.stats.patch_cache_hits += 1
                if outcome.source == "join":
                    self.stats.patch_inflight_joins += 1
        charged = 0.0
        if hits:
            charged += self._patch_charge(self.costs.patch_lookup * hits)
        if disk_hits:
            charged += self._patch_charge(
                self.costs.patch_disk_lookup * disk_hits
            )
        if cold:
            rounds = -(-cold // patcher.workers)
            charged += self._patch_charge(
                self.costs.patch_module * rounds,
                critical=True,
                work=self.costs.patch_module * cold,
            )
        return [
            (outcome.patched_text, outcome.reports) for outcome in outcomes
        ], charged

    def _patch_charge(self, cycles: float, critical: bool = False,
                      work: Optional[float] = None) -> float:
        """Offline-phase work is only accounted when the config says
        so — the paper keeps patching out of the measured hot path."""
        if not self.config.charge_patch_cycles:
            return 0.0
        return self._charge(cycles, critical=critical, work=work)

    def _load_ptx_pair(self, tenant: _Tenant, ptx_text: str
                       ) -> tuple[dict[str, int], float]:
        patched_text, reports, patch_cycles = self._patch_text(ptx_text)
        handles = self._load_modules(tenant, ptx_text, patched_text, reports)
        return handles, patch_cycles

    def _load_modules(self, tenant: _Tenant, ptx_text: str,
                      patched_text: str, reports: list
                      ) -> dict[str, int]:
        """Load the sandboxed/native module pair for one already-patched
        text and hand out client handles."""
        partition = self.allocator.partition(tenant.app_id)

        def allocate_in_partition(name: str, size: int) -> int:
            return partition.malloc(size)

        tenant.patch_reports.extend(reports)
        self.stats.kernels_patched += sum(
            1 for report in reports if report.is_entry
        )
        sandboxed = self.driver.cuModuleLoadData(
            self.context, patched_text,
            allocate_global=allocate_in_partition,
        )
        # The native variant shares the sandboxed module's .global
        # arrays, so a tenant flipping between them keeps its statics.
        native = self.driver.cuModuleLoadData(
            self.context, ptx_text,
            allocate_global=lambda name, size: (
                sandboxed.global_addresses[name]
            ),
        )
        self.stats.modules_loaded += 2

        handles: dict[str, int] = {}
        for name in sandboxed.kernel_names():
            handle = next(tenant.handle_counter)
            tenant.functions[handle] = (
                self.driver.cuModuleGetFunction(sandboxed, name),
                self.driver.cuModuleGetFunction(native, name),
            )
            handles[name] = handle
        # Record the load so live migration can replay it on another
        # node: same handles, same patched text, globals pinned at the
        # same partition-relative offsets.
        tenant.modules.append(_ModuleImage(
            ptx_text=ptx_text,
            patched_text=patched_text,
            reports=tuple(reports),
            handles=tuple(handles.items()),
            global_offsets=tuple(
                (name, address - partition.base)
                for name, address in sandboxed.global_addresses.items()
            ),
        ))
        return handles

    # -- kernel launch (§4.2.3) -------------------------------------------------------

    def launch_kernel(self, app_id: str, handle: int,
                      grid: tuple, block: tuple, params: list,
                      stream_id: int = 0):
        self._enter(app_id)
        tenant = self._tenant(app_id)
        self._raise_if_wedged(tenant)
        if self.elastic is not None:
            # LRU-by-last-launch input for the swap victim picker;
            # bookkeeping only, charged nothing. Before the trace
            # offer so replayed launches refresh recency too.
            self.elastic.note_use(app_id)
        if self.trace_engine is not None:
            replayed = self.trace_engine.offer(
                app_id, launch_signature(handle, grid, block, params)
            )
            if replayed is not None:
                return replayed
        pair = tenant.functions.get(handle)
        if pair is None:
            raise LaunchError(
                f"app {app_id!r}: unknown kernel handle {handle:#x}"
            )
        sandboxed, native = pair

        use_native = (
            self.standalone_native
            and self.tenant_count == 1
        ) or self.mode is FencingMode.NONE
        if use_native:
            # pointerToSymbol lookup only; no parameter augmentation.
            function = native
            launch_params = list(params)
            self.stats.native_launches += 1
            cycles = float(self.costs.lookup)
        else:
            # Augment the parameter array with this partition's
            # fencing values (mask and base for bitwise, ...).
            extra, cycles = self._launch_extras(tenant)
            launch_params = list(params) + extra
            function = sandboxed

        cycles += self.costs.launch_syscall
        self.stats.launches += 1
        with maybe_span(self.telemetry, "launch", "launch", app_id,
                        handle=handle, native=use_native):
            self._charge(cycles)
        try:
            self.driver.cuLaunchKernel(
                function, grid, block, launch_params, tenant.stream,
                tag=app_id, release_cycles=self._release(),
            )
        except ExecutionError as failure:
            # TReM-style revocation (§4.3, [53]): a runaway or faulting
            # kernel is terminated and reported to its *own* tenant;
            # other tenants' partitions and streams are untouched.
            self.stats.kernels_killed += 1
            raise GuardianError(
                f"tenant {app_id!r}: kernel terminated by the server "
                f"({failure})"
            ) from failure
        return None, cycles

    def _launch_extras(self, tenant: _Tenant) -> tuple[list, float]:
        """Fencing parameter values for a sandboxed launch, plus the
        host cycles to produce them.

        Slow path (paper Table 5): pointerToSymbol lookup + parameter
        array augmentation. Fast path: the tenant's fencing tuple is
        memoised against the bounds table's per-tenant epoch, so a
        steady-state launch pays a single cached probe; any partition
        mutation (grow/release+re-register) bumps the epoch and forces
        a rebuild that picks up the widened mask.
        """
        if self.config.enable_launch_fast_path:
            epoch = self.allocator.bounds.epoch(tenant.app_id)
            memo = tenant.fast_launch
            if memo is not None and memo[0] == epoch:
                self.stats.fastpath_hits += 1
                return memo[1], float(self.costs.lookup_cached)
            record = self.allocator.bounds.read(tenant.app_id)
            extra = record.extra_param_values(self.mode)
            tenant.fast_launch = (epoch, extra)
            self.stats.fastpath_misses += 1
            return extra, float(self.costs.lookup + self.costs.augment)
        record = self.allocator.bounds.read(tenant.app_id)
        extra = record.extra_param_values(self.mode)
        return extra, float(self.costs.lookup + self.costs.augment)

    # -- misc --------------------------------------------------------------------------

    def create_stream(self, app_id: str):
        """Per-tenant stream handle.

        All of a tenant's work funnels through its single server
        stream — the paper's in-order-per-application guarantee
        (§4.2.4) — so extra client streams alias the same server
        stream.
        """
        self._enter(app_id)
        tenant = self._tenant(app_id)
        return tenant.stream.stream_id, self.costs.dispatch

    def synchronize(self, app_id: str):
        """Drain the tenant's stream.

        Functionally every submitted operation already executed (the
        deferred timing model), so the drain records how many pending
        operations the wait covered; their timing is resolved by the
        device's next timeline pass. Unknown tenants are rejected —
        sync is a per-tenant operation, not a broadcast.
        """
        self._enter(app_id)
        tenant = self._tenant(app_id)
        self._raise_if_wedged(tenant)
        if self.trace_engine is not None:
            # Sync delimits trace blocks: closes the recorder's current
            # block (compiling it once stable) or rewinds a fully
            # replayed one.
            self.trace_engine.block_boundary(app_id)
        self.stats.syncs += 1
        self.stats.sync_drained_tasks += self.driver.cuStreamSynchronize(
            tenant.stream
        )
        return None, self.costs.dispatch

    def _raise_if_wedged(self, tenant: _Tenant) -> None:
        """Surface a sticky asynchronous stream fault at an ordering
        point — CUDA's sticky-context-error semantics. Checking a
        healthy stream is a no-cost predicate, so the stock per-op
        costs are unchanged."""
        if tenant.stream.fault is not None:
            self.stats.stream_faults_surfaced += 1
            raise StreamFault(tenant.app_id, tenant.stream.fault)

    # -- quarantine (containment mechanics; policy lives in the supervisor) ----

    def quarantine(self, app_id: str, reason: str = "",
                   incarnation: Optional[int] = None) -> int:
        """Forcibly evict a tenant, leaving nothing reusable behind.

        The containment sequence the TenantSupervisor escalates to:

        1. drain and destroy the tenant's stream (clears any sticky
           fault with it),
        2. drop its module/function handles and launch memo,
        3. **scrub** the partition — zero every byte — before the
           region returns to the free list, so no later tenant can
           read the evicted tenant's data,
        4. release the partition.

        Other tenants are untouched by construction: their bounds
        records (and epochs), partitions, streams and handles are
        separate objects the sequence never reaches — in concurrency
        mode the quarantine drains *one lane*, not the world: the
        victim's lane is retired (its clock still counts toward the
        makespan — the work happened) while sibling lanes, their
        clocks and their check-run memos are never touched. Returns the
        number of bytes scrubbed.

        **Idempotent**: a second quarantine of the same tenant — e.g.
        a supervisor escalation racing a cluster-initiated drain — is
        a no-op (returns 0, no counters move, nothing is re-scrubbed).
        Callers holding a decision made against an earlier view of the
        tenant pass the ``incarnation`` they observed: if the name has
        since been re-attached by a new instance, the stale request is
        ignored rather than evicting the innocent newcomer.
        """
        tenant = self._tenants.get(app_id)
        if tenant is None:
            return 0
        if incarnation is not None and tenant.incarnation != incarnation:
            return 0
        scrubbed = self._teardown_tenant(app_id, scrub=True)
        self.stats.tenants_quarantined += 1
        self.stats.bytes_scrubbed += scrubbed
        return scrubbed

    def _teardown_tenant(self, app_id: str, scrub: bool) -> int:
        """Shared eviction mechanics of quarantine and evacuate: drain
        and destroy the stream, drop handles/memos, release (and
        optionally scrub) the partition, retire the lane. Returns the
        bytes scrubbed (0 when ``scrub`` is off)."""
        scrubbed = 0

        def scrubber(base: int, size: int) -> None:
            nonlocal scrubbed
            self.device.memory.fill(base, size, 0)
            scrubbed = size

        if self.trace_engine is not None:
            self.trace_engine.forget(app_id)
        if self.elastic is not None:
            self.elastic.forget(app_id)
        tenant = self._tenants.pop(app_id)
        self.stats.sync_drained_tasks += self.driver.cuStreamSynchronize(
            tenant.stream
        )
        self.driver.cuStreamDestroy(self.context, tenant.stream)
        self.stats.streams_destroyed += 1
        tenant.functions.clear()
        tenant.patch_reports.clear()
        tenant.modules.clear()
        tenant.fast_launch = None
        self.allocator.release_partition(
            app_id, scrubber=scrubber if scrub else None
        )
        self._retire_lane(app_id)
        return scrubbed

    # -- live migration endpoints (cluster control plane, DESIGN.md §10) -------

    def snapshot_tenant(self, app_id: str) -> TenantSnapshot:
        """Quiesce a tenant and capture everything a peer server needs
        to adopt it: drain the stream (in-order-per-application means a
        drained stream is a consistent cut), then copy the partition
        bytes, the heap's free/live lists (partition-relative), the
        bounds epoch, the module images and the fast-launch memo state.

        The tenant stays attached — snapshotting is read-only — so an
        aborted migration needs no rollback. A wedged stream refuses to
        quiesce: the sticky fault is surfaced instead, and the caller's
        escalation path (quarantine) takes over.
        """
        tenant = self._tenant(app_id)
        self._raise_if_wedged(tenant)
        self.stats.sync_drained_tasks += self.driver.cuStreamSynchronize(
            tenant.stream
        )
        partition = self.allocator.partition(app_id)
        heap_free, heap_live = partition.heap.export_state()
        return TenantSnapshot(
            app_id=app_id,
            size=partition.size,
            source_base=partition.base,
            bounds_epoch=self.allocator.bounds.epoch(app_id),
            data=self.device.memory.read(partition.base, partition.size),
            heap_free=tuple(heap_free),
            heap_live=tuple(heap_live),
            modules=tuple(tenant.modules),
            next_handle=max(tenant.functions, default=0x4000 - 1) + 1,
            fast_launch_epoch=(
                tenant.fast_launch[0]
                if tenant.fast_launch is not None else None
            ),
            fencing_mode=self.mode.value,
            incarnation=tenant.incarnation,
            l2_lines=tuple(
                address - partition.base
                for address in self.device.hierarchy.l2.export_lines(
                    partition.base, partition.base + partition.size
                )
            ),
        )

    def restore_tenant(self, snapshot: TenantSnapshot) -> int:
        """Adopt a snapshotted tenant: carve a partition, write the
        bytes, replant the heap, replay every module load with its
        globals pinned at the recorded partition-relative offsets, and
        re-issue the same client handles. Publishing the new bounds
        record happens inside ``create_partition`` — at the new base,
        under a fresh epoch — so the first post-migration launch
        rebuilds its fencing parameters from the new record (the
        fast-launch memo starts cold by construction). The destination
        trace engine likewise starts the tenant cold: any state a
        same-named tenant left behind here is forgotten, and nothing
        recorded on the source node travels in the snapshot — so a
        specialized trace can never replay against a stale epoch,
        stream, or base address after a migration. Returns the new
        partition base.
        """
        if snapshot.app_id in self._tenants:
            raise MigrationError(
                f"cannot restore {snapshot.app_id!r}: already attached"
            )
        if snapshot.fencing_mode != self.mode.value:
            raise MigrationError(
                f"cannot restore {snapshot.app_id!r}: snapshot fenced "
                f"for {snapshot.fencing_mode!r}, this server runs "
                f"{self.mode.value!r}"
            )
        if len(snapshot.data) != snapshot.size:
            raise MigrationError(
                f"cannot restore {snapshot.app_id!r}: snapshot carries "
                f"{len(snapshot.data)} of {snapshot.size} bytes"
            )
        partition = self.allocator.create_partition(
            snapshot.app_id, snapshot.size
        )
        if self.trace_engine is not None:
            self.trace_engine.forget(snapshot.app_id)
        self.device.memory.write(partition.base, snapshot.data)
        partition.heap = FirstFitAllocator.from_state(
            partition.base, partition.size,
            list(snapshot.heap_free), list(snapshot.heap_live),
        )
        self.device.hierarchy.l2.install_lines(tuple(
            partition.base + offset for offset in snapshot.l2_lines
        ))
        tenant = _Tenant(
            app_id=snapshot.app_id,
            stream=self.driver.cuStreamCreate(self.context),
            incarnation=self._next_incarnation(snapshot.app_id),
        )
        tenant.handle_counter = itertools.count(snapshot.next_handle)
        for image in snapshot.modules:
            self._restore_module(tenant, partition, image)
        self._tenants[snapshot.app_id] = tenant
        if self.elastic is not None:
            self.elastic.note_use(snapshot.app_id)
        if self._concurrent:
            self._lanes[snapshot.app_id] = _Lane(
                app_id=snapshot.app_id, clock=self._critical_clock
            )
            self._active_lane = self._lanes[snapshot.app_id]
        self.stats.tenants_migrated_in += 1
        return partition.base

    def _restore_module(self, tenant: _Tenant, partition,
                        image: _ModuleImage) -> None:
        """Replay one recorded module load with pinned global placement.

        No re-patching: the image carries the already-patched text
        (same text, same mode — the restore precondition), and the
        globals' *contents* arrived with the partition bytes, so the
        loader only needs to agree on their addresses.
        """
        pinned = {
            name: partition.base + offset
            for name, offset in image.global_offsets
        }
        tenant.patch_reports.extend(image.reports)
        sandboxed = self.driver.cuModuleLoadData(
            self.context, image.patched_text,
            allocate_global=lambda name, size: pinned[name],
        )
        native = self.driver.cuModuleLoadData(
            self.context, image.ptx_text,
            allocate_global=lambda name, size: pinned[name],
        )
        self.stats.modules_loaded += 2
        for name, handle in image.handles:
            tenant.functions[handle] = (
                self.driver.cuModuleGetFunction(sandboxed, name),
                self.driver.cuModuleGetFunction(native, name),
            )
        tenant.modules.append(image)

    def evacuate(self, app_id: str, scrub: bool = True) -> int:
        """Source-side epilogue of a completed migration: the tenant
        now lives elsewhere, so tear down its local remains — same
        mechanics as quarantine (the partition is scrubbed before the
        region frees; the bytes moved with the tenant) but counted as a
        migration out, not an eviction. Idempotent like quarantine.
        Returns the bytes scrubbed."""
        if app_id not in self._tenants:
            return 0
        scrubbed = self._teardown_tenant(app_id, scrub=scrub)
        self.stats.tenants_migrated_out += 1
        self.stats.bytes_scrubbed += scrubbed
        return scrubbed

    def get_spec(self, app_id: str):
        self._enter(app_id)
        return self.device.spec, self.costs.dispatch

    def patch_reports(self, app_id: str) -> list[PatchReport]:
        return self._tenant(app_id).patch_reports

    # -- lane accounting (concurrent dispatch, DESIGN.md §7) --------------------

    def _enter(self, app_id: str) -> None:
        """Route the handler's subsequent charges onto ``app_id``'s
        dispatch lane. A no-op in serial mode; unknown tenants simply
        leave no lane active (their handlers raise before charging)."""
        if not self._concurrent:
            return
        lane = self._lanes.get(app_id)
        self._active_lane = lane
        if lane is not None:
            lane.ops += 1

    def _charge(self, cycles: float, critical: bool = False,
                work: Optional[float] = None) -> float:
        """Add host work to the server's busy clock; returns the amount
        so call sites can sum exactly what they charged.

        ``work`` defaults to ``cycles``; the parallel patch path passes
        a larger ``work`` (total cycles executed across the pool) with
        a smaller ``cycles`` span (the pool's critical path), so
        ``stats.cycles`` conserves work while the lane clock advances
        by wall time. ``critical`` charges route through the shared
        critical section: the active lane first waits for the grant
        instant the scheduling policy picks, then occupies the section
        for ``cycles`` — that's how bounds writes, allocator mutations
        and patch-cache misses serialize across lanes.
        """
        work_cycles = cycles if work is None else work
        self.stats.cycles += work_cycles
        lane = self._active_lane
        stalled = 0.0
        if lane is not None:
            lane.busy += work_cycles
            if critical:
                start = max(
                    lane.clock,
                    self._critical_clock,
                    self._lane_policy.grant(
                        lane, self._lanes, self._critical_clock
                    ),
                )
                stalled = start - lane.clock
                lane.stalled += stalled
                lane.clock = start + cycles
                lane.critical += cycles
                self._critical_clock = lane.clock
            else:
                lane.clock += cycles
        telemetry = self.telemetry
        if telemetry is not None:
            # The tracer's cursor mirrors the busy clock: this is the
            # ONLY place it advances, so span durations are exactly
            # the charged work. Critical-section occupancy gets its
            # own span (nested inside the dispatch's call span).
            if critical:
                span = telemetry.tracer.begin(
                    "critical_section", "critical",
                    lane.app_id if lane is not None else "",
                    stalled=stalled,
                )
                telemetry.tracer.advance(work_cycles)
                telemetry.tracer.end(span)
            else:
                telemetry.tracer.advance(work_cycles)
        return cycles

    def _release(self) -> float:
        """Device-clock instant at which the server finished issuing
        the current operation. In serial mode the server processes all
        tenants' calls on one timeline, so releases are monotone across
        tenants — the server-bottleneck effect of §6.1. In concurrency
        mode the release is the *lane's* clock: monotone per tenant,
        which is all the in-order-per-application guarantee needs, and
        precisely what lets independent tenants' device work overlap."""
        if self._active_lane is not None:
            return self._active_lane.clock * self._clock_ratio
        return self.stats.cycles * self._clock_ratio

    def makespan_cycles(self) -> float:
        """Host-side completion time of everything dispatched so far.

        Serial mode: the busy clock itself (sum of all charges).
        Concurrency mode: the critical path — the latest lane clock
        across live *and* retired lanes (quarantined work still
        happened) and the shared section's clock.
        """
        if not self._concurrent:
            return self.stats.cycles
        clocks = [lane.clock for lane in self._lanes.values()]
        clocks.extend(lane.clock for lane in self._retired_lanes)
        clocks.append(self._critical_clock)
        return max(clocks, default=0.0)

    def lanes(self) -> list[_Lane]:
        """Every lane ever created (live first, then retired)."""
        return list(self._lanes.values()) + list(self._retired_lanes)

    def lane_view(self, app_id: str) -> Optional[_Lane]:
        """The tenant's live lane, or None (serial mode / retired)."""
        return self._lanes.get(app_id)

    def _retire_lane(self, app_id: str) -> None:
        """Fold a departing tenant's lane into the retired set and drop
        its coalesced-check memos. Sibling lanes are untouched."""
        self._check_runs.pop(app_id, None)
        lane = self._lanes.pop(app_id, None)
        if lane is not None:
            self._retired_lanes.append(lane)
            self.stats.lanes_retired += 1
            if self._active_lane is lane:
                self._active_lane = None
