"""Exception hierarchy shared across the Guardian reproduction stack.

Every layer of the stack (PTX toolchain, GPU simulator, driver, runtime,
Guardian core) raises exceptions derived from :class:`ReproError` so that
callers can catch layer-specific failures without masking programming
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class PTXError(ReproError):
    """Base class for PTX toolchain errors."""


class PTXParseError(PTXError):
    """The PTX text could not be parsed.

    Carries the 1-based source line number when available.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class PTXValidationError(PTXError):
    """The PTX module parsed but is structurally invalid."""


class GPUError(ReproError):
    """Base class for GPU simulator errors."""


class MemoryFault(GPUError):
    """A kernel or transfer touched an unmapped or foreign address.

    On real hardware this corresponds to an ``Xid`` error / sticky
    context failure. The simulator raises it for accesses outside any
    mapped region of the device address space.
    """

    def __init__(self, address: int, size: int = 1, kind: str = "access"):
        self.address = address
        self.size = size
        self.kind = kind
        super().__init__(
            f"illegal {kind} of {size} byte(s) at 0x{address:x}"
        )


class ExecutionError(GPUError):
    """A kernel failed while executing (bad opcode, missing register...)."""


class LaunchError(GPUError):
    """A kernel launch was rejected (bad configuration, unknown symbol)."""


class DriverError(ReproError):
    """CUDA driver API failure (cu* calls)."""


class RuntimeAPIError(ReproError):
    """CUDA runtime API failure (cuda* calls)."""


class GuardianError(ReproError):
    """Base class for Guardian core failures."""


class PartitionError(GuardianError):
    """Partition creation/resizing failed (capacity, alignment)."""


class AllocationError(GuardianError):
    """An allocation could not be satisfied inside a partition."""


class BoundsViolation(GuardianError):
    """A host-initiated transfer fell outside the tenant's partition.

    Guardian *fences* such transfers: the operation is rejected before it
    reaches the device.
    """

    def __init__(self, app_id: str, address: int, size: int, detail: str = ""):
        self.app_id = app_id
        self.address = address
        self.size = size
        msg = (
            f"tenant {app_id!r}: transfer [0x{address:x}, "
            f"0x{address + size:x}) outside its partition"
        )
        if detail:
            msg = f"{msg} ({detail})"
        super().__init__(msg)


class PatcherError(GuardianError):
    """The PTX patcher could not instrument a kernel."""


class IPCError(GuardianError):
    """The client/server channel failed (closed, protocol mismatch)."""
