"""Exception hierarchy shared across the Guardian reproduction stack.

Every layer of the stack (PTX toolchain, GPU simulator, driver, runtime,
Guardian core) raises exceptions derived from :class:`ReproError` so that
callers can catch layer-specific failures without masking programming
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class PTXError(ReproError):
    """Base class for PTX toolchain errors."""


class PTXParseError(PTXError):
    """The PTX text could not be parsed.

    Carries the 1-based source line number when available.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class PTXValidationError(PTXError):
    """The PTX module parsed but is structurally invalid."""


class GPUError(ReproError):
    """Base class for GPU simulator errors."""


class MemoryFault(GPUError):
    """A kernel or transfer touched an unmapped or foreign address.

    On real hardware this corresponds to an ``Xid`` error / sticky
    context failure. The simulator raises it for accesses outside any
    mapped region of the device address space.
    """

    def __init__(self, address: int, size: int = 1, kind: str = "access"):
        self.address = address
        self.size = size
        self.kind = kind
        super().__init__(
            f"illegal {kind} of {size} byte(s) at 0x{address:x}"
        )


class ExecutionError(GPUError):
    """A kernel failed while executing (bad opcode, missing register...)."""


class StreamFault(GPUError):
    """An asynchronous fault surfaced on a stream.

    Mirrors CUDA's sticky asynchronous errors: the fault is raised at
    the next ordering point (synchronize or launch) after the faulting
    operation, and the stream stays wedged until it is destroyed.
    """

    def __init__(self, app_id: str, reason: str):
        self.app_id = app_id
        self.reason = reason
        super().__init__(
            f"tenant {app_id!r}: asynchronous stream fault ({reason})"
        )


class LaunchError(GPUError):
    """A kernel launch was rejected (bad configuration, unknown symbol)."""


class DriverError(ReproError):
    """CUDA driver API failure (cu* calls)."""


class RuntimeAPIError(ReproError):
    """CUDA runtime API failure (cuda* calls)."""


class GuardianError(ReproError):
    """Base class for Guardian core failures."""


class PartitionError(GuardianError):
    """Partition creation/resizing failed (capacity, alignment)."""


class AllocationError(GuardianError):
    """An allocation could not be satisfied inside a partition."""


class BoundsViolation(GuardianError):
    """A host-initiated transfer fell outside the tenant's partition.

    Guardian *fences* such transfers: the operation is rejected before it
    reaches the device.
    """

    def __init__(self, app_id: str, address: int, size: int, detail: str = ""):
        self.app_id = app_id
        self.address = address
        self.size = size
        msg = (
            f"tenant {app_id!r}: transfer [0x{address:x}, "
            f"0x{address + size:x}) outside its partition"
        )
        if detail:
            msg = f"{msg} ({detail})"
        super().__init__(msg)


class PatcherError(GuardianError):
    """The PTX patcher could not instrument a kernel."""


class IPCError(GuardianError):
    """The client/server channel failed (closed, protocol mismatch)."""


class ChannelClosedError(IPCError):
    """A call was issued on a closed channel.

    Raised instead of a hang or an ``AttributeError`` when a client
    keeps using its channel after ``close()``/``abort()`` — the defined
    behaviour for the dead-client case.
    """

    def __init__(self, app_id: str, detail: str = ""):
        self.app_id = app_id
        msg = f"channel of app {app_id!r} is closed"
        if detail:
            msg = f"{msg} ({detail})"
        super().__init__(msg)


class AdmissionRejected(GuardianError):
    """The server's bounded admission gate turned a tenant away.

    Raised by ``attach`` when ``ServerConfig.max_resident_tenants`` is
    set and the server is already at capacity — the backpressure signal
    the open-loop load generator reacts to by shedding the session.
    Nothing about the rejected tenant was created: no partition, no
    stream, no bounds record, so resident tenants are untouched.
    """

    def __init__(self, app_id: str, resident: int, limit: int):
        self.app_id = app_id
        self.resident = resident
        self.limit = limit
        super().__init__(
            f"app {app_id!r} rejected at admission: {resident} resident "
            f"tenant(s) at the configured limit of {limit}"
        )


class QueueSaturated(IPCError):
    """A bounded IPC queue was full and its overflow policy is shed.

    Raised by the client channel when ``queue_limit`` is set with
    ``shed_overflow`` and an asynchronous call arrives while the queue
    already holds ``queue_limit`` entries. The call never reached the
    server; the caller decides whether to retry, back off, or drop.
    """

    def __init__(self, app_id: str, method: str, limit: int):
        self.app_id = app_id
        self.method = method
        self.limit = limit
        super().__init__(
            f"tenant {app_id!r}: {method} shed — IPC queue at its "
            f"limit of {limit}"
        )


class TransientIPCFault(IPCError):
    """A message-queue crossing failed in a retryable way (dropped or
    corrupted message). The TenantSupervisor retries these with backoff
    before surfacing an :class:`IPCError` to the tenant."""

    def __init__(self, app_id: str, op: str, kind: str, attempts: int):
        self.app_id = app_id
        self.op = op
        self.kind = kind
        self.attempts = attempts
        super().__init__(
            f"tenant {app_id!r}: {op} lost to IPC fault {kind!r} after "
            f"{attempts} attempt(s)"
        )


class ClientCrashed(GuardianError):
    """The client process died mid-call (fault injection's model of a
    tenant crash). The channel is left with whatever batch was pending;
    the server side reaps the tenant via quarantine."""

    def __init__(self, app_id: str, op: str):
        self.app_id = app_id
        self.op = op
        super().__init__(f"client {app_id!r} crashed during {op!r}")


class MigrationError(GuardianError):
    """A live tenant migration could not complete (snapshot truncated,
    incompatible fencing mode, no capacity on the target). The tenant
    is left attached to its source node; migration is all-or-nothing."""


class NodeDown(GuardianError):
    """The node serving this tenant has crashed: its device memory is
    gone and nothing can be recovered from it. Raised by the cluster
    client when a call targets a dead node."""

    def __init__(self, app_id: str, node_id: str):
        self.app_id = app_id
        self.node_id = node_id
        super().__init__(
            f"tenant {app_id!r}: node {node_id!r} is down"
        )


class TenantQuarantined(GuardianError):
    """The tenant exhausted its fault budget and was quarantined: its
    partition reclaimed and scrubbed, its stream drained and destroyed,
    its handles dropped. Every subsequent call fails with this error."""

    def __init__(self, app_id: str, reason: str):
        self.app_id = app_id
        self.reason = reason
        super().__init__(
            f"tenant {app_id!r} is quarantined ({reason})"
        )
