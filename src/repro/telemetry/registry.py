"""A unified metrics registry: counters, gauges, HDR-style histograms.

Every labelled series lives in one named family; the registry owns the
families and renders them all as a Prometheus-style text exposition or
a JSON-safe snapshot. The histogram is HDR-style log-linear: values
land in geometrically spaced buckets (32 per octave, ~2.2% relative
width), so p50/p99/p999 come out of a sparse dict walk with bounded
relative error and O(1) memory per distinct magnitude — no sample
retention.

Everything here is pure bookkeeping on the modelled numbers; nothing
charges cycles (the telemetry-observes-never-charges rule).
"""

from __future__ import annotations

import math
from typing import Optional

#: Sub-buckets per octave: 2**(1/32) growth, ≤2.2% quantile error.
_SUB_BUCKETS = 32
_GROWTH_LOG = _SUB_BUCKETS / math.log(2.0)

#: The quantiles the exposition and reports present.
QUANTILES = ((0.5, "p50"), (0.99, "p99"), (0.999, "p999"))


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _finite(value: float):
    """JSON-safe float (inf/nan become None rather than breaking
    ``json.dumps`` consumers)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class _Family:
    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[tuple, object] = {}

    def series(self) -> list[tuple[dict, object]]:
        return [(dict(key), value) for key, value in self._series.items()]

    def labelled(self, **labels):
        raise NotImplementedError


class Counter(_Family):
    """Monotone event counts per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative inc {amount}")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0.0)


class Gauge(_Family):
    """Last-written values per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(labels)] = float(value)

    def value(self, **labels) -> Optional[float]:
        return self._series.get(_label_key(labels))


class _HistogramSeries:
    """One label set's log-linear bucket counts."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self):
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    @staticmethod
    def _index(value: float) -> int:
        if value < 1.0:
            return 0  # sub-unit values share the zero bucket
        return 1 + int(math.log(value) * _GROWTH_LOG)

    @staticmethod
    def _representative(index: int) -> float:
        if index <= 0:
            return 0.0
        # Geometric midpoint of the bucket's bounds.
        return math.exp((index - 0.5) / _GROWTH_LOG)

    def observe(self, value: float) -> None:
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def quantile(self, q: float) -> float:
        if not self.count:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                # Clamp into the observed range so degenerate series
                # (one value) report exactly that value.
                return min(max(self._representative(index), self.min),
                           self.max)
        return self.max


class Histogram(_Family):
    """HDR-style histograms per label set."""

    kind = "histogram"

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries()
        series.observe(value)

    def quantile(self, q: float, **labels) -> float:
        series = self._series.get(_label_key(labels))
        return series.quantile(q) if series is not None else 0.0

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0


class MetricsRegistry:
    """Named metric families, created on first use.

    Asking for an existing name with a different type is a programming
    error and raises; asking with the same type returns the existing
    family, so ``registry.counter("x").inc()`` is safe from any site.
    """

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._families: dict[str, _Family] = {}

    def _family(self, kind: str, name: str, help: str) -> _Family:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}, not {kind}"
                )
            if help and not family.help:
                family.help = help
            return family
        family = self._KINDS[kind](name, help)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family("counter", name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family("gauge", name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._family("histogram", name, help)

    def families(self) -> list[_Family]:
        return list(self._families.values())

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """JSON-safe dump of every family and series."""
        out = []
        for family in self._families.values():
            series = []
            for labels, value in family.series():
                if isinstance(value, _HistogramSeries):
                    series.append({
                        "labels": labels,
                        "count": value.count,
                        "sum": _finite(value.total),
                        "min": _finite(value.min),
                        "max": _finite(value.max),
                        "quantiles": {
                            name: _finite(value.quantile(q))
                            for q, name in QUANTILES
                        },
                    })
                else:
                    series.append({
                        "labels": labels, "value": _finite(value),
                    })
            out.append({
                "name": family.name,
                "type": family.kind,
                "help": family.help,
                "series": series,
            })
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (histograms as summaries)."""
        lines: list[str] = []
        for family in self._families.values():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            exposition_type = (
                "summary" if family.kind == "histogram" else family.kind
            )
            lines.append(f"# TYPE {family.name} {exposition_type}")
            for labels, value in family.series():
                if isinstance(value, _HistogramSeries):
                    for q, _ in QUANTILES:
                        quantile_labels = dict(labels)
                        quantile_labels["quantile"] = str(q)
                        lines.append(
                            f"{family.name}"
                            f"{_render_labels(quantile_labels)} "
                            f"{_render_value(value.quantile(q))}"
                        )
                    lines.append(
                        f"{family.name}_count{_render_labels(labels)} "
                        f"{value.count}"
                    )
                    lines.append(
                        f"{family.name}_sum{_render_labels(labels)} "
                        f"{_render_value(value.total)}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_render_labels(labels)} "
                        f"{_render_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _render_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
