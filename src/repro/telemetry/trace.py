"""Span tracing on the modelled cycle axis.

A :class:`SpanTracer` records *where the modelled time went*: every
client call opens a span at the IPC dispatch boundary, and the server's
charging sites open nested child spans (critical sections, bounds
checks, patching, launches, fault handling). The tracer's clock is a
cursor on the same axis as ``ServerStats.cycles`` — it advances **only**
when the server charges work (:meth:`SpanTracer.advance`), never by
itself — so a call span's duration is exactly the cycles the call
charged, and the per-tenant span sums reconcile with the server's busy
clock by construction.

Observation is free on the modelled axis: opening and closing spans
never charges cycles, which is how telemetry-on runs stay bit-identical
to telemetry-off runs (the acceptance bar the overhead benchmark pins).

Spans land on a bounded ring buffer (oldest dropped first);
:mod:`repro.telemetry.export` turns the retained spans into
Chrome-trace / Perfetto JSON.
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

#: Default track for spans opened via begin()/end() — the server's
#: single-threaded dispatch path. Raw emit() callers pick their own
#: track (per-client cycle axes, the device timeline, the cluster
#: control plane); each track becomes one Perfetto process row.
SERVER_TRACK = "server"


@dataclass
class Span:
    """One named interval on some cycle axis."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    #: Taxonomy bucket: call | critical | bounds | patch | launch |
    #: fault | queue | device | migration (DESIGN.md §11).
    category: str
    tenant: str
    track: str = SERVER_TRACK
    start: float = 0.0
    end: float = 0.0
    attrs: dict = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return self.end - self.start

    def contains(self, other: "Span") -> bool:
        """Temporal containment (the nesting invariant tests pin)."""
        return self.start <= other.start and other.end <= self.end


class SpanTracer:
    """A bounded ring of finished spans plus the open-span stack."""

    def __init__(self, capacity: int = 65_536):
        if capacity < 1:
            raise ValueError(f"bad span capacity {capacity}")
        self.capacity = capacity
        #: The cycle cursor. Advanced only by :meth:`advance` — i.e. by
        #: the server's ``_charge`` — so span durations are charged
        #: cycles, not wall time.
        self.clock = 0.0
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._stack: list[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        #: Total spans ever finished (ring length + dropped).
        self.spans_finished = 0

    # -- the clock ---------------------------------------------------------------

    def advance(self, cycles: float) -> None:
        """Move the cursor by ``cycles`` of charged work."""
        self.clock += cycles

    def new_trace(self) -> int:
        """A fresh trace id (one per client call, minted at the IPC
        boundary and carried through every span the call produces)."""
        return next(self._trace_ids)

    # -- nested spans (the server dispatch path) ---------------------------------

    def begin(self, name: str, category: str, tenant: str = "",
              trace_id: Optional[int] = None, **attrs) -> Span:
        """Open a span at the current cursor.

        With ``trace_id=None`` the span inherits the enclosing span's
        trace (how a bounds-check span ends up in its call's trace);
        a root span with no trace id mints its own.
        """
        parent = self._stack[-1] if self._stack else None
        if trace_id is None:
            trace_id = parent.trace_id if parent else self.new_trace()
        span = Span(
            trace_id=trace_id,
            span_id=next(self._span_ids),
            parent_id=parent.span_id if parent else None,
            name=name,
            category=category,
            tenant=tenant,
            start=self.clock,
            attrs=dict(attrs),
        )
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close ``span`` at the current cursor and retire it to the
        ring. Closing out of order (an exception unwound past open
        children) closes the children too, at the same instant."""
        while self._stack:
            top = self._stack.pop()
            top.end = self.clock
            self._retire(top)
            if top is span:
                return span
        # Not on the stack (already closed defensively): record as-is.
        span.end = max(span.end, self.clock)
        return span

    @contextmanager
    def span(self, name: str, category: str, tenant: str = "",
             trace_id: Optional[int] = None, **attrs):
        opened = self.begin(name, category, tenant,
                            trace_id=trace_id, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    # -- raw spans (client / device / cluster axes) -------------------------------

    def emit(self, name: str, category: str, tenant: str, track: str,
             start: float, end: float, trace_id: Optional[int] = None,
             parent_id: Optional[int] = None, **attrs) -> Span:
        """Record an already-timed span on an arbitrary track."""
        span = Span(
            trace_id=self.new_trace() if trace_id is None else trace_id,
            span_id=next(self._span_ids),
            parent_id=parent_id,
            name=name,
            category=category,
            tenant=tenant,
            track=track,
            start=start,
            end=end,
            attrs=dict(attrs),
        )
        self._retire(span)
        return span

    def _retire(self, span: Span) -> None:
        self._ring.append(span)
        self.spans_finished += 1

    # -- reads -------------------------------------------------------------------

    def spans(self) -> list[Span]:
        """Retained spans, oldest first."""
        return list(self._ring)

    def spans_for(self, tenant: str) -> list[Span]:
        return [span for span in self._ring if span.tenant == tenant]

    @property
    def spans_dropped(self) -> int:
        """Spans lost to the ring bound."""
        return self.spans_finished - len(self._ring)

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def reset(self) -> None:
        self._ring.clear()
        self._stack.clear()
        self.spans_finished = 0
