"""End-to-end telemetry: span tracing, metrics, exportable timelines.

:class:`Telemetry` bundles one :class:`~repro.telemetry.trace.SpanTracer`
with one :class:`~repro.telemetry.registry.MetricsRegistry` and
pre-declares the metric families the core hook points feed. The
GuardianServer owns one instance when ``ServerConfig.telemetry`` is on
(``server.telemetry`` is ``None`` otherwise — the stock, bit-identical
default); the IPC channel, supervisor, device and cluster all resolve
it through the server so every layer of one deployment shares one
tracer clock and one registry.

The contract every hook honours: **telemetry observes the timeline, it
never charges it.** No hook adds cycles to any modelled clock; the
tracer's cursor only mirrors what ``GuardianServer._charge`` already
charged. The overhead benchmark pins the consequence — identical
host-cycle totals with the knob on and off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QUANTILES,
)
from repro.telemetry.trace import SERVER_TRACK, Span, SpanTracer

__all__ = [
    "Telemetry",
    "SpanTracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "QUANTILES",
    "SERVER_TRACK",
    "maybe_span",
]


class Telemetry:
    """One deployment's tracer + registry, with the core families."""

    def __init__(self, capacity: int = 65_536):
        self.tracer = SpanTracer(capacity)
        self.registry = MetricsRegistry()
        # The families the built-in hook points feed. Declared up
        # front so the exposition is stable even before traffic.
        self.calls = self.registry.counter(
            "guardian_calls_total",
            "forwarded client calls, by tenant and method",
        )
        self.call_latency = self.registry.histogram(
            "guardian_call_latency_cycles",
            "modelled client-visible latency per call "
            "(transport + server work for synchronous calls)",
        )
        self.dispatch_cycles = self.registry.histogram(
            "guardian_dispatch_cycles",
            "server cycles charged per dispatched call",
        )
        self.queue_wait = self.registry.histogram(
            "guardian_queue_wait_cycles",
            "client cycles a batched call waited before its flush",
        )
        self.fault_events = self.registry.counter(
            "guardian_fault_events_total",
            "supervisor failure records, by tenant, kind, action, node",
        )
        self.payload_mutations = self.registry.counter(
            "guardian_payload_mutations_total",
            "injected payload corruptions applied, by kind",
        )
        self.client_crashes = self.registry.counter(
            "guardian_client_crashes_total",
            "client processes that died mid-call",
        )
        self.migrations = self.registry.counter(
            "guardian_migrations_total",
            "live migration attempts, by source, target, outcome",
        )
        # Open-loop load harness families (repro.loadgen, DESIGN.md
        # §13). Fed only by the driver — a deployment that never runs
        # under load carries them declared-but-empty.
        self.sessions = self.registry.counter(
            "loadgen_sessions_total",
            "open-loop sessions, by class and outcome "
            "(completed / shed / rejected / within_slo)",
        )
        self.session_latency = self.registry.histogram(
            "loadgen_session_latency_cycles",
            "modelled open-loop session latency "
            "(queue wait + service), by class",
        )
        self.loadgen_capacity = self.registry.gauge(
            "loadgen_capacity_lanes",
            "service capacity (lanes) after the latest control tick",
        )
        # Elastic memory engine families (repro.core.elastic, DESIGN.md
        # §14). Fed only by the engine — a stock server (no elastic
        # knob on) carries them declared-but-empty.
        self.elastic_ops = self.registry.counter(
            "guardian_elastic_ops_total",
            "elastic memory operations, by op "
            "(shrink / compact / swap_out / swap_in)",
        )
        self.elastic_bytes = self.registry.counter(
            "guardian_elastic_bytes_total",
            "bytes moved or reclaimed by elastic operations, by op",
        )
        self.elastic_fragmentation = self.registry.gauge(
            "guardian_fragmentation_score",
            "largest-carveable / bytes-unpartitioned after the latest "
            "elastic operation (1.0 = nothing stranded)",
        )
        self.elastic_swapped = self.registry.gauge(
            "guardian_swapped_bytes",
            "bytes currently swapped out to host memory",
        )

    # -- hook-point helpers -------------------------------------------------------

    def record_call(self, tenant: str, method: str,
                    latency_cycles: float) -> None:
        self.calls.inc(tenant=tenant, method=method)
        self.call_latency.observe(latency_cycles, tenant=tenant,
                                  method=method)
        # The per-tenant aggregate series is what the p50/p99/p999
        # report renders without a per-method explosion.
        self.call_latency.observe(latency_cycles, tenant=tenant)

    def record_dispatch(self, tenant: str, method: str,
                        server_cycles: float) -> None:
        self.dispatch_cycles.observe(server_cycles, tenant=tenant,
                                     method=method)

    def record_queue_wait(self, tenant: str, waited_cycles: float) -> None:
        self.queue_wait.observe(waited_cycles, tenant=tenant)

    def record_session(self, cls: str, outcome: str,
                       latency_cycles: Optional[float] = None,
                       within_slo: bool = False) -> None:
        """One open-loop session's fate (the loadgen driver's hook).

        ``within_slo`` increments the class's compliance series — the
        goodput numerator — alongside the ``completed`` count;
        ``latency_cycles`` lands in the per-class histogram and the
        all-classes aggregate the latency-under-load report renders.
        """
        self.sessions.inc(cls=cls, outcome=outcome)
        if within_slo:
            self.sessions.inc(cls=cls, outcome="within_slo")
        if latency_cycles is not None:
            self.session_latency.observe(latency_cycles, cls=cls)
            self.session_latency.observe(latency_cycles)

    def record_capacity(self, lanes: int) -> None:
        self.loadgen_capacity.set(lanes)

    def record_elastic_op(self, op: str, nbytes: int) -> None:
        """One elastic memory operation (the engine's hook)."""
        self.elastic_ops.inc(op=op)
        self.elastic_bytes.inc(nbytes, op=op)

    def record_elastic_state(self, score: float,
                             swapped_bytes: int) -> None:
        """The engine's post-operation gauges: fragmentation score and
        host-resident swap bytes."""
        self.elastic_fragmentation.set(score)
        self.elastic_swapped.set(swapped_bytes)

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self, meta: dict | None = None) -> dict:
        """JSON-safe dump of the registry and the retained spans."""
        spans = [
            {
                "name": span.name,
                "category": span.category,
                "tenant": span.tenant,
                "track": span.track,
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "start": span.start,
                "end": span.end,
                "attrs": span.attrs,
            }
            for span in self.tracer.spans()
        ]
        return {
            "meta": dict(meta or {}),
            "metrics": self.registry.snapshot(),
            "spans": spans,
            "spans_dropped": self.tracer.spans_dropped,
            "prometheus": self.registry.render_prometheus(),
        }


@contextmanager
def maybe_span(telemetry: Optional[Telemetry], name: str, category: str,
               tenant: str = "", **attrs):
    """A tracer span when telemetry is on; a no-op when it is None.

    Keeps every hook site a one-liner with zero work on the stock
    path — the hook's only off-mode cost is this None check.
    """
    if telemetry is None:
        yield None
        return
    span = telemetry.tracer.begin(name, category, tenant, **attrs)
    try:
        yield span
    finally:
        telemetry.tracer.end(span)
