"""Exporters: Chrome-trace / Perfetto JSON and snapshot files.

The Chrome trace event format (the JSON ``traceEvents`` array Perfetto
and ``chrome://tracing`` both load) maps onto the tracer's model
directly: each :class:`~repro.telemetry.trace.Span` becomes one
complete ``"X"`` event, each track one process row (with a metadata
``process_name`` event), and each (track, tenant) pair one thread row.
Timestamps are **modelled cycles**, not microseconds — the viewer's
time unit is nominal, the shapes and nesting are what matter.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from repro.telemetry.trace import Span


def to_chrome_trace(spans: Iterable[Span]) -> dict:
    """Build the Chrome-trace JSON object for ``spans``."""
    events: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    for span in spans:
        pid = pids.get(span.track)
        if pid is None:
            pid = pids[span.track] = len(pids) + 1
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": span.track},
            })
        thread_key = (span.track, span.tenant or "<server>")
        tid = tids.get(thread_key)
        if tid is None:
            tid = tids[thread_key] = (
                sum(1 for key in tids if key[0] == span.track) + 1
            )
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": thread_key[1]},
            })
        args = {"trace_id": span.trace_id, "span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "ts": span.start,
            "dur": span.cycles,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "modelled cycles"},
    }


def write_chrome_trace(path: Union[str, Path],
                       spans: Iterable[Span]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(spans), indent=1))
    return path


def dump_snapshot(path: Union[str, Path], telemetry,
                  meta: dict | None = None) -> Path:
    """Write one :class:`~repro.telemetry.Telemetry` snapshot to disk
    (the file ``python -m repro report`` renders)."""
    path = Path(path)
    path.write_text(json.dumps(telemetry.snapshot(meta=meta), indent=1))
    return path


def load_snapshot(path: Union[str, Path]) -> dict:
    return json.loads(Path(path).read_text())
