"""Parser: PTX text to :class:`repro.ptx.ast.Module`.

The grammar covers the subset emitted by ``nvcc``/this toolchain that
Guardian's patcher needs: module directives, ``.global`` declarations,
``.entry``/``.func`` definitions with ``.param`` lists, register/shared
declarations, labels, predicated instructions, both load/store
addressing modes, and ``brx.idx`` target lists.

The parser and :mod:`repro.ptx.emitter` round-trip: parsing emitted text
yields an equal AST. This matters because Guardian extracts PTX with
``cuobjdump`` (text), patches it, and hands text back to the driver JIT.
"""

from __future__ import annotations

import re
import struct
from typing import Union

from repro.errors import PTXParseError
from repro.ptx import isa
from repro.ptx.ast import (
    GlobalDecl,
    Guard,
    Immediate,
    Instruction,
    Kernel,
    Label,
    MemRef,
    Module,
    Operand,
    Param,
    RegDecl,
    Register,
    SharedDecl,
    SpecialReg,
    Symbol,
    TargetList,
)

_LINE_COMMENT = re.compile(r"//[^\n]*")
_BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
_LABEL = re.compile(r"^\s*([$%\w.]+)\s*:\s*")
_HEX_INT = re.compile(r"^[+-]?0[xX][0-9a-fA-F]+$")
_DEC_INT = re.compile(r"^[+-]?\d+$")
_DEC_FLOAT = re.compile(
    r"^[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)$"
)
_HEX_F32 = re.compile(r"^0[fF]([0-9a-fA-F]{8})$")
_HEX_F64 = re.compile(r"^0[dD]([0-9a-fA-F]{16})$")
# Operand tokens must be well-formed identifiers.  Anything else (e.g. a
# bit-flipped byte turning "%rd3" into "(rd3") must fail here with a
# PTXParseError rather than surviving as a Symbol and crashing codegen or
# the JIT later — fault injection relies on parse-time rejection.
_REGISTER_TOKEN = re.compile(r"^%[A-Za-z_$][\w$]*$")
_SYMBOL_TOKEN = re.compile(r"^[A-Za-z_$.][\w$.]*$")


def _strip_comments(text: str) -> str:
    text = _BLOCK_COMMENT.sub(" ", text)
    return _LINE_COMMENT.sub("", text)


def parse_module(text: str) -> Module:
    """Parse PTX source text into a :class:`Module`.

    Raises:
        PTXParseError: on any syntax the subset does not accept.
    """
    return _ModuleParser(_strip_comments(text)).parse()


class _ModuleParser:
    """Single-pass, brace-tracking parser over comment-stripped text."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0

    # -- helpers ----------------------------------------------------------

    def _error(self, message: str) -> PTXParseError:
        line = self._text.count("\n", 0, self._pos) + 1
        return PTXParseError(message, line=line)

    def _skip_ws(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos].isspace():
            self._pos += 1

    def _at_end(self) -> bool:
        self._skip_ws()
        return self._pos >= len(self._text)

    def _read_until(self, stop: str) -> str:
        """Consume and return text up to (excluding) ``stop``."""
        end = self._text.find(stop, self._pos)
        if end < 0:
            raise self._error(f"expected {stop!r}")
        chunk = self._text[self._pos : end]
        self._pos = end + len(stop)
        return chunk

    def _read_balanced_braces(self) -> str:
        """Consume a ``{...}`` block (handles nested braces) and return
        its inner text."""
        self._skip_ws()
        if self._pos >= len(self._text) or self._text[self._pos] != "{":
            raise self._error("expected '{'")
        depth = 0
        start = self._pos + 1
        for index in range(self._pos, len(self._text)):
            char = self._text[index]
            if char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
                if depth == 0:
                    self._pos = index + 1
                    return self._text[start:index]
        raise self._error("unbalanced '{'")

    # -- top level ---------------------------------------------------------

    def parse(self) -> Module:
        module = Module()
        while not self._at_end():
            # Module directives are newline-terminated; .global ends with
            # ';'; a kernel header runs up to its parameter list's '('.
            statement = self._read_until_any((";", "(", "\n")).strip()
            if self._last_stop == "(":
                self._parse_kernel(module, header=statement)
                continue
            if not statement:
                continue
            self._parse_directive(module, statement)
        return module

    def _read_until_any(self, stops: tuple[str, ...]) -> str:
        best = len(self._text)
        best_stop = None
        for stop in stops:
            where = self._text.find(stop, self._pos)
            if 0 <= where < best:
                best = where
                best_stop = stop
        if best_stop is None:
            # Trailing junk without a terminator — treat as one chunk.
            chunk = self._text[self._pos :]
            self._pos = len(self._text)
            self._last_stop = ""
            return chunk
        chunk = self._text[self._pos : best]
        self._pos = best + 1
        self._last_stop = best_stop
        return chunk

    def _parse_directive(self, module: Module, statement: str) -> None:
        tokens = statement.split()
        head = tokens[0]
        if head == ".version":
            module.version = tokens[1]
        elif head == ".target":
            module.target = tokens[1]
        elif head == ".address_size":
            module.address_size = int(tokens[1])
        elif head == ".global" or statement.startswith(".visible .global"):
            module.globals.append(_parse_global(statement))
        else:
            raise self._error(f"unexpected top-level statement {statement!r}")

    # -- kernels ------------------------------------------------------------

    def _parse_kernel(self, module: Module, header: str) -> None:
        tokens = header.split()
        visible = ".visible" in tokens
        if ".entry" in tokens:
            is_entry = True
            name = tokens[tokens.index(".entry") + 1]
        elif ".func" in tokens:
            is_entry = False
            name = tokens[tokens.index(".func") + 1]
        else:
            raise self._error(f"expected .entry or .func in {header!r}")

        params_text = self._read_until(")")
        params = _parse_params(params_text)
        body_text = self._read_balanced_braces()
        kernel = Kernel(
            name=name,
            params=params,
            body=_parse_body(body_text),
            is_entry=is_entry,
            visible=visible,
        )
        module.add(kernel)


def _parse_global(statement: str) -> GlobalDecl:
    match = re.match(
        r"(?:\.visible\s+)?\.global\s+(?:\.align\s+(\d+)\s+)?"
        r"\.(\w+)\s+([\w$]+)\s*(?:\[(\d+)\])?$",
        statement.strip(),
    )
    if not match:
        raise PTXParseError(f"bad .global declaration: {statement!r}")
    align, elem_type, name, count = match.groups()
    return GlobalDecl(
        name=name,
        elem_type=elem_type,
        num_elems=int(count) if count else 1,
        align=int(align) if align else isa.type_width(elem_type),
    )


def _parse_params(text: str) -> list[Param]:
    params: list[Param] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        match = re.match(
            r"\.param\s+(?:\.align\s+\d+\s+)?\.(\w+)\s+([\w$]+)", chunk
        )
        if not match:
            raise PTXParseError(f"bad parameter declaration: {chunk!r}")
        params.append(Param(name=match.group(2), param_type=match.group(1)))
    return params


# --------------------------------------------------------------------------
# Kernel bodies
# --------------------------------------------------------------------------


def _parse_body(text: str) -> list:
    statements: list = []
    pos = 0
    length = len(text)
    while pos < length:
        # Skip whitespace.
        while pos < length and text[pos].isspace():
            pos += 1
        if pos >= length:
            break
        # Labels: identifier followed by ':' (but not a directive).
        label_match = _LABEL.match(text[pos:])
        if label_match and not label_match.group(1).startswith("."):
            statements.append(Label(label_match.group(1)))
            pos += label_match.end()
            continue
        # One statement up to ';', tracking braces for brx target lists.
        end = pos
        depth = 0
        while end < length:
            char = text[end]
            if char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
            elif char == ";" and depth == 0:
                break
            end += 1
        if end >= length:
            raise PTXParseError(f"missing ';' after {text[pos:pos+40]!r}")
        statement_text = text[pos:end].strip()
        pos = end + 1
        if statement_text:
            statements.append(_parse_statement(statement_text))
    return statements


def _parse_statement(text: str):
    if text.startswith(".reg"):
        match = re.match(r"\.reg\s+\.(\w+)\s+([%\w$]+)<(\d+)>$", text)
        if not match:
            raise PTXParseError(f"bad .reg declaration: {text!r}")
        return RegDecl(
            reg_type=match.group(1),
            prefix=match.group(2),
            count=int(match.group(3)),
        )
    if text.startswith(".shared"):
        match = re.match(
            r"\.shared\s+(?:\.align\s+(\d+)\s+)?\.(\w+)\s+([\w$]+)\[(\d+)\]$",
            text,
        )
        if not match:
            raise PTXParseError(f"bad .shared declaration: {text!r}")
        align, elem_type, name, count = match.groups()
        return SharedDecl(
            name=name,
            elem_type=elem_type,
            size_bytes=int(count) * isa.type_width(elem_type),
            align=int(align) if align else isa.type_width(elem_type),
        )
    return _parse_instruction(text)


def _parse_instruction(text: str) -> Instruction:
    guard = None
    if text.startswith("@"):
        match = re.match(r"@(!?)([%\w]+)\s+(.*)$", text, re.DOTALL)
        if not match:
            raise PTXParseError(f"bad guard: {text!r}")
        guard = Guard(register=match.group(2), negated=bool(match.group(1)))
        text = match.group(3).strip()

    match = re.match(r"([\w.]+)\s*(.*)$", text, re.DOTALL)
    if not match:
        raise PTXParseError(f"bad instruction: {text!r}")
    opcode, rest = match.group(1), match.group(2).strip()
    try:
        isa.opcode_info(opcode)
    except KeyError as exc:
        raise PTXParseError(f"unknown opcode in {text!r}: {exc}") from None
    operands = tuple(
        _parse_operand(chunk) for chunk in _split_operands(rest)
    )
    return Instruction(opcode=opcode, operands=operands, guard=guard)


def _split_operands(text: str) -> list[str]:
    if not text:
        return []
    chunks: list[str] = []
    depth = 0
    start = 0
    for index, char in enumerate(text):
        if char in "[{(":
            depth += 1
        elif char in "]})":
            depth -= 1
        elif char == "," and depth == 0:
            chunks.append(text[start:index].strip())
            start = index + 1
    chunks.append(text[start:].strip())
    return [chunk for chunk in chunks if chunk]


def _parse_operand(text: str) -> Operand:
    if text.startswith("["):
        return _parse_memref(text)
    if text.startswith("{"):
        if not text.endswith("}"):
            raise PTXParseError(f"bad target list: {text!r}")
        labels = tuple(
            label.strip() for label in text[1:-1].split(",") if label.strip()
        )
        for label in labels:
            if not _SYMBOL_TOKEN.match(label):
                raise PTXParseError(f"bad target label: {label!r}")
        return TargetList(labels)
    immediate = _try_parse_immediate(text)
    if immediate is not None:
        return immediate
    if text.startswith("%"):
        if text in isa.SPECIAL_REGISTERS:
            return SpecialReg(text)
        if not _REGISTER_TOKEN.match(text):
            raise PTXParseError(f"bad register operand: {text!r}")
        return Register(text)
    if not _SYMBOL_TOKEN.match(text):
        raise PTXParseError(f"bad operand: {text!r}")
    return Symbol(text)


def _parse_memref(text: str) -> MemRef:
    inner = text[1:-1].strip()
    match = re.match(r"([%\w$.]+)\s*(?:([+-])\s*(\d+))?$", inner)
    if not match:
        raise PTXParseError(f"bad memory operand: {text!r}")
    base_text, sign, offset_text = match.groups()
    offset = int(offset_text) if offset_text else 0
    if sign == "-":
        offset = -offset
    base: Union[Register, Symbol]
    if base_text.startswith("%"):
        if not _REGISTER_TOKEN.match(base_text):
            raise PTXParseError(f"bad memory base register: {base_text!r}")
        base = Register(base_text)
    else:
        if not _SYMBOL_TOKEN.match(base_text):
            raise PTXParseError(f"bad memory base symbol: {base_text!r}")
        base = Symbol(base_text)
    return MemRef(base=base, offset=offset)


def _try_parse_immediate(text: str) -> Union[Immediate, None]:
    if _HEX_INT.match(text):
        return Immediate(int(text, 16))
    if _DEC_INT.match(text):
        return Immediate(int(text))
    match = _HEX_F32.match(text)
    if match:
        return Immediate(struct.unpack(">f", bytes.fromhex(match.group(1)))[0])
    match = _HEX_F64.match(text)
    if match:
        return Immediate(struct.unpack(">d", bytes.fromhex(match.group(1)))[0])
    if _DEC_FLOAT.match(text):
        return Immediate(float(text))
    return None
