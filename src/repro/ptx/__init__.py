"""PTX virtual-assembly toolchain.

PTX (Parallel Thread eXecution) is NVIDIA's virtual ISA. It is the one
code representation guaranteed to be present even in closed-source CUDA
libraries (the paper's Table 1), which is why Guardian instruments
kernels at this level.

This package implements a faithful subset of the PTX 7.x text format:

- :mod:`repro.ptx.isa` — opcode, type and state-space tables plus the
  latency class of each opcode (consumed by the GPU cost model);
- :mod:`repro.ptx.ast` — the module/kernel/instruction object model;
- :mod:`repro.ptx.parser` — text to AST;
- :mod:`repro.ptx.emitter` — AST back to text (round-trips with the
  parser);
- :mod:`repro.ptx.validator` — structural validation (declared
  registers, resolvable labels, parameter consistency);
- :mod:`repro.ptx.builder` — a programmatic construction helper used by
  the simulated accelerated libraries to author their kernels.
"""

from repro.ptx.ast import (
    Immediate,
    Instruction,
    Kernel,
    Label,
    MemRef,
    Module,
    Param,
    RegDecl,
    Register,
    SpecialReg,
    Symbol,
)
from repro.ptx.emitter import emit_module
from repro.ptx.parser import parse_module
from repro.ptx.validator import validate_module

__all__ = [
    "Immediate",
    "Instruction",
    "Kernel",
    "Label",
    "MemRef",
    "Module",
    "Param",
    "RegDecl",
    "Register",
    "SpecialReg",
    "Symbol",
    "emit_module",
    "parse_module",
    "validate_module",
]
