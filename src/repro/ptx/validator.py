"""Structural validation of PTX modules.

The driver JIT (:mod:`repro.driver.jit`) validates every module before
accepting it — mirroring ``ptxas``, which rejects malformed PTX. The
paper's threat model leans on this: *direct* branches are safe because
the assembler verifies their labels exist (§3), while ``brx.idx`` index
registers cannot be checked statically and stay unsafe.
"""

from __future__ import annotations

from repro.errors import PTXValidationError
from repro.ptx import isa
from repro.ptx.ast import (
    Instruction,
    Kernel,
    MemRef,
    Module,
    Register,
    SharedDecl,
    Symbol,
    TargetList,
)


def validate_module(module: Module) -> None:
    """Validate every kernel of a module.

    Raises:
        PTXValidationError: naming the kernel and the first defect found.
    """
    names = set(module.kernels)
    global_names = {decl.name for decl in module.globals}
    for kernel in module.kernels.values():
        try:
            _validate_kernel(kernel, callable_names=names,
                             global_names=global_names)
        except PTXValidationError as exc:
            raise PTXValidationError(f"kernel {kernel.name!r}: {exc}") from exc


def _validate_kernel(
    kernel: Kernel,
    callable_names: set[str],
    global_names: set[str],
) -> None:
    declared = kernel.declared_registers()
    labels = kernel.labels()
    param_names = {param.name for param in kernel.params}
    shared_names = {
        statement.name
        for statement in kernel.body
        if isinstance(statement, SharedDecl)
    }
    known_symbols = param_names | shared_names | global_names | callable_names

    for statement in kernel.body:
        if not isinstance(statement, Instruction):
            continue
        _validate_instruction(
            statement, declared, labels, known_symbols
        )


def _validate_instruction(
    instruction: Instruction,
    declared: set[str],
    labels: set[str],
    known_symbols: set[str],
) -> None:
    # Opcode must exist (parser enforces too; builders may not).
    isa.opcode_info(instruction.opcode)

    if instruction.guard is not None:
        if instruction.guard.register not in declared:
            raise PTXValidationError(
                f"guard uses undeclared predicate "
                f"{instruction.guard.register!r}"
            )

    if instruction.base_op == "bra":
        target = instruction.operands[0]
        if not isinstance(target, Symbol) or target.name not in labels:
            raise PTXValidationError(
                f"direct branch to unknown label {target!s}"
            )
        return

    if instruction.base_op == "brx":
        targets = instruction.operands[-1]
        if not isinstance(targets, TargetList):
            raise PTXValidationError("brx.idx requires a target list")
        missing = [name for name in targets.labels if name not in labels]
        if missing:
            raise PTXValidationError(
                f"brx.idx targets unknown labels {missing}"
            )
        return

    for operand in instruction.operands:
        if isinstance(operand, Register):
            if operand.name not in declared:
                raise PTXValidationError(
                    f"{instruction.opcode} uses undeclared register "
                    f"{operand.name!r}"
                )
        elif isinstance(operand, MemRef):
            base = operand.base
            if isinstance(base, Register):
                if base.name not in declared:
                    raise PTXValidationError(
                        f"{instruction.opcode} addresses through "
                        f"undeclared register {base.name!r}"
                    )
            elif base.name not in known_symbols:
                raise PTXValidationError(
                    f"{instruction.opcode} references unknown symbol "
                    f"{base.name!r}"
                )
        elif isinstance(operand, Symbol):
            if instruction.base_op == "call":
                if operand.name not in known_symbols:
                    raise PTXValidationError(
                        f"call to unknown function {operand.name!r}"
                    )
            elif instruction.base_op == "mov":
                # mov may materialise the address of a shared/global
                # symbol into a register.
                if operand.name not in known_symbols:
                    raise PTXValidationError(
                        f"mov of unknown symbol {operand.name!r}"
                    )
