"""PTX instruction-set tables.

The tables here describe the PTX subset the toolchain understands:
scalar types, state spaces, opcodes and — because the GPU simulator
charges cycles per instruction — the *latency class* of each opcode.

Latency classes follow the numbers the paper uses (its §4.4 and Fig. 6,
sourced from Arafa et al. [2] and Jia et al. [23]):

- simple ALU ops (bitwise, add, mov): ~4 cycles;
- multiply / mad: ~5 cycles;
- 32-bit modulo/division (inline): ~28 cycles;
- 64-bit modulo/division via function call: ~2x the 32-bit cost;
- conditional compare+branch through the Address Divergence Unit:
  ~80 cycles;
- loads/stores: variable, resolved by the cache model (L1 28, L2 193,
  global 220-350 cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

# --------------------------------------------------------------------------
# Scalar types
# --------------------------------------------------------------------------

#: Width in bytes of every scalar PTX type the subset supports.
TYPE_WIDTHS: dict[str, int] = {
    "pred": 1,
    "b8": 1, "b16": 2, "b32": 4, "b64": 8,
    "u8": 1, "u16": 2, "u32": 4, "u64": 8,
    "s8": 1, "s16": 2, "s32": 4, "s64": 8,
    "f16": 2, "f32": 4, "f64": 8,
}

#: Types interpreted as signed two's complement integers.
SIGNED_TYPES = frozenset({"s8", "s16", "s32", "s64"})

#: Types interpreted as unsigned integers (bit types behave unsigned).
UNSIGNED_TYPES = frozenset({"u8", "u16", "u32", "u64", "b8", "b16", "b32", "b64"})

#: IEEE floating point types.
FLOAT_TYPES = frozenset({"f16", "f32", "f64"})


def type_width(type_name: str) -> int:
    """Return the width in bytes of a PTX scalar type (e.g. ``"u64"``)."""
    try:
        return TYPE_WIDTHS[type_name]
    except KeyError:
        raise KeyError(f"unknown PTX type {type_name!r}") from None


def is_signed(type_name: str) -> bool:
    """True when the type is a signed integer type."""
    return type_name in SIGNED_TYPES


def is_float(type_name: str) -> bool:
    """True when the type is a floating point type."""
    return type_name in FLOAT_TYPES


# --------------------------------------------------------------------------
# State spaces
# --------------------------------------------------------------------------

#: Memory state spaces. ``param`` is the read-only kernel parameter space;
#: ``global``/``shared``/``local`` are the off-chip/on-chip data spaces the
#: paper discusses in §2.3. ``generic`` addresses are produced by ``cvta``.
STATE_SPACES = frozenset(
    {"param", "global", "shared", "local", "const", "generic"}
)

#: Spaces that live in off-chip DRAM and are therefore shared between
#: co-running kernels — the spaces Guardian must fence (paper §2.3).
OFF_CHIP_SPACES = frozenset({"global", "local", "generic", "const"})


# --------------------------------------------------------------------------
# Opcodes
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class OpInfo:
    """Static description of one opcode mnemonic.

    Attributes:
        name: base mnemonic (``"ld"``, ``"add"``, ...).
        latency_class: key into :data:`LATENCY_CLASSES`.
        is_memory: resolves an address against the memory system.
        is_control: changes control flow.
        has_dest: first operand is a destination register.
    """

    name: str
    latency_class: str
    is_memory: bool = False
    is_control: bool = False
    has_dest: bool = True


#: Cycle cost of each latency class. Memory classes are placeholders —
#: the executor defers loads/stores to the cache model.
LATENCY_CLASSES: dict[str, int] = {
    "alu": 4,          # bitwise / add / mov / shift / setp data path
    "mul": 5,          # integer multiply, mad, fma
    "sfu": 16,         # special function unit (sqrt, sin, ex2, rcp)
    "div32": 28,       # inline 32-bit div/rem
    "div64": 56,       # 64-bit div/rem via function call (2x the 32-bit)
    "branch": 8,       # direct branch
    "divergent": 80,   # predicated/conditional path through the ADU
    "memory": 0,       # resolved by the cache model
    "barrier": 20,     # bar.sync
    "nop": 1,
}


_OPS = [
    # memory
    OpInfo("ld", "memory", is_memory=True),
    OpInfo("st", "memory", is_memory=True, has_dest=False),
    OpInfo("atom", "memory", is_memory=True),
    # data movement / conversion
    OpInfo("mov", "alu"),
    OpInfo("cvta", "alu"),
    OpInfo("cvt", "alu"),
    OpInfo("selp", "alu"),
    # integer & bitwise ALU
    OpInfo("add", "alu"),
    OpInfo("sub", "alu"),
    OpInfo("and", "alu"),
    OpInfo("or", "alu"),
    OpInfo("xor", "alu"),
    OpInfo("not", "alu"),
    OpInfo("shl", "alu"),
    OpInfo("shr", "alu"),
    OpInfo("min", "alu"),
    OpInfo("max", "alu"),
    OpInfo("neg", "alu"),
    OpInfo("abs", "alu"),
    OpInfo("mul", "mul"),
    OpInfo("mad", "mul"),
    OpInfo("fma", "mul"),
    OpInfo("div", "div32"),
    OpInfo("rem", "div32"),
    # special function unit
    OpInfo("sqrt", "sfu"),
    OpInfo("rsqrt", "sfu"),
    OpInfo("rcp", "sfu"),
    OpInfo("ex2", "sfu"),
    OpInfo("lg2", "sfu"),
    OpInfo("sin", "sfu"),
    OpInfo("cos", "sfu"),
    OpInfo("tanh", "sfu"),
    # predicates & control
    OpInfo("setp", "alu"),
    OpInfo("bra", "branch", is_control=True, has_dest=False),
    OpInfo("brx", "divergent", is_control=True, has_dest=False),
    OpInfo("call", "branch", is_control=True, has_dest=False),
    OpInfo("ret", "branch", is_control=True, has_dest=False),
    OpInfo("exit", "branch", is_control=True, has_dest=False),
    OpInfo("bar", "barrier", is_control=True, has_dest=False),
    OpInfo("nop", "nop", has_dest=False),
]

#: Opcode table keyed by base mnemonic.
OPCODES: dict[str, OpInfo] = {op.name: op for op in _OPS}


#: setp comparison operators the executor implements.
COMPARE_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})

#: Special (read-only) registers, per thread.
SPECIAL_REGISTERS = frozenset(
    {
        "%tid.x", "%tid.y", "%tid.z",
        "%ntid.x", "%ntid.y", "%ntid.z",
        "%ctaid.x", "%ctaid.y", "%ctaid.z",
        "%nctaid.x", "%nctaid.y", "%nctaid.z",
        "%laneid", "%warpid", "%clock",
    }
)


def opcode_info(mnemonic: str) -> OpInfo:
    """Look up an opcode by its *base* mnemonic.

    The base mnemonic is the part before the first ``.`` of the full
    instruction name — ``"ld"`` for ``ld.global.u32``.
    """
    base = mnemonic.split(".", 1)[0]
    try:
        return OPCODES[base]
    except KeyError:
        raise KeyError(f"unknown PTX opcode {mnemonic!r}") from None
