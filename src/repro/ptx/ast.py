"""Object model for parsed PTX modules.

The AST mirrors the PTX text format closely enough that
:func:`repro.ptx.emitter.emit_module` followed by
:func:`repro.ptx.parser.parse_module` round-trips. Guardian's PTX
patcher (:mod:`repro.core.patcher`) rewrites these objects directly —
exactly like the paper's patcher rewrites PTX text extracted by
``cuobjdump``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.ptx import isa

# --------------------------------------------------------------------------
# Operands
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Register:
    """A virtual register operand, e.g. ``%rd4``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SpecialReg:
    """A read-only special register, e.g. ``%tid.x``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Immediate:
    """An integer or floating point literal operand.

    Float immediates render in PTX's hexadecimal form (``0f3F800000``
    for 1.0f, ``0d...`` for doubles) — the bit-exact encoding nvcc
    emits, which also guarantees parser round-trips.
    """

    value: Union[int, float]

    def __str__(self) -> str:
        if isinstance(self.value, float):
            import struct

            packed = struct.pack(">f", self.value)
            if struct.unpack(">f", packed)[0] == self.value or (
                self.value != self.value  # NaN round-trips as NaN
            ):
                return "0f" + packed.hex().upper()
            return "0d" + struct.pack(">d", self.value).hex().upper()
        return str(self.value)


@dataclass(frozen=True)
class Symbol:
    """A named reference: label, device function, or parameter name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MemRef:
    """A memory operand ``[base+offset]``.

    ``base`` is a :class:`Register` for the register addressing modes or
    a :class:`Symbol` for parameter/global addressing
    (``[kernel_param_0]``). ``offset`` is the immediate displacement of
    the *address+offset* addressing mode the paper's §4.3 discusses —
    the mode that forces the patcher to materialise the effective
    address in a temporary register before masking.
    """

    base: Union[Register, Symbol]
    offset: int = 0

    def __str__(self) -> str:
        if self.offset > 0:
            return f"[{self.base}+{self.offset}]"
        if self.offset < 0:
            return f"[{self.base}{self.offset}]"
        return f"[{self.base}]"


@dataclass(frozen=True)
class TargetList:
    """The inline label list of a ``brx.idx`` indirect branch."""

    labels: tuple[str, ...]

    def __str__(self) -> str:
        return "{" + ", ".join(self.labels) + "}"


Operand = Union[Register, SpecialReg, Immediate, Symbol, MemRef, TargetList]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Guard:
    """An instruction predicate guard, e.g. ``@%p1`` or ``@!%p2``."""

    register: str
    negated: bool = False

    def __str__(self) -> str:
        bang = "!" if self.negated else ""
        return f"@{bang}{self.register}"


@dataclass
class Instruction:
    """One PTX instruction.

    ``opcode`` is the full dotted mnemonic (``"ld.global.u32"``);
    convenience properties expose its pieces. ``operands`` keeps the
    destination first when the opcode has one.
    """

    opcode: str
    operands: tuple[Operand, ...] = ()
    guard: Optional[Guard] = None

    @property
    def base_op(self) -> str:
        """Base mnemonic, e.g. ``"ld"`` for ``ld.global.u32``."""
        return self.opcode.split(".", 1)[0]

    @property
    def suffixes(self) -> tuple[str, ...]:
        """All dotted suffixes after the base mnemonic."""
        return tuple(self.opcode.split(".")[1:])

    @property
    def dtype(self) -> Optional[str]:
        """The operand scalar type — the last type-shaped suffix."""
        for suffix in reversed(self.suffixes):
            if suffix in isa.TYPE_WIDTHS:
                return suffix
        return None

    @property
    def space(self) -> Optional[str]:
        """The state space suffix of a memory instruction, if any."""
        for suffix in self.suffixes:
            if suffix in isa.STATE_SPACES:
                return suffix
        return None

    @property
    def is_load(self) -> bool:
        return self.base_op == "ld"

    @property
    def is_store(self) -> bool:
        return self.base_op == "st"

    @property
    def is_memory_access(self) -> bool:
        """True for data-space loads/stores and atomics.

        Parameter-space loads (``ld.param``) read the launch parameter
        buffer, not shared DRAM, so they are *not* memory accesses that
        Guardian needs to fence (paper §2.3).
        """
        if self.base_op == "atom":
            return True
        if self.base_op not in ("ld", "st"):
            return False
        return self.space != "param"

    def __str__(self) -> str:
        text = self.opcode
        if self.operands:
            rendered = []
            for index, operand in enumerate(self.operands):
                rendered.append(str(operand))
            text = f"{text} " + ", ".join(rendered)
        if self.guard is not None:
            text = f"{self.guard} {text}"
        return f"{text};"


@dataclass(frozen=True)
class Label:
    """A branch target label definition (``$L__BB0_2:``)."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass
class RegDecl:
    """A register bank declaration: ``.reg .b64 %rd<5>;``.

    Declares virtual registers ``%rd1 .. %rd{count-1}`` (PTX counts the
    upper bound exclusively, matching ``nvcc`` output).
    """

    reg_type: str
    prefix: str
    count: int

    def names(self) -> Iterator[str]:
        """Yield every register name the declaration introduces."""
        for index in range(1, self.count):
            yield f"{self.prefix}{index}"

    def __str__(self) -> str:
        return f".reg .{self.reg_type} \t{self.prefix}<{self.count}>;"


@dataclass(frozen=True)
class SharedDecl:
    """A shared-memory array declaration inside a kernel body."""

    name: str
    elem_type: str
    size_bytes: int
    align: int = 4

    def __str__(self) -> str:
        elems = self.size_bytes // isa.type_width(self.elem_type)
        return (
            f".shared .align {self.align} .{self.elem_type} "
            f"{self.name}[{elems}];"
        )


Statement = Union[Instruction, Label, RegDecl, SharedDecl]


# --------------------------------------------------------------------------
# Kernels and modules
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    """A kernel parameter: ``.param .u64 kernel_param_0``."""

    name: str
    param_type: str

    @property
    def width(self) -> int:
        return isa.type_width(self.param_type)

    def __str__(self) -> str:
        return f".param .{self.param_type} {self.name}"


@dataclass
class Kernel:
    """One ``.entry`` kernel or ``.func`` device function.

    The paper's patcher instruments ``.func`` bodies identically to
    ``.entry`` bodies (§4.3), so both share this representation.
    """

    name: str
    params: list[Param] = field(default_factory=list)
    body: list[Statement] = field(default_factory=list)
    is_entry: bool = True
    visible: bool = True

    def instructions(self) -> Iterator[Instruction]:
        """Yield only the executable instructions of the body."""
        for statement in self.body:
            if isinstance(statement, Instruction):
                yield statement

    def memory_accesses(self) -> Iterator[Instruction]:
        """Yield the loads/stores Guardian must fence.

        Only off-chip, cross-tenant-reachable spaces qualify (global/
        generic/const); ``shared`` is per-block on-chip and ``local``
        per-thread, so neither can leak across tenants (paper §2.3).
        """
        for instruction in self.instructions():
            if instruction.is_memory_access and instruction.space in (
                None, "global", "generic", "const"
            ):
                yield instruction

    def declared_registers(self) -> set[str]:
        """The set of virtual register names declared in the body."""
        names: set[str] = set()
        for statement in self.body:
            if isinstance(statement, RegDecl):
                names.update(statement.names())
        return names

    def labels(self) -> set[str]:
        return {
            statement.name
            for statement in self.body
            if isinstance(statement, Label)
        }


@dataclass(frozen=True)
class GlobalDecl:
    """A module-scope ``.global`` array (statically allocated memory)."""

    name: str
    elem_type: str
    num_elems: int
    align: int = 4

    @property
    def size_bytes(self) -> int:
        return self.num_elems * isa.type_width(self.elem_type)

    def __str__(self) -> str:
        return (
            f".global .align {self.align} .{self.elem_type} "
            f"{self.name}[{self.num_elems}];"
        )


@dataclass
class Module:
    """A PTX translation unit: one ``.ptx`` file.

    ``kernels`` preserves declaration order and maps name to
    :class:`Kernel` (covering both ``.entry`` and ``.func``).
    """

    version: str = "7.5"
    target: str = "sm_86"
    address_size: int = 64
    kernels: dict[str, Kernel] = field(default_factory=dict)
    globals: list[GlobalDecl] = field(default_factory=list)

    def add(self, kernel: Kernel) -> Kernel:
        """Register a kernel, rejecting duplicate names."""
        if kernel.name in self.kernels:
            raise ValueError(f"duplicate kernel {kernel.name!r}")
        self.kernels[kernel.name] = kernel
        return kernel

    @property
    def entries(self) -> list[Kernel]:
        """Only the ``.entry`` kernels (host-launchable)."""
        return [k for k in self.kernels.values() if k.is_entry]

    @property
    def funcs(self) -> list[Kernel]:
        """Only the ``.func`` device functions."""
        return [k for k in self.kernels.values() if not k.is_entry]
