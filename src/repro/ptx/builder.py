"""Programmatic PTX construction.

The simulated "closed-source" accelerated libraries
(:mod:`repro.libs`) author their device kernels with this builder, the
same way NVIDIA authors cuBLAS kernels with an internal toolchain: the
result is a plain PTX module — *no* host-visible source — which is then
embedded into a fatbin. Guardian's patcher only ever sees the emitted
PTX text, preserving the paper's closed-source constraint.

Example::

    b = KernelBuilder("saxpy", params=[("out", "u64"), ("x", "u64"),
                                       ("a", "f32"), ("n", "u32")])
    out = b.load_param_ptr("out")
    x = b.load_param_ptr("x")
    a = b.load_param("a", "f32")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        addr_x = b.element_addr(x, gid, 4)
        value = b.ld_global("f32", addr_x)
        scaled = b.mul("f32", value, a)
        addr_o = b.element_addr(out, gid, 4)
        b.st_global("f32", addr_o, scaled)
    kernel = b.build()
"""

from __future__ import annotations

import contextlib
from typing import Optional, Union

from repro.ptx import isa
from repro.ptx.ast import (
    Guard,
    Immediate,
    Instruction,
    Kernel,
    Label,
    MemRef,
    Module,
    Operand,
    Param,
    RegDecl,
    Register,
    SharedDecl,
    SpecialReg,
    Symbol,
    TargetList,
)

#: Register-bank prefix per scalar type, matching nvcc's conventions.
_PREFIXES = {
    "pred": "%p",
    "b16": "%rs", "u16": "%rs", "s16": "%rs",
    "b32": "%r", "u32": "%r", "s32": "%r",
    "b64": "%rd", "u64": "%rd", "s64": "%rd",
    "f32": "%f",
    "f64": "%fd",
}

#: Storage type backing each register bank (what the RegDecl declares).
_BANK_TYPES = {"%p": "pred", "%rs": "b16", "%r": "b32", "%rd": "b64",
               "%f": "f32", "%fd": "f64"}

Value = Union[Register, Immediate, int, float]


def _as_operand(value: Value) -> Operand:
    if isinstance(value, (Register, Immediate, SpecialReg, Symbol)):
        return value
    if isinstance(value, (int, float)):
        return Immediate(value)
    raise TypeError(f"cannot use {value!r} as an operand")


class KernelBuilder:
    """Builds one kernel (``.entry``) or device function (``.func``)."""

    def __init__(
        self,
        name: str,
        params: list[tuple[str, str]],
        is_entry: bool = True,
        param_prefix: Optional[str] = None,
    ):
        prefix = param_prefix if param_prefix is not None else f"{name}_param"
        self.name = name
        self.is_entry = is_entry
        self.params = [
            Param(name=f"{prefix}_{pname}" if prefix else pname,
                  param_type=ptype)
            for pname, ptype in params
        ]
        self._param_by_short = {
            pname: param for (pname, _), param in zip(params, self.params)
        }
        self._counters: dict[str, int] = {}
        self._body: list = []
        self._label_counter = 0
        self._shared: list[SharedDecl] = []

    # -- registers and labels ----------------------------------------------

    def reg(self, reg_type: str) -> Register:
        """Allocate a fresh virtual register for ``reg_type``."""
        prefix = _PREFIXES[reg_type]
        index = self._counters.get(prefix, 0) + 1
        self._counters[prefix] = index
        return Register(f"{prefix}{index}")

    def fresh_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f"$L__{hint}_{self._label_counter}"

    def label(self, name: str) -> None:
        self._body.append(Label(name))

    def emit(self, opcode: str, *operands: Operand,
             guard: Optional[Guard] = None) -> None:
        """Append a raw instruction."""
        self._body.append(
            Instruction(opcode=opcode, operands=tuple(operands), guard=guard)
        )

    def shared_array(self, name: str, elem_type: str,
                     num_elems: int) -> Symbol:
        """Declare a shared-memory array and return its symbol."""
        decl = SharedDecl(
            name=name,
            elem_type=elem_type,
            size_bytes=num_elems * isa.type_width(elem_type),
            align=isa.type_width(elem_type),
        )
        self._shared.append(decl)
        return Symbol(name)

    # -- parameters ----------------------------------------------------------

    def load_param(self, short_name: str, ptype: str) -> Register:
        """``ld.param`` a scalar parameter into a fresh register."""
        param = self._param_by_short[short_name]
        dest = self.reg(ptype)
        self.emit(f"ld.param.{ptype}", dest, MemRef(Symbol(param.name)))
        return dest

    def load_param_ptr(self, short_name: str) -> Register:
        """Load a pointer parameter and convert it to the global space.

        Mirrors nvcc's standard prologue: ``ld.param.u64`` followed by
        ``cvta.to.global.u64``.
        """
        raw = self.load_param(short_name, "u64")
        dest = self.reg("u64")
        self.emit("cvta.to.global.u64", dest, raw)
        return dest

    # -- thread indexing -------------------------------------------------------

    def special(self, name: str) -> Register:
        """Copy a special register (``%tid.x``...) into a fresh b32."""
        dest = self.reg("u32")
        self.emit("mov.u32", dest, SpecialReg(name))
        return dest

    def global_thread_id(self) -> Register:
        """Compute ``ctaid.x * ntid.x + tid.x``."""
        ctaid = self.special("%ctaid.x")
        ntid = self.special("%ntid.x")
        tid = self.special("%tid.x")
        dest = self.reg("u32")
        self.emit("mad.lo.s32", dest, ctaid, ntid, tid)
        return dest

    # -- arithmetic -------------------------------------------------------------

    def _binary(self, opcode: str, reg_type: str, a: Value,
                b: Value) -> Register:
        dest = self.reg(reg_type)
        self.emit(opcode, dest, _as_operand(a), _as_operand(b))
        return dest

    def add(self, dtype: str, a: Value, b: Value) -> Register:
        return self._binary(f"add.{dtype}", dtype, a, b)

    def sub(self, dtype: str, a: Value, b: Value) -> Register:
        return self._binary(f"sub.{dtype}", dtype, a, b)

    def mul(self, dtype: str, a: Value, b: Value) -> Register:
        opcode = f"mul.{dtype}" if isa.is_float(dtype) else f"mul.lo.{dtype}"
        return self._binary(opcode, dtype, a, b)

    def mul_wide(self, narrow_type: str, a: Value, b: Value) -> Register:
        """32x32 -> 64-bit multiply, the idiom for index scaling."""
        wide = "u64" if not isa.is_signed(narrow_type) else "s64"
        dest = self.reg(wide)
        self.emit(f"mul.wide.{narrow_type}", dest, _as_operand(a),
                  _as_operand(b))
        return dest

    def mad_lo(self, dtype: str, a: Value, b: Value, c: Value) -> Register:
        dest = self.reg(dtype)
        self.emit(f"mad.lo.{dtype}", dest, _as_operand(a), _as_operand(b),
                  _as_operand(c))
        return dest

    def fma(self, dtype: str, a: Value, b: Value, c: Value) -> Register:
        dest = self.reg(dtype)
        self.emit(f"fma.rn.{dtype}", dest, _as_operand(a), _as_operand(b),
                  _as_operand(c))
        return dest

    def div(self, dtype: str, a: Value, b: Value) -> Register:
        opcode = f"div.rn.{dtype}" if isa.is_float(dtype) else f"div.{dtype}"
        return self._binary(opcode, dtype, a, b)

    def rem(self, dtype: str, a: Value, b: Value) -> Register:
        return self._binary(f"rem.{dtype}", dtype, a, b)

    def and_(self, dtype: str, a: Value, b: Value) -> Register:
        return self._binary(f"and.{dtype}", dtype, a, b)

    def or_(self, dtype: str, a: Value, b: Value) -> Register:
        return self._binary(f"or.{dtype}", dtype, a, b)

    def xor(self, dtype: str, a: Value, b: Value) -> Register:
        return self._binary(f"xor.{dtype}", dtype, a, b)

    def shl(self, dtype: str, a: Value, amount: Value) -> Register:
        return self._binary(f"shl.{dtype}", dtype, a, amount)

    def shr(self, dtype: str, a: Value, amount: Value) -> Register:
        return self._binary(f"shr.{dtype}", dtype, a, amount)

    def min_(self, dtype: str, a: Value, b: Value) -> Register:
        return self._binary(f"min.{dtype}", dtype, a, b)

    def max_(self, dtype: str, a: Value, b: Value) -> Register:
        return self._binary(f"max.{dtype}", dtype, a, b)

    def mov(self, dtype: str, value: Value) -> Register:
        dest = self.reg(dtype)
        self.emit(f"mov.{dtype}", dest, _as_operand(value))
        return dest

    def cvt(self, to_type: str, from_type: str, value: Value) -> Register:
        dest = self.reg(to_type)
        opcode = f"cvt.{to_type}.{from_type}"
        if isa.is_float(to_type) != isa.is_float(from_type):
            opcode = f"cvt.rn.{to_type}.{from_type}"
        self.emit(opcode, dest, _as_operand(value))
        return dest

    def unary(self, opcode: str, dtype: str, value: Value) -> Register:
        """SFU-style unary op: sqrt/ex2/lg2/sin/cos/rcp/tanh/neg/abs."""
        dest = self.reg(dtype)
        full = f"{opcode}.approx.{dtype}" if opcode in (
            "sqrt", "rsqrt", "rcp", "ex2", "lg2", "sin", "cos", "tanh"
        ) else f"{opcode}.{dtype}"
        self.emit(full, dest, _as_operand(value))
        return dest

    # -- memory ---------------------------------------------------------------

    def element_addr(self, base: Register, index: Value,
                     elem_size: int) -> Register:
        """Compute ``base + index * elem_size`` as a 64-bit address."""
        scaled = self.mul_wide("u32", index, Immediate(elem_size))
        return self.add("s64", base, scaled)

    def ld_global(self, dtype: str, address: Register,
                  offset: int = 0) -> Register:
        dest = self.reg(dtype)
        self.emit(f"ld.global.{dtype}", dest, MemRef(address, offset))
        return dest

    def st_global(self, dtype: str, address: Register, value: Value,
                  offset: int = 0) -> None:
        self.emit(f"st.global.{dtype}", MemRef(address, offset),
                  _as_operand(value))

    def ld_shared(self, dtype: str, address: Register,
                  offset: int = 0) -> Register:
        dest = self.reg(dtype)
        self.emit(f"ld.shared.{dtype}", dest, MemRef(address, offset))
        return dest

    def st_shared(self, dtype: str, address: Register, value: Value,
                  offset: int = 0) -> None:
        self.emit(f"st.shared.{dtype}", MemRef(address, offset),
                  _as_operand(value))

    def atom_add_global(self, dtype: str, address: Register,
                        value: Value) -> Register:
        dest = self.reg(dtype)
        self.emit(f"atom.global.add.{dtype}", dest, MemRef(address),
                  _as_operand(value))
        return dest

    def barrier(self) -> None:
        self.emit("bar.sync", Immediate(0))

    # -- control flow -----------------------------------------------------------

    def setp(self, compare: str, dtype: str, a: Value, b: Value) -> Register:
        pred = self.reg("pred")
        self.emit(f"setp.{compare}.{dtype}", pred, _as_operand(a),
                  _as_operand(b))
        return pred

    def bra(self, label: str, guard_reg: Optional[Register] = None,
            negated: bool = False) -> None:
        guard = None
        if guard_reg is not None:
            guard = Guard(register=guard_reg.name, negated=negated)
        self.emit("bra", Symbol(label), guard=guard)

    def brx_idx(self, index: Register, labels: list[str]) -> None:
        """Indirect branch — the construct the threat model calls unsafe."""
        self.emit("brx.idx", index, TargetList(tuple(labels)))

    def ret(self) -> None:
        self.emit("ret")

    @contextlib.contextmanager
    def if_less_than(self, value: Register, bound: Value, dtype: str = "u32"):
        """Guard a block with ``if (value < bound)`` (the grid-stride
        boundary check every CUDA kernel opens with)."""
        skip = self.fresh_label("skip")
        pred = self.setp("ge", dtype, value, bound)
        self.bra(skip, guard_reg=pred)
        yield
        self.label(skip)

    @contextlib.contextmanager
    def loop(self, count: Value, dtype: str = "u32"):
        """A counted loop; yields the induction-variable register."""
        counter = self.mov(dtype, Immediate(0))
        head = self.fresh_label("loop")
        done = self.fresh_label("done")
        self.label(head)
        pred = self.setp("ge", dtype, counter, count)
        self.bra(done, guard_reg=pred)
        yield counter
        incremented = self.reg(dtype)
        self.emit(f"add.{dtype}", incremented, counter, Immediate(1))
        self.emit(f"mov.{dtype}", counter, incremented)
        self.bra(head)
        self.label(done)

    # -- finalisation ---------------------------------------------------------

    def build(self) -> Kernel:
        """Finalize: synthesize the ``.reg`` declarations and the
        trailing ``ret``, and return the kernel."""
        decls: list = []
        for prefix, used in sorted(self._counters.items()):
            decls.append(
                RegDecl(reg_type=_BANK_TYPES[prefix], prefix=prefix,
                        count=used + 1)
            )
        body: list = list(self._shared) + decls + self._body
        last_instruction = next(
            (s for s in reversed(body) if isinstance(s, Instruction)), None
        )
        if last_instruction is None or last_instruction.base_op not in (
            "ret", "exit"
        ):
            body.append(Instruction(opcode="ret"))
        return Kernel(
            name=self.name,
            params=list(self.params),
            body=body,
            is_entry=self.is_entry,
        )


def build_module(kernels: list[Kernel], target: str = "sm_86") -> Module:
    """Assemble kernels into a module (the library's translation unit)."""
    module = Module(target=target)
    for kernel in kernels:
        module.add(kernel)
    return module
