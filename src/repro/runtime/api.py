"""The ``cuda*`` runtime call surface with host-side cost accounting.

:class:`CudaRuntime` is what applications and accelerated libraries
program against. It resolves the driver through the process's
:class:`~repro.runtime.interpose.DynamicLoader` — so if Guardian's shim
was preloaded, every call below this line is transparently remoted.

Host-side costs: the paper measures CPU cycles per intercepted call
(Table 5: a native ``cudaLaunchKernel`` costs ~9000 CPU cycles; the
Guardian path adds ~957). The runtime charges those costs into a
:class:`HostProfile`; deployment harnesses combine host time with
device time to produce end-to-end figures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import RuntimeAPIError
from repro.driver.fatbin import FatBinary
from repro.runtime.interpose import LIBCUDA, DynamicLoader


class MemcpyKind(enum.Enum):
    """Transfer directions (the paper checks each differently, §4.2.2)."""

    H2D = "h2d"
    D2H = "d2h"
    D2D = "d2d"


@dataclass(frozen=True)
class HostCostModel:
    """CPU-cycle cost of the runtime *API surface*, on a ``cpu_ghz`` core.

    These are the thin ``libcudart`` wrapper costs only — argument
    checking, bookkeeping, dispatch. The expensive part of each call
    (the driver "system call", e.g. the ~9000 cycles of a native
    ``cudaLaunchKernel``, Table 5) is charged by whichever *backend*
    actually performs it: the native driver
    (:class:`repro.runtime.backend.DriverCostModel`) or, under
    Guardian, the server at the far end of the IPC channel. Splitting
    the accounting this way is what lets interposed deployments move
    the driver cost off the client without double counting.
    """

    cpu_ghz: float = 3.0
    launch: int = 300
    malloc: int = 250
    free: int = 200
    memcpy: int = 300
    stream_create: int = 250
    synchronize: int = 250
    export_table: int = 150
    register_fatbin: int = 800
    misc: int = 100

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.cpu_ghz * 1e9)


@dataclass
class HostProfile:
    """Accumulated host-side cost of one application process."""

    cycles: float = 0.0
    calls: dict[str, int] = field(default_factory=dict)

    def charge(self, api: str, cycles: float) -> None:
        self.cycles += cycles
        self.calls[api] = self.calls.get(api, 0) + 1

    @property
    def total_calls(self) -> int:
        return sum(self.calls.values())


class CudaRuntime:
    """One process's CUDA runtime library instance."""

    def __init__(self, loader: DynamicLoader,
                 costs: Optional[HostCostModel] = None):
        self.loader = loader
        self.costs = costs or HostCostModel()
        self.profile = HostProfile()
        # The runtime binds the driver through dlopen — the same path
        # accelerated libraries use, and the path Guardian hooks.
        self._backend = loader.dlopen(LIBCUDA)

    @property
    def backend(self):
        """The resolved driver-level backend (native or interposed)."""
        return self._backend

    # -- memory management -------------------------------------------------------

    def cudaMalloc(self, size: int) -> int:
        if size <= 0:
            raise RuntimeAPIError(f"cudaMalloc of {size} bytes")
        self.profile.charge("cudaMalloc", self.costs.malloc)
        return self._backend.malloc(size)

    def cudaFree(self, address: int) -> None:
        self.profile.charge("cudaFree", self.costs.free)
        self._backend.free(address)

    def cudaMemcpyH2D(self, dst: int, data: bytes,
                      stream_id: int = 0) -> None:
        self.profile.charge("cudaMemcpyH2D", self.costs.memcpy)
        self._backend.memcpy_h2d(dst, bytes(data), stream_id)

    def cudaMemcpyD2H(self, src: int, size: int,
                      stream_id: int = 0) -> bytes:
        self.profile.charge("cudaMemcpyD2H", self.costs.memcpy)
        return self._backend.memcpy_d2h(src, size, stream_id)

    def cudaMemcpyD2D(self, dst: int, src: int, size: int,
                      stream_id: int = 0) -> None:
        self.profile.charge("cudaMemcpyD2D", self.costs.memcpy)
        self._backend.memcpy_d2d(dst, src, size, stream_id)

    def cudaMemset(self, dst: int, value: int, size: int,
                   stream_id: int = 0) -> None:
        self.profile.charge("cudaMemset", self.costs.memcpy)
        self._backend.memset(dst, value, size, stream_id)

    def cudaMemcpy(self, kind: MemcpyKind, **kwargs):
        """Dispatch form of the classic 4-argument cudaMemcpy."""
        if kind is MemcpyKind.H2D:
            return self.cudaMemcpyH2D(kwargs["dst"], kwargs["data"],
                                      kwargs.get("stream_id", 0))
        if kind is MemcpyKind.D2H:
            return self.cudaMemcpyD2H(kwargs["src"], kwargs["size"],
                                      kwargs.get("stream_id", 0))
        return self.cudaMemcpyD2D(kwargs["dst"], kwargs["src"],
                                  kwargs["size"],
                                  kwargs.get("stream_id", 0))

    # -- device code --------------------------------------------------------------

    def registerFatBinary(self, fatbin: FatBinary) -> dict[str, int]:
        """The ``__cudaRegisterFatBinary`` moment: load device code.

        Called implicitly at program (or library) initialisation;
        returns kernel-name -> launchable handle.
        """
        self.profile.charge("registerFatBinary", self.costs.register_fatbin)
        return self._backend.register_fatbin(fatbin)

    def cudaLaunchKernel(
        self,
        handle: int,
        grid: tuple[int, int, int],
        block: tuple[int, int, int],
        params: list,
        stream_id: int = 0,
    ) -> None:
        self.profile.charge("cudaLaunchKernel", self.costs.launch)
        self._backend.launch_kernel(handle, grid, block, params, stream_id)

    # -- streams & sync ---------------------------------------------------------------

    def cudaStreamCreate(self) -> int:
        self.profile.charge("cudaStreamCreate", self.costs.stream_create)
        return self._backend.create_stream()

    def cudaDeviceSynchronize(self) -> None:
        self.profile.charge("cudaDeviceSynchronize", self.costs.synchronize)
        self._backend.synchronize()

    # -- the undocumented corner --------------------------------------------------------

    def cudaGetExportTable(self, table_uuid: str) -> dict:
        self.profile.charge("cudaGetExportTable", self.costs.export_table)
        return self._backend.get_export_table(table_uuid)

    # -- introspection -------------------------------------------------------------------

    def cudaGetDeviceProperties(self):
        self.profile.charge("cudaGetDeviceProperties", self.costs.misc)
        return self._backend.device_spec()

    def host_seconds(self) -> float:
        """Wall-clock host time spent inside the runtime so far."""
        return self.costs.cycles_to_seconds(self.profile.cycles)
