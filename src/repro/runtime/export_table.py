"""The undocumented ``cudaGetExportTable`` function tables.

CUDA-accelerated libraries (cuBLAS, cuDNN, ...) call an undocumented
runtime function, ``cudaGetExportTable(uuid)``, which returns a table
of hidden function pointers. The paper found PyTorch- and Caffe-class
workloads touch **about seven tables with more than 90 functions**
(§4.1), and that API-remoting systems which ignore them cannot run
those frameworks (§7.4).

This module defines the simulator's seven tables. The entries a
library actually calls are implemented against the backend; the rest
are inert handles — mirroring Guardian's "minimal implementation ...
adequate to run PyTorch and Caffe".
"""

from __future__ import annotations

from typing import Callable

from repro.runtime import backend as backend_module

#: The seven table UUIDs the simulated libraries know about. Real UUIDs
#: are opaque 16-byte values; symbolic names keep tests readable.
EXPORT_TABLE_UUIDS = (
    "6bd5fb6c-5bf4-e74a-8987-d93912fd9df9",  # context-local storage
    "a094795c-2e74-2e74-93f2-0800200c9a66",  # primary context control
    "42d85a81-23f6-cb47-8298-f6e78a3aecdc",  # stream internal queries
    "c693336e-1121-df11-a8c3-68f355d89593",  # memory heuristics
    "0d5ad2a3-cf1c-e511-afdb-8b4069066e12",  # kernel occupancy hints
    "195bbd60-f509-0c4a-a6f6-56c27b461dd4",  # module/fatbin registry
    "b1f2c5a9-3d71-4e02-9c1b-77f00a12e9d3",  # profiler hooks
)

_TABLE_SIZES = {
    EXPORT_TABLE_UUIDS[0]: 14,
    EXPORT_TABLE_UUIDS[1]: 12,
    EXPORT_TABLE_UUIDS[2]: 16,
    EXPORT_TABLE_UUIDS[3]: 13,
    EXPORT_TABLE_UUIDS[4]: 12,
    EXPORT_TABLE_UUIDS[5]: 15,
    EXPORT_TABLE_UUIDS[6]: 12,
}

#: Total hidden functions across all tables ("more than 90").
TOTAL_EXPORTED_FUNCTIONS = sum(_TABLE_SIZES.values())


def build_export_tables(
    backend: "backend_module.GpuBackend",
) -> dict[str, dict[str, Callable]]:
    """Construct every export table against one backend.

    The functionally meaningful entries route through the backend so a
    remoted implementation behaves identically; filler entries return
    inert values (handles, zeros) like their real counterparts.
    """
    tables: dict[str, dict[str, Callable]] = {}

    context_local: dict[str, Callable] = {}
    context_local["ctxLocalStorageGet"] = lambda key=0: 0
    context_local["ctxLocalStoragePut"] = lambda key=0, value=0: None
    tables[EXPORT_TABLE_UUIDS[0]] = context_local

    primary_ctx: dict[str, Callable] = {}
    primary_ctx["primaryCtxRetain"] = lambda: 1
    primary_ctx["primaryCtxRelease"] = lambda: None
    tables[EXPORT_TABLE_UUIDS[1]] = primary_ctx

    stream_internal: dict[str, Callable] = {}
    stream_internal["streamGetInternalHandle"] = lambda stream_id=0: (
        0x5000 + stream_id
    )
    stream_internal["streamIsCapturing"] = lambda stream_id=0: False
    tables[EXPORT_TABLE_UUIDS[2]] = stream_internal

    memory_heuristics: dict[str, Callable] = {}
    memory_heuristics["memGetGranularity"] = lambda: 256
    memory_heuristics["memPoolQuery"] = lambda: {"reserved": 0}
    tables[EXPORT_TABLE_UUIDS[3]] = memory_heuristics

    occupancy: dict[str, Callable] = {}
    occupancy["occupancyMaxActiveBlocks"] = (
        lambda threads_per_block=128: max(
            1,
            backend.device_spec().max_resident_warps
            * 32 // max(threads_per_block, 1),
        )
    )
    tables[EXPORT_TABLE_UUIDS[4]] = occupancy

    registry: dict[str, Callable] = {}
    registry["fatbinGetIdentifier"] = lambda: 0xFA7B14
    tables[EXPORT_TABLE_UUIDS[5]] = registry

    profiler: dict[str, Callable] = {}
    profiler["profilerIsEnabled"] = lambda: False
    tables[EXPORT_TABLE_UUIDS[6]] = profiler

    prefixes = ("ctxLocal", "primaryCtx", "streamQuery", "memHint",
                "occupancy", "fatbinRegistry", "profiler")
    for uuid, prefix in zip(EXPORT_TABLE_UUIDS, prefixes):
        _pad_table(tables[uuid], uuid, prefix)
    return tables


def _pad_table(table: dict[str, Callable], uuid: str,
               prefix: str) -> None:
    """Pad a table with inert entries up to its documented size."""
    size = _TABLE_SIZES[uuid]
    index = 0
    while len(table) < size:
        name = f"{prefix}Internal{index:02d}"
        table[name] = _make_inert(index)
        index += 1


def _make_inert(index: int) -> Callable:
    def inert(*args, **kwargs):
        return index

    return inert
