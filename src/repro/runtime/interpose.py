"""Dynamic loading and LD_PRELOAD-style interposition.

Real CUDA libraries do not link against ``libcuda.so``; they
``dlopen()`` it at runtime (paper §4.1). To interpose *below* them,
Guardian must both (a) be preloaded ahead of the runtime library and
(b) hook ``dlopen`` so the libraries receive the shim instead of the
original driver.

This module simulates that process-level machinery. A
:class:`DynamicLoader` is the per-process linker state: libraries are
registered under their soname, and a *preload* shadows a soname so
every subsequent ``dlopen`` returns the interposer. The sequencing
constraint is real: a library resolved *before* the preload keeps its
original binding, exactly like LD_PRELOAD.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

#: Canonical sonames used across the simulator.
LIBCUDA = "libcuda.so"
LIBCUDART = "libcudart.so"


class LinkError(ReproError):
    """dlopen failed (no such library in this process)."""


@dataclass
class DynamicLoader:
    """Per-process dynamic linker state."""

    _libraries: dict[str, object] = field(default_factory=dict)
    _preloads: dict[str, object] = field(default_factory=dict)
    #: Audit trail of (soname, was_interposed) — lets tests verify that
    #: every driver resolution went through the shim.
    resolutions: list[tuple[str, bool]] = field(default_factory=list)

    def register(self, soname: str, library: object) -> None:
        """Install a library under its soname (what ld.so search does)."""
        self._libraries[soname] = library

    def preload(self, soname: str, interposer: object) -> None:
        """Shadow ``soname``: future dlopens resolve to ``interposer``.

        This is the LD_PRELOAD moment — it must happen at application
        startup, before any library binds the real driver.
        """
        self._preloads[soname] = interposer

    def dlopen(self, soname: str) -> object:
        """Resolve a library, honouring preloads."""
        interposer = self._preloads.get(soname)
        if interposer is not None:
            self.resolutions.append((soname, True))
            return interposer
        library = self._libraries.get(soname)
        if library is None:
            raise LinkError(f"dlopen: cannot open {soname!r}")
        self.resolutions.append((soname, False))
        return library

    def is_preloaded(self, soname: str) -> bool:
        return soname in self._preloads
