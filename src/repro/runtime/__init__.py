"""CUDA runtime API substrate (the ``libcudart.so`` analogue).

Applications and accelerated libraries program against the CUDA
*runtime* interface; the runtime sits on the CUDA *driver* library.
Guardian interposes exactly these two layers (paper Fig. 4):

- :mod:`repro.runtime.backend` — the narrow driver-level interface that
  both the native driver and Guardian's preloaded shim implement;
- :mod:`repro.runtime.api` — the ``cuda*`` call surface with host-side
  cost accounting (the CPU cycles of Table 5);
- :mod:`repro.runtime.export_table` — the undocumented
  ``cudaGetExportTable`` function-pointer tables that closed-source
  libraries use and naive API-remoting systems break on (§4.1, §7.4);
- :mod:`repro.runtime.interpose` — the ``dlopen()`` hook / LD_PRELOAD
  simulation that lets Guardian substitute its shim for the driver.
"""

from repro.runtime.api import CudaRuntime, HostCostModel, MemcpyKind
from repro.runtime.backend import (
    BackendProfile,
    DriverCostModel,
    GpuBackend,
    NativeBackend,
)
from repro.runtime.interpose import DynamicLoader

__all__ = [
    "BackendProfile",
    "CudaRuntime",
    "DriverCostModel",
    "DynamicLoader",
    "GpuBackend",
    "HostCostModel",
    "MemcpyKind",
    "NativeBackend",
]
