"""The driver-level backend interface.

This is the seam Guardian interposes on: the set of operations the CUDA
runtime and accelerated libraries ultimately issue to the driver
library. :class:`NativeBackend` routes them straight to the simulated
device (the unprotected default); Guardian's
:class:`repro.core.client.GuardianClient` implements the same interface
but forwards every call over IPC to the GuardianServer.

Everything crossing this interface uses plain values (ints, bytes,
tuples) — exactly what can cross a process boundary — so swapping the
backend is transparent to all callers, closed-source libraries
included.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DriverError
from repro.driver.api import DriverAPI
from repro.driver.fatbin import FatBinary
from repro.gpu.context import Context
from repro.gpu.device import Device


#: Host CPU frequency assumed throughout the cost models (GHz).
CPU_GHZ = 3.0


@dataclass(frozen=True)
class DriverCostModel:
    """CPU cycles the *driver library* spends per operation.

    ``launch`` is the paper's measured ~9000 cycles for the native
    ``cudaLaunchKernel`` system call (Table 5, "Launch kernel to GPU").
    Under Guardian these costs move into the server process; a backend
    must charge them into its :class:`BackendProfile` so deployments
    can compare like with like.
    """

    launch: int = 9_000
    malloc: int = 2_000
    free: int = 1_500
    memcpy: int = 1_800
    stream_create: int = 1_000
    module_load: int = 4_000


@dataclass
class BackendProfile:
    """Host cycles spent below the runtime API surface."""

    cycles: float = 0.0
    calls: dict[str, int] = field(default_factory=dict)

    def charge(self, operation: str, cycles: float) -> None:
        self.cycles += cycles
        self.calls[operation] = self.calls.get(operation, 0) + 1


class GpuBackend(abc.ABC):
    """Driver-level operations, as seen by one application process."""

    @abc.abstractmethod
    def malloc(self, size: int) -> int:
        """Allocate device memory; returns the device address."""

    @abc.abstractmethod
    def free(self, address: int) -> None:
        """Release device memory."""

    @abc.abstractmethod
    def memcpy_h2d(self, dst: int, data: bytes, stream_id: int = 0) -> None:
        """Copy host bytes to the device."""

    @abc.abstractmethod
    def memcpy_d2h(self, src: int, size: int, stream_id: int = 0) -> bytes:
        """Copy device bytes to the host."""

    @abc.abstractmethod
    def memcpy_d2d(self, dst: int, src: int, size: int,
                   stream_id: int = 0) -> None:
        """Copy within device memory."""

    @abc.abstractmethod
    def memset(self, dst: int, value: int, size: int,
               stream_id: int = 0) -> None:
        """Fill device memory with a byte value (cudaMemset)."""

    @abc.abstractmethod
    def register_fatbin(self, fatbin: FatBinary) -> dict[str, int]:
        """Load a binary's device code; returns kernel-name -> handle."""

    @abc.abstractmethod
    def load_module_ptx(self, ptx_text: str) -> dict[str, int]:
        """Explicit PTX load (driver-API path); name -> handle."""

    @abc.abstractmethod
    def launch_kernel(
        self,
        handle: int,
        grid: tuple[int, int, int],
        block: tuple[int, int, int],
        params: list,
        stream_id: int = 0,
    ) -> None:
        """Launch a kernel by handle."""

    @abc.abstractmethod
    def create_stream(self) -> int:
        """Create a stream; returns its id."""

    @abc.abstractmethod
    def get_export_table(self, table_uuid: str) -> dict:
        """The undocumented cudaGetExportTable()."""

    @abc.abstractmethod
    def synchronize(self) -> None:
        """Wait for outstanding work (host-visible ordering point)."""

    @abc.abstractmethod
    def device_spec(self):
        """The DeviceSpec of the GPU this backend reaches."""


class NativeBackend(GpuBackend):
    """Unmodified CUDA path: one private context, direct device access.

    Each application process using the native backend gets its *own*
    GPU context, so co-running applications time-share the device with
    hardware protection — the paper's ``Native`` baseline.
    """

    def __init__(self, device: Device, app_id: str = "app",
                 force_ptx_jit: bool = False,
                 costs: Optional[DriverCostModel] = None):
        self.device = device
        self.app_id = app_id
        self.driver = DriverAPI(device, force_ptx_jit=force_ptx_jit)
        self.context: Context = self.driver.cuCtxCreate(app_id)
        self.costs = costs or DriverCostModel()
        self.profile = BackendProfile()
        # Host->device clock ratio for submission release times.
        self._clock_ratio = device.spec.clock_ghz / CPU_GHZ
        self._streams = {0: self.context.default_stream}
        self._functions: dict[int, object] = {}
        self._export_tables = None

    # -- memory ---------------------------------------------------------------

    def malloc(self, size: int) -> int:
        self.profile.charge("malloc", self.costs.malloc)
        return self.driver.cuMemAlloc(self.context, size)

    def free(self, address: int) -> None:
        self.profile.charge("free", self.costs.free)
        self.driver.cuMemFree(self.context, address)

    def _release(self) -> float:
        """Device-clock instant at which the host has issued this call."""
        return self.profile.cycles * self._clock_ratio

    def memcpy_h2d(self, dst: int, data: bytes, stream_id: int = 0) -> None:
        self.profile.charge("memcpy_h2d", self.costs.memcpy)
        self.driver.cuMemcpyHtoD(self._stream(stream_id), dst, data,
                                 tag=self.app_id,
                                 release_cycles=self._release())

    def memcpy_d2h(self, src: int, size: int, stream_id: int = 0) -> bytes:
        self.profile.charge("memcpy_d2h", self.costs.memcpy)
        return self.driver.cuMemcpyDtoH(self._stream(stream_id), src, size,
                                        tag=self.app_id,
                                        release_cycles=self._release())

    def memcpy_d2d(self, dst: int, src: int, size: int,
                   stream_id: int = 0) -> None:
        self.profile.charge("memcpy_d2d", self.costs.memcpy)
        self.driver.cuMemcpyDtoD(self._stream(stream_id), dst, src, size,
                                 tag=self.app_id,
                                 release_cycles=self._release())

    def memset(self, dst: int, value: int, size: int,
               stream_id: int = 0) -> None:
        self.profile.charge("memset", self.costs.memcpy)
        self.driver.cuMemsetD8(self._stream(stream_id), dst, value, size,
                               tag=self.app_id,
                               release_cycles=self._release())

    # -- modules & kernels ------------------------------------------------------

    def register_fatbin(self, fatbin: FatBinary) -> dict[str, int]:
        # JIT compilation cycles are *initialisation*, excluded from
        # measured host time in every deployment (the paper's server
        # likewise compiles sandboxed PTX at startup, §4.4); they stay
        # observable in DriverAPI.stats.jit_cycles for the ablation
        # benchmark.
        self.profile.charge("module_load", self.costs.module_load)
        module = self.driver.cuModuleLoadFatBinary(self.context, fatbin)
        return self._handles_for(module)

    def load_module_ptx(self, ptx_text: str) -> dict[str, int]:
        self.profile.charge("module_load", self.costs.module_load)
        module = self.driver.cuModuleLoadData(self.context, ptx_text)
        return self._handles_for(module)

    def _handles_for(self, module) -> dict[str, int]:
        handles = {}
        for name in module.kernel_names():
            function = self.driver.cuModuleGetFunction(module, name)
            self._functions[function.handle] = function
            handles[name] = function.handle
        return handles

    def launch_kernel(self, handle, grid, block, params,
                      stream_id: int = 0) -> None:
        self.profile.charge("launch", self.costs.launch)
        function = self._functions.get(handle)
        if function is None:
            raise DriverError(f"invalid function handle {handle:#x}")
        self.driver.cuLaunchKernel(
            function, grid, block, params, self._stream(stream_id),
            tag=self.app_id, release_cycles=self._release(),
        )

    # -- streams / misc ------------------------------------------------------------

    def create_stream(self) -> int:
        self.profile.charge("stream_create", self.costs.stream_create)
        stream = self.driver.cuStreamCreate(self.context)
        self._streams[stream.stream_id] = stream
        return stream.stream_id

    def _stream(self, stream_id: int):
        try:
            return self._streams[stream_id]
        except KeyError:
            raise DriverError(f"unknown stream {stream_id}") from None

    def get_export_table(self, table_uuid: str) -> dict:
        # Built lazily to avoid a circular import at module load.
        if self._export_tables is None:
            from repro.runtime.export_table import build_export_tables

            self._export_tables = build_export_tables(self)
        try:
            return self._export_tables[table_uuid]
        except KeyError:
            raise DriverError(
                f"unknown export table {table_uuid!r}"
            ) from None

    def synchronize(self) -> None:
        # Functional effects are applied at submission; timing is
        # resolved by the deployment harness. Nothing to do here.
        return None

    def device_spec(self):
        return self.device.spec
