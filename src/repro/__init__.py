"""Guardian (G-Safe) — safe GPU sharing in multi-tenant environments.

A complete Python reproduction of *Guardian: Safe GPU Sharing in
Multi-Tenant Environments* (MIDDLEWARE 2024; arXiv title "G-Safe").
The package contains the paper's contribution (PTX-level bounds
checking, partitioned memory, a trusted GPU server with transparent
interception) **and** every substrate it needs: a PTX toolchain, a
functional cycle-cost GPU simulator, CUDA driver/runtime layers,
closed-source accelerated libraries, ML/Rodinia workloads and the
multi-tenant deployment harness.

Quickstart::

    from repro import GuardianSystem

    system = GuardianSystem()                   # device + server
    tenant = system.attach("alice", 64 << 20)   # preloaded runtime
    ptr = tenant.runtime.cudaMalloc(1024)
    tenant.runtime.cudaMemcpyH2D(ptr, b"x" * 1024)

See ``examples/quickstart.py`` for the full tour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import (
    ClusterConfig,
    GuardianCluster,
    HealthPolicy,
    NodeHealth,
    PlacementPolicy,
)
from repro.core.client import GuardianClient, preload_guardian
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer, ServerConfig
from repro.core.supervisor import SupervisorPolicy, TenantSupervisor
from repro.errors import ClientCrashed, TenantQuarantined
from repro.faults.plan import FaultPlan
from repro.gpu.device import Device
from repro.gpu.specs import (
    DeviceSpec,
    GEFORCE_RTX_3080TI,
    QUADRO_RTX_A4000,
)
from repro.runtime.api import CudaRuntime
from repro.runtime.interpose import DynamicLoader
from repro.telemetry import Telemetry

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "CudaRuntime",
    "Device",
    "DeviceSpec",
    "FaultPlan",
    "FencingMode",
    "GEFORCE_RTX_3080TI",
    "GuardianClient",
    "GuardianCluster",
    "GuardianServer",
    "GuardianSystem",
    "GuardianTenant",
    "HealthPolicy",
    "NodeHealth",
    "PlacementPolicy",
    "QUADRO_RTX_A4000",
    "ServerConfig",
    "SupervisorPolicy",
    "Telemetry",
    "TenantSupervisor",
    "preload_guardian",
]


@dataclass
class GuardianTenant:
    """One attached application: its shim, loader and runtime."""

    app_id: str
    client: GuardianClient
    loader: DynamicLoader
    runtime: CudaRuntime


class GuardianSystem:
    """Convenience facade: one simulated GPU plus a GuardianServer.

    The high-level entry point for examples and downstream users; all
    the pieces stay accessible (``system.device``, ``system.server``)
    for anything the facade doesn't cover.
    """

    def __init__(
        self,
        spec: DeviceSpec = QUADRO_RTX_A4000,
        mode: FencingMode = FencingMode.BITWISE,
        standalone_native: bool = False,
        config: ServerConfig | None = None,
        supervised: bool | None = None,
        fault_plan: FaultPlan | None = None,
        policy: SupervisorPolicy | None = None,
    ):
        self.device = Device(spec)
        self.server = GuardianServer(
            self.device, mode=mode, standalone_native=standalone_native,
            config=config,
        )
        # Supervision is opt-in (or implied by a fault plan / policy),
        # keeping the default system byte-compatible with the seed; a
        # supervised system without a plan is still cycle-identical.
        if supervised is None:
            supervised = fault_plan is not None or policy is not None
        self.fault_plan = fault_plan
        self.supervisor: TenantSupervisor | None = (
            TenantSupervisor(self.server, plan=fault_plan, policy=policy)
            if supervised else None
        )
        self.tenants: dict[str, GuardianTenant] = {}

    @property
    def dispatch_target(self):
        """What clients talk to: the supervisor when present."""
        return self.supervisor if self.supervisor is not None else self.server

    def attach(self, app_id: str, max_bytes: int) -> GuardianTenant:
        """Attach a tenant: partition, preloaded shim, CUDA runtime."""
        loader = DynamicLoader()
        client = preload_guardian(loader, self.dispatch_target, app_id,
                                  max_bytes, fault_plan=self.fault_plan)
        tenant = GuardianTenant(
            app_id=app_id,
            client=client,
            loader=loader,
            runtime=CudaRuntime(loader),
        )
        self.tenants[app_id] = tenant
        return tenant

    def detach(self, app_id: str) -> None:
        tenant = self.tenants.pop(app_id, None)
        if tenant is None:
            return
        try:
            tenant.client.close()
        except TenantQuarantined:
            # Already evicted server-side; just drop the channel.
            tenant.client.channel.abort()
        if tenant.client.crashed and self.supervisor is not None:
            self.supervisor.reap(app_id)

    def reap(self, app_id: str) -> None:
        """Clean up a tenant whose client process died (crash path)."""
        tenant = self.tenants.pop(app_id, None)
        if tenant is not None:
            tenant.client.channel.abort()
        if self.supervisor is not None:
            self.supervisor.reap(app_id)
        else:
            self.server.quarantine(app_id, reason="client crashed")

    def synchronize(self):
        """Resolve all pending device timing (spatial sharing)."""
        return self.device.synchronize(spatial=True)
