"""Guardian (G-Safe) — safe GPU sharing in multi-tenant environments.

A complete Python reproduction of *Guardian: Safe GPU Sharing in
Multi-Tenant Environments* (MIDDLEWARE 2024; arXiv title "G-Safe").
The package contains the paper's contribution (PTX-level bounds
checking, partitioned memory, a trusted GPU server with transparent
interception) **and** every substrate it needs: a PTX toolchain, a
functional cycle-cost GPU simulator, CUDA driver/runtime layers,
closed-source accelerated libraries, ML/Rodinia workloads and the
multi-tenant deployment harness.

Quickstart::

    from repro import GuardianSystem

    system = GuardianSystem()                   # device + server
    tenant = system.attach("alice", 64 << 20)   # preloaded runtime
    ptr = tenant.runtime.cudaMalloc(1024)
    tenant.runtime.cudaMemcpyH2D(ptr, b"x" * 1024)

See ``examples/quickstart.py`` for the full tour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.client import GuardianClient, preload_guardian
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer, ServerConfig
from repro.gpu.device import Device
from repro.gpu.specs import (
    DeviceSpec,
    GEFORCE_RTX_3080TI,
    QUADRO_RTX_A4000,
)
from repro.runtime.api import CudaRuntime
from repro.runtime.interpose import DynamicLoader

__version__ = "1.0.0"

__all__ = [
    "CudaRuntime",
    "Device",
    "DeviceSpec",
    "FencingMode",
    "GEFORCE_RTX_3080TI",
    "GuardianClient",
    "GuardianServer",
    "GuardianSystem",
    "GuardianTenant",
    "QUADRO_RTX_A4000",
    "ServerConfig",
    "preload_guardian",
]


@dataclass
class GuardianTenant:
    """One attached application: its shim, loader and runtime."""

    app_id: str
    client: GuardianClient
    loader: DynamicLoader
    runtime: CudaRuntime


class GuardianSystem:
    """Convenience facade: one simulated GPU plus a GuardianServer.

    The high-level entry point for examples and downstream users; all
    the pieces stay accessible (``system.device``, ``system.server``)
    for anything the facade doesn't cover.
    """

    def __init__(
        self,
        spec: DeviceSpec = QUADRO_RTX_A4000,
        mode: FencingMode = FencingMode.BITWISE,
        standalone_native: bool = False,
        config: ServerConfig | None = None,
    ):
        self.device = Device(spec)
        self.server = GuardianServer(
            self.device, mode=mode, standalone_native=standalone_native,
            config=config,
        )
        self.tenants: dict[str, GuardianTenant] = {}

    def attach(self, app_id: str, max_bytes: int) -> GuardianTenant:
        """Attach a tenant: partition, preloaded shim, CUDA runtime."""
        loader = DynamicLoader()
        client = preload_guardian(loader, self.server, app_id, max_bytes)
        tenant = GuardianTenant(
            app_id=app_id,
            client=client,
            loader=loader,
            runtime=CudaRuntime(loader),
        )
        self.tenants[app_id] = tenant
        return tenant

    def detach(self, app_id: str) -> None:
        tenant = self.tenants.pop(app_id, None)
        if tenant is not None:
            tenant.client.close()

    def synchronize(self):
        """Resolve all pending device timing (spatial sharing)."""
        return self.device.synchronize(spatial=True)
