"""Deterministic, seeded arrival processes on the virtual time axis.

The open-loop contract (DESIGN.md §13): arrival instants are drawn
*before* the run, from a seeded process, on a virtual clock measured
in modelled CPU cycles — they never depend on how the system under
load responds. Two processes cover the production-shaped space:

- :class:`PoissonArrivals` — memoryless sessions at a fixed rate, the
  classic open-loop baseline (exponential inter-arrivals).
- :class:`MarkovModulatedArrivals` — an MMPP(2): a hidden two-state
  Markov chain flips between a *calm* and a *burst* rate, producing
  the correlated arrival clumps that make tail latency interesting.

Determinism contract: the same process class, parameters, and seed
produce the same trace, call after call — ``trace`` re-seeds its own
private :class:`random.Random`, so producing a trace twice (or
consuming it in two different runs) yields identical instants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Arrival:
    """One session's arrival: a virtual-cycle instant plus the index
    the driver uses to mint a unique tenant id."""

    index: int
    at_cycles: float


class ArrivalProcess:
    """Base class: a seeded generator of arrival instants."""

    def trace(self, count: int) -> list[Arrival]:
        """The first ``count`` arrivals, regenerated from the seed."""
        raise NotImplementedError

    def mean_rate(self) -> float:
        """Long-run arrivals per virtual cycle (the offered load)."""
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival times.

    ``rate`` is arrivals per virtual cycle — production rates are tiny
    fractions (one session per hundreds of thousands of cycles), so
    callers usually write ``rate=k / 1e6`` for *k* sessions per
    million cycles.
    """

    def __init__(self, rate: float, seed: int = 0):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rate = rate
        self.seed = seed

    def trace(self, count: int) -> list[Arrival]:
        rng = random.Random(self.seed)
        now = 0.0
        arrivals = []
        for index in range(count):
            now += rng.expovariate(self.rate)
            arrivals.append(Arrival(index, now))
        return arrivals

    def mean_rate(self) -> float:
        return self.rate


class MarkovModulatedArrivals(ArrivalProcess):
    """MMPP(2): Poisson arrivals whose rate is switched by a hidden
    two-state Markov chain.

    The chain holds each state for an exponential sojourn
    (``mean_calm_cycles`` / ``mean_burst_cycles``), emitting at
    ``calm_rate`` or ``burst_rate`` while there. Bursts arrive in
    clumps — the arrival variance exceeds a Poisson process of the
    same mean rate, which is exactly what stresses p999.
    """

    def __init__(self, calm_rate: float, burst_rate: float,
                 mean_calm_cycles: float, mean_burst_cycles: float,
                 seed: int = 0):
        if calm_rate <= 0 or burst_rate <= 0:
            raise ValueError(
                f"rates must be positive, got {calm_rate}/{burst_rate}"
            )
        if mean_calm_cycles <= 0 or mean_burst_cycles <= 0:
            raise ValueError("state sojourns must be positive")
        self.calm_rate = calm_rate
        self.burst_rate = burst_rate
        self.mean_calm_cycles = mean_calm_cycles
        self.mean_burst_cycles = mean_burst_cycles
        self.seed = seed

    def trace(self, count: int) -> list[Arrival]:
        rng = random.Random(self.seed)
        arrivals: list[Arrival] = []
        now = 0.0
        bursting = False
        # The current state's remaining sojourn, consumed arrival by
        # arrival; crossing zero flips the state before emitting.
        state_left = rng.expovariate(1.0 / self.mean_calm_cycles)
        while len(arrivals) < count:
            rate = self.burst_rate if bursting else self.calm_rate
            gap = rng.expovariate(rate)
            while gap >= state_left:
                # The state flips mid-gap: advance to the flip point
                # and redraw the residual gap at the new state's rate
                # (the memoryless property makes the redraw exact).
                now += state_left
                gap = 0.0
                bursting = not bursting
                mean = (self.mean_burst_cycles if bursting
                        else self.mean_calm_cycles)
                state_left = rng.expovariate(1.0 / mean)
                rate = self.burst_rate if bursting else self.calm_rate
                gap = rng.expovariate(rate)
            state_left -= gap
            now += gap
            arrivals.append(Arrival(len(arrivals), now))
        return arrivals

    def mean_rate(self) -> float:
        """Sojourn-weighted average of the two states' rates."""
        total = self.mean_calm_cycles + self.mean_burst_cycles
        return (self.calm_rate * self.mean_calm_cycles
                + self.burst_rate * self.mean_burst_cycles) / total
