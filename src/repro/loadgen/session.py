"""Tenant session models: what one arriving user *does*.

A session is the full tenant lifecycle the closed-loop benchmarks
exercise — attach → deploy a library → launch storm (H2D, H2D, launch
per iteration, synchronizing every ``sync_every``) → final synchronize
→ detach — parameterized by an SLO class. The executor runs the whole
session against a live :class:`~repro.core.server.GuardianServer`
through a real :class:`~repro.core.client.GuardianClient`, so every
modelled cost (IPC transport, range checks, lookup/augment/syscall,
patch work) is exactly what the closed-loop scripts pay; the session's
*service demand* is the host-cycle delta it caused (server busy cycles
plus the client's critical path), which the virtual-time driver feeds
into its queueing model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.client import GuardianClient
from repro.driver.fatbin import FatBinary, build_fatbin
from repro.ptx.builder import KernelBuilder, build_module


@dataclass(frozen=True)
class SLOClass:
    """One class of service: a name and its p99 latency target.

    ``p99_cycles`` bounds the *session* latency (queue wait + service)
    on the virtual CPU-cycle axis; the SLO evaluator grades each
    class's observed p99 against it and the autoscale control loop
    widens lanes when it breaches.
    """

    name: str
    p99_cycles: float

    def __post_init__(self):
        if self.p99_cycles <= 0:
            raise ValueError(
                f"SLO class {self.name!r}: p99 target must be positive"
            )


@dataclass(frozen=True)
class SessionSpec:
    """The shape of one tenant session.

    ``iterations`` of (H2D, H2D, launch) against a ``buffer_bytes``
    working set, synchronizing every ``sync_every`` iterations — the
    fig7-style sharing inner loop — bracketed by the attach/deploy
    prologue and the synchronize/detach epilogue.
    """

    slo_class: str = "standard"
    partition_bytes: int = 1 << 20
    iterations: int = 8
    sync_every: int = 4
    buffer_bytes: int = 512
    elements: int = 16

    def __post_init__(self):
        if self.iterations < 1 or self.sync_every < 1:
            raise ValueError("iterations and sync_every must be >= 1")


def _saxpy_kernel():
    """y[i] = a * x[i] + y[i] — the session workload's kernel."""
    b = KernelBuilder("saxpy", params=[
        ("y", "u64"), ("x", "u64"), ("a", "f32"), ("n", "u32"),
    ])
    y = b.load_param_ptr("y")
    x = b.load_param_ptr("x")
    a = b.load_param("a", "f32")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        x_addr = b.element_addr(x, gid, 4)
        y_addr = b.element_addr(y, gid, 4)
        result = b.fma("f32", b.ld_global("f32", x_addr), a,
                       b.ld_global("f32", y_addr))
        b.st_global("f32", y_addr, result)
    return b.build()


_FATBIN: FatBinary | None = None


def session_fatbin() -> FatBinary:
    """The shared library every session deploys (memoised: identical
    content means the server's patch cache — when enabled — hits, the
    way a fleet of sessions sharing one library would)."""
    global _FATBIN
    if _FATBIN is None:
        _FATBIN = build_fatbin(
            build_module([_saxpy_kernel()]), "libloadgen", "11.7"
        )
    return _FATBIN


@dataclass(frozen=True)
class SessionResult:
    """What one executed session cost."""

    app_id: str
    slo_class: str
    host_cycles: float
    calls: int


def run_session(server, app_id: str, spec: SessionSpec) -> SessionResult:
    """Execute one full tenant session against ``server``.

    Returns the session's host-cycle demand: the server busy-clock
    delta plus the client's own critical-path cycles. Raises whatever
    the server raises — notably
    :class:`~repro.errors.AdmissionRejected` when the server's bounded
    admission gate is configured and full; the caller (the driver)
    turns that into a shed.
    """
    server_before = server.stats.cycles
    client = GuardianClient(server, app_id, spec.partition_bytes)
    try:
        kernel = client.register_fatbin(session_fatbin())["saxpy"]
        buffer = client.malloc(spec.buffer_bytes)
        payload = np.ones(spec.elements, dtype=np.float32).tobytes()
        half = spec.buffer_bytes // 2
        for iteration in range(spec.iterations):
            client.memcpy_h2d(buffer, payload)
            client.memcpy_h2d(buffer + half, payload)
            client.launch_kernel(
                kernel, (1, 1, 1), (spec.elements, 1, 1),
                [buffer, buffer + half, 2.0, spec.elements],
            )
            if (iteration + 1) % spec.sync_every == 0:
                client.synchronize()
        client.synchronize()
    finally:
        client.close()
    return SessionResult(
        app_id=app_id,
        slo_class=spec.slo_class,
        host_cycles=(server.stats.cycles - server_before
                     + client.channel.stats.client_cycles),
        calls=client.channel.stats.messages,
    )
