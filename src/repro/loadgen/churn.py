"""High-churn resident-tenant workload (elastic memory's yardstick).

The PR 9 open-loop driver runs each session to completion before the
next one starts, so partitions never coexist long enough to fragment
the carve space. This harness models the opposite regime — the one the
elastic engine (DESIGN.md §14) exists for: tenants of mixed declared
sizes arrive on a seeded Poisson process, stay *resident* for a seeded
exponential hold time, and depart in arbitrary order, so the gap list
shreds into misaligned holes and a static allocator starts shedding
newcomers the free bytes could in principle serve.

One seeded event trace (:func:`churn_trace`) replays against any
server; :func:`run_churn` is elastic-aware — when the server carries
an engine it calls :meth:`~repro.core.elastic.ElasticMemoryEngine.
make_room` before attaching and
:meth:`~repro.core.elastic.ElasticMemoryEngine.ensure_resident` before
touching a possibly-swapped tenant — and degrades to plain
attach-or-shed against a stock server, so the elastic-vs-static
comparison in ``benchmarks/test_elastic_memory.py`` replays the *same*
trace through the *same* code path with only the server config
differing.

Tenants attach through :class:`~repro.core.elastic.ElasticClient` in
both arms (its translation shim is a zero-delta pass-through until
something moves), so client-side overheads are identical by
construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.elastic import ElasticClient
from repro.errors import AdmissionRejected, PartitionError

__all__ = [
    "ChurnConfig",
    "ChurnEvent",
    "ChurnReport",
    "churn_trace",
    "run_churn",
]


@dataclass(frozen=True)
class ChurnConfig:
    """Shape of the high-churn mixed-size arrival trace.

    ``sizes``/``size_weights`` define the declared-partition mix
    (small tenants common, big ones rare — the mix that shreds a buddy
    gap list). Most tenants are *light*: they declare a size but touch
    only ``light_touch_bytes`` (the over-provisioning the shrink
    mechanism harvests). Every ``heavy_every``-th tenant is *heavy* and
    actually touches ``heavy_touch_fraction`` of its declared bytes.
    Every ``touch_every``-th tenant revisits its buffer mid-hold — the
    access that forces a swapped-out partition back onto the GPU.
    """

    sessions: int = 120
    seed: int = 2024
    #: Mean inter-arrival time in modelled cycles (Poisson process).
    mean_interarrival_cycles: float = 200_000.0
    #: Mean resident hold time in modelled cycles (exponential).
    mean_hold_cycles: float = 2_000_000.0
    sizes: tuple[int, ...] = (1 << 20, 2 << 20, 4 << 20, 8 << 20)
    size_weights: tuple[float, ...] = (4.0, 3.0, 2.0, 1.0)
    light_touch_bytes: int = 4096
    heavy_touch_fraction: float = 0.5
    heavy_every: int = 5
    touch_every: int = 3

    def __post_init__(self):
        if self.sessions < 1:
            raise ValueError("churn needs at least one session")
        if len(self.sizes) != len(self.size_weights) or not self.sizes:
            raise ValueError("sizes and size_weights must match, non-empty")
        if self.mean_interarrival_cycles <= 0 or self.mean_hold_cycles <= 0:
            raise ValueError("arrival and hold means must be positive")
        if not 0.0 < self.heavy_touch_fraction <= 1.0:
            raise ValueError("heavy_touch_fraction must be in (0, 1]")
        if self.heavy_every < 1 or self.touch_every < 1:
            raise ValueError("heavy_every and touch_every must be >= 1")


@dataclass(frozen=True)
class ChurnEvent:
    """One point on the churn timeline (cycles are virtual time)."""

    at: float
    kind: str  # "arrive" | "touch" | "depart"
    index: int
    size: int
    touch_bytes: int


#: Departures free capacity before same-instant arrivals claim it.
_KIND_ORDER = {"depart": 0, "touch": 1, "arrive": 2}


def churn_trace(config: ChurnConfig) -> list[ChurnEvent]:
    """The seeded event trace: same config, same events, always."""
    rng = random.Random(config.seed)
    events: list[ChurnEvent] = []
    now = 0.0
    for index in range(config.sessions):
        now += rng.expovariate(1.0 / config.mean_interarrival_cycles)
        size = rng.choices(config.sizes,
                           weights=config.size_weights)[0]
        heavy = (index % config.heavy_every) == config.heavy_every - 1
        touch = (
            int(size * config.heavy_touch_fraction)
            if heavy else config.light_touch_bytes
        )
        hold = rng.expovariate(1.0 / config.mean_hold_cycles)
        events.append(ChurnEvent(now, "arrive", index, size, touch))
        if (index % config.touch_every) == config.touch_every - 1:
            events.append(
                ChurnEvent(now + hold / 2, "touch", index, size, touch)
            )
        events.append(
            ChurnEvent(now + hold, "depart", index, size, touch)
        )
    events.sort(key=lambda e: (e.at, _KIND_ORDER[e.kind], e.index))
    return events


@dataclass
class ChurnReport:
    """What one churn replay did and what the server did about it."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    departed: int = 0
    touches: int = 0
    touches_failed: int = 0
    # Elastic activity, copied off ServerStats at the end of the run
    # (all zero against a stock server).
    partitions_shrunk: int = 0
    bytes_reclaimed: int = 0
    tenants_compacted: int = 0
    swaps_out: int = 0
    swaps_in: int = 0
    bytes_swapped: int = 0
    server_cycles: float = 0.0
    fragmentation_score: float = 1.0
    extra: dict = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def goodput_sessions(self) -> int:
        """Admitted sessions — the capacity-recovery numerator."""
        return self.admitted


@dataclass
class _Resident:
    client: ElasticClient
    buffer: int
    payload: bytes


def run_churn(server, config: ChurnConfig) -> ChurnReport:
    """Replay the churn trace against a live server.

    Elastic-aware (see module docstring); the static arm takes exactly
    the same path minus the two engine calls. A shed is a tenant the
    server could not place (:class:`~repro.errors.PartitionError` from
    the carve, or :class:`~repro.errors.AdmissionRejected` from
    bounded admission); a failed touch is a swapped tenant that could
    not be brought back (counted, not fatal — the tenant stays parked
    until departure).
    """
    engine = server.elastic
    events = churn_trace(config)
    report = ChurnReport()
    residents: dict[int, _Resident] = {}

    for event in events:
        if event.kind == "depart":
            resident = residents.pop(event.index, None)
            if resident is not None:
                resident.client.close()
                report.departed += 1
            continue

        if event.kind == "touch":
            resident = residents.get(event.index)
            if resident is None:
                continue  # was shed on arrival
            report.touches += 1
            app_id = resident.client.app_id
            if engine is not None and engine.is_swapped(app_id):
                try:
                    engine.ensure_resident(app_id)
                except PartitionError:
                    report.touches_failed += 1
                    continue
            resident.client.memcpy_h2d(resident.buffer, resident.payload)
            resident.client.synchronize()
            continue

        # -- arrival -----------------------------------------------------
        report.offered += 1
        app_id = f"churn-{event.index}"
        if engine is not None and not server.allocator.can_carve(event.size):
            engine.make_room(event.size)
        try:
            client = ElasticClient(server, app_id, event.size)
        except (PartitionError, AdmissionRejected):
            report.shed += 1
            continue
        if engine is not None:
            engine.bind_client(app_id, client)
        buffer = client.malloc(event.touch_bytes)
        payload = b"\x5a" * min(event.touch_bytes, 4096)
        client.memcpy_h2d(buffer, payload)
        client.synchronize()
        residents[event.index] = _Resident(client, buffer, payload)
        report.admitted += 1

    for resident in residents.values():
        resident.client.close()

    stats = server.stats
    report.partitions_shrunk = stats.partitions_shrunk
    report.bytes_reclaimed = stats.bytes_reclaimed
    report.tenants_compacted = stats.tenants_compacted
    report.swaps_out = stats.swaps_out
    report.swaps_in = stats.swaps_in
    report.bytes_swapped = stats.bytes_swapped_out + stats.bytes_swapped_in
    report.server_cycles = stats.cycles
    report.fragmentation_score = server.allocator.fragmentation_score()
    return report
