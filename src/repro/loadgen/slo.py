"""SLO accounting on top of the telemetry registry.

The evaluator reads what the driver recorded — the
``loadgen_session_latency_cycles`` histograms and the
``loadgen_sessions_total`` counters in the :mod:`repro.telemetry`
registry — and grades each class against its SLO:

- **p50 / p99 / p999** modelled session latency (queue wait + service);
- **goodput** — SLO-compliant completions per million virtual cycles
  of the run's horizon;
- **shed rate** — shed + rejected arrivals over everything offered;
- **time above SLO** — the fraction of control windows whose windowed
  p99 breached the target (only meaningful when the control loop ran).

Denominator guards throughout (the PR 6 convention): an empty
histogram reports ``None`` (rendered ``n/a``) for every quantile, a
zero horizon reports ``None`` goodput, zero offered sessions report
``None`` shed rate — never a ZeroDivisionError.
"""

from __future__ import annotations

from typing import Optional

from repro.loadgen.driver import LoadReport
from repro.loadgen.session import SLOClass
from repro.telemetry import Telemetry

#: Rendered in reports wherever a denominator guard fired.
NOT_AVAILABLE = "n/a"


def _guarded_ratio(numerator: float,
                   denominator: float) -> Optional[float]:
    """``numerator / denominator`` or ``None`` on an empty
    denominator — the single divide in this module."""
    if not denominator:
        return None
    return numerator / denominator


def evaluate_slo(report: LoadReport,
                 classes: dict[str, SLOClass],
                 telemetry: Optional[Telemetry] = None) -> dict:
    """Grade one run's report against its SLO classes.

    Returns a JSON-safe dict: ``{"classes": {name: {...}}, "overall":
    {...}}``. ``telemetry`` defaults to the report's own registry.
    """
    telemetry = telemetry or report.telemetry
    if telemetry is None:
        raise ValueError("no telemetry registry to evaluate against")
    latency = telemetry.session_latency
    sessions = telemetry.sessions
    horizon = report.horizon_cycles
    per_class: dict[str, dict] = {}
    totals = {"offered": 0, "completed": 0, "shed": 0, "rejected": 0,
              "compliant": 0}
    for name in sorted(classes):
        target = classes[name]
        completed = int(sessions.value(cls=name, outcome="completed"))
        shed = int(sessions.value(cls=name, outcome="shed"))
        rejected = int(sessions.value(cls=name, outcome="rejected"))
        compliant = int(sessions.value(cls=name, outcome="within_slo"))
        offered = completed + shed + rejected
        count = latency.count(cls=name)
        quantiles = {
            "p50": latency.quantile(0.5, cls=name) if count else None,
            "p99": latency.quantile(0.99, cls=name) if count else None,
            "p999": latency.quantile(0.999, cls=name) if count else None,
        }
        breached = [window[name]["breached"] for window in report.windows
                    if name in window and window[name]["p99"] is not None]
        per_class[name] = {
            "slo_p99_cycles": target.p99_cycles,
            "offered": offered,
            "completed": completed,
            "shed": shed,
            "rejected": rejected,
            "slo_compliant": compliant,
            **quantiles,
            "goodput_per_mcycle": _guarded_ratio(
                compliant * 1e6, horizon
            ),
            "shed_rate": _guarded_ratio(shed + rejected, offered),
            "time_above_slo": _guarded_ratio(
                sum(breached), len(breached)
            ),
        }
        totals["offered"] += offered
        totals["completed"] += completed
        totals["shed"] += shed
        totals["rejected"] += rejected
        totals["compliant"] += compliant
    return {
        "classes": per_class,
        "overall": {
            **totals,
            "horizon_cycles": horizon,
            "makespan_cycles": report.makespan_cycles,
            "goodput_per_mcycle": _guarded_ratio(
                totals["compliant"] * 1e6, horizon
            ),
            "shed_rate": _guarded_ratio(
                totals["shed"] + totals["rejected"], totals["offered"]
            ),
            "capacity_final": (report.capacity_timeline[-1][1]
                               if report.capacity_timeline else None),
            "capacity_peak": (max(c for _, c in report.capacity_timeline)
                              if report.capacity_timeline else None),
        },
    }
