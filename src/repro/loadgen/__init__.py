"""Open-loop traffic harness with SLO accounting (DESIGN.md §13).

The production-shaped yardstick the closed-loop benchmarks lack:
seeded arrival processes (:mod:`~repro.loadgen.arrivals`) replay full
tenant sessions (:mod:`~repro.loadgen.session`) against a live
GuardianServer on a virtual-time event loop
(:mod:`~repro.loadgen.driver`), with bounded-queue shedding, a lane
autoscaling control loop, and SLO grading over the telemetry registry
(:mod:`~repro.loadgen.slo`).
"""

from repro.loadgen.arrivals import (
    Arrival,
    ArrivalProcess,
    MarkovModulatedArrivals,
    PoissonArrivals,
)
from repro.loadgen.churn import (
    ChurnConfig,
    ChurnEvent,
    ChurnReport,
    churn_trace,
    run_churn,
)
from repro.loadgen.driver import (
    LoadgenConfig,
    LoadReport,
    OpenLoopDriver,
    SessionOutcome,
)
from repro.loadgen.session import (
    SessionResult,
    SessionSpec,
    SLOClass,
    run_session,
    session_fatbin,
)
from repro.loadgen.slo import NOT_AVAILABLE, evaluate_slo

__all__ = [
    "Arrival",
    "ArrivalProcess",
    "MarkovModulatedArrivals",
    "PoissonArrivals",
    "ChurnConfig",
    "ChurnEvent",
    "ChurnReport",
    "churn_trace",
    "run_churn",
    "LoadgenConfig",
    "LoadReport",
    "OpenLoopDriver",
    "SessionOutcome",
    "SessionResult",
    "SessionSpec",
    "SLOClass",
    "run_session",
    "session_fatbin",
    "NOT_AVAILABLE",
    "evaluate_slo",
]
