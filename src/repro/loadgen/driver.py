"""The open-loop driver: a virtual-time event loop over sessions.

The driver replays a seeded arrival trace of full tenant sessions
against a live GuardianServer and accounts for latency-under-load with
a deterministic multi-slot queueing model on the virtual cycle axis:

- **Open loop.** Arrival instants come from the trace alone; a slow
  server makes the queue grow, it never slows the offered load. This
  is what distinguishes the harness from every closed-loop benchmark
  in ``benchmarks/`` (fixed tenants, fixed iterations).
- **Service model.** ``capacity`` slots stand for parallel dispatch
  lanes. Each admitted session is executed *for real* against the
  server (every modelled cost is the closed-loop cost); its measured
  host-cycle demand becomes the slot's service time. FCFS across
  slots: ``start = max(arrival, earliest slot free)``, ``latency =
  start + demand - arrival``.
- **Backpressure.** With ``admission_queue_depth`` set, an arrival
  that finds that many sessions already waiting is **shed**: it
  executes nothing — zero calls, zero cycles, zero bounds-table
  traffic — so surviving tenants are unperturbed by construction. A
  server-side :class:`~repro.errors.AdmissionRejected` (the
  ``max_resident_tenants`` gate) is recorded as a rejection, the same
  zero-perturbation contract. ``None`` (the default) never sheds.
- **Autoscaling.** With ``autoscale`` on, every ``control_interval``
  virtual cycles the driver evaluates each class's windowed p99
  against its SLO and lets the configured
  :class:`~repro.core.policy.AutoscalePolicy` widen or narrow the
  slot count between ``min_capacity`` and ``max_capacity``. Off by
  default.

Everything observes through the :mod:`repro.telemetry` registry
(sessions counter, latency histograms, capacity gauge); the driver
never charges a cycle to any modelled clock. With backpressure and
autoscaling off, the calls the driver issues are exactly the calls
the equivalent closed-loop script issues, in the same order — cycle
totals are bit-identical (pinned by a hypothesis property).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.core.policy import autoscale_policy
from repro.errors import AdmissionRejected
from repro.loadgen.arrivals import Arrival, ArrivalProcess
from repro.loadgen.session import SessionSpec, SLOClass, run_session
from repro.telemetry import Telemetry


@dataclass(frozen=True)
class LoadgenConfig:
    """Every knob of the open-loop harness. All backpressure and
    control-loop behaviour defaults **off**: a stock config is a plain
    replay whose cycle totals match the closed-loop equivalent."""

    #: Parallel service slots (modelled dispatch lanes).
    capacity: int = 1
    #: Bounded admission queue: an arrival finding this many waiting
    #: sessions is shed. ``None`` = unbounded (no shedding).
    admission_queue_depth: Optional[int] = None
    #: SLO control loop (off by default).
    autoscale: bool = False
    autoscale_policy: str = "p99-breach"
    min_capacity: int = 1
    max_capacity: int = 8
    control_interval_cycles: float = 2_000_000.0
    #: Arrival-trace seed (forwarded to the process by the caller;
    #: recorded here so reports carry the full recipe).
    seed: int = 0

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if (self.admission_queue_depth is not None
                and self.admission_queue_depth < 1):
            raise ValueError("admission_queue_depth must be >= 1 or None")
        if not 1 <= self.min_capacity <= self.max_capacity:
            raise ValueError("need 1 <= min_capacity <= max_capacity")
        if self.control_interval_cycles <= 0:
            raise ValueError("control_interval_cycles must be positive")


@dataclass(frozen=True)
class SessionOutcome:
    """One arrival's fate on the virtual timeline."""

    index: int
    app_id: str
    slo_class: str
    arrival: float
    #: "completed", "shed" (bounded queue) or "rejected" (server gate).
    outcome: str
    start: float = 0.0
    finish: float = 0.0
    host_cycles: float = 0.0

    @property
    def latency(self) -> float:
        """Queue wait + service, in virtual cycles (0.0 when shed)."""
        if self.outcome != "completed":
            return 0.0
        return self.finish - self.arrival


@dataclass
class LoadReport:
    """Everything one run produced, ready for the SLO evaluator."""

    outcomes: list[SessionOutcome] = field(default_factory=list)
    #: (tick instant, capacity after the tick) — one entry per control
    #: interval when autoscaling is on, plus the initial capacity.
    capacity_timeline: list[tuple[float, int]] = field(default_factory=list)
    #: Per control window: {class: {"p99": float|None, "slo": float,
    #: "breached": bool}} — the time-above-SLO denominator.
    windows: list[dict] = field(default_factory=list)
    telemetry: Optional[Telemetry] = None

    @property
    def makespan_cycles(self) -> float:
        """Last completion instant on the virtual axis."""
        return max((o.finish for o in self.outcomes
                    if o.outcome == "completed"), default=0.0)

    @property
    def horizon_cycles(self) -> float:
        """The observed span: last completion or last arrival,
        whichever is later (a fully-shed run still has a horizon)."""
        last_arrival = max((o.arrival for o in self.outcomes), default=0.0)
        return max(self.makespan_cycles, last_arrival)


class OpenLoopDriver:
    """Replays an arrival trace of sessions against one server."""

    def __init__(self, server, config: LoadgenConfig | None = None,
                 classes: dict[str, SLOClass] | None = None,
                 telemetry: Optional[Telemetry] = None):
        self.server = server
        self.config = config or LoadgenConfig()
        self.classes = dict(classes or {})
        # SLO accounting lives in a telemetry registry: the server's
        # own spine when it has one (one deployment, one registry), a
        # private observation-only instance otherwise — the stock
        # server stays telemetry-free and bit-identical either way.
        self.telemetry = (
            telemetry
            or getattr(server, "telemetry", None)
            or Telemetry()
        )
        self._policy = autoscale_policy(self.config.autoscale_policy)

    # -- the event loop -----------------------------------------------------------

    def run(self, process: ArrivalProcess, count: int,
            spec: SessionSpec | dict[str, SessionSpec] | None = None,
            mix: Optional[list[str]] = None) -> LoadReport:
        """Replay ``count`` sessions from ``process``.

        ``spec`` is one :class:`SessionSpec` for a homogeneous run, or
        a mapping class-name -> spec with ``mix`` giving the
        deterministic class rotation (round-robin over ``mix``; an
        explicit schedule beats hidden randomness for reproducibility).
        """
        arrivals = process.trace(count)
        schedule = self._schedule(arrivals, spec, mix)
        report = LoadReport(telemetry=self.telemetry)
        capacity = self.config.capacity
        report.capacity_timeline.append((0.0, capacity))
        slots = [0.0] * capacity
        heapq.heapify(slots)
        pending_starts: deque[float] = deque()
        window: dict[str, list[float]] = {}
        next_control = self.config.control_interval_cycles
        for arrival, cls, session_spec in schedule:
            now = arrival.at_cycles
            if self.config.autoscale:
                while now >= next_control:
                    capacity = self._control_tick(
                        report, window, slots, capacity, next_control
                    )
                    next_control += self.config.control_interval_cycles
            app_id = f"ld{arrival.index}"
            while pending_starts and pending_starts[0] <= now:
                pending_starts.popleft()
            depth = self.config.admission_queue_depth
            if depth is not None and len(pending_starts) >= depth:
                report.outcomes.append(SessionOutcome(
                    arrival.index, app_id, cls, now, "shed",
                ))
                self.telemetry.record_session(cls, "shed")
                continue
            try:
                result = run_session(self.server, app_id, session_spec)
            except AdmissionRejected:
                report.outcomes.append(SessionOutcome(
                    arrival.index, app_id, cls, now, "rejected",
                ))
                self.telemetry.record_session(cls, "rejected")
                continue
            free = heapq.heappop(slots)
            start = max(now, free)
            finish = start + result.host_cycles
            heapq.heappush(slots, finish)
            pending_starts.append(start)
            latency = finish - now
            report.outcomes.append(SessionOutcome(
                arrival.index, app_id, cls, now, "completed",
                start=start, finish=finish,
                host_cycles=result.host_cycles,
            ))
            target = self.classes.get(cls)
            self.telemetry.record_session(
                cls, "completed", latency_cycles=latency,
                within_slo=(target is not None
                            and latency <= target.p99_cycles),
            )
            window.setdefault(cls, []).append(latency)
        return report

    def _schedule(self, arrivals: list[Arrival], spec, mix):
        """(arrival, class name, spec) triples. For a mapping, the
        mapping key *is* the class — it wins over the spec's own
        ``slo_class`` so one spec shape can serve several classes."""
        if spec is None:
            spec = SessionSpec()
        if isinstance(spec, SessionSpec):
            return [(arrival, spec.slo_class, spec)
                    for arrival in arrivals]
        rotation = list(mix or sorted(spec))
        if not rotation:
            raise ValueError("class mix is empty")
        missing = [name for name in rotation if name not in spec]
        if missing:
            raise ValueError(f"mix names unknown classes: {missing}")
        return [
            (arrival, rotation[arrival.index % len(rotation)],
             spec[rotation[arrival.index % len(rotation)]])
            for arrival in arrivals
        ]

    # -- the SLO control loop -----------------------------------------------------

    def _control_tick(self, report: LoadReport, window: dict,
                      slots: list[float], capacity: int,
                      tick: float) -> int:
        """Evaluate one control window and let the policy resize.

        The window view hands the policy each class's exact windowed
        p99 (sorted-rank, not the histogram approximation — control
        decisions deserve the precise number) next to its SLO target.
        """
        view: dict[str, dict] = {}
        for name, target in self.classes.items():
            latencies = sorted(window.get(name, ()))
            p99 = (latencies[max(0, -(-len(latencies) * 99 // 100) - 1)]
                   if latencies else None)
            view[name] = {
                "p99": p99,
                "slo": target.p99_cycles,
                "breached": p99 is not None and p99 > target.p99_cycles,
            }
        report.windows.append(view)
        window.clear()
        decided = self._policy.decide(
            view, capacity,
            self.config.min_capacity, self.config.max_capacity,
        )
        decided = max(self.config.min_capacity,
                      min(self.config.max_capacity, decided))
        while decided > capacity:
            # A widened lane comes up free at the tick instant.
            heapq.heappush(slots, tick)
            capacity += 1
        while decided < capacity and len(slots) > 1:
            # Narrowing retires the earliest-free lane: in-flight work
            # on the others finishes where it would have.
            heapq.heappop(slots)
            capacity -= 1
        self.telemetry.record_capacity(capacity)
        report.capacity_timeline.append((tick, capacity))
        return capacity
