"""Deterministic fault plans.

A :class:`FaultPlan` is the single source of misbehaviour for a run: a
list of :class:`FaultSpec` rules keyed on (tenant, operation,
call-count) plus a seeded RNG for the fault *parameters* (truncation
points, corruption bytes, delay lengths). Every layer that can
misbehave consults the plan at a well-defined **site**:

- ``Site.SERVER`` — the server end of the message queue (the
  TenantSupervisor's dispatch wrapper): IPC drops / duplicates /
  delays / corruption, malformed PTX, allocator exhaustion, and
  asynchronous stream faults are armed here;
- ``Site.CLIENT`` — the client shim: client crashes mid-call fire
  before the message ever reaches the queue;
- ``Site.NODE`` — the cluster control plane: heartbeat losses, whole-
  node crashes and partial migration snapshots fire against a *node
  id* (carried in the spec's ``tenant`` field) when the
  :class:`~repro.cluster.GuardianCluster` polls health or drives a
  migration.

Determinism contract: the same plan (same specs, same seed) applied to
the same call sequence fires the same faults with the same parameters.
Call counters are kept per (site, tenant, op), so the client- and
server-side consultations of one logical call never double-advance a
counter.

With **no plan installed** nothing in the stack consults anything: the
hot path is bit-identical to the stock server (the acceptance bar the
fault gauntlet pins).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class Site(enum.Enum):
    """Where in the stack a fault fires."""

    CLIENT = "client"
    SERVER = "server"
    NODE = "node"


class FaultKind(enum.Enum):
    """The fault taxonomy (DESIGN.md §6)."""

    #: Message-queue crossing lost; detected by the supervisor's
    #: sequence numbers and retried with backoff.
    IPC_DROP = "ipc_drop"
    #: Message delivered twice; the duplicate is detected and
    #: suppressed (the handler runs exactly once).
    IPC_DUPLICATE = "ipc_duplicate"
    #: Message delayed in the queue; the call completes late and may
    #: trip the per-tenant deadline.
    IPC_DELAY = "ipc_delay"
    #: Message corrupted in the shared segment; detected by checksum
    #: and retried like a drop.
    IPC_CORRUPT = "ipc_corrupt"
    #: The client process dies mid-call, possibly with a non-empty
    #: batch pending in its channel.
    CLIENT_CRASH = "client_crash"
    #: The deployed module's PTX arrives truncated.
    PTX_TRUNCATE = "ptx_truncate"
    #: The deployed module's PTX arrives with corrupted bytes.
    PTX_CORRUPT = "ptx_corrupt"
    #: The tenant's partition reports exhaustion on malloc.
    ALLOC_EXHAUST = "alloc_exhaust"
    #: The simulated GPU raises an asynchronous fault on the tenant's
    #: stream, surfaced at the next ordering point (sticky).
    STREAM_FAULT = "stream_fault"
    #: A node misses one heartbeat deadline (the beat is simply not
    #: answered); consecutive misses walk the health state machine
    #: toward ``down``.
    HEARTBEAT_LOSS = "heartbeat_loss"
    #: The whole node dies — device memory is gone. Fired on a
    #: heartbeat it kills the node outright; fired on ``migrate`` it
    #: kills the *source* node after the snapshot was taken
    #: (mid-migration crash).
    NODE_CRASH = "node_crash"
    #: A migration snapshot arrives truncated; the migration aborts
    #: and the tenant stays where it was.
    SNAPSHOT_PARTIAL = "snapshot_partial"

    @property
    def site(self) -> Site:
        if self is FaultKind.CLIENT_CRASH:
            return Site.CLIENT
        if self in (FaultKind.HEARTBEAT_LOSS, FaultKind.NODE_CRASH,
                    FaultKind.SNAPSHOT_PARTIAL):
            return Site.NODE
        return Site.SERVER

    @property
    def retryable(self) -> bool:
        """Transient queue faults the supervisor retries with backoff."""
        return self in (FaultKind.IPC_DROP, FaultKind.IPC_CORRUPT)


#: Operations each kind can target when a spec leaves ``op`` as None.
_DEFAULT_OPS: dict[FaultKind, tuple[str, ...]] = {
    FaultKind.PTX_TRUNCATE: ("register_fatbin", "load_module_ptx"),
    FaultKind.PTX_CORRUPT: ("register_fatbin", "load_module_ptx"),
    FaultKind.ALLOC_EXHAUST: ("malloc",),
    FaultKind.STREAM_FAULT: ("launch_kernel", "memcpy_h2d", "memset"),
    FaultKind.HEARTBEAT_LOSS: ("heartbeat",),
    FaultKind.NODE_CRASH: ("heartbeat", "migrate"),
    FaultKind.SNAPSHOT_PARTIAL: ("migrate",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: *kind* fires for *tenant* on *op* at call N.

    ``tenant`` / ``op`` of ``None`` match any tenant / any operation
    valid for the kind. ``at_call`` fires on the Nth matching call
    (1-based); ``every`` fires periodically instead. ``times`` is how
    many consecutive delivery attempts fail (retryable kinds only).
    ``magnitude`` scales kind-specific parameters: delay cycles for
    IPC_DELAY, truncation/corruption fraction for the PTX kinds.
    ``after`` suppresses the spec until the call counter passes it —
    node plans use it to hold a heartbeat-loss burst (``every=1``)
    back until a chosen onset beat.

    For ``Site.NODE`` kinds the ``tenant`` field carries a *node id*
    and ``op`` one of the cluster's consultation points
    (``"heartbeat"``, ``"migrate"``).
    """

    kind: FaultKind
    tenant: str | None = None
    op: str | None = None
    at_call: int | None = 1
    every: int | None = None
    times: int = 1
    magnitude: float = 1.0
    after: int | None = None

    def matches(self, tenant: str, op: str, call_no: int) -> bool:
        if self.tenant is not None and self.tenant != tenant:
            return False
        if self.op is not None:
            if self.op != op:
                return False
        else:
            allowed = _DEFAULT_OPS.get(self.kind)
            if allowed is not None and op not in allowed:
                return False
        if self.after is not None and call_no <= self.after:
            return False
        if self.every is not None:
            return call_no % self.every == 0
        return call_no == (self.at_call or 1)


@dataclass
class FiredFault:
    """One firing of a spec, with its drawn parameters."""

    spec: FaultSpec
    tenant: str
    op: str
    call_no: int
    #: Kind-specific parameters drawn from the plan's RNG.
    delay_cycles: float = 0.0
    truncate_at: float = 1.0
    corrupt_byte: int = 0
    reason: str = ""

    @property
    def kind(self) -> FaultKind:
        return self.spec.kind


class FaultPlan:
    """An ordered set of fault specs plus the RNG for their parameters.

    ``fire(site, tenant, op)`` advances the (site, tenant, op) call
    counter and returns a :class:`FiredFault` when the first matching
    spec triggers, else ``None``. A spec fires at most once per
    matching (tenant, op, call-count) — ``every`` specs re-fire on the
    period.
    """

    def __init__(self, specs: tuple[FaultSpec, ...] | list[FaultSpec] = (), seed: int = 0):
        self.specs = tuple(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self._counters: dict[tuple[Site, str, str], int] = {}
        self.fired: list[FiredFault] = []

    def fire(self, site: Site, tenant: str, op: str) -> FiredFault | None:
        key = (site, tenant, op)
        call_no = self._counters.get(key, 0) + 1
        self._counters[key] = call_no
        for spec in self.specs:
            if spec.kind.site is not site:
                continue
            if not spec.matches(tenant, op, call_no):
                continue
            fired = self._parameterise(spec, tenant, op, call_no)
            self.fired.append(fired)
            return fired
        return None

    def call_count(self, site: Site, tenant: str, op: str) -> int:
        return self._counters.get((site, tenant, op), 0)

    def _parameterise(self, spec: FaultSpec, tenant: str, op: str, call_no: int) -> FiredFault:
        fired = FiredFault(spec=spec, tenant=tenant, op=op, call_no=call_no)
        if spec.kind is FaultKind.IPC_DELAY:
            # 50k..2M cycles, scaled by the spec's magnitude.
            fired.delay_cycles = spec.magnitude * self._rng.randint(50_000, 2_000_000)
        elif spec.kind in (FaultKind.PTX_TRUNCATE, FaultKind.PTX_CORRUPT):
            fired.truncate_at = min(0.95, 0.1 + 0.8 * self._rng.random() * spec.magnitude)
            fired.corrupt_byte = self._rng.randrange(256)
        elif spec.kind is FaultKind.STREAM_FAULT:
            fired.reason = self._rng.choice(
                ("xid-13 illegal address", "xid-31 mmu fault", "watchdog timeout")
            )
        elif spec.kind is FaultKind.NODE_CRASH:
            fired.reason = self._rng.choice(
                ("kernel panic", "power loss", "pcie link down")
            )
        elif spec.kind is FaultKind.SNAPSHOT_PARTIAL:
            # Fraction of the partition image that made it across.
            fired.truncate_at = min(
                0.95, 0.1 + 0.8 * self._rng.random() * spec.magnitude
            )
        return fired

    # -- canned plans -----------------------------------------------------------

    @classmethod
    def chaos(
        cls,
        seed: int,
        tenants: list[str] | tuple[str, ...],
        calls_per_tenant: int = 30,
        faults_per_tenant: int = 3,
    ) -> "FaultPlan":
        """A deterministic chaos schedule for the fault gauntlet.

        Draws ``faults_per_tenant`` specs per tenant from the
        tenant-level taxonomy, with firing points spread across the
        expected call volume. The same seed always produces the same
        plan. Node-level kinds are deliberately excluded — they target
        node ids, not tenants, and keeping them out preserves this
        generator's historical draws for any given seed (the CI
        gauntlet matrix pins those). Use :meth:`node_chaos` for plans
        that exercise the cluster control plane too.
        """
        rng = random.Random(seed)
        kinds = [kind for kind in FaultKind if kind.site is not Site.NODE]
        specs: list[FaultSpec] = []
        for tenant in tenants:
            for _ in range(faults_per_tenant):
                kind = rng.choice(kinds)
                ops = _DEFAULT_OPS.get(kind)
                op = rng.choice(ops) if ops else None
                specs.append(
                    FaultSpec(
                        kind=kind,
                        tenant=tenant,
                        op=op,
                        at_call=rng.randint(1, max(2, calls_per_tenant // 2)),
                        times=rng.randint(1, 5),
                        magnitude=0.5 + rng.random(),
                    )
                )
        return cls(specs, seed=seed)

    @classmethod
    def node_chaos(
        cls,
        seed: int,
        nodes: list[str] | tuple[str, ...],
        tenants: list[str] | tuple[str, ...] = (),
        beats: int = 32,
        calls_per_tenant: int = 30,
        faults_per_tenant: int = 2,
    ) -> "FaultPlan":
        """A chaos schedule for the *cluster* gauntlet.

        Rides :meth:`chaos`'s tenant-level specs (when ``tenants`` are
        given) and layers node-level faults on top: one victim node
        gets a permanent heartbeat-loss burst starting at a drawn
        onset beat — driving its health state machine to ``down``
        mid-workload — and, depending on the seed, the ensuing
        migrations are hit by a mid-migration source-node crash or a
        partial snapshot. A second node may suffer a transient
        single-beat blip (degraded, then recovering). Node specs are
        drawn from an RNG decoupled from the tenant draws, so adding
        tenants never reshuffles the node schedule (and vice versa).
        """
        specs: list[FaultSpec] = []
        if tenants:
            specs.extend(
                cls.chaos(seed, tenants, calls_per_tenant=calls_per_tenant,
                          faults_per_tenant=faults_per_tenant).specs
            )
        rng = random.Random((seed << 8) ^ 0xA5C3)
        victim = nodes[rng.randrange(len(nodes))]
        onset = rng.randint(3, max(4, beats // 2))
        specs.append(FaultSpec(
            kind=FaultKind.HEARTBEAT_LOSS, tenant=victim, op="heartbeat",
            every=1, after=onset,
        ))
        roll = rng.random()
        if roll < 0.35:
            specs.append(FaultSpec(
                kind=FaultKind.NODE_CRASH, tenant=victim, op="migrate",
                at_call=1,
            ))
        elif roll < 0.70:
            specs.append(FaultSpec(
                kind=FaultKind.SNAPSHOT_PARTIAL, tenant=victim,
                op="migrate", at_call=1,
            ))
        others = [node for node in nodes if node != victim]
        if others and rng.random() < 0.5:
            blip = others[rng.randrange(len(others))]
            beat = rng.randint(2, max(3, beats - 2))
            specs.append(FaultSpec(
                kind=FaultKind.HEARTBEAT_LOSS, tenant=blip, op="heartbeat",
                at_call=beat,
            ))
        return cls(specs, seed=seed)
