"""Deterministic fault plans.

A :class:`FaultPlan` is the single source of misbehaviour for a run: a
list of :class:`FaultSpec` rules keyed on (tenant, operation,
call-count) plus a seeded RNG for the fault *parameters* (truncation
points, corruption bytes, delay lengths). Every layer that can
misbehave consults the plan at a well-defined **site**:

- ``Site.SERVER`` — the server end of the message queue (the
  TenantSupervisor's dispatch wrapper): IPC drops / duplicates /
  delays / corruption, malformed PTX, allocator exhaustion, and
  asynchronous stream faults are armed here;
- ``Site.CLIENT`` — the client shim: client crashes mid-call fire
  before the message ever reaches the queue.

Determinism contract: the same plan (same specs, same seed) applied to
the same call sequence fires the same faults with the same parameters.
Call counters are kept per (site, tenant, op), so the client- and
server-side consultations of one logical call never double-advance a
counter.

With **no plan installed** nothing in the stack consults anything: the
hot path is bit-identical to the stock server (the acceptance bar the
fault gauntlet pins).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class Site(enum.Enum):
    """Where in the stack a fault fires."""

    CLIENT = "client"
    SERVER = "server"


class FaultKind(enum.Enum):
    """The fault taxonomy (DESIGN.md §6)."""

    #: Message-queue crossing lost; detected by the supervisor's
    #: sequence numbers and retried with backoff.
    IPC_DROP = "ipc_drop"
    #: Message delivered twice; the duplicate is detected and
    #: suppressed (the handler runs exactly once).
    IPC_DUPLICATE = "ipc_duplicate"
    #: Message delayed in the queue; the call completes late and may
    #: trip the per-tenant deadline.
    IPC_DELAY = "ipc_delay"
    #: Message corrupted in the shared segment; detected by checksum
    #: and retried like a drop.
    IPC_CORRUPT = "ipc_corrupt"
    #: The client process dies mid-call, possibly with a non-empty
    #: batch pending in its channel.
    CLIENT_CRASH = "client_crash"
    #: The deployed module's PTX arrives truncated.
    PTX_TRUNCATE = "ptx_truncate"
    #: The deployed module's PTX arrives with corrupted bytes.
    PTX_CORRUPT = "ptx_corrupt"
    #: The tenant's partition reports exhaustion on malloc.
    ALLOC_EXHAUST = "alloc_exhaust"
    #: The simulated GPU raises an asynchronous fault on the tenant's
    #: stream, surfaced at the next ordering point (sticky).
    STREAM_FAULT = "stream_fault"

    @property
    def site(self) -> Site:
        if self is FaultKind.CLIENT_CRASH:
            return Site.CLIENT
        return Site.SERVER

    @property
    def retryable(self) -> bool:
        """Transient queue faults the supervisor retries with backoff."""
        return self in (FaultKind.IPC_DROP, FaultKind.IPC_CORRUPT)


#: Operations each kind can target when a spec leaves ``op`` as None.
_DEFAULT_OPS: dict[FaultKind, tuple[str, ...]] = {
    FaultKind.PTX_TRUNCATE: ("register_fatbin", "load_module_ptx"),
    FaultKind.PTX_CORRUPT: ("register_fatbin", "load_module_ptx"),
    FaultKind.ALLOC_EXHAUST: ("malloc",),
    FaultKind.STREAM_FAULT: ("launch_kernel", "memcpy_h2d", "memset"),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: *kind* fires for *tenant* on *op* at call N.

    ``tenant`` / ``op`` of ``None`` match any tenant / any operation
    valid for the kind. ``at_call`` fires on the Nth matching call
    (1-based); ``every`` fires periodically instead. ``times`` is how
    many consecutive delivery attempts fail (retryable kinds only).
    ``magnitude`` scales kind-specific parameters: delay cycles for
    IPC_DELAY, truncation/corruption fraction for the PTX kinds.
    """

    kind: FaultKind
    tenant: str | None = None
    op: str | None = None
    at_call: int | None = 1
    every: int | None = None
    times: int = 1
    magnitude: float = 1.0

    def matches(self, tenant: str, op: str, call_no: int) -> bool:
        if self.tenant is not None and self.tenant != tenant:
            return False
        if self.op is not None:
            if self.op != op:
                return False
        else:
            allowed = _DEFAULT_OPS.get(self.kind)
            if allowed is not None and op not in allowed:
                return False
        if self.every is not None:
            return call_no % self.every == 0
        return call_no == (self.at_call or 1)


@dataclass
class FiredFault:
    """One firing of a spec, with its drawn parameters."""

    spec: FaultSpec
    tenant: str
    op: str
    call_no: int
    #: Kind-specific parameters drawn from the plan's RNG.
    delay_cycles: float = 0.0
    truncate_at: float = 1.0
    corrupt_byte: int = 0
    reason: str = ""

    @property
    def kind(self) -> FaultKind:
        return self.spec.kind


class FaultPlan:
    """An ordered set of fault specs plus the RNG for their parameters.

    ``fire(site, tenant, op)`` advances the (site, tenant, op) call
    counter and returns a :class:`FiredFault` when the first matching
    spec triggers, else ``None``. A spec fires at most once per
    matching (tenant, op, call-count) — ``every`` specs re-fire on the
    period.
    """

    def __init__(self, specs: tuple[FaultSpec, ...] | list[FaultSpec] = (), seed: int = 0):
        self.specs = tuple(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self._counters: dict[tuple[Site, str, str], int] = {}
        self.fired: list[FiredFault] = []

    def fire(self, site: Site, tenant: str, op: str) -> FiredFault | None:
        key = (site, tenant, op)
        call_no = self._counters.get(key, 0) + 1
        self._counters[key] = call_no
        for spec in self.specs:
            if spec.kind.site is not site:
                continue
            if not spec.matches(tenant, op, call_no):
                continue
            fired = self._parameterise(spec, tenant, op, call_no)
            self.fired.append(fired)
            return fired
        return None

    def call_count(self, site: Site, tenant: str, op: str) -> int:
        return self._counters.get((site, tenant, op), 0)

    def _parameterise(self, spec: FaultSpec, tenant: str, op: str, call_no: int) -> FiredFault:
        fired = FiredFault(spec=spec, tenant=tenant, op=op, call_no=call_no)
        if spec.kind is FaultKind.IPC_DELAY:
            # 50k..2M cycles, scaled by the spec's magnitude.
            fired.delay_cycles = spec.magnitude * self._rng.randint(50_000, 2_000_000)
        elif spec.kind in (FaultKind.PTX_TRUNCATE, FaultKind.PTX_CORRUPT):
            fired.truncate_at = min(0.95, 0.1 + 0.8 * self._rng.random() * spec.magnitude)
            fired.corrupt_byte = self._rng.randrange(256)
        elif spec.kind is FaultKind.STREAM_FAULT:
            fired.reason = self._rng.choice(
                ("xid-13 illegal address", "xid-31 mmu fault", "watchdog timeout")
            )
        return fired

    # -- canned plans -----------------------------------------------------------

    @classmethod
    def chaos(
        cls,
        seed: int,
        tenants: list[str] | tuple[str, ...],
        calls_per_tenant: int = 30,
        faults_per_tenant: int = 3,
    ) -> "FaultPlan":
        """A deterministic chaos schedule for the fault gauntlet.

        Draws ``faults_per_tenant`` specs per tenant from the full
        taxonomy, with firing points spread across the expected call
        volume. The same seed always produces the same plan.
        """
        rng = random.Random(seed)
        kinds = list(FaultKind)
        specs: list[FaultSpec] = []
        for tenant in tenants:
            for _ in range(faults_per_tenant):
                kind = rng.choice(kinds)
                ops = _DEFAULT_OPS.get(kind)
                op = rng.choice(ops) if ops else None
                specs.append(
                    FaultSpec(
                        kind=kind,
                        tenant=tenant,
                        op=op,
                        at_call=rng.randint(1, max(2, calls_per_tenant // 2)),
                        times=rng.randint(1, 5),
                        magnitude=0.5 + rng.random(),
                    )
                )
        return cls(specs, seed=seed)
