"""Payload mutators: how a fired fault actually mangles an argument.

These are pure functions from (payload, fired fault) to the corrupted
payload; the TenantSupervisor applies them to the handler arguments
before dispatch. Keeping them here (rather than inside the supervisor)
makes each mutation unit-testable and reusable by future chaos
harnesses. With a telemetry spine attached each applied mutation is
counted (``guardian_payload_mutations_total`` by kind) — observation
only, the mutation itself is unchanged.
"""

from __future__ import annotations

from repro.driver.fatbin import FatBinary, FatbinEntry
from repro.faults.plan import FaultKind, FiredFault


def _count_mutation(telemetry, fired: FiredFault, payload: str) -> None:
    if telemetry is not None:
        telemetry.payload_mutations.inc(kind=fired.kind.value,
                                        payload=payload)


def mutate_ptx_text(ptx_text: str, fired: FiredFault,
                    telemetry=None) -> str:
    """Truncate or corrupt one PTX module text."""
    if not ptx_text:
        return ptx_text
    if fired.kind is FaultKind.PTX_TRUNCATE:
        cut = max(1, int(len(ptx_text) * fired.truncate_at))
        _count_mutation(telemetry, fired, "ptx_text")
        return ptx_text[:cut]
    if fired.kind is FaultKind.PTX_CORRUPT:
        # Overwrite a deterministic window with a garbage token: the
        # parser must reject it, never crash on it.
        position = max(0, int(len(ptx_text) * fired.truncate_at) - 1)
        garbage = chr(33 + fired.corrupt_byte % 90) * 8
        _count_mutation(telemetry, fired, "ptx_text")
        return ptx_text[:position] + garbage + ptx_text[position + 8 :]
    return ptx_text


def mutate_fatbin(fatbin: FatBinary, fired: FiredFault,
                  telemetry=None) -> FatBinary:
    """Rebuild a fatBIN with every entry's payload mangled."""
    if fired.kind in (FaultKind.PTX_TRUNCATE, FaultKind.PTX_CORRUPT):
        _count_mutation(telemetry, fired, "fatbin")
    entries = []
    for entry in fatbin.entries:
        payload = entry.payload
        if payload:
            if fired.kind is FaultKind.PTX_TRUNCATE:
                cut = max(1, int(len(payload) * fired.truncate_at))
                payload = payload[:cut]
            elif fired.kind is FaultKind.PTX_CORRUPT:
                position = max(0, int(len(payload) * fired.truncate_at) - 1)
                payload = (
                    payload[:position]
                    + bytes([fired.corrupt_byte])
                    + payload[position + 1 :]
                )
        entries.append(FatbinEntry(kind=entry.kind, arch=entry.arch, payload=payload))
    return FatBinary(name=fatbin.name, entries=entries)
