"""Fault injection for the Guardian stack.

The package every chaos / recovery PR builds on: deterministic
:class:`FaultPlan` schedules (seeded, keyed on tenant/op/call-count),
the payload mutators that realise them, and the taxonomy the
TenantSupervisor's containment policy is written against.
"""

from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FiredFault,
    Site,
)
from repro.faults.inject import mutate_fatbin, mutate_ptx_text

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "Site",
    "mutate_fatbin",
    "mutate_ptx_text",
]
