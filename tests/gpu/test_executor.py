"""Executor tests: functional semantics and cycle accounting."""

import numpy as np
import pytest

from repro.errors import ExecutionError, LaunchError, MemoryFault
from repro.gpu.executor import (
    EFFECTIVE_WARPS_PER_SM,
    KernelExecutor,
    LAUNCH_OVERHEAD_CYCLES,
    compile_kernel,
)
from repro.gpu.memory import GlobalMemory
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.ptx.ast import Immediate
from repro.ptx.builder import KernelBuilder, build_module

from tests.conftest import saxpy_kernel, writer_kernel

SPEC = QUADRO_RTX_A4000
BASE = 0x7F_A000_0000_00


@pytest.fixture(params=[False, True], ids=["interpreter", "jit"])
def executor_factory(request):
    """Both engines run every test in this module."""
    def factory(memory):
        return KernelExecutor(SPEC, memory, use_codegen=request.param)

    return factory


def run_kernel(executor_factory, kernel, grid, block, params,
               setup=None, memory_bytes=1 << 22):
    memory = GlobalMemory(memory_bytes)
    if setup:
        setup(memory)
    executor = executor_factory(memory)
    compiled = compile_kernel(kernel, SPEC)
    result = executor.launch(compiled, grid, block, params)
    return memory, result


class TestFunctional:
    def test_saxpy(self, executor_factory):
        xs = np.arange(50, dtype=np.float32)
        ys = np.ones(50, dtype=np.float32)

        def setup(memory):
            memory.write_array(BASE, ys)
            memory.write_array(BASE + 4096, xs)

        memory, _ = run_kernel(
            executor_factory, saxpy_kernel(), (1, 1, 1), (64, 1, 1),
            [BASE, BASE + 4096, 3.0, 50], setup,
        )
        out = memory.read_array(BASE, 50)
        assert np.allclose(out, 3.0 * xs + 1.0)

    def test_boundary_guard_respected(self, executor_factory):
        """Threads past n must not write."""
        memory, _ = run_kernel(
            executor_factory, saxpy_kernel(), (1, 1, 1), (64, 1, 1),
            [BASE, BASE + 4096, 1.0, 10],
        )
        # Elements 10..63 of y stay zero.
        tail = memory.read_array(BASE + 40, 54)
        assert np.all(tail == 0.0)

    def test_multi_block_grid(self, executor_factory):
        n = 200

        def setup(memory):
            memory.write_array(BASE + 4096,
                               np.ones(n, dtype=np.float32))

        memory, result = run_kernel(
            executor_factory, saxpy_kernel(), (4, 1, 1), (64, 1, 1),
            [BASE, BASE + 4096, 2.0, n], setup,
        )
        assert np.allclose(memory.read_array(BASE, n), 2.0)
        assert result.threads == 256

    def test_wild_write_faults(self, executor_factory):
        """Unpatched kernels writing outside mapped memory fault — the
        simulator's Xid error."""
        with pytest.raises(MemoryFault):
            run_kernel(
                executor_factory, writer_kernel(), (1, 1, 1), (1, 1, 1),
                [BASE, 1 << 40, 7],
            )

    def test_integer_ops(self, executor_factory):
        b = KernelBuilder("intops", params=[("out", "u64")])
        out = b.load_param_ptr("out")
        v = b.mov("u32", Immediate(100))
        v = b.mul("u32", v, 7)            # 700
        v = b.div("u32", v, 3)            # 233
        v = b.rem("u32", v, 100)          # 33
        v = b.shl("b32", v, 2)            # 132
        v = b.xor("b32", v, Immediate(0xFF))  # 123
        b.st_global("u32", out, v)
        memory, _ = run_kernel(executor_factory, b.build(),
                               (1, 1, 1), (1, 1, 1), [BASE])
        assert memory.load_scalar(BASE, "u32") == (132 ^ 0xFF)

    def test_signed_arithmetic(self, executor_factory):
        b = KernelBuilder("signed", params=[("out", "u64")])
        out = b.load_param_ptr("out")
        v = b.sub("s32", Immediate(3), Immediate(10))   # -7
        pred = b.setp("lt", "s32", v, Immediate(0))
        result = b.reg("u32")
        b.emit("selp.b32", result, Immediate(1), Immediate(0), pred)
        b.st_global("u32", out, result)
        memory, _ = run_kernel(executor_factory, b.build(),
                               (1, 1, 1), (1, 1, 1), [BASE])
        assert memory.load_scalar(BASE, "u32") == 1

    def test_sfu_functions(self, executor_factory):
        b = KernelBuilder("sfu", params=[("out", "u64")])
        out = b.load_param_ptr("out")
        b.st_global("f32", out, b.unary("sqrt", "f32", Immediate(16.0)))
        b.st_global("f32", out, b.unary("ex2", "f32", Immediate(3.0)),
                    offset=4)
        b.st_global("f32", out, b.unary("rcp", "f32", Immediate(4.0)),
                    offset=8)
        memory, _ = run_kernel(executor_factory, b.build(),
                               (1, 1, 1), (1, 1, 1), [BASE])
        assert memory.load_scalar(BASE, "f32") == 4.0
        assert memory.load_scalar(BASE + 4, "f32") == 8.0
        assert memory.load_scalar(BASE + 8, "f32") == 0.25

    def test_shared_memory_and_barrier(self, executor_factory):
        """Block-wide reversal through shared memory requires a
        working barrier."""
        b = KernelBuilder("reverse", params=[("buf", "u64"), ("n", "u32")])
        tile = b.shared_array("tile", "f32", 64)
        buf = b.load_param_ptr("buf")
        n = b.load_param("n", "u32")
        tid = b.special("%tid.x")
        base = b.mov("u64", tile)
        my_slot = b.add("u64", base, b.cvt(
            "u64", "u32", b.mul("u32", tid, Immediate(4))))
        value = b.ld_global("f32", b.element_addr(buf, tid, 4))
        b.st_shared("f32", my_slot, value)
        b.barrier()
        reversed_index = b.sub("u32", b.sub("u32", n, Immediate(1)), tid)
        peer_slot = b.add("u64", base, b.cvt(
            "u64", "u32", b.mul("u32", reversed_index, Immediate(4))))
        peer = b.ld_shared("f32", peer_slot)
        b.st_global("f32", b.element_addr(buf, tid, 4), peer)

        def setup(memory):
            memory.write_array(BASE, np.arange(64, dtype=np.float32))

        memory, _ = run_kernel(executor_factory, b.build(),
                               (1, 1, 1), (64, 1, 1), [BASE, 64], setup)
        out = memory.read_array(BASE, 64)
        assert np.array_equal(out, np.arange(64, dtype=np.float32)[::-1])

    def test_atomic_add(self, executor_factory):
        b = KernelBuilder("atomic", params=[("ctr", "u64")])
        counter = b.load_param_ptr("ctr")
        b.atom_add_global("u32", counter, 1)
        memory, _ = run_kernel(executor_factory, b.build(),
                               (2, 1, 1), (32, 1, 1), [BASE])
        assert memory.load_scalar(BASE, "u32") == 64

    def test_brx_dispatch(self, executor_factory):
        b = KernelBuilder("dispatch", params=[("out", "u64"),
                                              ("sel", "u32")])
        out = b.load_param_ptr("out")
        selector = b.load_param("sel", "u32")
        end = b.fresh_label("end")
        case0, case1 = b.fresh_label("c0"), b.fresh_label("c1")
        b.brx_idx(selector, [case0, case1])
        b.label(case0)
        b.st_global("u32", out, 100)
        b.bra(end)
        b.label(case1)
        b.st_global("u32", out, 200)
        b.label(end)
        memory, _ = run_kernel(executor_factory, b.build(),
                               (1, 1, 1), (1, 1, 1), [BASE, 1])
        assert memory.load_scalar(BASE, "u32") == 200

    def test_brx_out_of_range_raises(self, executor_factory):
        b = KernelBuilder("dispatch", params=[("sel", "u32")])
        selector = b.load_param("sel", "u32")
        only = b.fresh_label("only")
        b.brx_idx(selector, [only])
        b.label(only)
        with pytest.raises(ExecutionError):
            run_kernel(executor_factory, b.build(),
                       (1, 1, 1), (1, 1, 1), [5])

    def test_runaway_kernel_detected(self, executor_factory):
        b = KernelBuilder("spin", params=[])
        forever = b.fresh_label("forever")
        b.label(forever)
        b.bra(forever)
        with pytest.raises(ExecutionError, match="runaway"):
            run_kernel(executor_factory, b.build(),
                       (1, 1, 1), (1, 1, 1), [])


class TestLaunchValidation:
    def test_wrong_param_count(self, executor_factory):
        memory = GlobalMemory(1 << 20)
        executor = executor_factory(memory)
        compiled = compile_kernel(saxpy_kernel(), SPEC)
        with pytest.raises(LaunchError):
            executor.launch(compiled, (1, 1, 1), (32, 1, 1), [BASE])

    def test_oversized_block(self, executor_factory):
        memory = GlobalMemory(1 << 20)
        executor = executor_factory(memory)
        compiled = compile_kernel(saxpy_kernel(), SPEC)
        with pytest.raises(LaunchError):
            executor.launch(compiled, (1, 1, 1), (2048, 1, 1),
                            [BASE, BASE, 1.0, 1])

    def test_zero_grid(self, executor_factory):
        memory = GlobalMemory(1 << 20)
        executor = executor_factory(memory)
        compiled = compile_kernel(saxpy_kernel(), SPEC)
        with pytest.raises(LaunchError):
            executor.launch(compiled, (0, 1, 1), (32, 1, 1),
                            [BASE, BASE, 1.0, 1])


class TestTiming:
    def test_duration_formula(self, executor_factory):
        _, result = run_kernel(
            executor_factory, saxpy_kernel(), (1, 1, 1), (32, 1, 1),
            [BASE, BASE + 4096, 1.0, 32],
        )
        parallelism = min(result.warps,
                          SPEC.num_sms * EFFECTIVE_WARPS_PER_SM)
        expected = (LAUNCH_OVERHEAD_CYCLES
                    + result.total_warp_cycles / parallelism)
        assert result.duration_cycles == pytest.approx(expected)

    def test_more_work_more_cycles(self, executor_factory):
        _, small = run_kernel(
            executor_factory, saxpy_kernel(), (1, 1, 1), (32, 1, 1),
            [BASE, BASE + 4096, 1.0, 32],
        )
        _, large = run_kernel(
            executor_factory, saxpy_kernel(), (8, 1, 1), (128, 1, 1),
            [BASE, BASE + 4096, 1.0, 1024],
        )
        assert large.total_warp_cycles > small.total_warp_cycles

    def test_sampled_execution_scales_counts(self, executor_factory):
        memory = GlobalMemory(1 << 22)
        memory.write_array(BASE + 4096,
                           np.ones(1024, dtype=np.float32))
        executor = executor_factory(memory)
        compiled = compile_kernel(saxpy_kernel(), SPEC)
        full = executor.launch(compiled, (8, 1, 1), (128, 1, 1),
                               [BASE, BASE + 4096, 1.0, 1024])
        executor2 = executor_factory(GlobalMemory(1 << 22))
        sampled = executor2.launch(compiled, (8, 1, 1), (128, 1, 1),
                                   [BASE, BASE + 4096, 1.0, 1024],
                                   max_blocks=2)
        assert sampled.sampled_fraction == pytest.approx(0.25)
        # Scaled instruction counts stay within 5% of the full run.
        assert sampled.instructions == pytest.approx(
            full.instructions, rel=0.05)
