"""Device facade tests: contexts, allocation, submission, sync."""

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.gpu.device import Device
from repro.gpu.executor import compile_kernel
from repro.gpu.specs import GEFORCE_RTX_3080TI, QUADRO_RTX_A4000

from tests.conftest import saxpy_kernel


@pytest.fixture
def device():
    return Device(QUADRO_RTX_A4000)


class TestContexts:
    def test_context_ids_unique(self, device):
        a = device.create_context("a")
        b = device.create_context("b")
        assert a.context_id != b.context_id

    def test_destroy_releases_memory(self, device):
        context = device.create_context("a")
        device.allocate(context, 1 << 20)
        used = device.allocator.bytes_in_use
        device.destroy_context(context)
        assert device.allocator.bytes_in_use == used - (1 << 20)

    def test_default_stream_exists(self, device):
        context = device.create_context("a")
        assert context.default_stream is not None
        assert context.default_stream.context_id == context.context_id


class TestSubmission:
    def test_functional_now_timing_later(self, device):
        """D2H data is correct before synchronize() resolves timing."""
        context = device.create_context("a")
        stream = context.default_stream
        addr = device.allocate(context, 256)
        device.submit_h2d(stream, addr, b"\x42" * 256)
        data = device.submit_d2h(stream, addr, 256)
        assert data == b"\x42" * 256
        assert device.pending_tasks == 2
        device.synchronize()
        assert device.pending_tasks == 0

    def test_kernel_submission_counts(self, device):
        context = device.create_context("a")
        compiled = compile_kernel(saxpy_kernel(), device.spec)
        addr = device.allocate(context, 4096)
        device.submit_kernel(context.default_stream, compiled,
                             (1, 1, 1), (32, 1, 1),
                             [addr, addr, 1.0, 16])
        assert device.metrics.kernels_launched == 1

    def test_memset(self, device):
        context = device.create_context("a")
        addr = device.allocate(context, 128)
        device.submit_memset(context.default_stream, addr, 0xAA, 128)
        assert device.memory.read(addr, 128) == b"\xaa" * 128

    def test_clock_advances(self, device):
        context = device.create_context("a")
        addr = device.allocate(context, 1 << 16)
        device.submit_h2d(context.default_stream, addr, b"x" * (1 << 16))
        device.synchronize()
        assert device.clock_cycles > 0
        assert device.elapsed_seconds() > 0

    def test_oom(self, device):
        context = device.create_context("a")
        with pytest.raises(AllocationError):
            device.allocate(context, device.spec.global_memory_bytes + 1)


class TestSpecs:
    def test_table2_values_a4000(self):
        spec = QUADRO_RTX_A4000
        assert spec.num_sms == 48
        assert spec.cuda_cores == 6144
        assert spec.l1_kb == 128
        assert spec.l2_kb == 4096
        assert spec.global_memory_bytes == 16 << 30
        assert spec.l1_hit_cycles == 28
        assert spec.l2_hit_cycles == 193
        assert spec.global_avg_cycles == 285
        assert spec.ecc

    def test_table2_values_3080ti(self):
        spec = GEFORCE_RTX_3080TI
        assert spec.num_sms == 80
        assert spec.cuda_cores == 10240
        assert spec.global_memory_bytes == 12 << 30
        assert spec.global_bw_gbps == 912.0
        assert not spec.ecc

    def test_geforce_has_more_capacity(self):
        a = Device(QUADRO_RTX_A4000)
        b = Device(GEFORCE_RTX_3080TI)
        assert b.sm_capacity > a.sm_capacity
