"""Timeline scheduler tests: leftover policy, time sharing, releases."""

import pytest

from repro.gpu.timeline import GpuTask, Timeline


def kernel_task(context=1, stream=1, work=1000.0, demand=10, tag="",
                release=0.0):
    return GpuTask(
        kind="kernel", context_id=context, stream_key=(context, stream),
        work_cycles=work, demand=demand, tag=tag, release=release,
    )


def copy_task(kind="h2d", context=1, stream=1, work=500.0, tag=""):
    return GpuTask(kind=kind, context_id=context,
                   stream_key=(context, stream), work_cycles=work,
                   tag=tag)


class TestSpatialSharing:
    def test_single_task_duration(self):
        timeline = Timeline(sm_capacity=100, spatial=True)
        result = timeline.run([kernel_task(work=1000, demand=10)])
        assert result.makespan_cycles == pytest.approx(100.0)

    def test_same_stream_serialises(self):
        timeline = Timeline(sm_capacity=100, spatial=True)
        tasks = [kernel_task(stream=1, work=1000, demand=10)
                 for _ in range(3)]
        result = timeline.run(tasks)
        assert result.makespan_cycles == pytest.approx(300.0)

    def test_different_streams_overlap(self):
        timeline = Timeline(sm_capacity=100, spatial=True)
        tasks = [kernel_task(stream=s, work=1000, demand=10)
                 for s in (1, 2, 3)]
        result = timeline.run(tasks)
        assert result.makespan_cycles == pytest.approx(100.0)

    def test_leftover_policy_starves_late_arrival(self):
        """First kernel takes all capacity; the second gets nothing
        until it finishes — NVIDIA's leftover policy."""
        timeline = Timeline(sm_capacity=100, spatial=True)
        hog = kernel_task(stream=1, work=10_000, demand=100)
        late = kernel_task(stream=2, work=1_000, demand=50)
        result = timeline.run([hog, late])
        assert result.task_finish[hog.seq] == pytest.approx(100.0)
        # late runs only after the hog: 100 + 1000/50.
        assert result.task_finish[late.seq] == pytest.approx(120.0)

    def test_partial_leftover_share(self):
        timeline = Timeline(sm_capacity=100, spatial=True)
        first = kernel_task(stream=1, work=6_000, demand=60)
        second = kernel_task(stream=2, work=6_000, demand=60)
        result = timeline.run([first, second])
        # First gets 60, second the leftover 40 until first finishes.
        assert result.task_finish[first.seq] == pytest.approx(100.0)
        assert result.task_finish[second.seq] > 100.0

    def test_copies_overlap_kernels(self):
        timeline = Timeline(sm_capacity=100, spatial=True)
        result = timeline.run([
            kernel_task(stream=1, work=1000, demand=10),
            copy_task(stream=2, work=1000),
        ])
        assert result.makespan_cycles == pytest.approx(1000.0)

    def test_copy_engine_serialises_per_direction(self):
        timeline = Timeline(sm_capacity=100, spatial=True)
        result = timeline.run([
            copy_task(stream=1, work=1000),
            copy_task(stream=2, work=1000),
        ])
        assert result.makespan_cycles == pytest.approx(2000.0)

    def test_opposite_directions_overlap(self):
        timeline = Timeline(sm_capacity=100, spatial=True)
        result = timeline.run([
            copy_task("h2d", stream=1, work=1000),
            copy_task("d2h", stream=2, work=1000),
        ])
        assert result.makespan_cycles == pytest.approx(1000.0)


class TestTimeSharing:
    def test_contexts_serialise(self):
        timeline = Timeline(sm_capacity=100, context_switch_cycles=0,
                            spatial=False)
        tasks = [
            kernel_task(context=1, stream=1, work=1000, demand=10),
            kernel_task(context=2, stream=2, work=1000, demand=10),
        ]
        result = timeline.run(tasks)
        assert result.makespan_cycles == pytest.approx(200.0)

    def test_context_switch_cost_charged(self):
        timeline = Timeline(sm_capacity=100,
                            context_switch_cycles=5000, spatial=False)
        tasks = [
            kernel_task(context=1, stream=1, work=1000, demand=10),
            kernel_task(context=2, stream=2, work=1000, demand=10),
        ]
        result = timeline.run(tasks)
        assert result.context_switches == 1
        assert result.makespan_cycles == pytest.approx(5200.0)

    def test_spatial_beats_timeshare(self):
        tasks = lambda: [
            kernel_task(context=c, stream=c, work=5000, demand=20)
            for c in (1, 2)
        ]
        spatial = Timeline(100, 1000, spatial=True).run(tasks())
        shared = Timeline(100, 1000, spatial=False).run(tasks())
        assert spatial.makespan_cycles < shared.makespan_cycles


class TestReleases:
    def test_release_delays_start(self):
        timeline = Timeline(sm_capacity=100, spatial=True)
        result = timeline.run([
            kernel_task(work=1000, demand=10, release=500.0)
        ])
        assert result.makespan_cycles == pytest.approx(600.0)

    def test_submission_pipeline_bubbles(self):
        """A slow submitter starves the GPU: makespan tracks releases
        rather than device work — how interception overhead shows up."""
        timeline = Timeline(sm_capacity=100, spatial=True)
        tasks = [
            kernel_task(stream=1, work=100, demand=10,
                        release=1000.0 * i)
            for i in range(5)
        ]
        result = timeline.run(tasks)
        assert result.makespan_cycles == pytest.approx(4010.0)

    def test_release_does_not_block_other_stream(self):
        timeline = Timeline(sm_capacity=100, spatial=True)
        blocked = kernel_task(stream=1, work=100, demand=10,
                              release=10_000.0)
        ready = kernel_task(stream=2, work=1000, demand=10)
        result = timeline.run([blocked, ready])
        assert result.task_finish[ready.seq] == pytest.approx(100.0)


class TestAccounting:
    def test_per_tag_completion(self):
        timeline = Timeline(sm_capacity=100, spatial=True)
        tasks = [
            kernel_task(stream=1, work=1000, demand=10, tag="a"),
            kernel_task(stream=2, work=3000, demand=10, tag="b"),
        ]
        result = timeline.run(tasks)
        assert result.completion_by_tag["a"] == pytest.approx(100.0)
        assert result.completion_by_tag["b"] == pytest.approx(300.0)

    def test_fixed_cycles_extend_solo_run(self):
        timeline = Timeline(sm_capacity=100, spatial=True)
        with_fixed = kernel_task(work=1000, demand=10)
        with_fixed.fixed_cycles = 50.0
        result = timeline.run([with_fixed])
        assert result.makespan_cycles == pytest.approx(150.0)

    def test_empty_run(self):
        result = Timeline(100).run([])
        assert result.makespan_cycles == 0.0
