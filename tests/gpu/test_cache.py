"""Cache model tests."""

import pytest

from repro.gpu.cache import MemoryHierarchy, SetAssociativeCache
from repro.gpu.specs import QUADRO_RTX_A4000


class TestSetAssociativeCache:
    def test_first_access_misses(self):
        cache = SetAssociativeCache(4096, line_bytes=128)
        assert not cache.access(0)
        assert cache.stats.misses == 1

    def test_second_access_hits(self):
        cache = SetAssociativeCache(4096, line_bytes=128)
        cache.access(0)
        assert cache.access(0)
        assert cache.stats.hits == 1

    def test_same_line_shares(self):
        cache = SetAssociativeCache(4096, line_bytes=128)
        cache.access(0)
        assert cache.access(127)       # same 128-byte line
        assert not cache.access(128)   # next line

    def test_lru_eviction(self):
        # 2-way, 2-set cache: 4 lines total.
        cache = SetAssociativeCache(512, line_bytes=128, associativity=2)
        # Fill set 0 (lines 0 and 2 map to set 0).
        cache.access(0)        # line 0 -> set 0
        cache.access(256)      # line 2 -> set 0
        cache.access(512)      # line 4 -> set 0, evicts line 0 (LRU)
        assert not cache.access(0)       # line 0 was evicted
        assert cache.access(512)         # line 4 still resident

    def test_mru_promotion(self):
        cache = SetAssociativeCache(512, line_bytes=128, associativity=2)
        cache.access(0)
        cache.access(256)
        cache.access(0)       # promote line 0 to MRU
        cache.access(512)     # evicts line 2 (now LRU)
        assert cache.access(0)
        assert not cache.access(256)

    def test_flush_keeps_stats(self):
        cache = SetAssociativeCache(4096)
        cache.access(0)
        cache.access(0)
        cache.flush()
        assert cache.stats.hits == 1
        assert not cache.access(0)  # miss after flush

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, line_bytes=128, associativity=8)

    def test_hit_ratio(self):
        cache = SetAssociativeCache(4096)
        cache.access(0)
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.stats.hit_ratio == 0.75


class TestMemoryHierarchy:
    def test_l1_miss_falls_to_l2(self):
        hierarchy = MemoryHierarchy.for_spec(QUADRO_RTX_A4000)
        assert hierarchy.access(0) == "global"
        assert hierarchy.access(0) == "l1"

    def test_l2_survives_kernel_boundary(self):
        # The paper's Fig. 11 reasoning: L1 flushes per launch, L2
        # persists, which is why lenet's L2 hit ratio (72%) is far
        # above its L1 (37%).
        hierarchy = MemoryHierarchy.for_spec(QUADRO_RTX_A4000)
        hierarchy.access(0)
        hierarchy.new_kernel()
        assert hierarchy.access(0) == "l2"

    def test_level_counts(self):
        hierarchy = MemoryHierarchy.for_spec(QUADRO_RTX_A4000)
        hierarchy.access(0)
        hierarchy.access(0)
        hierarchy.access(1 << 20)
        assert hierarchy.level_counts["global"] == 2
        assert hierarchy.level_counts["l1"] == 1

    def test_reset_stats(self):
        hierarchy = MemoryHierarchy.for_spec(QUADRO_RTX_A4000)
        hierarchy.access(0)
        hierarchy.reset_stats()
        assert hierarchy.l1.stats.accesses == 0
        assert all(v == 0 for v in hierarchy.level_counts.values())

    def test_geometry_from_spec(self):
        hierarchy = MemoryHierarchy.for_spec(QUADRO_RTX_A4000)
        assert (hierarchy.l1.num_sets * hierarchy.l1.associativity
                * hierarchy.l1.line_bytes) == 128 * 1024
        assert (hierarchy.l2.num_sets * hierarchy.l2.associativity
                * hierarchy.l2.line_bytes) == 4096 * 1024
